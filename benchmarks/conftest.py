"""Shared benchmark infrastructure.

Every benchmark prints the paper-style table for its figure directly to
the real stdout (bypassing pytest capture) so that

    pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

records both the pytest-benchmark timing table and the reproduced
paper tables.

Scale: ``REPRO_SCALE`` (float, default 1.0) multiplies every dataset
size, so the suite can be re-run closer to paper scale on bigger
machines.  The shapes reported in EXPERIMENTS.md are stable across
scales.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

from repro.data import integer_dataset

SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))

_CAPTURE_MANAGER = None


def scaled(n: int) -> int:
    """Apply the global scale factor to a dataset size."""
    return max(int(n * SCALE), 1_000)


@pytest.fixture(autouse=True, scope="session")
def _grab_capture_manager(pytestconfig):
    global _CAPTURE_MANAGER
    _CAPTURE_MANAGER = pytestconfig.pluginmanager.getplugin("capturemanager")
    yield


def console(text: str = "") -> None:
    """Print straight to the terminal, bypassing pytest capture."""
    if _CAPTURE_MANAGER is not None:
        with _CAPTURE_MANAGER.global_and_fixture_disabled():
            print(text, flush=True)
    else:
        print(text, file=sys.__stdout__, flush=True)


def show_table(table) -> None:
    console()
    console(table.render())
    console()


@pytest.fixture(scope="session")
def fig4_datasets():
    """The paper's three integer datasets at benchmark scale."""
    n = scaled(400_000)
    return {
        name: integer_dataset(name, n, seed=42).keys
        for name in ("maps", "weblogs", "lognormal")
    }


@pytest.fixture(scope="session")
def query_rng():
    return np.random.default_rng(2024)


def query_mix(keys: np.ndarray, rng, count: int = 2_000) -> list[float]:
    """The paper measures random look-ups of existing keys."""
    return [float(q) for q in rng.choice(keys, size=count)]
