"""E1 — Figure 4: Learned Index vs B-Tree on Maps / Weblogs / Lognormal.

Regenerates the paper's main table: for each dataset, B-Trees at page
sizes 32..512 and 2-stage RMIs at four second-stage sizes, reporting
size (with factor vs the page-128 B-Tree), total lookup time (with
speedup factor) and model execution time (with share of total).

Paper shape to reproduce: the learned index is faster than the best
B-Tree while being one to two orders of magnitude smaller, and larger
second stages trade size for accuracy.  Absolute ns are Python-scale;
the Section 2.1 cost model's ns (also printed) are paper-scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import (
    DEFAULT_COST_MODEL,
    Table,
    factor,
    format_bytes,
    measure_lookups,
    percentage,
)
from repro.btree import BTreeIndex
from repro.core import RecursiveModelIndex

from conftest import console, query_mix, show_table

PAGE_SIZES = (32, 64, 128, 256, 512)
REFERENCE_PAGE = 128
#: Second-stage sizes as keys-per-leaf ratios; the paper's 10k..200k
#: over 200M keys is 20000..1000 keys per leaf.
KEYS_PER_LEAF = (20_000, 4_000, 2_000, 1_000)


def _measure_btree(keys, queries, page_size):
    tree = BTreeIndex(keys, page_size=page_size)
    total = measure_lookups(tree.lookup, queries, repeats=2)
    model = measure_lookups(tree.find_page, queries, repeats=2)
    cost = DEFAULT_COST_MODEL.btree_lookup(
        tree.height, page_size, tree.size_bytes()
    )
    return tree, total.mean_ns, model.mean_ns, cost


def _measure_rmi(keys, queries, leaves):
    index = RecursiveModelIndex(keys, stage_sizes=(1, leaves))
    total = measure_lookups(index.lookup, queries, repeats=2)
    model = measure_lookups(
        lambda q: index._predict_window(q), queries, repeats=2
    )
    index.stats.reset()
    for q in queries:
        index.lookup(q)
    cost = DEFAULT_COST_MODEL.learned_lookup(
        index.model_op_count(), index.stats.mean_window, index.size_bytes()
    )
    return index, total.mean_ns, model.mean_ns, cost


def test_figure4_tables(fig4_datasets, query_rng, benchmark):
    reference = {}
    for name, keys in fig4_datasets.items():
        queries = query_mix(keys, query_rng)
        table = Table(
            f"Figure 4 [{name}]: Learned Index vs B-Tree "
            f"(n={keys.size:,}, measured Python ns + modeled paper ns)",
            [
                "config",
                "size",
                "size vs ref",
                "lookup ns",
                "speedup",
                "model ns",
                "model share",
                "paper-model ns",
            ],
        )
        btree_rows = {}
        for page in PAGE_SIZES:
            tree, total_ns, model_ns, cost = _measure_btree(
                keys, queries, page
            )
            btree_rows[page] = (tree.size_bytes(), total_ns, model_ns, cost)
        ref_size, ref_ns, _, _ = btree_rows[REFERENCE_PAGE]
        reference[name] = (ref_size, ref_ns)
        for page in PAGE_SIZES:
            size, total_ns, model_ns, cost = btree_rows[page]
            table.add_row(
                f"btree page={page}",
                format_bytes(size),
                factor(size, ref_size),
                f"{total_ns:.0f}",
                factor(ref_ns, total_ns),
                f"{model_ns:.0f}",
                percentage(model_ns, total_ns),
                f"{cost.total_ns:.0f}",
            )
        for keys_per_leaf in KEYS_PER_LEAF:
            leaves = max(keys.size // keys_per_leaf, 4)
            index, total_ns, model_ns, cost = _measure_rmi(
                keys, queries, leaves
            )
            table.add_row(
                f"learned 2nd-stage={leaves}",
                format_bytes(index.size_bytes()),
                factor(index.size_bytes(), ref_size),
                f"{total_ns:.0f}",
                factor(ref_ns, total_ns),
                f"{model_ns:.0f}",
                percentage(model_ns, total_ns),
                f"{cost.total_ns:.0f}",
            )
        show_table(table)

    # Shape assertions (the paper's qualitative claims).
    for name, keys in fig4_datasets.items():
        queries = query_mix(keys, query_rng, count=1_000)
        ref_size, ref_ns = reference[name]
        leaves = max(keys.size // 2_000, 4)
        index = RecursiveModelIndex(keys, stage_sizes=(1, leaves))
        learned = measure_lookups(index.lookup, queries, repeats=2)
        assert index.size_bytes() < ref_size, name
        assert learned.mean_ns < ref_ns * 1.3, name
        console(
            f"[fig4 shape] {name}: learned {learned.mean_ns:.0f}ns vs "
            f"btree-128 {ref_ns:.0f}ns "
            f"({ref_ns / learned.mean_ns:.2f}x), size "
            f"{format_bytes(index.size_bytes())} vs {format_bytes(ref_size)} "
            f"({ref_size / index.size_bytes():.1f}x smaller)"
        )

    # pytest-benchmark record: the headline learned-index lookup.
    keys = fig4_datasets["maps"]
    index = RecursiveModelIndex(
        keys, stage_sizes=(1, max(keys.size // 2_000, 4))
    )
    queries = query_mix(keys, query_rng, count=256)
    state = {"i": 0}

    def one_lookup():
        q = queries[state["i"] & 255]
        state["i"] += 1
        return index.lookup(q)

    benchmark(one_lookup)


@pytest.mark.parametrize("page_size", [128])
def test_figure4_btree_reference_lookup(
    fig4_datasets, query_rng, benchmark, page_size
):
    """pytest-benchmark record for the reference B-Tree."""
    keys = fig4_datasets["maps"]
    tree = BTreeIndex(keys, page_size=page_size)
    queries = query_mix(keys, query_rng, count=256)
    state = {"i": 0}

    def one_lookup():
        q = queries[state["i"] & 255]
        state["i"] += 1
        return tree.lookup(q)

    benchmark(one_lookup)
