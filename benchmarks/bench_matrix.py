"""SOSD-style benchmark matrix: dataset x index family x workload.

SOSD (Kipf et al., 2019) made learned-index claims falsifiable by
racing every structure over a fixed grid of datasets and workloads
instead of each paper's favourite distribution.  This benchmark is that
grid for the repo's families (ISSUE 10): every cell builds one index
over one dataset and drives one workload through the *batch* surface,
recording build time, index size, error-window width, lookup / range
throughput, and a bit-exactness verdict against ``np.searchsorted``.

Datasets
    ``uniform``     int64 uniform over [0, 2^40)
    ``lognormal``   heavy right tail (the paper's Figure 4 regime)
    ``clustered``   tight clusters separated by huge gaps
    ``u64_dense``   adjacent uint64 keys straddling 2^63 — beyond
                    float64 resolution, exercising the exact query core
    ``osm_like``    mixture of dense blobs over a sparse background
                    (OSM cell-id shape)
    ``strings``     unique 8-byte string prefixes, big-endian-encoded
                    to uint64 the way SOSD encodes its string keys

Families
    ``rmi``          the tuned two-stage RMI (the repo baseline)
    ``pgm``          PGM-index: recursive ε-bounded segments
    ``radix_spline`` spline knots behind a radix table
    ``gapped``       ALEX-style gapped array (the writable contender)

Workloads
    ``point``   uniform random probes, present and absent
    ``zipf``    zipfian-skewed point probes (hot-key heavy)
    ``range``   short scans, span ~ zipf over [1, 1000]
    ``mixed``   interleaved write + read rounds: writable families
                absorb inserts in place, read-optimized families pay a
                merge + rebuild per round — the honest write-path
                comparison

CI smoke gates (enforced with ``--smoke``; ISSUE 10 acceptance):

* every new family's uniform point throughput >= 0.5x the RMI's;
* at least one matrix cell where a new family beats the RMI —
  recorded from measurements, never assumed;
* PGM and RadixSpline builds within 5x of the vectorized RMI build;
* every cell bit-identical to its oracle.

Run standalone (it is not a pytest file):

    PYTHONPATH=src python benchmarks/bench_matrix.py
    PYTHONPATH=src python benchmarks/bench_matrix.py --smoke --json

``--json`` appends a ``{"bench": "matrix", ...}`` record to the shared
``BENCH_throughput.json`` trajectory, making the matrix a first-class
table in the repo's accumulated perf history.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_throughput import append_trajectory  # noqa: E402

from repro.bench import Table  # noqa: E402
from repro.core import RecursiveModelIndex  # noqa: E402
from repro.families import (  # noqa: E402
    GappedArrayIndex,
    PGMIndex,
    RadixSplineIndex,
)

SEED = 0x50D5

#: ISSUE 10 gate: each new family's uniform point throughput vs RMI.
MIN_THROUGHPUT_RATIO = 0.5

#: ISSUE 10 gate: PGM / RadixSpline build vs the vectorized RMI build.
MAX_BUILD_RATIO = 5.0

NEW_FAMILIES = ("pgm", "radix_spline", "gapped")

DATASETS = (
    "uniform", "lognormal", "clustered", "u64_dense", "osm_like", "strings",
)

WORKLOADS = ("point", "zipf", "range", "mixed")


# -- datasets ------------------------------------------------------------------

def make_dataset(name: str, n: int, rng: np.random.Generator) -> np.ndarray:
    if name == "uniform":
        return np.sort(rng.integers(0, 1 << 40, n, dtype=np.int64))
    if name == "lognormal":
        return np.sort((np.exp(rng.normal(0, 2.0, n)) * 1e7).astype(np.int64))
    if name == "clustered":
        c = max(n // 60_000, 4)
        centers = rng.integers(0, 1 << 48, c)
        parts = [
            center + rng.integers(0, 40_000, n // c) for center in centers
        ]
        return np.sort(np.concatenate(parts).astype(np.int64))[:n]
    if name == "u64_dense":
        # Adjacent keys straddling 2^63: float64 collides neighbours,
        # so only the dtype-exact query core answers these correctly.
        start = np.uint64((1 << 63) - n // 2)
        keys = start + np.arange(n, dtype=np.uint64)
        return np.unique(keys)
    if name == "osm_like":
        blobs = 12
        centers = rng.integers(1 << 20, 1 << 44, blobs)
        widths = np.exp(rng.normal(14, 2, blobs))
        parts = [
            (centers[i] + rng.normal(0, widths[i], (3 * n) // (4 * blobs)))
            .astype(np.int64)
            for i in range(blobs)
        ]
        parts.append(rng.integers(0, 1 << 44, n // 4).astype(np.int64))
        keys = np.abs(np.concatenate(parts))
        return np.sort(keys)[:n]
    if name == "strings":
        # Unique 8-byte prefixes encoded big-endian into uint64 — the
        # SOSD string-key treatment; lexicographic order == integer
        # order, so every numeric family serves string keys unchanged.
        letters = np.array(list(b"abcdefghijklmnopqrstuvwxyz"), dtype=np.uint64)
        chars = letters[rng.integers(0, 26, (n, 8))]
        weights = (np.uint64(256) ** np.arange(7, -1, -1, dtype=np.uint64))
        return np.unique(chars @ weights)
    raise ValueError(name)


def point_queries(
    keys: np.ndarray, count: int, rng: np.random.Generator, skew: str
) -> np.ndarray:
    """Half present keys, half near-misses; ``zipf`` draws the present
    half hot-key heavy the way skewed OLTP reads do."""
    if skew == "zipf":
        ranks = rng.zipf(1.3, count // 2).astype(np.int64) - 1
        idx = np.minimum(ranks, keys.size - 1)
        present = keys[rng.permutation(keys.size)[idx % keys.size]]
    else:
        present = keys[rng.integers(0, keys.size, count // 2)]
    offsets = rng.integers(-3, 4, count - count // 2).astype(np.int64)
    near = keys[rng.integers(0, keys.size, count - count // 2)]
    if keys.dtype == np.uint64:
        near = (near.astype(np.int64) + offsets)
        near = np.maximum(near, 0).astype(np.uint64)
    else:
        near = near + offsets
    out = np.concatenate([present, near.astype(keys.dtype)])
    rng.shuffle(out)
    return out


# -- families ------------------------------------------------------------------

def rmi_leaves(n: int) -> int:
    return max(min(10_000, n // 100), 4)


FAMILY_BUILDERS = {
    "rmi": lambda keys: RecursiveModelIndex(
        keys, stage_sizes=(1, rmi_leaves(keys.size))
    ),
    "pgm": lambda keys: PGMIndex(keys),
    "radix_spline": lambda keys: RadixSplineIndex(keys),
    "gapped": lambda keys: GappedArrayIndex(keys),
}


def index_size_bytes(index) -> int:
    if hasattr(index, "size_bytes"):
        return int(index.size_bytes())
    return 0


def error_window(index) -> tuple[float, int]:
    mean = getattr(index, "mean_error_window", None)
    if mean is not None:
        return float(mean), int(index.max_error_window)
    stats = getattr(index, "error_bound_stats", None)
    if callable(stats):
        mean_w, max_w = stats()
        return float(mean_w), int(max_w)
    model = getattr(index, "_model", None)  # gapped array: slot model
    if model is not None:
        return error_window(model)
    return 0.0, 0


# -- measurement ---------------------------------------------------------------

@dataclass
class Cell:
    dataset: str
    family: str
    workload: str
    build_ms: float
    size_bytes: int
    mean_window: float
    max_window: int
    ops_per_sec: float
    identical: bool


def best_of(f, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        f()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_point(index, keys, queries, reps) -> tuple[float, bool]:
    expected = np.searchsorted(keys, queries, side="left")
    got = index.lookup_batch(queries)
    identical = bool(np.array_equal(got, expected))
    elapsed = best_of(lambda: index.lookup_batch(queries), reps)
    return queries.size / elapsed, identical


def measure_range(index, keys, queries, rng, reps) -> tuple[float, bool]:
    lows = queries[: max(queries.size // 4, 1)].copy()
    spans = np.minimum(rng.zipf(1.2, lows.size), 1_000).astype(np.int64)
    if keys.dtype == np.uint64:
        highs = lows + spans.astype(np.uint64)
        highs = np.maximum(highs, lows)  # wraparound guard
    else:
        highs = lows + spans
    result = index.range_query_batch(lows, highs)
    starts = np.searchsorted(keys, lows, side="left")
    ends = np.searchsorted(keys, highs, side="right")
    expected_counts = ends - starts
    got_counts = np.diff(result.offsets)
    identical = bool(np.array_equal(got_counts, expected_counts))
    elapsed = best_of(lambda: index.range_query_batch(lows, highs), reps)
    return lows.size / elapsed, identical


def measure_mixed(
    family: str, keys: np.ndarray, queries: np.ndarray,
    rng: np.random.Generator, rounds: int,
) -> tuple[float, bool]:
    """Alternating write + read rounds.  Writable families absorb the
    writes in place; read-optimized families merge and rebuild — both
    are charged against the same op count, so the cell prices the
    architectural difference rather than hiding it."""
    if keys.dtype == np.uint64:
        lo, hi = int(keys.min()), int(keys.max())
        batches = [
            np.unique(rng.integers(lo, hi, queries.size // 8,
                                   dtype=np.uint64))
            for _ in range(rounds)
        ]
    else:
        hi = int(keys.max()) + 1
        batches = [
            np.unique(rng.integers(0, hi, queries.size // 8, dtype=np.int64)
                      .astype(keys.dtype))
            for _ in range(rounds)
        ]
    q_rounds = [
        queries[rng.integers(0, queries.size, queries.size // 4)]
        for _ in range(rounds)
    ]
    builder = FAMILY_BUILDERS[family]
    writable = family == "gapped"

    index = builder(np.unique(keys) if writable else keys)
    live = np.unique(keys)
    total_ops = 0
    t0 = time.perf_counter()
    for inserts, qs in zip(batches, q_rounds):
        if writable:
            index.insert_batch(inserts)
        else:
            live = np.union1d(live, inserts)
            index = builder(live)
        index.lookup_batch(qs)
        total_ops += inserts.size + qs.size
    elapsed = time.perf_counter() - t0
    if writable:
        live = np.union1d(np.unique(keys), np.concatenate(batches))
    probe = q_rounds[-1]
    identical = bool(np.array_equal(
        index.lookup_batch(probe),
        np.searchsorted(live, probe, side="left"),
    ))
    return total_ops / elapsed, identical


def run_matrix(
    n: int, query_count: int, reps: int, mixed_rounds: int,
) -> list[Cell]:
    rng = np.random.default_rng(SEED)
    cells: list[Cell] = []
    for ds_name in DATASETS:
        keys = make_dataset(ds_name, n, rng)
        for family, builder in FAMILY_BUILDERS.items():
            build_s = best_of(lambda: builder(keys), 1)
            index = builder(keys)
            size = index_size_bytes(index)
            mean_w, max_w = error_window(index)
            # The gapped array stores a deduplicated set; its oracle is
            # the distinct-key column, not the raw multiset.
            oracle_keys = np.unique(keys) if family == "gapped" else keys
            for workload in WORKLOADS:
                wl_rng = np.random.default_rng(
                    SEED + hash((ds_name, family, workload)) % 2**16
                )
                skew = "zipf" if workload == "zipf" else "uniform"
                queries = point_queries(keys, query_count, wl_rng, skew)
                if workload in ("point", "zipf"):
                    ops, identical = measure_point(
                        index, oracle_keys, queries, reps
                    )
                elif workload == "range":
                    ops, identical = measure_range(
                        index, oracle_keys, queries, wl_rng, reps
                    )
                else:
                    ops, identical = measure_mixed(
                        family, keys, queries, wl_rng, mixed_rounds
                    )
                cells.append(Cell(
                    dataset=ds_name, family=family, workload=workload,
                    build_ms=build_s * 1e3, size_bytes=size,
                    mean_window=round(mean_w, 2), max_window=max_w,
                    ops_per_sec=round(ops, 1), identical=identical,
                ))
        print(f"  {ds_name}: done", file=sys.stderr)
    return cells


# -- gates ---------------------------------------------------------------------

def evaluate_gates(cells: list[Cell]) -> dict:
    by_key = {(c.dataset, c.family, c.workload): c for c in cells}
    rmi_uniform = by_key[("uniform", "rmi", "point")]
    ratios = {
        fam: by_key[("uniform", fam, "point")].ops_per_sec
        / rmi_uniform.ops_per_sec
        for fam in NEW_FAMILIES
    }
    rmi_build = rmi_uniform.build_ms
    build_ratios = {
        fam: by_key[("uniform", fam, "point")].build_ms / rmi_build
        for fam in ("pgm", "radix_spline")
    }
    wins = [
        {
            "dataset": c.dataset, "family": c.family,
            "workload": c.workload, "ops_per_sec": c.ops_per_sec,
            "rmi_ops_per_sec": by_key[(c.dataset, "rmi", c.workload)]
            .ops_per_sec,
        }
        for c in cells
        if c.family in NEW_FAMILIES
        and c.ops_per_sec
        > by_key[(c.dataset, "rmi", c.workload)].ops_per_sec
    ]
    all_identical = all(c.identical for c in cells)
    return {
        "min_throughput_ratio": MIN_THROUGHPUT_RATIO,
        "max_build_ratio": MAX_BUILD_RATIO,
        "uniform_point_ratios": {k: round(v, 3) for k, v in ratios.items()},
        "build_ratios": {k: round(v, 3) for k, v in build_ratios.items()},
        "cells_beating_rmi": wins,
        "all_identical": all_identical,
        "throughput_gate_ok": all(
            r >= MIN_THROUGHPUT_RATIO for r in ratios.values()
        ),
        "build_gate_ok": all(
            r <= MAX_BUILD_RATIO for r in build_ratios.values()
        ),
        "beats_rmi_somewhere": bool(wins),
    }


def render(cells: list[Cell]) -> str:
    table = Table(
        "benchmark matrix: dataset x family x workload",
        ["dataset", "family", "workload", "build", "size",
         "window", "ops/s", "exact"],
    )
    for c in cells:
        table.add_row(
            c.dataset, c.family, c.workload,
            f"{c.build_ms:,.1f}ms",
            f"{c.size_bytes / 1024:,.0f}KB",
            f"{c.mean_window:.1f}/{c.max_window}",
            f"{c.ops_per_sec:,.0f}",
            "yes" if c.identical else "NO",
        )
    return table.render()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--n", type=int, default=1_000_000,
        help="keys per dataset (default: the acceptance 1M)",
    )
    parser.add_argument(
        "--queries", type=int, default=200_000,
        help="point queries per cell (default 200k)",
    )
    parser.add_argument(
        "--reps", type=int, default=3,
        help="repetitions per measurement, best-of (default 3)",
    )
    parser.add_argument(
        "--mixed-rounds", type=int, default=6,
        help="write+read rounds in the mixed workload (default 6)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI scale: shrink keys/queries, enforce the gates",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="append a matrix record to the trajectory file",
    )
    parser.add_argument(
        "--json-path", type=Path, default=Path("BENCH_throughput.json"),
        help="trajectory file --json appends to",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.n = min(args.n, 200_000)
        args.queries = min(args.queries, 50_000)
        args.mixed_rounds = min(args.mixed_rounds, 4)
    if args.n < 1_000:
        parser.error("--n must be >= 1000")

    cells = run_matrix(args.n, args.queries, args.reps, args.mixed_rounds)
    gates = evaluate_gates(cells)
    print(render(cells))
    print()
    print("gates:")
    print(f"  uniform point ratios vs rmi: {gates['uniform_point_ratios']}"
          f" (floor {MIN_THROUGHPUT_RATIO}x)"
          f" -> {'ok' if gates['throughput_gate_ok'] else 'FAIL'}")
    print(f"  build ratios vs rmi: {gates['build_ratios']}"
          f" (ceiling {MAX_BUILD_RATIO}x)"
          f" -> {'ok' if gates['build_gate_ok'] else 'FAIL'}")
    print(f"  cells where a new family beats rmi: "
          f"{len(gates['cells_beating_rmi'])}"
          f" -> {'ok' if gates['beats_rmi_somewhere'] else 'FAIL'}")
    print(f"  all cells bit-identical: "
          f"{'ok' if gates['all_identical'] else 'FAIL'}")

    if args.json:
        record = {
            "bench": "matrix",
            "config": {
                "n": args.n, "queries": args.queries,
                "reps": args.reps, "mixed_rounds": args.mixed_rounds,
                "smoke": args.smoke,
            },
            "matrix": [asdict(c) for c in cells],
            "gates": gates,
        }
        payload = append_trajectory(args.json_path, record)
        print(
            f"wrote {args.json_path} "
            f"({len(payload['trajectory'])} trajectory entries)"
        )

    ok = (
        gates["all_identical"]
        and gates["throughput_gate_ok"]
        and gates["build_gate_ok"]
        and gates["beats_rmi_somewhere"]
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
