"""E4 — Figure 8: Reduction of hash conflicts.

Paper table (200M keys, table slots = #keys, 2-stage RMI with 100k
leaf models, no hidden layers, vs a MurmurHash3-like function):

    Map Data    35.3% -> 07.9%   (77.5% reduction)
    Web Data    35.3% -> 24.7%   (30.0% reduction)
    Log Normal  35.4% -> 25.9%   (26.7% reduction)

Shape to reproduce: random hashing sits at the birthday-paradox bound
(~1/e of keys conflict) on every dataset; the learned hash cuts
conflicts most on Maps and moderately on Weblogs/Lognormal.
"""

from __future__ import annotations

import numpy as np

from repro.bench import Table, measure_lookups
from repro.core import LearnedHashFunction, conflict_stats
from repro.hashmap import RandomHashFunction

from conftest import console, show_table

PAPER_ROWS = {
    "maps": (0.353, 0.079, 0.775),
    "weblogs": (0.353, 0.247, 0.300),
    "lognormal": (0.354, 0.259, 0.267),
}


def test_figure8_conflict_reduction(fig4_datasets, benchmark):
    table = Table(
        "Figure 8: Reduction of Conflicts (slots = #keys; "
        "learned = 2-stage RMI, linear models)",
        [
            "dataset",
            "% conflicts random",
            "% conflicts model",
            "reduction",
            "paper reduction",
        ],
    )
    measured = {}
    hash_fns = {}
    for name, keys in fig4_datasets.items():
        n = keys.size
        random_fn = RandomHashFunction(n, seed=7)
        learned_fn = LearnedHashFunction(
            keys, n, stage_sizes=(1, max(n // 10, 8))
        )
        hash_fns[name] = learned_fn
        random_stats = conflict_stats(random_fn, keys, n)
        learned_stats = conflict_stats(learned_fn, keys, n)
        reduction = 1 - learned_stats.conflict_rate / random_stats.conflict_rate
        measured[name] = (
            random_stats.conflict_rate,
            learned_stats.conflict_rate,
            reduction,
        )
        table.add_row(
            name,
            f"{random_stats.conflict_rate:.1%}",
            f"{learned_stats.conflict_rate:.1%}",
            f"{reduction:.1%}",
            f"{PAPER_ROWS[name][2]:.1%}",
        )
    show_table(table)

    # Shape assertions against the paper's table.
    for name, (rand_rate, model_rate, reduction) in measured.items():
        assert rand_rate == np.exp(-1) * 1.0 or abs(rand_rate - 1 / np.e) < 0.02
        assert model_rate < rand_rate, name
    assert measured["maps"][2] > 0.55
    assert 0.15 < measured["weblogs"][2] < 0.5
    assert 0.15 < measured["lognormal"][2] < 0.5
    assert measured["maps"][2] > measured["weblogs"][2]
    console(
        "[fig8 shape] reductions: "
        + ", ".join(f"{k}={v[2]:.1%}" for k, v in measured.items())
    )

    # Benchmark the learned hash-function evaluation itself (the paper
    # notes it costs the model-execution time from Figure 4, ~25-40ns).
    keys = fig4_datasets["maps"]
    learned_fn = hash_fns["maps"]
    probes = [float(k) for k in keys[:: max(keys.size // 512, 1)]]
    state = {"i": 0}

    def one_hash():
        q = probes[state["i"] % len(probes)]
        state["i"] += 1
        return learned_fn(q)

    benchmark(one_hash)
