"""E13 — Appendix D: inserts (D.1) and paging (D.2), quantified.

The paper sketches both directions without numbers; this bench measures
the claims the sketches make:

* D.1 — "most if not all inserts will be appends ... updating the
  index structure becomes an O(1) operation": in-distribution appends
  must merge without retraining and cost far less per key than
  out-of-distribution inserts;
* D.2 — "use the predicted position with the min- and max-error to
  reduce the number of bytes which have to be read from a large page":
  the windowed partial read must cut transferred bytes by a large
  factor, and the common lookup must touch a single page.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import Table, format_bytes
from repro.core import PagedLearnedIndex, WritableLearnedIndex

from conftest import console, scaled, show_table


def test_appendixD1_insert_workloads(benchmark):
    n = scaled(400_000)
    base = np.arange(0, 4 * n, 4, dtype=np.int64)  # timestamp-like
    index = WritableLearnedIndex(
        base, stage_sizes=(1, max(n // 1_000, 8)), merge_threshold=5_000
    )

    def run(batches):
        start = time.perf_counter()
        retrains = index.retrains
        fast = index.fast_appends
        total = 0
        for batch in batches:
            index.insert_batch(batch)
            total += len(batch)
        index.merge()
        return (
            (time.perf_counter() - start) / total * 1e6,
            index.retrains - retrains,
            index.fast_appends - fast,
        )

    top = int(base[-1])
    append_batches = [
        np.arange(top + 4 + i * 20_000, top + 4 + (i + 1) * 20_000, 4)
        for i in range(4)
    ]
    append_us, append_retrains, append_fast = run(append_batches)

    rng = np.random.default_rng(5)
    random_batches = [
        (rng.integers(1, 4 * n, size=6_000) | 1) for _ in range(3)
    ]
    random_us, random_retrains, _ = run(random_batches)

    table = Table(
        f"Appendix D.1: insert workloads (base n={base.size:,}, "
        "delta merge threshold 5k)",
        ["workload", "us per insert", "retrains", "fast appends"],
    )
    table.add_row("appends (in-distribution)", f"{append_us:.1f}",
                  str(append_retrains), str(append_fast))
    table.add_row("random inserts", f"{random_us:.1f}",
                  str(random_retrains), "0")
    show_table(table)

    # The paper's claim: appends are the cheap case.
    assert append_retrains == 0
    assert append_fast >= 1
    assert append_us < random_us
    # correctness after both workloads
    assert index.contains(top + 8)
    assert index.contains(int(random_batches[0][0]))
    assert not index.contains(2)
    console(
        f"[appD1 shape] appends {append_us:.1f}us/insert with 0 retrains vs "
        f"random {random_us:.1f}us/insert with {random_retrains} retrains"
    )

    state = {"next": int(top + 10**9)}

    def one_append():
        state["next"] += 4
        index.insert(state["next"])

    benchmark(one_append)


def test_appendixD2_paging_io(fig4_datasets, query_rng, benchmark):
    keys = fig4_datasets["lognormal"]
    page_size = 1_024
    queries = [float(q) for q in query_rng.choice(keys, 800)]

    full = PagedLearnedIndex(
        keys,
        page_size=page_size,
        stage_sizes=(1, max(keys.size // 250, 16)),
        partial_reads=False,
    )
    partial = PagedLearnedIndex(
        keys,
        page_size=page_size,
        stage_sizes=(1, max(keys.size // 250, 16)),
        partial_reads=True,
    )
    for q in queries:
        full.lookup(q)
        partial.lookup(q)
    full_reads, full_bytes = full.io_stats()
    partial_reads, partial_bytes = partial.io_stats()

    table = Table(
        f"Appendix D.2: paged lookups (lognormal n={keys.size:,}, "
        f"{page_size}-key pages, shuffled physical layout)",
        ["mode", "page reads/lookup", "bytes/lookup", "index size"],
    )
    table.add_row(
        "full-page reads",
        f"{full_reads / len(queries):.2f}",
        f"{full_bytes / len(queries):.0f}",
        format_bytes(full.size_bytes()),
    )
    table.add_row(
        "windowed partial reads",
        f"{partial_reads / len(queries):.2f}",
        f"{partial_bytes / len(queries):.0f}",
        format_bytes(partial.size_bytes()),
    )
    show_table(table)

    # Appendix D.2's claims.
    assert full_reads / len(queries) < 1.7     # ~one page per lookup
    assert partial_bytes < full_bytes / 4      # window bounds the bytes
    # correctness through the page store
    for q in queries[:150]:
        page, slot = full.lookup(q)
        assert page * page_size + slot == int(np.searchsorted(keys, q))
    console(
        f"[appD2 shape] {full_reads / len(queries):.2f} reads/lookup; "
        f"partial reads cut bytes {full_bytes / max(partial_bytes, 1):.1f}x"
    )

    state = {"i": 0}

    def one_lookup():
        q = queries[state["i"] % len(queries)]
        state["i"] += 1
        return partial.lookup(q)

    benchmark(one_lookup)
