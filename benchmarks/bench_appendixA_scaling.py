"""E10 — Appendix A: error scaling of a constant-size CDF model.

Paper: the expected squared error between the model (the true CDF) and
the empirical CDF is F(x)(1-F(x))/N, so the expected *position* error
grows as O(sqrt(N)) — sub-linear, versus the O(N) error growth of a
constant-size B-Tree.

This benchmark measures the mean absolute position error of the true
CDF at increasing N, fits the log-log exponent (expected ~0.5), and
contrasts it against the linear growth of a fixed-size B-Tree's page
span.
"""

from __future__ import annotations

import numpy as np

from repro.bench import Table
from repro.theory import (
    ScalingMeasurement,
    dkw_bound,
    empirical_position_error,
    expected_position_error,
    fit_error_exponent,
)

from conftest import console, show_table

SIZES = (2_000, 8_000, 32_000, 128_000, 512_000)
SEEDS_PER_SIZE = 6

#: A constant-size B-Tree (fixed separator budget) has page span — and
#: hence worst-case search error — growing linearly with N.
FIXED_BTREE_SEPARATORS = 1_000


def _lognormal_sampler(n, seed):
    return np.random.default_rng(seed).lognormal(0.0, 2.0, size=n)


def _lognormal_cdf(x):
    from math import erf

    safe = np.maximum(x, 1e-300)
    z = np.log(safe) / 2.0
    return np.array([0.5 * (1.0 + erf(v / np.sqrt(2.0))) for v in z])


def test_appendixA_error_scaling(benchmark):
    table = Table(
        "Appendix A: position error of a constant-size model vs N "
        f"(lognormal(0,2), {SEEDS_PER_SIZE} seeds per point)",
        [
            "N",
            "measured mean |err|",
            "analytic RMS @ F=0.5",
            "DKW bound (x N)",
            "fixed-size B-Tree page span",
        ],
    )
    measurements = []
    for n in SIZES:
        errors = [
            empirical_position_error(
                _lognormal_sampler, _lognormal_cdf, n, seed=seed
            ).mean_absolute_error
            for seed in range(SEEDS_PER_SIZE)
        ]
        mean_err = float(np.mean(errors))
        measurements.append(ScalingMeasurement(n, mean_err, 0.0))
        table.add_row(
            f"{n:,}",
            f"{mean_err:.1f}",
            f"{expected_position_error(np.array([0.5]), n)[0]:.1f}",
            f"{dkw_bound(n) * n:.0f}",
            f"{max(n // FIXED_BTREE_SEPARATORS, 1)}",
        )
    show_table(table)

    exponent = fit_error_exponent(measurements)
    console(
        f"[appA shape] fitted error exponent = {exponent:.3f} "
        "(theory: 0.5 for the model, 1.0 for a constant-size B-Tree)"
    )
    assert 0.35 < exponent < 0.65
    # DKW upper bound holds for every measured point (it bounds the sup,
    # hence also the mean).
    for m in measurements:
        assert m.mean_absolute_error < dkw_bound(m.n, alpha=0.001) * m.n

    def one_measurement():
        return empirical_position_error(
            _lognormal_sampler, _lognormal_cdf, 2_000, seed=0
        )

    benchmark(one_measurement)
