"""E7 — Table 1 / Appendix C: Hash-map alternative baselines.

Paper rows (lognormal data, 20-byte records unless noted):

    AVX Cuckoo, 32-bit value        31ns   99%
    AVX Cuckoo, 20-byte record      43ns   99%
    Comm. Cuckoo, 20-byte record    90ns   95%
    In-place chained w/ learned     35ns  100%

Shapes to reproduce: bigger payloads slow the AVX cuckoo down; the
corner-case-complete ("commercial") cuckoo is ~2x slower than the tuned
one; the in-place chained map with a learned hash is competitive at
100% utilization.
"""

from __future__ import annotations

import numpy as np

from repro.bench import Table, measure_lookups
from repro.core import LearnedHashFunction
from repro.data import lognormal_keys
from repro.hashmap import (
    BucketizedCuckooHashMap,
    GenericCuckooHashMap,
    InPlaceChainedHashMap,
)

from conftest import console, scaled, show_table


def test_table1_hashmap_baselines(query_rng, benchmark):
    keys = lognormal_keys(scaled(150_000), seed=42)
    values = np.arange(keys.size)
    queries = [int(q) for q in query_rng.choice(keys, 1_500)]

    avx_small = BucketizedCuckooHashMap(int(keys.size / 0.99), value_bytes=4)
    avx_record = BucketizedCuckooHashMap(int(keys.size / 0.99), value_bytes=12)
    for k, v in zip(keys, values):
        assert avx_small.insert(int(k), int(v))
        assert avx_record.insert(int(k), int(v))
    commercial = GenericCuckooHashMap(keys.size, value_bytes=12)
    for k, v in zip(keys, values):
        assert commercial.insert(int(k), int(v))
    learned_fn = LearnedHashFunction(
        keys, keys.size, stage_sizes=(1, max(keys.size // 10, 8))
    )
    inplace = InPlaceChainedHashMap(keys, values, learned_fn)

    rows = [
        ("AVX cuckoo, 32-bit value", avx_small),
        ("AVX cuckoo, 20-byte record", avx_record),
        ("Commercial cuckoo, 20-byte record", commercial),
        ("In-place chained w/ learned hash", inplace),
    ]
    table = Table(
        f"Table 1 / Appendix C: Hash-map baselines (lognormal, "
        f"n={keys.size:,})",
        ["architecture", "lookup ns", "utilization"],
    )
    measured = {}
    for name, hash_map in rows:
        result = measure_lookups(hash_map.get, queries, repeats=2)
        measured[name] = (result.mean_ns, hash_map.utilization)
        table.add_row(
            name, f"{result.mean_ns:.0f}", f"{hash_map.utilization:.0%}"
        )
    show_table(table)

    # Shape assertions.
    avx_ns = measured["AVX cuckoo, 20-byte record"][0]
    commercial_ns = measured["Commercial cuckoo, 20-byte record"][0]
    inplace_ns, inplace_util = measured["In-place chained w/ learned hash"]
    assert measured["AVX cuckoo, 32-bit value"][1] > 0.95
    assert commercial_ns > avx_ns, "commercial should pay for generality"
    assert inplace_util == 1.0
    assert inplace_ns < commercial_ns
    # correctness spot check across all maps
    for name, hash_map in rows:
        for q in queries[:200]:
            expected = int(np.searchsorted(keys, q))
            assert hash_map.get(q) == expected, name
    console(
        f"[table1 shape] avx={avx_ns:.0f}ns commercial={commercial_ns:.0f}ns "
        f"({commercial_ns / avx_ns:.2f}x) inplace-learned={inplace_ns:.0f}ns "
        f"@ {inplace_util:.0%}"
    )

    state = {"i": 0}

    def one_get():
        q = queries[state["i"] % len(queries)]
        state["i"] += 1
        return inplace.get(q)

    benchmark(one_get)
