"""E3 — Figure 6: String document-id dataset.

Paper rows: B-Trees (pages 32..256), learned indexes with 1-2 hidden
layers, hybrids at error thresholds 128 and 64, and "Learned QS" (the
1-hidden-layer model with biased quaternary search).

Shapes to reproduce: string speedups are much smaller than integer ones
because model execution is a large share of total time; hybrid B-Tree
fallback helps the NN models; quaternary search beats the same model
with plain biased-binary search.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.bench import (
    CostModel,
    Table,
    factor,
    format_bytes,
    measure_lookups,
    percentage,
)
from repro.btree import GenericBTreeIndex
from repro.core import StringRMI
from repro.data import string_dataset

from conftest import console, scaled, show_table

PAGE_SIZES = (32, 64, 128, 256)
REFERENCE_PAGE = 128

#: String comparisons cost several int-compares (the paper: "searching
#: over strings is much more expensive"); page search costs scale the
#: same way.
STRING_COST = CostModel(
    cycles_per_comparison=16.0, cycles_per_page_search=200.0
)


def _string_queries(keys, rng, count=1_500):
    picks = rng.integers(0, len(keys), size=count)
    return [keys[i] for i in picks]


def test_figure6_string_dataset(query_rng, benchmark):
    keys = string_dataset(scaled(60_000), seed=42)
    queries = _string_queries(keys, query_rng)
    leaves = max(len(keys) // 60, 16)

    table = Table(
        f"Figure 6: String data, Learned Index vs B-Tree (n={len(keys):,})",
        [
            "config",
            "size",
            "size vs ref",
            "lookup ns",
            "speedup",
            "model ns",
            "model share",
            "paper-scale ns",
        ],
    )

    rows = {}

    def add(name, index, model_probe):
        total = measure_lookups(index.lookup, queries, repeats=2)
        model = measure_lookups(model_probe, queries, repeats=2)
        if isinstance(index, GenericBTreeIndex):
            modeled = STRING_COST.btree_lookup(
                index.height, index.page_size, index.size_bytes()
            )
        else:
            index.stats.reset()
            for q in queries[:400]:
                index.lookup(q)
            window = index.stats.window_total / max(index.stats.lookups, 1)
            modeled = STRING_COST.learned_lookup(
                index.model_op_count(), max(window, 1.0), index.size_bytes()
            )
        rows[name] = (
            index.size_bytes(),
            total.mean_ns,
            model.mean_ns,
            modeled.total_ns,
        )

    for page in PAGE_SIZES:
        tree = GenericBTreeIndex(keys, page_size=page)
        add(f"btree page={page}", tree, tree.find_page)

    epochs = 80
    one_layer = StringRMI(
        keys, num_leaves=leaves, hidden=(16,), epochs=epochs, seed=0
    )
    add("learned 1 hidden layer", one_layer, one_layer._route)
    two_layer = StringRMI(
        keys, num_leaves=leaves, hidden=(16, 16), epochs=epochs, seed=0
    )
    add("learned 2 hidden layers", two_layer, two_layer._route)

    for threshold in (128, 64):
        hybrid = StringRMI(
            keys,
            num_leaves=leaves,
            hidden=(16,),
            epochs=epochs,
            seed=0,
            hybrid_threshold=threshold,
        )
        add(
            f"hybrid t={threshold}, 1 hidden layer",
            hybrid,
            hybrid._route,
        )

    learned_qs = StringRMI(
        keys,
        num_leaves=leaves,
        hidden=(16,),
        epochs=epochs,
        seed=0,
        search_strategy="biased_quaternary",
    )
    add("Learned QS (quaternary)", learned_qs, learned_qs._route)

    ref_size, ref_ns, _, ref_modeled = rows[f"btree page={REFERENCE_PAGE}"]
    for name, (size, total_ns, model_ns, modeled_ns) in rows.items():
        table.add_row(
            name,
            format_bytes(size),
            factor(size, ref_size),
            f"{total_ns:.0f}",
            factor(ref_ns, total_ns),
            f"{model_ns:.0f}",
            percentage(model_ns, total_ns),
            f"{modeled_ns:.0f}",
        )
    show_table(table)

    # Shape assertions.  The paper's absolute string numbers (model
    # ~500ns inside a ~1300ns lookup) need compiled inference; in the
    # interpreter the numpy per-op overhead inflates model cost, so the
    # measured column shows the *qualitative* shape (model dominates,
    # sizes shrink, QS helps) and the cost-model column carries the
    # paper-scale comparison.
    one_size, one_ns, one_model_ns, one_modeled = rows["learned 1 hidden layer"]
    qs_size, qs_ns, _, _ = rows["Learned QS (quaternary)"]
    hybrid_size, hybrid_ns, _, _ = rows["hybrid t=64, 1 hidden layer"]
    # model execution is a big share of string lookups (paper: 31-52%)
    assert one_model_ns / one_ns > 0.2
    # learned index is drastically smaller than a fine-grained B-Tree
    assert one_size < rows["btree page=32"][0]
    # quaternary search does not lose to biased binary with same model
    assert qs_ns <= one_ns * 1.15
    # paper-scale: the learned index is in the same band as the B-Tree
    # (Figure 6 speedups 0.78x-1.12x), not the integer-style 2-3x win
    assert 0.4 * ref_modeled < one_modeled < 1.6 * ref_modeled
    # correctness spot-check across variants
    for index in (one_layer, learned_qs):
        for probe in queries[:100]:
            assert index.lookup(probe) == bisect.bisect_left(keys, probe)
    console(
        f"[fig6 shape] model share={one_model_ns / one_ns:.0%}, "
        f"QS vs biased-binary {one_ns / qs_ns:.2f}x, hybrid(t=64) "
        f"{hybrid_ns:.0f}ns @ {format_bytes(hybrid_size)}, "
        f"paper-scale learned/btree = {one_modeled / ref_modeled:.2f}x"
    )

    state = {"i": 0}

    def one_lookup():
        q = queries[state["i"] % len(queries)]
        state["i"] += 1
        return learned_qs.lookup(q)

    benchmark(one_lookup)
