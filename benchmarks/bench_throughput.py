"""Throughput benchmark: batch lookups, range scans, builds, merges.

SOSD (Kipf et al., 2019) and "Benchmarking Learned Indexes" (Marcus et
al., 2020) report *batched* lookup throughput as the primary metric,
because per-query latency in an interpreted harness is dominated by
interpreter overhead rather than by the index.  This benchmark measures
five things (ISSUE 1 + ISSUE 2 + ISSUE 3 + ISSUE 4):

* **point throughput** — scalar per-query loop vs the vectorized
  ``lookup_batch`` engine, per index structure, with a bit-identical
  check on every row;
* **range throughput** — scalar ``range_query`` loop vs
  ``range_query_batch`` on mixed point/scan workloads under uniform,
  zipfian and hotspot skew (the regimes where learned-vs-tree rankings
  actually change);
* **sorted fast path** — ``lookup_batch(sort=True)`` (sort + dedup +
  engine over the sorted unique queries + inverse-map scatter) vs
  ``sort=False`` vs the auto heuristic, across batch sizes *and*
  workload skews, reporting the measured crossover that justifies
  :data:`repro.core.SORTED_BATCH_THRESHOLD`;
* **construction & retrain** — ``build_mode="vectorized"`` (segmented
  least-squares build) vs ``build_mode="scalar"`` (per-leaf fit loop)
  per dataset and leaf count, plus the writable index's write path:
  bulk ``insert_batch`` vs the per-key insert loop and the merge
  (rebuild) latency under both build modes;
* **LSM write/read path** — sustained random ``insert_batch``
  throughput on the tiered ``LearnedLSMStore`` vs the merge-bound
  writable index at N resident keys (reads pinned identical), bloom
  guard effectiveness on a 10-run store (negative-run probes
  eliminated), and a YCSB-style mixed read/write workload under
  uniform and zipfian skew;
* **durability** (ISSUE 6) — the WAL tax and the recovery path:
  sustained insert throughput with fsync-per-batch WAL on vs the
  memory-only store (gate at 1M keys: within 2x), cold-reopen latency
  at N keys with the O(metadata) laziness invariant checked, and
  WAL-replay recovery time for an unsealed tail;
* **insert tail latency** (ISSUE 7) — per-``insert_batch`` latency
  histogram (p50/p99/p99.9/max) plus write-stall counters on a durable
  (fsync-per-batch WAL) store, synchronous vs background compaction,
  with gates: zero merge-attributable stalls in background mode (and
  at least one in sync mode, proving the baseline pays them),
  background p99 within 10x p50 or the single-core scheduling floor,
  background worst-case batch no worse than the sync worst case (the
  inline merge), and background ingest throughput within tolerance of
  the synchronous policy;
* **unified query core** (ISSUE 5) — exact 64-bit batch lookups on the
  ``u64_dense`` dataset (adjacent keys straddling 2^53 and crossing
  2^63), the count of answers the old float64-upcast baseline would
  get wrong on the same workload, and a regression gate: the
  1M-uniform batch path must stay within 10% of the previous
  trajectory entry.

Run standalone (it is not a pytest file):

    PYTHONPATH=src python benchmarks/bench_throughput.py
    PYTHONPATH=src python benchmarks/bench_throughput.py --json
    PYTHONPATH=src python benchmarks/bench_throughput.py --smoke --json

``--json`` appends a record to the ``BENCH_throughput.json``
*trajectory* (one entry per run, oldest first) so CI accumulates a perf
history across PRs; ``--smoke`` shrinks the workload for CI runners.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import Table  # noqa: E402
from repro.btree import (  # noqa: E402
    BTreeIndex,
    FixedSizeBTree,
    HierarchicalLookupTable,
)
from repro.core import (  # noqa: E402
    SORTED_BATCH_THRESHOLD,
    RecursiveModelIndex,
    WritableLearnedIndex,
)
from repro.data import (  # noqa: E402
    hotspot_queries,
    lognormal_keys,
    scan_workload,
    u64_dense,
    uniform_keys,
    zipfian_queries,
)
from repro.lsm import LearnedLSMStore, SizeTieredCompaction  # noqa: E402
from repro import obs  # noqa: E402
from repro.obs import summarize_latencies  # noqa: E402

#: The acceptance configuration from ISSUE 1: 1M uniform keys, 100k
#: queries, RMI batch >= 20x the scalar loop.
ACCEPTANCE_MIN_SPEEDUP = 20.0

#: The acceptance configuration from ISSUE 3: at 1M uniform keys /
#: (1, 10000) stages, the vectorized build >= 10x the scalar build,
#: with bit-identical lookups.
BUILD_MIN_SPEEDUP = 10.0
BUILD_ACCEPTANCE_LEAVES = 10_000

#: The acceptance configuration from ISSUE 4: at 1M resident keys,
#: sustained random insert_batch throughput on the LSM store >= 5x the
#: (merge-bound) writable index, with reads pinned identical; bloom
#: guards must eliminate >= 80% of negative-run probes on a 10-run
#: store.
LSM_MIN_INSERT_SPEEDUP = 5.0
LSM_MIN_BLOOM_ELIMINATION = 0.8

#: Ranges whose scalar loop is timed (and equality-checked) per row;
#: the batch path always runs the full workload.
SCALAR_RANGE_SAMPLE = 4_000


@dataclass(frozen=True)
class ThroughputResult:
    name: str
    dataset: str
    n: int
    num_queries: int
    scalar_ops_per_sec: float
    batch_ops_per_sec: float
    speedup: float
    identical: bool


def _time_once(fn) -> tuple[float, np.ndarray]:
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def measure(index, queries: np.ndarray, *, name: str, dataset: str,
            batch_repeats: int = 5) -> ThroughputResult:
    """Scalar loop once (it is the slow path), batch best-of-N.

    The batch path gets a discarded warmup pass plus best-of-5: on a
    single-vCPU reference box the best-of-3 estimate wobbles ~+-7%
    run-to-run, which is too loose for the 10% cross-trajectory
    regression gate the 1M-uniform row feeds.
    """
    scalar_fn = getattr(index, "lookup_batch_scalar", None)
    if scalar_fn is None:
        def scalar_fn():
            return np.array([index.lookup(float(q)) for q in queries])
    else:
        _bound = scalar_fn

        def scalar_fn():
            return _bound(queries)

    scalar_s, scalar_out = _time_once(scalar_fn)
    index.lookup_batch(queries)
    batch_s = float("inf")
    batch_out = None
    for _ in range(batch_repeats):
        elapsed, batch_out = _time_once(lambda: index.lookup_batch(queries))
        batch_s = min(batch_s, elapsed)
    identical = bool(np.array_equal(scalar_out, batch_out))
    q = queries.size
    return ThroughputResult(
        name=name,
        dataset=dataset,
        n=int(index.keys.size),
        num_queries=int(q),
        scalar_ops_per_sec=q / scalar_s,
        batch_ops_per_sec=q / batch_s,
        speedup=scalar_s / batch_s,
        identical=identical,
    )


def run(
    n: int, num_queries: int, seed: int = 42
) -> tuple[list[ThroughputResult], dict[str, float]]:
    rng = np.random.default_rng(seed)
    datasets = {
        "uniform": uniform_keys(n, seed=seed),
        "lognormal": lognormal_keys(n, seed=seed + 1),
    }
    results: list[ThroughputResult] = []
    searchsorted_ops: dict[str, float] = {}
    for ds_name, keys in datasets.items():
        queries = rng.choice(keys, size=num_queries).astype(np.float64)
        # Mix in 10% absent keys so the fix-up path is exercised too.
        absent = rng.integers(
            int(keys.min()) - 100, int(keys.max()) + 100, num_queries // 10
        ).astype(np.float64)
        queries[: absent.size] = absent

        for leaves in (100, 1_000, 10_000, 20_000):
            index = RecursiveModelIndex(keys, stage_sizes=(1, leaves))
            results.append(
                measure(
                    index, queries,
                    name=f"rmi leaves={leaves}", dataset=ds_name,
                )
            )
        results.append(
            measure(
                BTreeIndex(keys, page_size=128), queries,
                name="btree page=128", dataset=ds_name,
            )
        )
        results.append(
            measure(
                FixedSizeBTree(keys, size_budget_bytes=1_500_000), queries,
                name="fixed btree 1.5MB", dataset=ds_name,
            )
        )
        results.append(
            measure(
                HierarchicalLookupTable(keys), queries,
                name="lookup table", dataset=ds_name,
            )
        )
        # Context: model-free C binary search over the whole array.
        # The RMI engine beating this is the learned-window advantage
        # surviving vectorization.
        ss_s = min(
            _time_once(lambda: np.searchsorted(keys, queries))[0]
            for _ in range(3)
        )
        searchsorted_ops[ds_name] = queries.size / ss_s
    return results, searchsorted_ops


# -- range scans under skew (ISSUE 2) -----------------------------------------


@dataclass(frozen=True)
class RangeThroughputResult:
    name: str
    dataset: str
    skew: str
    n: int
    num_ranges: int
    keys_returned: int
    scalar_ranges_per_sec: float
    batch_ranges_per_sec: float
    speedup: float
    identical: bool


def measure_ranges(
    index, lows: np.ndarray, highs: np.ndarray, *,
    name: str, dataset: str, skew: str, batch_repeats: int = 3,
) -> RangeThroughputResult:
    """Scalar loop on a sample; batch best-of-N on the full workload."""
    sample = min(lows.size, SCALAR_RANGE_SAMPLE)

    def scalar_fn():
        return [
            index.range_query(float(lo), float(hi))
            for lo, hi in zip(lows[:sample], highs[:sample])
        ]

    scalar_s, scalar_out = _time_once(scalar_fn)
    batch_s = float("inf")
    batch_out = None
    for _ in range(batch_repeats):
        elapsed, batch_out = _time_once(
            lambda: index.range_query_batch(lows, highs)
        )
        batch_s = min(batch_s, elapsed)
    identical = all(
        np.array_equal(batch_out[i], scalar_out[i]) for i in range(sample)
    )
    return RangeThroughputResult(
        name=name,
        dataset=dataset,
        skew=skew,
        n=int(index.keys.size),
        num_ranges=int(lows.size),
        keys_returned=batch_out.total,
        scalar_ranges_per_sec=sample / scalar_s,
        batch_ranges_per_sec=lows.size / batch_s,
        speedup=(scalar_s / sample) / (batch_s / lows.size),
        identical=identical,
    )


def run_ranges(
    n: int, num_ranges: int, seed: int = 42
) -> list[RangeThroughputResult]:
    datasets = {
        "uniform": uniform_keys(n, seed=seed),
        "lognormal": lognormal_keys(n, seed=seed + 1),
    }
    results: list[RangeThroughputResult] = []
    for ds_name, keys in datasets.items():
        indexes = {
            "rmi leaves=10000": RecursiveModelIndex(
                keys, stage_sizes=(1, 10_000)
            ),
            "btree page=128": BTreeIndex(keys, page_size=128),
        }
        for skew in ("uniform", "zipfian", "hotspot"):
            lows, highs = scan_workload(
                keys, num_ranges,
                scan_fraction=0.5, mean_span=100, skew=skew, seed=seed,
            )
            for idx_name, index in indexes.items():
                results.append(
                    measure_ranges(
                        index, lows, highs,
                        name=idx_name, dataset=ds_name, skew=skew,
                    )
                )
    return results


def render_ranges(results: list[RangeThroughputResult]) -> str:
    table = Table(
        "Range-scan throughput: scalar range_query vs range_query_batch",
        [
            "structure",
            "dataset",
            "skew",
            "ranges",
            "keys out",
            "scalar ranges/s",
            "batch ranges/s",
            "speedup",
            "identical",
        ],
    )
    for r in results:
        table.add_row(
            r.name,
            r.dataset,
            r.skew,
            f"{r.num_ranges:,}",
            f"{r.keys_returned:,}",
            f"{r.scalar_ranges_per_sec:,.0f}",
            f"{r.batch_ranges_per_sec:,.0f}",
            f"{r.speedup:.1f}x",
            "yes" if r.identical else "NO",
        )
    return table.render()


# -- sorted-batch fast path (ISSUE 2) -----------------------------------------


@dataclass(frozen=True)
class SortedPathResult:
    workload: str
    batch_size: int
    duplicate_fraction: float
    unsorted_ops_per_sec: float
    sorted_ops_per_sec: float
    auto_ops_per_sec: float
    sorted_speedup: float
    identical: bool


def run_sorted_path(
    n: int, max_queries: int, seed: int = 42
) -> tuple[list[SortedPathResult], dict[str, int | None]]:
    """Measure forced ``sort=True`` / ``sort=False`` / the heuristic.

    Runs per workload skew, because the sorted path's win comes from
    sort-then-dedup: a uniform batch has almost no duplicates (the
    argsort is pure overhead) while zipfian/hotspot batches collapse to
    a fraction of their size.  Returns the rows plus, per workload, the
    measured crossover: the smallest probed batch size where the forced
    sorted path wins (None if it never does).
    """
    rng = np.random.default_rng(seed)
    keys = uniform_keys(n, seed=seed)
    index = RecursiveModelIndex(keys, stage_sizes=(1, 10_000))
    sizes = [
        s
        for s in (4_096, 16_384, 65_536, 262_144)
        if s <= max_queries
    ] or [max_queries]
    results: list[SortedPathResult] = []
    crossover: dict[str, int | None] = {}
    for workload in ("uniform", "zipfian", "hotspot"):
        for size in sizes:
            if workload == "uniform":
                queries = rng.choice(keys, size=size).astype(np.float64)
            elif workload == "zipfian":
                queries = zipfian_queries(keys, size, seed=seed + 2)
            else:
                queries = hotspot_queries(keys, size, seed=seed + 2)
            unsorted_s = min(
                _time_once(lambda: index.lookup_batch(queries, sort=False))[0]
                for _ in range(3)
            )
            sorted_s = min(
                _time_once(lambda: index.lookup_batch(queries, sort=True))[0]
                for _ in range(3)
            )
            auto_s = min(
                _time_once(lambda: index.lookup_batch(queries))[0]
                for _ in range(3)
            )
            identical = bool(
                np.array_equal(
                    index.lookup_batch(queries, sort=True),
                    index.lookup_batch(queries, sort=False),
                )
            )
            results.append(
                SortedPathResult(
                    workload=workload,
                    batch_size=size,
                    duplicate_fraction=1.0
                    - np.unique(queries).size / size,
                    unsorted_ops_per_sec=size / unsorted_s,
                    sorted_ops_per_sec=size / sorted_s,
                    auto_ops_per_sec=size / auto_s,
                    sorted_speedup=unsorted_s / sorted_s,
                    identical=identical,
                )
            )
        crossover[workload] = next(
            (
                r.batch_size
                for r in results
                if r.workload == workload and r.sorted_speedup > 1.0
            ),
            None,
        )
    return results, crossover


def render_sorted(
    results: list[SortedPathResult], crossover: dict[str, int | None]
) -> str:
    table = Table(
        "Sorted-batch fast path: sort+dedup engine vs unsorted vs heuristic",
        [
            "workload",
            "batch size",
            "dup frac",
            "unsorted ops/s",
            "sorted ops/s",
            "auto ops/s",
            "sorted speedup",
            "identical",
        ],
    )
    for r in results:
        table.add_row(
            r.workload,
            f"{r.batch_size:,}",
            f"{r.duplicate_fraction:.0%}",
            f"{r.unsorted_ops_per_sec:,.0f}",
            f"{r.sorted_ops_per_sec:,.0f}",
            f"{r.auto_ops_per_sec:,.0f}",
            f"{r.sorted_speedup:.2f}x",
            "yes" if r.identical else "NO",
        )
    out = table.render()
    pretty = ", ".join(
        f"{wl}: {c:,}" if c is not None else f"{wl}: none"
        for wl, c in crossover.items()
    )
    out += f"\nmeasured crossover per workload: {pretty}"
    out += (
        f"\nheuristic: batch >= {SORTED_BATCH_THRESHOLD:,} and estimated "
        "duplicate fraction >= 50% (birthday estimate from a 4k sample)"
    )
    return out


# -- construction & retrain (ISSUE 3) -----------------------------------------


@dataclass(frozen=True)
class BuildResult:
    dataset: str
    n: int
    leaves: int
    scalar_build_s: float
    vectorized_build_s: float
    speedup: float
    lookups_identical: bool


def run_builds(n: int, seed: int = 42) -> list[BuildResult]:
    """Time full RMI construction under both build modes.

    The scalar build runs once (it is the slow reference); the
    vectorized build takes best-of-3.  Each row also pins lookups
    bit-identical between the two freshly built indexes on a mixed
    present/absent probe batch.
    """
    rng = np.random.default_rng(seed)
    datasets = {
        "uniform": uniform_keys(n, seed=seed),
        "lognormal": lognormal_keys(n, seed=seed + 1),
    }
    results: list[BuildResult] = []
    for ds_name, keys in datasets.items():
        probes = rng.choice(keys, size=20_000).astype(np.float64)
        probes[:2_000] = rng.integers(
            int(keys.min()) - 100, int(keys.max()) + 100, 2_000
        ).astype(np.float64)
        for leaves in (1_000, BUILD_ACCEPTANCE_LEAVES):
            scalar_s, scalar_index = _time_once(
                lambda: RecursiveModelIndex(
                    keys, stage_sizes=(1, leaves), build_mode="scalar"
                )
            )
            vector_s = float("inf")
            vector_index = None
            for _ in range(3):
                elapsed, vector_index = _time_once(
                    lambda: RecursiveModelIndex(
                        keys, stage_sizes=(1, leaves),
                        build_mode="vectorized",
                    )
                )
                vector_s = min(vector_s, elapsed)
            identical = bool(
                np.array_equal(
                    scalar_index.lookup_batch(probes),
                    vector_index.lookup_batch(probes),
                )
            )
            results.append(
                BuildResult(
                    dataset=ds_name,
                    n=n,
                    leaves=leaves,
                    scalar_build_s=scalar_s,
                    vectorized_build_s=vector_s,
                    speedup=scalar_s / vector_s,
                    lookups_identical=identical,
                )
            )
    return results


def render_builds(results: list[BuildResult]) -> str:
    table = Table(
        "RMI construction: scalar per-leaf build vs segmented-fit build",
        [
            "dataset",
            "n",
            "leaves",
            "scalar build",
            "vectorized build",
            "speedup",
            "lookups identical",
        ],
    )
    for r in results:
        table.add_row(
            r.dataset,
            f"{r.n:,}",
            f"{r.leaves:,}",
            f"{r.scalar_build_s * 1e3:,.1f}ms",
            f"{r.vectorized_build_s * 1e3:,.1f}ms",
            f"{r.speedup:.1f}x",
            "yes" if r.lookups_identical else "NO",
        )
    return table.render()


@dataclass(frozen=True)
class WritePathResult:
    n: int
    batch_size: int
    build_mode: str
    scalar_insert_keys_per_sec: float
    batch_insert_keys_per_sec: float
    merge_seconds: float


def run_write_path(n: int, seed: int = 42) -> list[WritePathResult]:
    """Writable-index write path: bulk inserts and merge latency.

    Per build mode: fill a fresh index's delta with ``n // 20`` keys —
    once via the per-key ``insert`` loop (timed on a 2k-key sample;
    sorted-list insertion is quadratic in the delta size, so the full
    loop would dominate the benchmark) and once via one
    ``insert_batch`` — then time the explicit ``merge``, which is
    rebuild-bound and shows what the vectorized build buys write-heavy
    workloads.
    """
    rng = np.random.default_rng(seed + 7)
    keys = uniform_keys(n, seed=seed)
    batch = rng.integers(0, int(keys.max()), n // 20).astype(np.int64)
    sample = batch[:2_000]
    results: list[WritePathResult] = []
    for build_mode in ("scalar", "vectorized"):
        index = WritableLearnedIndex(
            keys,
            stage_sizes=(1, BUILD_ACCEPTANCE_LEAVES),
            merge_threshold=10**15,
            build_mode=build_mode,
        )
        scalar_s, _ = _time_once(
            lambda: [index.insert(int(k)) for k in sample]
        )
        index = WritableLearnedIndex(
            keys,
            stage_sizes=(1, BUILD_ACCEPTANCE_LEAVES),
            merge_threshold=10**15,
            build_mode=build_mode,
        )
        batch_s, _ = _time_once(lambda: index.insert_batch(batch))
        merge_s, _ = _time_once(index.merge)
        results.append(
            WritePathResult(
                n=n,
                batch_size=int(batch.size),
                build_mode=build_mode,
                scalar_insert_keys_per_sec=sample.size / scalar_s,
                batch_insert_keys_per_sec=batch.size / batch_s,
                merge_seconds=merge_s,
            )
        )
    return results


def render_write_path(results: list[WritePathResult]) -> str:
    table = Table(
        "Writable write path: per-key inserts vs insert_batch, merge latency",
        [
            "rebuild mode",
            "n",
            "batch",
            "scalar insert keys/s",
            "insert_batch keys/s",
            "merge",
        ],
    )
    for r in results:
        table.add_row(
            r.build_mode,
            f"{r.n:,}",
            f"{r.batch_size:,}",
            f"{r.scalar_insert_keys_per_sec:,.0f}",
            f"{r.batch_insert_keys_per_sec:,.0f}",
            f"{r.merge_seconds * 1e3:,.1f}ms",
        )
    return table.render()


# -- LSM write/read path (ISSUE 4) --------------------------------------------


@dataclass(frozen=True)
class LSMWriteResult:
    engine: str
    n: int
    inserted: int
    insert_keys_per_sec: float
    write_amplification: float
    final_runs: int
    reads_identical: bool


def run_lsm_writes(
    n: int, seed: int = 42
) -> tuple[list[LSMWriteResult], float]:
    """Sustained random inserts at ``n`` resident keys, LSM vs writable.

    Both engines bulk-load the same resident set, then absorb the same
    random insert batches.  The writable index is merge-bound — every
    batch that trips ``merge_threshold`` rewrites all N keys — while
    the LSM store seals fixed-size memtables and pays only
    policy-bounded compactions.  After the load, ``contains_batch`` and
    ``range_query_batch`` answers are pinned identical across engines
    (both are oracle-pinned in the test suite; this re-checks them at
    benchmark scale).
    """
    rng = np.random.default_rng(seed + 11)
    keys = uniform_keys(n, seed=seed)
    num_batches, batch_size = 16, max(n // 50, 1_000)
    batches = [
        rng.integers(0, 2 * int(keys.max()), batch_size).astype(np.int64)
        for _ in range(num_batches)
    ]
    probes = rng.integers(0, 2 * int(keys.max()), 50_000).astype(np.int64)
    lows = rng.choice(keys, 2_000).astype(np.float64)
    highs = lows + rng.integers(0, 10_000, 2_000)

    writable = WritableLearnedIndex(keys, stage_sizes=(1, 10_000))
    start = time.perf_counter()
    for batch in batches:
        writable.insert_batch(batch)
    writable_s = time.perf_counter() - start

    # Memtable scales with the resident set (~64k at the 1M acceptance
    # config) so seals and compactions actually fire at smoke scale too.
    store = LearnedLSMStore(keys, memtable_capacity=max(n // 16, 4_096))
    start = time.perf_counter()
    for batch in batches:
        store.insert_batch(batch)
    lsm_s = time.perf_counter() - start

    identical = bool(
        np.array_equal(
            store.contains_batch(probes), writable.contains_batch(probes)
        )
    )
    got = store.range_query_batch(lows, highs)
    expected = writable.range_query_batch(lows, highs)
    identical = identical and bool(
        np.array_equal(got.offsets, expected.offsets)
        and np.array_equal(
            np.asarray(got.values), np.asarray(expected.values)
        )
    )
    inserted = num_batches * batch_size
    sealed = store.write_stats.entries_sealed
    compacted = store.write_stats.entries_compacted
    results = [
        LSMWriteResult(
            engine="writable (merge-bound)",
            n=n,
            inserted=inserted,
            insert_keys_per_sec=inserted / writable_s,
            write_amplification=float(
                writable.merges * n / max(inserted, 1)
            ),
            final_runs=1,
            reads_identical=identical,
        ),
        LSMWriteResult(
            engine="lsm size_tiered",
            n=n,
            inserted=inserted,
            insert_keys_per_sec=inserted / lsm_s,
            write_amplification=(sealed + compacted) / max(inserted, 1),
            final_runs=store.num_runs,
            reads_identical=identical,
        ),
    ]
    return results, writable_s / lsm_s


@dataclass(frozen=True)
class LSMBloomResult:
    runs: int
    queries: int
    unguarded_probes: int
    guarded_probes: int
    bloom_rejects: int
    eliminated_fraction: float


def run_lsm_bloom(n: int, seed: int = 42) -> LSMBloomResult:
    """Negative-probe elimination on a 10-run store.

    Ten seals land without compaction (the policy threshold is set out
    of reach), then an absent-key batch reads through.  Without bloom
    guards every query would probe every run's RMI (minus early exits);
    the stats meter how many of those probes the filters eliminated.
    """
    rng = np.random.default_rng(seed + 13)
    per_run = max(n // 10, 1_000)
    store = LearnedLSMStore(
        memtable_capacity=10**15,  # seals are explicit below
        compaction=SizeTieredCompaction(min_runs=100),
    )
    for _ in range(10):
        store.insert_batch(rng.integers(0, 10**9, per_run))
        store.flush()
    absent = rng.integers(2 * 10**9, 3 * 10**9, 50_000)
    store.read_stats.reset()
    store.lookup_batch(absent)
    stats = store.read_stats
    return LSMBloomResult(
        runs=store.num_runs,
        queries=int(absent.size),
        unguarded_probes=stats.run_probes + stats.bloom_rejects,
        guarded_probes=stats.run_probes,
        bloom_rejects=stats.bloom_rejects,
        eliminated_fraction=stats.negative_probes_eliminated,
    )


@dataclass(frozen=True)
class LSMMixedResult:
    engine: str
    skew: str
    read_fraction: float
    ops_per_sec: float


def run_lsm_mixed(
    n: int, seed: int = 42, read_fraction: float = 0.9
) -> list[LSMMixedResult]:
    """YCSB-style mixed workload: skewed batch reads between writes.

    The whole op sequence is generated up front, once per skew, so
    both engines replay *identical* reads and writes and the timed
    region contains no query generation.
    """
    results: list[LSMMixedResult] = []
    keys = uniform_keys(n, seed=seed)
    chunk = 10_000
    rounds = 20
    reads = int(chunk * read_fraction)
    writes = chunk - reads
    for skew in ("uniform", "zipfian"):
        rng = np.random.default_rng(seed + 17)
        rounds_ops = []
        for r in range(rounds):
            if skew == "zipfian":
                queries = zipfian_queries(keys, reads, seed=seed + 3 + r)
            else:
                queries = rng.choice(keys, reads).astype(np.float64)
            rounds_ops.append(
                (
                    queries.astype(np.int64),
                    rng.integers(0, 2 * int(keys.max()), writes),
                )
            )
        for engine in ("writable", "lsm size_tiered"):
            if engine == "writable":
                target = WritableLearnedIndex(keys, stage_sizes=(1, 10_000))
            else:
                target = LearnedLSMStore(keys, memtable_capacity=65_536)
            start = time.perf_counter()
            for queries, batch in rounds_ops:
                target.contains_batch(queries)
                target.insert_batch(batch)
            elapsed = time.perf_counter() - start
            results.append(
                LSMMixedResult(
                    engine=engine,
                    skew=skew,
                    read_fraction=read_fraction,
                    ops_per_sec=rounds * chunk / elapsed,
                )
            )
    return results


def render_lsm(
    write_results: list[LSMWriteResult],
    speedup: float,
    bloom: LSMBloomResult,
    mixed: list[LSMMixedResult],
) -> str:
    table = Table(
        "LSM write path: sustained random insert_batch at N resident keys",
        [
            "engine",
            "resident",
            "inserted",
            "insert keys/s",
            "write amp",
            "runs",
            "reads identical",
        ],
    )
    for r in write_results:
        table.add_row(
            r.engine,
            f"{r.n:,}",
            f"{r.inserted:,}",
            f"{r.insert_keys_per_sec:,.0f}",
            f"{r.write_amplification:.2f}x",
            str(r.final_runs),
            "yes" if r.reads_identical else "NO",
        )
    out = table.render()
    out += (
        f"\nlsm insert speedup vs merge-bound writable: {speedup:.1f}x "
        f"(acceptance floor {LSM_MIN_INSERT_SPEEDUP:.0f}x at n=1M)"
    )
    out += (
        f"\nbloom guards on a {bloom.runs}-run store: "
        f"{bloom.guarded_probes:,} probes executed of "
        f"{bloom.unguarded_probes:,} unguarded "
        f"({bloom.eliminated_fraction:.1%} of negative-run probes "
        f"eliminated; floor {LSM_MIN_BLOOM_ELIMINATION:.0%})"
    )
    read_pct = mixed[0].read_fraction if mixed else 0.9
    mixed_table = Table(
        f"Mixed read/write workload ({read_pct:.0%} batch reads)",
        ["engine", "skew", "ops/s"],
    )
    for r in mixed:
        mixed_table.add_row(r.engine, r.skew, f"{r.ops_per_sec:,.0f}")
    return out + "\n" + mixed_table.render()


# -- insert tail latency under compaction (ISSUE 7) ----------------------------

#: ISSUE 7 acceptance, translated to what this hardware can measure
#: reproducibly.  The spirit of the gate: with background compaction,
#: no merge ever stalls an acking write.  The sharp, deterministic form
#: of that is the stall counter (zero in background mode, nonzero in
#: sync mode whenever a merge ran).  The histogram gates back it up:
#:
#: * p99 <= max(10 * p50, LATENCY_P99_FLOOR_US).  On a multi-core box
#:   the ratio term dominates; the absolute floor exists because CI
#:   runs on single-vCPU machines where writer and worker *timeshare
#:   one core*, so during a merge an insert batch waits out OS
#:   scheduling quanta (measured p99 3.5-5.2ms across smoke runs on
#:   the reference box) no matter how the store is built.  The floor
#:   still has teeth: an inline seal costs 2-3x it, an inline merge
#:   leaking back onto the write path 7-100x.
#: * background max <= sync max: the worst background batch is a seal
#:   (inline RMI build); the worst sync batch is a full inline merge,
#:   several times larger.  This is the "unbounded seal-stall spikes
#:   today" comparison stated directly.
#: * ingest throughput within LATENCY_MIN_THROUGHPUT_RATIO of sync.
#:   Loop-only (the drain is reported separately): on one vCPU the
#:   merge compute is interleaved into the loop either way, and
#:   run-to-run machine variance is ~+-20%, so the CI tolerance is
#:   0.8x; the 1M trajectory entry records the actual ratio.
LATENCY_MAX_P99_OVER_P50 = 10.0
LATENCY_P99_FLOOR_US = 8_000.0
LATENCY_MIN_THROUGHPUT_RATIO = 0.8

#: GIL quantum while the latency loop runs.  The CPython default
#: (5ms) means a foreground insert can wait 5ms just for the worker
#: thread to be preempted between numpy kernels — a convoy artifact of
#: the harness, not of the store.  100us bounds the handoff; restored
#: after the section.
_LATENCY_SWITCH_INTERVAL = 1e-4


@dataclass(frozen=True)
class LSMLatencyResult:
    mode: str
    n: int
    num_batches: int
    batch_size: int
    insert_keys_per_sec: float
    drain_seconds: float
    p50_us: float
    p99_us: float
    p999_us: float
    max_us: float
    write_stalls: int
    stall_seconds: float
    compactions: int


def run_lsm_latency(
    n: int, seed: int = 42
) -> tuple[list[LSMLatencyResult], bool]:
    """Per-``insert_batch`` latency histogram, sync vs background.

    Both stores are *durable* (fsync-per-batch WAL in a scratch
    directory): the fsync puts a real, stable floor under p50, which
    is what makes a p99/p50 ratio meaningful — on a memory-only store
    p50 is tens of microseconds and the ratio would measure nothing
    but scheduler noise.  Every batch is timed individually, so the
    histogram separates the steady state (p50), the tail the gates
    bound (p99), and the seal spikes (p999 / max — a seal builds the
    sealed run's RMI inline in both modes, but only the synchronous
    store also pays merges there).  Geometry: batches are sized so
    seals stay under 1% of ops (p99 then measures whether *merges*
    intrude on the write path) while the capacity still forces a
    background merge to run concurrently with the tail of the insert
    loop.  Throughput is loop-only; the ``wait_for_compaction`` drain
    is timed separately and reported, so deferred work is visible
    rather than hidden.  Returns the per-mode rows plus a cross-check
    that both stores answer an identical probe batch identically after
    quiescing.
    """
    rng = np.random.default_rng(seed + 31)
    capacity = max(n // 6, 4_096)
    batch_size = 256
    num_batches = max(n // batch_size, 256)
    keys = rng.integers(
        0, 1 << 62, size=(num_batches, batch_size), dtype=np.int64
    )
    probes = rng.integers(0, 1 << 62, 50_000, dtype=np.int64)
    probes[:25_000] = rng.choice(keys.ravel(), 25_000)

    results: list[LSMLatencyResult] = []
    answers = {}
    old_interval = sys.getswitchinterval()
    sys.setswitchinterval(_LATENCY_SWITCH_INTERVAL)
    try:
        for mode, background in (("sync", False), ("background", True)):
            scratch = tempfile.mkdtemp(prefix=f"lsm-latency-{mode}-")
            try:
                store = LearnedLSMStore(
                    memtable_capacity=capacity,
                    path=scratch,
                    background=background,
                )
                latencies = np.empty(num_batches)
                start = time.perf_counter()
                for i in range(num_batches):
                    t0 = time.perf_counter()
                    store.insert_batch(keys[i])
                    latencies[i] = time.perf_counter() - t0
                elapsed = time.perf_counter() - start
                t0 = time.perf_counter()
                store.wait_for_compaction()
                drain = time.perf_counter() - t0
                answers[mode] = store.lookup_batch(probes)
                p50, p99, p999 = summarize_latencies(
                    latencies, (50.0, 99.0, 99.9)
                )
                stats = store.write_stats
                results.append(
                    LSMLatencyResult(
                        mode=mode,
                        n=n,
                        num_batches=num_batches,
                        batch_size=batch_size,
                        insert_keys_per_sec=(
                            num_batches * batch_size / elapsed
                        ),
                        drain_seconds=drain,
                        p50_us=p50 * 1e6,
                        p99_us=p99 * 1e6,
                        p999_us=p999 * 1e6,
                        max_us=float(latencies.max()) * 1e6,
                        write_stalls=stats.write_stalls,
                        stall_seconds=stats.stall_seconds,
                        compactions=stats.compactions,
                    )
                )
                store.close()
            finally:
                shutil.rmtree(scratch, ignore_errors=True)
    finally:
        sys.setswitchinterval(old_interval)
    identical = bool(
        np.array_equal(answers["sync"][0], answers["background"][0])
        and np.array_equal(answers["sync"][1], answers["background"][1])
    )
    return results, identical


def render_lsm_latency(
    results: list[LSMLatencyResult], identical: bool
) -> str:
    table = Table(
        "LSM insert latency: per-batch histogram, sync vs background "
        "compaction",
        [
            "mode",
            "n",
            "batches",
            "batch",
            "insert keys/s",
            "p50",
            "p99",
            "p99.9",
            "max",
            "drain",
            "stalls",
            "stalled",
            "compactions",
        ],
    )
    for r in results:
        table.add_row(
            r.mode,
            f"{r.n:,}",
            f"{r.num_batches:,}",
            f"{r.batch_size:,}",
            f"{r.insert_keys_per_sec:,.0f}",
            f"{r.p50_us:,.0f}us",
            f"{r.p99_us:,.0f}us",
            f"{r.p999_us:,.0f}us",
            f"{r.max_us:,.0f}us",
            f"{r.drain_seconds * 1e3:,.0f}ms",
            str(r.write_stalls),
            f"{r.stall_seconds * 1e3:,.1f}ms",
            str(r.compactions),
        )
    out = table.render()
    bg = next(r for r in results if r.mode == "background")
    sync = next(r for r in results if r.mode == "sync")
    bound = max(LATENCY_MAX_P99_OVER_P50 * bg.p50_us, LATENCY_P99_FLOOR_US)
    out += (
        f"\nbackground p99: {bg.p99_us:,.0f}us = "
        f"{bg.p99_us / bg.p50_us:.1f}x p50 "
        f"(gate: <= max({LATENCY_MAX_P99_OVER_P50:.0f}x p50, "
        f"{LATENCY_P99_FLOOR_US:,.0f}us) = {bound:,.0f}us); "
        f"worst batch {bg.max_us / 1e3:,.1f}ms vs sync "
        f"{sync.max_us / 1e3:,.1f}ms (inline merge); "
        f"\ningest throughput vs sync: "
        f"{bg.insert_keys_per_sec / sync.insert_keys_per_sec:.2f}x "
        f"(floor {LATENCY_MIN_THROUGHPUT_RATIO:.2f}x); "
        f"merge-attributable stalls: {bg.write_stalls} background, "
        f"{sync.write_stalls} sync; "
        f"reads identical across modes: {identical}"
    )
    return out


# -- durability (ISSUE 6) ------------------------------------------------------

#: ISSUE 6 acceptance: WAL-on insert throughput within 2x of the
#: memory-only store (ratio >= 0.5), judged at the 1M-key config.
DURABILITY_MIN_WAL_RATIO = 0.5


@dataclass(frozen=True)
class DurabilityResult:
    n: int
    inserted: int
    mem_insert_keys_per_sec: float
    wal_insert_keys_per_sec: float
    wal_vs_mem_ratio: float
    reopen_seconds: float
    reopen_lazy: bool
    first_query_seconds: float
    replay_records: int
    replay_seconds: float
    paged_queries: int
    paged_cold_preads: int
    paged_cold_bytes: int
    paged_warm_preads: int
    paged_identical: bool


def run_durability(n: int, seed: int = 42) -> DurabilityResult:
    """The price of the durability layer, measured three ways.

    *Insert tax*: the same random batches land in a memory-only store
    and a durable one (fsync-per-batch WAL, run files, manifest
    commits); the ratio is the sustained cost of crash safety.
    *Cold reopen*: after a full compact + close, reopening must be
    O(metadata) — the laziness invariant is checked structurally
    (``is_loaded_lazy`` on every run) on top of the wall-clock number,
    and the first batch query then pays the mapping cost exactly once.
    *Replay*: an unsealed WAL tail (a simulated kill -9 with buffered
    writes) is replayed into the memtable on open.
    *Paged reads*: a :class:`PagedLearnedIndex` aimed straight at the
    compacted run file's key section counts real ``os.pread`` syscalls
    for the same probe batch cold (``posix_fadvise(DONTNEED)`` first)
    and warm (buffer pool + OS cache populated), with results checked
    bit-identical against ``np.searchsorted`` over the run's keys.
    """
    import shutil
    import tempfile

    rng = np.random.default_rng(seed + 29)
    batch_size = 8_192
    num_batches = max(n // batch_size, 4)
    batches = [
        rng.integers(0, 1 << 62, batch_size, dtype=np.int64)
        for _ in range(num_batches)
    ]
    capacity = max(n // 16, 4_096)
    probes = rng.integers(0, 1 << 62, 20_000, dtype=np.int64)

    mem = LearnedLSMStore(memtable_capacity=capacity)
    start = time.perf_counter()
    for batch in batches:
        mem.insert_batch(batch)
    mem_s = time.perf_counter() - start
    mem.close()

    directory = tempfile.mkdtemp(prefix="bench-lsm-")
    try:
        durable = LearnedLSMStore(path=directory, memtable_capacity=capacity)
        start = time.perf_counter()
        for batch in batches:
            durable.insert_batch(batch)
        wal_s = time.perf_counter() - start
        durable.compact()
        durable.close()

        start = time.perf_counter()
        reopened = LearnedLSMStore(path=directory)
        reopen_s = time.perf_counter() - start
        reopen_lazy = bool(reopened.runs) and all(
            run.is_loaded_lazy() for run in reopened.runs
        )
        start = time.perf_counter()
        reopened.lookup_batch(probes)
        first_query_s = time.perf_counter() - start

        # Paged pread accounting over the compacted run file: the same
        # probe batch twice, cold (page cache dropped) then warm (the
        # buffer pool sized to hold every key page), counting actual
        # syscalls (ISSUE 8 satellite).
        from repro.lsm.faultfs import RealFileSystem
        from repro.lsm.format import RUN_MAGIC, SectionFile
        from repro.lsm.paged_runs import paged_index_over_run

        run_path = str(max(
            Path(directory).glob("run-*.run"),
            key=lambda p: p.stat().st_size,
        ))
        fs = RealFileSystem()
        run_keys = SectionFile(fs, run_path, magic=RUN_MAGIC).array("keys")
        page_size = 256
        paged = paged_index_over_run(
            fs, run_path,
            page_size=page_size,
            buffer_pages=(run_keys.size + page_size - 1) // page_size,
        )
        paged_queries = rng.choice(run_keys, 4_096)
        expect_pos = np.searchsorted(run_keys, paged_queries)
        try:
            paged.store.drop_cache()
            cold_pos = paged.lookup_batch(paged_queries)
            cold_preads = paged.store.preads
            cold_bytes = paged.store.bytes_read
            warm_pos = paged.lookup_batch(paged_queries)
            warm_preads = paged.store.preads - cold_preads
        finally:
            paged.store.close()
        paged_identical = bool(
            np.array_equal(cold_pos, expect_pos)
            and np.array_equal(warm_pos, expect_pos)
        )

        # Unsealed tail: buffered writes whose only record is the WAL.
        tail = rng.integers(0, 1 << 62, capacity - 1, dtype=np.int64)
        for offset in range(0, tail.size, 1_024):
            reopened.insert_batch(tail[offset:offset + 1_024])
        # Simulated kill -9: abandon without close, then time recovery.
        start = time.perf_counter()
        recovered = LearnedLSMStore(path=directory)
        replay_s = time.perf_counter() - start
        replay_records = recovered.recovered_wal_records
        reopened.close()
        recovered.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)

    inserted = num_batches * batch_size
    return DurabilityResult(
        n=n,
        inserted=inserted,
        mem_insert_keys_per_sec=inserted / mem_s,
        wal_insert_keys_per_sec=inserted / wal_s,
        wal_vs_mem_ratio=mem_s / wal_s,
        reopen_seconds=reopen_s,
        reopen_lazy=reopen_lazy,
        first_query_seconds=first_query_s,
        replay_records=replay_records,
        replay_seconds=replay_s,
        paged_queries=int(paged_queries.size),
        paged_cold_preads=cold_preads,
        paged_cold_bytes=cold_bytes,
        paged_warm_preads=warm_preads,
        paged_identical=paged_identical,
    )


def render_durability(result: DurabilityResult) -> str:
    table = Table(
        "Durability: WAL-on insert tax, cold reopen, WAL replay",
        [
            "n",
            "inserted",
            "mem-only keys/s",
            "WAL-on keys/s",
            "ratio",
            "cold reopen",
            "lazy",
            "first query",
            "replayed recs",
            "replay",
        ],
    )
    table.add_row(
        f"{result.n:,}",
        f"{result.inserted:,}",
        f"{result.mem_insert_keys_per_sec:,.0f}",
        f"{result.wal_insert_keys_per_sec:,.0f}",
        f"{result.wal_vs_mem_ratio:.2f}x",
        f"{result.reopen_seconds * 1e3:,.1f}ms",
        "yes" if result.reopen_lazy else "NO",
        f"{result.first_query_seconds * 1e3:,.1f}ms",
        f"{result.replay_records:,}",
        f"{result.replay_seconds * 1e3:,.1f}ms",
    )
    out = table.render()
    paged = Table(
        "Paged lookups over the compacted run file (real os.pread "
        "syscalls, cold vs warm)",
        [
            "queries",
            "cold preads",
            "cold bytes",
            "warm preads",
            "identical",
        ],
    )
    paged.add_row(
        f"{result.paged_queries:,}",
        f"{result.paged_cold_preads:,}",
        f"{result.paged_cold_bytes:,}",
        f"{result.paged_warm_preads:,}",
        "yes" if result.paged_identical else "NO",
    )
    out += "\n\n" + paged.render()
    out += (
        f"\nWAL-on insert throughput vs memory-only: "
        f"{result.wal_vs_mem_ratio:.2f}x "
        f"(acceptance floor {DURABILITY_MIN_WAL_RATIO:.2f}x at n=1M); "
        f"reopen is O(metadata): {result.reopen_lazy}"
    )
    return out


# -- unified query core (ISSUE 5) ---------------------------------------------


@dataclass(frozen=True)
class QueryCoreResult:
    dataset: str
    n: int
    num_queries: int
    batch_ops_per_sec: float
    searchsorted_ops_per_sec: float
    scalar_sample_identical: bool
    float64_baseline_mismatches: int


def run_query_core(
    n: int, num_queries: int, seed: int = 42
) -> QueryCoreResult:
    """Shared-kernel throughput on int64/uint64 keys beyond 2^53.

    The dataset is ``u64_dense`` — adjacent 64-bit keys straddling 2^53
    and crossing 2^63, the SOSD osm_cellids shape — which the pre-PR-5
    float64 batch paths could not answer correctly at all.  Reported:
    the exact engine's batch throughput, the native-dtype
    ``searchsorted`` reference, a scalar-sample bit-identity check, and
    how many queries the old float64-upcast baseline would have gotten
    *wrong* on this workload (the correctness gap the query core
    closes).
    """
    rng = np.random.default_rng(seed + 23)
    keys = u64_dense(n, seed=seed)
    picks = rng.choice(keys, num_queries)
    # Half the probes are +-1 neighbours: absent keys one unit away
    # from stored ones, unresolvable in float64.
    offsets = rng.integers(0, 2, num_queries).astype(np.uint64)
    queries = picks + offsets
    index = RecursiveModelIndex(keys, stage_sizes=(1, 10_000))
    batch_s = float("inf")
    batch_out = None
    for _ in range(3):
        elapsed, batch_out = _time_once(lambda: index.lookup_batch(queries))
        batch_s = min(batch_s, elapsed)
    ss_s = min(
        _time_once(lambda: np.searchsorted(keys, queries))[0]
        for _ in range(3)
    )
    exact = np.searchsorted(keys, queries)
    sample = queries[:2_000]
    scalar = np.array([index.lookup(q) for q in sample.tolist()])
    identical = bool(
        np.array_equal(batch_out, exact)
        and np.array_equal(scalar, exact[:sample.size])
    )
    # The old engine compared int keys upcast to float64; replay that
    # comparison to count the collisions the exact core eliminates.
    float_pos = np.searchsorted(
        keys.astype(np.float64), queries.astype(np.float64)
    )
    mismatches = int(np.count_nonzero(float_pos != exact))
    return QueryCoreResult(
        dataset="u64_dense",
        n=int(keys.size),
        num_queries=int(queries.size),
        batch_ops_per_sec=queries.size / batch_s,
        searchsorted_ops_per_sec=queries.size / ss_s,
        scalar_sample_identical=identical,
        float64_baseline_mismatches=mismatches,
    )


#: Allowed slowdown of the 1M-uniform RMI batch path vs the previous
#: trajectory entry at the same configuration (the ISSUE 5 gate: the
#: dtype-exact engine must not cost more than 10%).  Both sides are
#: normalized by their own run's model-free ``np.searchsorted``
#: throughput on the same keys/queries: trajectory entries come from
#: different sessions on different hardware (measured spread: one
#: reference box ran raw binary search 35% slower than another while
#: the engine code was byte-identical), and the absolute ops/s
#: comparison this gate originally used could not tell that drift from
#: a real engine regression.  The searchsorted baseline rides in the
#: same process on the same arrays, so dividing by it cancels the box.
QUERY_CORE_MAX_REGRESSION = 0.10


def previous_uniform_batch_point(
    path: Path, n: int, num_queries: int
) -> tuple[float, float] | None:
    """The most recent trajectory entry's 1M-uniform RMI-10k batch
    throughput and that same run's uniform ``searchsorted`` baseline
    at a matching configuration, or None."""
    if not path.exists():
        return None
    try:
        existing = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    trajectory = (
        existing.get("trajectory") if isinstance(existing, dict) else None
    )
    if not isinstance(trajectory, list):
        return None
    for record in reversed(trajectory):
        if record.get("n") != n or record.get("queries") != num_queries:
            continue
        baseline = record.get("searchsorted_ops_per_sec")
        if not isinstance(baseline, dict) or "uniform" not in baseline:
            continue
        for row in record.get("results", []):
            if (
                row.get("name") == "rmi leaves=10000"
                and row.get("dataset") == "uniform"
            ):
                return (
                    float(row["batch_ops_per_sec"]),
                    float(baseline["uniform"]),
                )
    return None


#: Allowed slowdown of the instrumentation-*disabled* batch lookup
#: path vs the previous trajectory entry (PR 9): the telemetry layer's
#: disabled fast path is one module-attribute check, so the engine with
#: obs compiled in must stay within 3% of the pre-obs trajectory.
#: Same searchsorted normalization as the query-core gate; judged at
#: every scale including --smoke (the CI obs lane enforces it).
OBS_MAX_OVERHEAD = 0.03


@dataclass(frozen=True)
class ObsOverheadResult:
    n: int
    num_queries: int
    disabled_ops_per_sec: float
    enabled_ops_per_sec: float
    searchsorted_ops_per_sec: float
    identical: bool


def run_obs_overhead(
    n: int, num_queries: int, seed: int = 42
) -> tuple[ObsOverheadResult, dict]:
    """The uniform RMI-10k batch path with telemetry off, then on.

    Replicates the ``rmi leaves=10000`` / uniform configuration the
    trajectory rows record.  The gated quantity is the *ratio* of
    batch-lookup to searchsorted throughput, so the two are timed in
    interleaved rounds — each round measures searchsorted and the
    batch path back to back under the same thermal/frequency state,
    which keeps the ratio stable enough for a 3% gate even at smoke
    scale (measuring the baseline minutes apart, as the main section
    does, drifts several percent run to run).  Also returns the obs
    registry snapshot captured after the enabled pass — the JSON
    metrics export that rides in the trajectory record.
    """
    rng = np.random.default_rng(seed)
    keys = uniform_keys(n, seed=seed)
    # A 3% gate needs timing resolution: smoke-scale query counts make
    # each measured call ~1ms, where scheduler jitter dominates, so
    # this section floors the query count independently of the main
    # tables (the ratio, not the absolute throughput, is what's
    # compared across runs).
    num_queries = max(num_queries, 150_000)
    queries = rng.choice(keys, size=num_queries).astype(np.float64)
    absent = rng.integers(
        int(keys.min()) - 100, int(keys.max()) + 100, num_queries // 10
    ).astype(np.float64)
    queries[: absent.size] = absent
    index = RecursiveModelIndex(keys, stage_sizes=(1, 10_000))
    rounds = 11
    prev_flag = obs.set_enabled(False)
    try:
        index.lookup_batch(queries)  # warm caches and allocator
        np.searchsorted(keys, queries)
        disabled_s = ss_s = float("inf")
        disabled_out = None
        for _ in range(rounds):
            ss_s = min(
                ss_s,
                _time_once(lambda: np.searchsorted(keys, queries))[0],
            )
            elapsed, disabled_out = _time_once(
                lambda: index.lookup_batch(queries)
            )
            disabled_s = min(disabled_s, elapsed)
        obs.set_enabled(True)
        index.lookup_batch(queries)
        enabled_s, enabled_out = float("inf"), None
        for _ in range(rounds):
            elapsed, enabled_out = _time_once(
                lambda: index.lookup_batch(queries)
            )
            enabled_s = min(enabled_s, elapsed)
        metrics = obs.default_registry().snapshot()
    finally:
        obs.set_enabled(prev_flag)
    result = ObsOverheadResult(
        n=int(keys.size),
        num_queries=int(queries.size),
        disabled_ops_per_sec=queries.size / disabled_s,
        enabled_ops_per_sec=queries.size / enabled_s,
        searchsorted_ops_per_sec=queries.size / ss_s,
        identical=bool(np.array_equal(disabled_out, enabled_out)),
    )
    return result, metrics.to_dict()


def previous_obs_disabled_point(
    path: Path, n: int, num_queries: int
) -> tuple[float, float] | None:
    """The most recent matching trajectory entry's obs-section
    disabled throughput and its interleaved searchsorted baseline.

    Prefers entries that carry an ``obs`` section (same interleaved
    measurement protocol as this run — like for like); falls back to
    the main uniform RMI-10k row + its searchsorted baseline for
    pre-obs entries so the gate binds on the first instrumented run.
    """
    if not path.exists():
        return None
    try:
        existing = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    trajectory = (
        existing.get("trajectory") if isinstance(existing, dict) else None
    )
    if not isinstance(trajectory, list):
        return None
    for record in reversed(trajectory):
        if record.get("n") != n or record.get("queries") != num_queries:
            continue
        section = record.get("obs")
        if not isinstance(section, dict):
            continue
        row = section.get("result")
        if not isinstance(row, dict):
            continue
        disabled = row.get("disabled_ops_per_sec")
        baseline = row.get("searchsorted_ops_per_sec")
        if disabled and baseline:
            return float(disabled), float(baseline)
    return previous_uniform_batch_point(path, n, num_queries)


def render_obs_overhead(
    result: ObsOverheadResult,
    previous_point: tuple[float, float] | None,
    normalized: float | None,
) -> str:
    table = Table(
        "Telemetry overhead: uniform RMI-10k batch path, obs off vs on",
        ["mode", "batch ops/s", "vs searchsorted", "identical"],
    )
    ss = result.searchsorted_ops_per_sec
    table.add_row(
        "disabled", f"{result.disabled_ops_per_sec:,.0f}",
        f"{result.disabled_ops_per_sec / ss:.2f}x",
        "yes" if result.identical else "NO",
    )
    table.add_row(
        "enabled", f"{result.enabled_ops_per_sec:,.0f}",
        f"{result.enabled_ops_per_sec / ss:.2f}x",
        "yes" if result.identical else "NO",
    )
    out = table.render()
    if normalized is not None:
        out += (
            f"\ndisabled-path vs previous trajectory entry "
            f"(searchsorted-normalized): {normalized:.3f}x "
            f"(gate: >= {1.0 - OBS_MAX_OVERHEAD:.2f}x)"
        )
    else:
        out += (
            "\nobs overhead gate: no matching previous trajectory "
            "entry (first run at this configuration)"
        )
    return out


def render_query_core(
    result: QueryCoreResult,
    previous_point: tuple[float, float] | None,
    current_ops: float,
    current_searchsorted: float,
) -> str:
    table = Table(
        "Unified query core: exact 64-bit batch lookups (keys beyond 2^53)",
        [
            "dataset",
            "n",
            "queries",
            "batch ops/s",
            "searchsorted ops/s",
            "scalar sample identical",
            "float64-baseline wrong answers",
        ],
    )
    table.add_row(
        result.dataset,
        f"{result.n:,}",
        f"{result.num_queries:,}",
        f"{result.batch_ops_per_sec:,.0f}",
        f"{result.searchsorted_ops_per_sec:,.0f}",
        "yes" if result.scalar_sample_identical else "NO",
        f"{result.float64_baseline_mismatches:,}",
    )
    out = table.render()
    if previous_point is not None:
        prev_ops, prev_ss = previous_point
        ratio = (current_ops / current_searchsorted) / (prev_ops / prev_ss)
        out += (
            f"\n1M-uniform batch path vs previous trajectory entry "
            f"(searchsorted-normalized): {ratio:.2f}x "
            f"(gate: >= {1.0 - QUERY_CORE_MAX_REGRESSION:.2f}x; "
            f"raw {current_ops / prev_ops:.2f}x on a "
            f"{current_searchsorted / prev_ss:.2f}x-speed box)"
        )
    else:
        out += (
            "\n1M-uniform regression gate: no matching previous "
            "trajectory entry (first run at this configuration)"
        )
    return out


def render(results: list[ThroughputResult]) -> str:
    table = Table(
        "Batch throughput: scalar loop vs vectorized lookup_batch",
        [
            "structure",
            "dataset",
            "n",
            "queries",
            "scalar ops/s",
            "batch ops/s",
            "speedup",
            "identical",
        ],
    )
    for r in results:
        table.add_row(
            r.name,
            r.dataset,
            f"{r.n:,}",
            f"{r.num_queries:,}",
            f"{r.scalar_ops_per_sec:,.0f}",
            f"{r.batch_ops_per_sec:,.0f}",
            f"{r.speedup:.1f}x",
            "yes" if r.identical else "NO",
        )
    return table.render()


def append_trajectory(path: Path, record: dict) -> dict:
    """Append ``record`` to the trajectory file at ``path``.

    The file holds ``{"bench": "throughput", "trajectory": [...]}``
    with one record per run, oldest first.  A legacy single-record file
    (pre-ISSUE-2) becomes the trajectory's first entry; an unparseable
    file (e.g. a run killed mid-write) is preserved as
    ``<path>.corrupt`` rather than silently overwritten, since the
    accumulated history is the point of the file.
    """
    trajectory: list[dict] = []
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            backup = path.with_name(path.name + ".corrupt")
            path.replace(backup)
            print(
                f"warning: could not parse {path}; preserved it as "
                f"{backup} and starting a fresh trajectory",
                file=sys.stderr,
            )
            existing = None
        if isinstance(existing, dict):
            if isinstance(existing.get("trajectory"), list):
                trajectory = existing["trajectory"]
            elif "results" in existing:
                trajectory = [existing]
    trajectory.append(record)
    payload = {"bench": "throughput", "trajectory": trajectory}
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--n", type=int, default=1_000_000,
        help="keys per dataset (default: the acceptance 1M)",
    )
    parser.add_argument(
        "--queries", type=int, default=100_000,
        help="queries per measurement (default: the acceptance 100k)",
    )
    parser.add_argument(
        "--ranges", type=int, default=50_000,
        help="range scans per skew workload (default 50k)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI scale: shrink keys/queries/ranges for shared runners",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="append a record to the BENCH_throughput.json trajectory",
    )
    parser.add_argument(
        "--json-path", type=Path, default=Path("BENCH_throughput.json"),
        help="where --json writes its report",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.n = min(args.n, 200_000)
        args.queries = min(args.queries, 40_000)
        args.ranges = min(args.ranges, 10_000)
    if args.n < 1_000:
        parser.error("--n must be >= 1000 (smaller datasets are all noise)")
    if args.queries < 1:
        parser.error("--queries must be >= 1")
    if args.ranges < 1:
        parser.error("--ranges must be >= 1")
    if args.json:
        parent = args.json_path.resolve().parent
        if not parent.is_dir():
            parser.error(f"--json-path directory does not exist: {parent}")

    results, searchsorted_ops = run(args.n, args.queries)
    print(render(results))
    for ds_name, ops in searchsorted_ops.items():
        print(
            f"reference [{ds_name}]: np.searchsorted over the whole "
            f"array (no model) = {ops:,.0f} ops/s"
        )

    range_results = run_ranges(args.n, args.ranges)
    print()
    print(render_ranges(range_results))

    sorted_results, crossover = run_sorted_path(args.n, args.queries)
    print()
    print(render_sorted(sorted_results, crossover))

    build_results = run_builds(args.n)
    print()
    print(render_builds(build_results))

    write_results = run_write_path(args.n)
    print()
    print(render_write_path(write_results))

    lsm_writes, lsm_speedup = run_lsm_writes(args.n)
    lsm_bloom = run_lsm_bloom(args.n)
    lsm_mixed = run_lsm_mixed(args.n)
    print()
    print(render_lsm(lsm_writes, lsm_speedup, lsm_bloom, lsm_mixed))

    latency_results, latency_identical = run_lsm_latency(args.n)
    print()
    print(render_lsm_latency(latency_results, latency_identical))

    durability = run_durability(args.n)
    print()
    print(render_durability(durability))

    # Query-core section (ISSUE 5): exact 64-bit throughput plus the
    # no->10%-regression gate on the 1M-uniform batch path, judged
    # against the previous trajectory entry at the same configuration
    # (read before --json appends this run's record), with both sides
    # normalized by their own run's searchsorted baseline.
    query_core = run_query_core(args.n, args.queries)
    current_uniform_ops = next(
        r.batch_ops_per_sec
        for r in results
        if r.dataset == "uniform" and r.name == "rmi leaves=10000"
    )
    previous_point = previous_uniform_batch_point(
        args.json_path, args.n, args.queries
    )
    print()
    print(render_query_core(
        query_core, previous_point, current_uniform_ops,
        searchsorted_ops["uniform"],
    ))

    # Telemetry overhead section (ISSUE 9): the obs layer's disabled
    # fast path is a single module-attribute branch, so the batch
    # lookup path with obs compiled in but switched off must stay
    # within OBS_MAX_OVERHEAD of the previous trajectory entry.  Both
    # this run's main measurement and the dedicated disabled pass are
    # instrumentation-off samples of the same path; gate on the best
    # of the two so single-sample scheduler noise doesn't trip a gate
    # that is judged at every scale, including --smoke.
    obs_previous = previous_obs_disabled_point(
        args.json_path, args.n, args.queries
    )
    obs_overhead, obs_metrics = run_obs_overhead(args.n, args.queries)
    obs_normalized = None
    if obs_previous is not None:
        prev_ops, prev_ss = obs_previous
        # Best of three independent samples of the new code's speed:
        # the interleaved disabled and *enabled* passes (instrumented
        # code beating the floor proves a fortiori the disabled path
        # does) and the main table's uniform row.  A real disabled-path
        # regression slows all three; one sample dipping on scheduler
        # noise doesn't fail the gate.
        obs_normalized = max(
            obs_overhead.disabled_ops_per_sec
            / obs_overhead.searchsorted_ops_per_sec,
            obs_overhead.enabled_ops_per_sec
            / obs_overhead.searchsorted_ops_per_sec,
            current_uniform_ops / searchsorted_ops["uniform"],
        ) / (prev_ops / prev_ss)
    print()
    print(render_obs_overhead(obs_overhead, obs_previous, obs_normalized))

    rmi_uniform = [
        r for r in results
        if r.dataset == "uniform" and r.name.startswith("rmi")
    ]
    best = max(r.speedup for r in rmi_uniform)
    all_identical = (
        all(r.identical for r in results)
        and all(r.identical for r in range_results)
        and all(r.identical for r in sorted_results)
        and all(r.lookups_identical for r in build_results)
        and all(r.reads_identical for r in lsm_writes)
        and query_core.scalar_sample_identical
    )
    build_acceptance = next(
        r.speedup
        for r in build_results
        if r.dataset == "uniform" and r.leaves == BUILD_ACCEPTANCE_LEAVES
    )
    print(
        f"\nbest RMI batch speedup on uniform: {best:.1f}x "
        f"(acceptance floor {ACCEPTANCE_MIN_SPEEDUP:.0f}x); "
        f"vectorized build speedup at 1M-scale config: "
        f"{build_acceptance:.1f}x "
        f"(acceptance floor {BUILD_MIN_SPEEDUP:.0f}x at n=1M); "
        f"batch == scalar on every row: {all_identical}"
    )

    if args.json:
        record = {
            "recorded_at": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "n": args.n,
            "queries": args.queries,
            "ranges": args.ranges,
            "smoke": args.smoke,
            "acceptance_min_speedup": ACCEPTANCE_MIN_SPEEDUP,
            "best_rmi_uniform_speedup": best,
            "all_identical": all_identical,
            "searchsorted_ops_per_sec": searchsorted_ops,
            "results": [asdict(r) for r in results],
            "range_results": [asdict(r) for r in range_results],
            "sorted_path": {
                "threshold_heuristic": SORTED_BATCH_THRESHOLD,
                "measured_crossover": crossover,
                "results": [asdict(r) for r in sorted_results],
            },
            "build": {
                "min_speedup": BUILD_MIN_SPEEDUP,
                "acceptance_leaves": BUILD_ACCEPTANCE_LEAVES,
                "acceptance_speedup": build_acceptance,
                "results": [asdict(r) for r in build_results],
            },
            "write_path": [asdict(r) for r in write_results],
            "lsm": {
                "min_insert_speedup": LSM_MIN_INSERT_SPEEDUP,
                "insert_speedup": lsm_speedup,
                "min_bloom_elimination": LSM_MIN_BLOOM_ELIMINATION,
                "writes": [asdict(r) for r in lsm_writes],
                "bloom": asdict(lsm_bloom),
                "mixed": [asdict(r) for r in lsm_mixed],
            },
            "lsm_latency": {
                "max_p99_over_p50": LATENCY_MAX_P99_OVER_P50,
                "p99_floor_us": LATENCY_P99_FLOOR_US,
                "min_throughput_ratio": LATENCY_MIN_THROUGHPUT_RATIO,
                "reads_identical": latency_identical,
                "results": [asdict(r) for r in latency_results],
            },
            "durability": {
                "min_wal_ratio": DURABILITY_MIN_WAL_RATIO,
                "result": asdict(durability),
            },
            "query_core": {
                "max_regression": QUERY_CORE_MAX_REGRESSION,
                "uniform_batch_ops_per_sec": current_uniform_ops,
                "previous_uniform_batch_ops_per_sec": (
                    previous_point[0] if previous_point else None
                ),
                "previous_searchsorted_ops_per_sec": (
                    previous_point[1] if previous_point else None
                ),
                "result": asdict(query_core),
            },
            "obs": {
                "max_overhead": OBS_MAX_OVERHEAD,
                "normalized_vs_previous": obs_normalized,
                "result": asdict(obs_overhead),
                "metrics": obs_metrics,
            },
        }
        payload = append_trajectory(args.json_path, record)
        print(
            f"wrote {args.json_path} "
            f"({len(payload['trajectory'])} trajectory entries)"
        )

    ok = (
        all_identical
        and best >= ACCEPTANCE_MIN_SPEEDUP
        and lsm_bloom.eliminated_fraction >= LSM_MIN_BLOOM_ELIMINATION
        and query_core.float64_baseline_mismatches > 0
    )
    # The laziness invariant is structural, not a timing: it holds at
    # any scale, so it gates even smoke runs.
    ok = ok and durability.reopen_lazy
    # Paged preads must return the same positions as searchsorted over
    # the run's keys, and the warm pass must hit the buffer pool.
    ok = ok and durability.paged_identical
    ok = ok and durability.paged_warm_preads < durability.paged_cold_preads
    # ISSUE 7 gates, judged at every scale including --smoke: with the
    # background worker on, no merge ever stalls an acking write (the
    # stall counter stays zero — and the sync baseline's counter must
    # be nonzero whenever it merged, proving the stalls exist to be
    # avoided); the p99 insert tail stays within 10x p50 or the
    # single-core scheduling floor; the worst background batch (a
    # seal) stays under the worst sync batch (an inline merge); both
    # modes answer reads identically; and ingest throughput stays
    # within tolerance of the sync policy.
    bg_latency = next(
        r for r in latency_results if r.mode == "background"
    )
    sync_latency = next(r for r in latency_results if r.mode == "sync")
    ok = ok and latency_identical
    ok = ok and bg_latency.write_stalls == 0
    if sync_latency.compactions > 0:
        ok = ok and sync_latency.write_stalls > 0
    ok = ok and bg_latency.p99_us <= max(
        LATENCY_MAX_P99_OVER_P50 * bg_latency.p50_us,
        LATENCY_P99_FLOOR_US,
    )
    ok = ok and bg_latency.max_us <= sync_latency.max_us
    ok = ok and bg_latency.insert_keys_per_sec >= (
        LATENCY_MIN_THROUGHPUT_RATIO * sync_latency.insert_keys_per_sec
    )
    if args.n >= 1_000_000:
        # The ISSUE 3 build and ISSUE 4 insert floors are defined at 1M
        # keys; smaller (e.g. smoke) runs report but don't gate on them.
        ok = ok and build_acceptance >= BUILD_MIN_SPEEDUP
        ok = ok and lsm_speedup >= LSM_MIN_INSERT_SPEEDUP
        # ISSUE 6 gate: crash safety may not halve insert throughput.
        ok = ok and durability.wal_vs_mem_ratio >= DURABILITY_MIN_WAL_RATIO
        # ISSUE 5 gate: the exact engine costs <= 10% on the 1M-uniform
        # batch path vs the previous trajectory entry (shared runners
        # at smoke scale are too noisy to gate on).  Normalized by each
        # run's own searchsorted baseline so a slower/faster box between
        # sessions doesn't masquerade as an engine change.
        if previous_point is not None:
            prev_ops, prev_ss = previous_point
            normalized = (
                (current_uniform_ops / searchsorted_ops["uniform"])
                / (prev_ops / prev_ss)
            )
            ok = ok and normalized >= 1.0 - QUERY_CORE_MAX_REGRESSION
    # ISSUE 9 gates, judged at every scale including --smoke (the CI
    # obs lane runs this benchmark in smoke mode): enabling telemetry
    # must not change lookup results, and the disabled-instrumentation
    # batch path must stay within OBS_MAX_OVERHEAD of the previous
    # trajectory entry, searchsorted-normalized as above.
    ok = ok and obs_overhead.identical
    if obs_normalized is not None:
        ok = ok and obs_normalized >= 1.0 - OBS_MAX_OVERHEAD
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
