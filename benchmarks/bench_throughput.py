"""Throughput benchmark: scalar vs vectorized batch lookups (ISSUE 1).

SOSD (Kipf et al., 2019) and "Benchmarking Learned Indexes" (Marcus et
al., 2020) report *batched* lookup throughput as the primary metric,
because per-query latency in an interpreted harness is dominated by
interpreter overhead rather than by the index.  This benchmark measures
both numbers for every index structure with a batch API:

* **scalar ops/s** — the per-query Python loop (``lookup`` per query),
  the honest latency path the figure benchmarks use;
* **batch ops/s** — the vectorized engine (``lookup_batch``), whose
  cost is numpy gathers and compares, i.e. hardware-bound.

Every row also verifies that the batch result is bit-identical to the
scalar loop over the full query set — the speedup must be a pure
execution-strategy change.

Run standalone (it is not a pytest file):

    PYTHONPATH=src python benchmarks/bench_throughput.py
    PYTHONPATH=src python benchmarks/bench_throughput.py --json

``--json`` additionally writes ``BENCH_throughput.json`` so CI runs
accumulate a perf trajectory across PRs.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import Table  # noqa: E402
from repro.btree import (  # noqa: E402
    BTreeIndex,
    FixedSizeBTree,
    HierarchicalLookupTable,
)
from repro.core import RecursiveModelIndex  # noqa: E402
from repro.data import lognormal_keys, uniform_keys  # noqa: E402

#: The acceptance configuration from ISSUE 1: 1M uniform keys, 100k
#: queries, RMI batch >= 20x the scalar loop.
ACCEPTANCE_MIN_SPEEDUP = 20.0


@dataclass(frozen=True)
class ThroughputResult:
    name: str
    dataset: str
    n: int
    num_queries: int
    scalar_ops_per_sec: float
    batch_ops_per_sec: float
    speedup: float
    identical: bool


def _time_once(fn) -> tuple[float, np.ndarray]:
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def measure(index, queries: np.ndarray, *, name: str, dataset: str,
            batch_repeats: int = 3) -> ThroughputResult:
    """Scalar loop once (it is the slow path), batch best-of-N."""
    scalar_fn = getattr(index, "lookup_batch_scalar", None)
    if scalar_fn is None:
        def scalar_fn():
            return np.array([index.lookup(float(q)) for q in queries])
    else:
        _bound = scalar_fn

        def scalar_fn():
            return _bound(queries)

    scalar_s, scalar_out = _time_once(scalar_fn)
    batch_s = float("inf")
    batch_out = None
    for _ in range(batch_repeats):
        elapsed, batch_out = _time_once(lambda: index.lookup_batch(queries))
        batch_s = min(batch_s, elapsed)
    identical = bool(np.array_equal(scalar_out, batch_out))
    q = queries.size
    return ThroughputResult(
        name=name,
        dataset=dataset,
        n=int(index.keys.size),
        num_queries=int(q),
        scalar_ops_per_sec=q / scalar_s,
        batch_ops_per_sec=q / batch_s,
        speedup=scalar_s / batch_s,
        identical=identical,
    )


def run(
    n: int, num_queries: int, seed: int = 42
) -> tuple[list[ThroughputResult], dict[str, float]]:
    rng = np.random.default_rng(seed)
    datasets = {
        "uniform": uniform_keys(n, seed=seed),
        "lognormal": lognormal_keys(n, seed=seed + 1),
    }
    results: list[ThroughputResult] = []
    searchsorted_ops: dict[str, float] = {}
    for ds_name, keys in datasets.items():
        queries = rng.choice(keys, size=num_queries).astype(np.float64)
        # Mix in 10% absent keys so the fix-up path is exercised too.
        absent = rng.integers(
            int(keys.min()) - 100, int(keys.max()) + 100, num_queries // 10
        ).astype(np.float64)
        queries[: absent.size] = absent

        for leaves in (100, 1_000, 10_000, 20_000):
            index = RecursiveModelIndex(keys, stage_sizes=(1, leaves))
            results.append(
                measure(
                    index, queries,
                    name=f"rmi leaves={leaves}", dataset=ds_name,
                )
            )
        results.append(
            measure(
                BTreeIndex(keys, page_size=128), queries,
                name="btree page=128", dataset=ds_name,
            )
        )
        results.append(
            measure(
                FixedSizeBTree(keys, size_budget_bytes=1_500_000), queries,
                name="fixed btree 1.5MB", dataset=ds_name,
            )
        )
        results.append(
            measure(
                HierarchicalLookupTable(keys), queries,
                name="lookup table", dataset=ds_name,
            )
        )
        # Context: model-free C binary search over the whole array.
        # The RMI engine beating this is the learned-window advantage
        # surviving vectorization.
        ss_s = min(
            _time_once(lambda: np.searchsorted(keys, queries))[0]
            for _ in range(3)
        )
        searchsorted_ops[ds_name] = queries.size / ss_s
    return results, searchsorted_ops


def render(results: list[ThroughputResult]) -> str:
    table = Table(
        "Batch throughput: scalar loop vs vectorized lookup_batch",
        [
            "structure",
            "dataset",
            "n",
            "queries",
            "scalar ops/s",
            "batch ops/s",
            "speedup",
            "identical",
        ],
    )
    for r in results:
        table.add_row(
            r.name,
            r.dataset,
            f"{r.n:,}",
            f"{r.num_queries:,}",
            f"{r.scalar_ops_per_sec:,.0f}",
            f"{r.batch_ops_per_sec:,.0f}",
            f"{r.speedup:.1f}x",
            "yes" if r.identical else "NO",
        )
    return table.render()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--n", type=int, default=1_000_000,
        help="keys per dataset (default: the acceptance 1M)",
    )
    parser.add_argument(
        "--queries", type=int, default=100_000,
        help="queries per measurement (default: the acceptance 100k)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="also write BENCH_throughput.json for the perf trajectory",
    )
    parser.add_argument(
        "--json-path", type=Path, default=Path("BENCH_throughput.json"),
        help="where --json writes its report",
    )
    args = parser.parse_args(argv)
    if args.n < 1_000:
        parser.error("--n must be >= 1000 (smaller datasets are all noise)")
    if args.queries < 1:
        parser.error("--queries must be >= 1")
    if args.json:
        parent = args.json_path.resolve().parent
        if not parent.is_dir():
            parser.error(f"--json-path directory does not exist: {parent}")

    results, searchsorted_ops = run(args.n, args.queries)
    print(render(results))
    for ds_name, ops in searchsorted_ops.items():
        print(
            f"reference [{ds_name}]: np.searchsorted over the whole "
            f"array (no model) = {ops:,.0f} ops/s"
        )

    rmi_uniform = [
        r for r in results
        if r.dataset == "uniform" and r.name.startswith("rmi")
    ]
    best = max(r.speedup for r in rmi_uniform)
    all_identical = all(r.identical for r in results)
    print(
        f"\nbest RMI batch speedup on uniform: {best:.1f}x "
        f"(acceptance floor {ACCEPTANCE_MIN_SPEEDUP:.0f}x); "
        f"batch == scalar on every row: {all_identical}"
    )

    if args.json:
        payload = {
            "bench": "throughput",
            "n": args.n,
            "queries": args.queries,
            "acceptance_min_speedup": ACCEPTANCE_MIN_SPEEDUP,
            "best_rmi_uniform_speedup": best,
            "all_identical": all_identical,
            "searchsorted_ops_per_sec": searchsorted_ops,
            "results": [asdict(r) for r in results],
        }
        args.json_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json_path}")

    ok = all_identical and best >= ACCEPTANCE_MIN_SPEEDUP
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
