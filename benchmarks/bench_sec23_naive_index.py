"""E9 — Section 2.3: the naive learned index.

Paper narrative numbers (200M weblog records): a 2-layer 32-wide net
invoked through Tensorflow costs ~80,000ns per prediction, vs ~300ns
for a B-Tree traversal and ~900ns for binary search over all data.

Shape to reproduce: framework-style invocation is orders of magnitude
slower than a B-Tree lookup; full binary search is ~2-4x slower than
the B-Tree; and the *same network* behind LIF-style weight extraction
(our scalar path) closes most of the framework gap.
"""

from __future__ import annotations

import numpy as np

from repro.bench import DEFAULT_COST_MODEL, Table, measure_lookups
from repro.btree import BTreeIndex, binary_search
from repro.data import weblog_timestamps
from repro.models import MLP, FrameworkModel, NeuralRegressionModel

from conftest import console, query_mix, scaled, show_table


def test_sec23_naive_learned_index(query_rng, benchmark):
    keys = weblog_timestamps(scaled(300_000), seed=42)
    queries = query_mix(keys, query_rng, count=400)

    # The paper's naive model: two hidden layers, 32 wide.
    adapter = NeuralRegressionModel(
        hidden=(32, 32), epochs=4, seed=0, max_train_samples=20_000
    )
    adapter.fit(keys.astype(np.float64), np.arange(keys.size, dtype=np.float64))
    framework = FrameworkModel(adapter.net)

    tree = BTreeIndex(keys, page_size=128)

    # The model class LIF actually code-generates at ~30ns: linear.
    from repro.models import LinearModel
    from repro.util import scalar_view

    lif_linear = LinearModel().fit(
        keys.astype(np.float64), np.arange(keys.size, dtype=np.float64)
    )
    keys_view = scalar_view(keys)

    framework_ns = measure_lookups(framework.predict, queries, repeats=2)
    scalar_ns = measure_lookups(lif_linear.predict, queries, repeats=2)
    btree_ns = measure_lookups(tree.lookup, queries, repeats=2)
    binary_ns = measure_lookups(
        lambda q: binary_search(keys_view, q), queries, repeats=2
    )

    modeled_framework = DEFAULT_COST_MODEL.framework_model_lookup(
        adapter.op_count()
    )
    modeled_btree = DEFAULT_COST_MODEL.btree_lookup(
        tree.height, 128, tree.size_bytes()
    )
    modeled_binary = DEFAULT_COST_MODEL.binary_search_lookup(keys.size)

    table = Table(
        f"Section 2.3: naive learned index (weblogs, n={keys.size:,})",
        ["path", "measured ns", "modeled paper ns", "paper reports"],
    )
    table.add_row(
        "NN 2x32 via framework invocation",
        f"{framework_ns.mean_ns:.0f}",
        f"{modeled_framework.total_ns:.0f}",
        "~80,000",
    )
    table.add_row(
        "LIF code-generated linear model",
        f"{scalar_ns.mean_ns:.0f}",
        "-",
        "~30 (Section 3.1)",
    )
    table.add_row(
        "B-Tree traversal (page 128)",
        f"{btree_ns.mean_ns:.0f}",
        f"{modeled_btree.total_ns:.0f}",
        "~300",
    )
    table.add_row(
        "binary search over all data",
        f"{binary_ns.mean_ns:.0f}",
        f"{modeled_binary.total_ns:.0f}",
        "~900",
    )
    show_table(table)

    # Shape assertions.  Note the fidelity limit: the paper's binary-
    # search-vs-B-Tree gap (3x) is a cache effect, so it shows in the
    # cost model, not in interpreter wall-clock where per-probe cost is
    # flat.
    assert framework_ns.mean_ns > 5 * btree_ns.mean_ns
    assert framework_ns.mean_ns > 20 * scalar_ns.mean_ns
    # Wall-clock binary-vs-B-Tree is interpreter noise (both are a
    # handful of probes); sanity-bound it loosely and assert the real
    # effect on the deterministic cost model.
    assert 0.2 < binary_ns.mean_ns / btree_ns.mean_ns < 5.0
    assert modeled_binary.total_ns > 1.5 * modeled_btree.total_ns
    assert modeled_framework.total_ns > 100 * modeled_btree.total_ns
    console(
        f"[sec23 shape] framework/btree = "
        f"{framework_ns.mean_ns / btree_ns.mean_ns:.0f}x (paper ~267x), "
        f"framework/LIF-linear = "
        f"{framework_ns.mean_ns / scalar_ns.mean_ns:.0f}x, "
        f"modeled binary/btree = "
        f"{modeled_binary.total_ns / modeled_btree.total_ns:.1f}x (paper ~3x)"
    )

    state = {"i": 0}

    def one_framework_predict():
        q = queries[state["i"] % len(queries)]
        state["i"] += 1
        return framework.predict(q)

    benchmark(one_framework_predict)
