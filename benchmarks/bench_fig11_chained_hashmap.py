"""E6 — Figure 11 / Appendix B: Model vs Random hash in a chained map.

Paper table: separate-chaining map with 20-byte records at slot budgets
of 75% / 100% / 125% of the key count, on all three integer datasets;
columns: lookup time, bytes wasted in empty slots, and the space factor
of model-hash waste vs random-hash waste (e.g. Maps 100%: 0.18GB vs
0.84GB, 0.21x).

Shape to reproduce: the model hash wastes a fraction of the random
hash's empty-slot memory at 75-100% budgets, the advantage shrinking at
125%; lookup times stay within ~1.6x of random hashing.
"""

from __future__ import annotations

import numpy as np

from repro.bench import Table, format_bytes, measure_lookups
from repro.core import LearnedHashFunction
from repro.hashmap import ChainingHashMap, RandomHashFunction

from conftest import console, query_mix, show_table

SLOT_BUDGETS = (0.75, 1.0, 1.25)


def _build(keys, values, hash_fn, slots):
    hash_map = ChainingHashMap(slots, hash_fn)
    hash_map.insert_batch(keys, values)
    return hash_map


def test_figure11_chained_hashmap(fig4_datasets, query_rng, benchmark):
    table = Table(
        "Figure 11 / Appendix B: Model vs Random Hash-map "
        "(20-byte records, 24-byte slots)",
        [
            "dataset",
            "slots",
            "hash",
            "lookup ns",
            "empty-slot bytes",
            "space factor",
        ],
    )
    shapes = {}
    maps_probe = None
    for name, keys in fig4_datasets.items():
        values = np.arange(keys.size)
        learned_fn_cache = {}
        for budget in SLOT_BUDGETS:
            slots = int(keys.size * budget)
            learned_fn = learned_fn_cache.get(budget)
            if learned_fn is None:
                learned_fn = LearnedHashFunction(
                    keys, slots, stage_sizes=(1, max(keys.size // 10, 8))
                )
                learned_fn_cache[budget] = learned_fn
            random_fn = RandomHashFunction(slots, seed=9)
            model_map = _build(keys, values, learned_fn, slots)
            random_map = _build(keys, values, random_fn, slots)
            queries = [int(q) for q in query_rng.choice(keys, 1_500)]
            model_ns = measure_lookups(model_map.get, queries, repeats=2)
            random_ns = measure_lookups(random_map.get, queries, repeats=2)
            space_factor = (
                model_map.empty_slot_bytes()
                / max(random_map.empty_slot_bytes(), 1)
            )
            shapes[(name, budget)] = (
                model_ns.mean_ns,
                random_ns.mean_ns,
                space_factor,
            )
            if name == "maps" and budget == 1.0:
                maps_probe = (model_map, queries)
            table.add_row(
                name,
                f"{budget:.0%}",
                "model",
                f"{model_ns.mean_ns:.0f}",
                format_bytes(model_map.empty_slot_bytes()),
                f"{space_factor:.2f}x",
            )
            table.add_row(
                name,
                f"{budget:.0%}",
                "random",
                f"{random_ns.mean_ns:.0f}",
                format_bytes(random_map.empty_slot_bytes()),
                "",
            )
    show_table(table)

    # Shape assertions (paper: Maps 100% slots -> 0.21x space factor,
    # advantage shrinking at 125%).
    assert shapes[("maps", 1.0)][2] < 0.45
    for name in fig4_datasets:
        assert shapes[(name, 1.0)][2] < 1.0, name
        assert shapes[(name, 1.25)][2] >= shapes[(name, 1.0)][2] * 0.8
        model_ns, random_ns, _ = shapes[(name, 1.0)]
        assert model_ns < random_ns * 2.5, name
    console(
        "[fig11 shape] space factors @100%: "
        + ", ".join(
            f"{name}={shapes[(name, 1.0)][2]:.2f}x" for name in fig4_datasets
        )
    )

    model_map, queries = maps_probe
    state = {"i": 0}

    def one_get():
        q = queries[state["i"] % len(queries)]
        state["i"] += 1
        return model_map.get(q)

    benchmark(one_get)
