"""E2 — Figure 5: Alternative baselines on the Lognormal dataset.

Paper row set: lookup table with AVX search (199ns / 16.3MB), FAST
(189ns / 1024MB), fixed-size B-Tree + interpolation search (280ns /
1.5MB), multivariate learned index (105ns / 1.5MB).

Shape to reproduce: the learned index gives the best lookup time at a
small size; FAST's power-of-two allocation makes it by far the largest;
the fixed-size B-Tree (same byte budget as the learned index) is the
slowest of the four.
"""

from __future__ import annotations

import numpy as np

from repro.bench import Table, format_bytes, measure_lookups
from repro.btree import FASTTree, FixedSizeBTree, HierarchicalLookupTable
from repro.core import RecursiveModelIndex
from repro.data import lognormal_keys
from repro.models import LinearModel, MultivariateLinearModel

from conftest import console, query_mix, scaled, show_table


def _build_learned(keys):
    """The paper's Figure 5 learned index: multivariate top, linear
    leaves."""
    return RecursiveModelIndex(
        keys,
        stage_sizes=(1, max(keys.size // 1_000, 8)),
        model_factories=[
            lambda: MultivariateLinearModel(features=("key", "log", "key^2")),
            LinearModel,
        ],
    )


def test_figure5_alternative_baselines(query_rng, benchmark):
    keys = lognormal_keys(scaled(400_000), seed=42)
    queries = query_mix(keys, query_rng)

    learned = _build_learned(keys)
    contenders = [
        ("lookup table (AVX scan)", HierarchicalLookupTable(keys, group=64)),
        ("FAST (SIMD tree)", FASTTree(keys, page_size=1)),
        (
            "fixed-size btree + interpolation",
            FixedSizeBTree(keys, size_budget_bytes=learned.size_bytes()),
        ),
        ("multivariate learned index", learned),
    ]

    table = Table(
        f"Figure 5: Alternative baselines on Lognormal (n={keys.size:,})",
        ["structure", "lookup ns", "size"],
    )
    measured = {}
    for name, index in contenders:
        result = measure_lookups(index.lookup, queries, repeats=2)
        measured[name] = (result.mean_ns, index.size_bytes())
        table.add_row(name, f"{result.mean_ns:.0f}", format_bytes(index.size_bytes()))
    show_table(table)

    learned_ns, learned_size = measured["multivariate learned index"]
    fast_ns, fast_size = measured["FAST (SIMD tree)"]
    fixed_ns, fixed_size = measured["fixed-size btree + interpolation"]

    # Paper shapes: learned wins on time; FAST is the giant; the
    # size-matched fixed B-Tree is slower than the learned index.
    assert learned_ns == min(ns for ns, _ in measured.values())
    assert fast_size > 10 * learned_size
    assert fixed_size <= learned_size * 1.1
    assert fixed_ns > learned_ns
    console(
        f"[fig5 shape] learned={learned_ns:.0f}ns/{format_bytes(learned_size)}, "
        f"FAST size blowup {fast_size / learned_size:.0f}x, "
        f"fixed-btree {fixed_ns / learned_ns:.2f}x slower at equal size"
    )

    state = {"i": 0}

    def one_lookup():
        q = queries[state["i"] % len(queries)]
        state["i"] += 1
        return learned.lookup(q)

    benchmark(one_lookup)
