"""E11 — Section 3.6: training (build) cost of learned indexes.

Paper: "for 200M records training a simple RMI index does not take
much longer than a few seconds" because linear leaves have closed-form
fits and the top model converges on a sample.

This benchmark measures build time per key for the RMI (linear root and
NN root), the hybrid index, and the B-Tree baseline, plus the effect of
the Section 3.6 sampling trick on root training.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import Table
from repro.btree import BTreeIndex
from repro.core import HybridIndex, RecursiveModelIndex
from repro.models import LinearModel, NeuralRegressionModel

from conftest import console, show_table


def _timed(builder):
    start = time.perf_counter()
    built = builder()
    return built, time.perf_counter() - start


def test_training_time(fig4_datasets, benchmark):
    keys = fig4_datasets["lognormal"]
    leaves = max(keys.size // 2_000, 8)
    table = Table(
        f"Section 3.6: build cost (lognormal, n={keys.size:,})",
        ["structure", "build seconds", "ns per key"],
    )
    rows = {}
    builders = [
        ("btree page=128", lambda: BTreeIndex(keys, page_size=128)),
        (
            "RMI linear root",
            lambda: RecursiveModelIndex(keys, stage_sizes=(1, leaves)),
        ),
        (
            "RMI NN root (sampled training)",
            lambda: RecursiveModelIndex(
                keys,
                stage_sizes=(1, leaves),
                model_factories=[
                    lambda: NeuralRegressionModel(
                        hidden=(16,), epochs=5, max_train_samples=20_000
                    ),
                    LinearModel,
                ],
            ),
        ),
        (
            "hybrid threshold=128",
            lambda: HybridIndex(keys, stage_sizes=(1, leaves), threshold=128),
        ),
    ]
    for name, builder in builders:
        _built, seconds = _timed(builder)
        rows[name] = seconds
        table.add_row(
            name, f"{seconds:.2f}", f"{seconds / keys.size * 1e9:.0f}"
        )
    show_table(table)

    # Shape: RMI builds are "not much longer than a few seconds" even in
    # Python at bench scale, and closed-form training is the fast path.
    assert rows["RMI linear root"] < 30.0
    assert rows["RMI linear root"] < rows["RMI NN root (sampled training)"]
    console(
        f"[training shape] linear-root RMI builds at "
        f"{rows['RMI linear root'] / keys.size * 1e9:.0f}ns/key"
    )

    benchmark(lambda: RecursiveModelIndex(keys[:20_000], stage_sizes=(1, 16)))
