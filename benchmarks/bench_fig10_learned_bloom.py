"""E5 — Figure 10: Learned Bloom filter memory footprint vs FPR.

Paper: URL blacklist keys, character-level GRU (W=16/32/128, E=32);
the learned filter (classifier + overflow filter) beats the standard
Bloom filter's memory at equal overall FPR across a wide range, with
different model sizes optimal at different FPR targets (W=16 at ~36%
saving at 1% FPR, 15% saving at 0.1%).

Shape to reproduce: the learned curves sit below the Bloom-filter curve
over a range of FPRs, and the *bigger* GRU only pays off (if at all) at
tighter FPRs — at loose FPRs its fixed model cost dominates.
"""

from __future__ import annotations

import numpy as np

from repro.bench import Table, format_bytes
from repro.bloom import BloomFilter
from repro.core import LearnedBloomFilter
from repro.data import url_dataset
from repro.models import GRUClassifier

from conftest import console, scaled, show_table

FPR_GRID = (0.02, 0.01, 0.005, 0.001)
WIDTHS = (16, 32)  # W=128 is gated behind REPRO_SCALE >= 4 (train cost)


def _train_gru(width, keys, train_negs, epochs=3):
    model = GRUClassifier(width=width, embedding_dim=32, max_length=48, seed=0)
    labels = np.array([1.0] * len(keys) + [0.0] * len(train_negs))
    model.fit(
        keys + train_negs,
        labels,
        epochs=epochs,
        batch_size=256,
        learning_rate=5e-3,
    )
    return model


def test_figure10_learned_bloom_footprint(benchmark):
    n_keys = scaled(25_000)
    keys, negatives = url_dataset(n_keys, n_keys, seed=42)
    third = len(negatives) // 3
    train_negs = negatives[:third]
    validation = negatives[third:2 * third]
    test = negatives[2 * third:]

    from conftest import SCALE

    widths = WIDTHS + ((128,) if SCALE >= 4 else ())

    models = {w: _train_gru(w, keys, train_negs) for w in widths}

    table = Table(
        f"Figure 10: Memory footprint vs FPR (|K|={len(keys):,} URLs, "
        "learned = GRU + overflow filter)",
        ["target FPR", "bloom filter"]
        + [f"W={w},E=32" for w in widths]
        + [f"measured FPR (W={widths[0]})"],
    )
    results = {}
    for target in FPR_GRID:
        plain = BloomFilter.for_capacity(len(keys), target)
        row = [f"{target:.3%}", format_bytes(plain.size_bytes())]
        for width in widths:
            learned = LearnedBloomFilter(
                models[width], keys, validation, target_fpr=target
            )
            results[(target, width)] = (
                learned.size_bytes(),
                plain.size_bytes(),
                learned.measured_fpr(test),
                learned.false_negative_rate,
            )
            row.append(format_bytes(learned.size_bytes()))
        row.append(f"{results[(target, widths[0])][2]:.3%}")
        table.add_row(*row)
    show_table(table)

    # Shape assertions: learned beats plain somewhere on the curve, the
    # no-false-negative contract held everywhere (checked at build), and
    # measured FPR tracks the target.
    savings = {
        (target, width): 1 - size / plain
        for (target, width), (size, plain, _fpr, _fnr) in results.items()
    }
    best = max(savings.values())
    assert best > 0.1, "learned filter never beat the standard filter"
    for (target, width), (_s, _p, fpr, _f) in results.items():
        assert fpr <= target * 3 + 0.002, (target, width, fpr)
    # model size is constant, so savings must grow as the FPR tightens
    w0 = widths[0]
    assert savings[(FPR_GRID[-1], w0)] > savings[(FPR_GRID[0], w0)]
    console(
        "[fig10 shape] savings: "
        + ", ".join(
            f"p*={t:.3%}/W={w}: {s:+.0%}" for (t, w), s in sorted(savings.items())
        )
    )

    # Spot-check zero false negatives end to end.
    learned = LearnedBloomFilter(
        models[w0], keys, validation, target_fpr=0.01
    )
    assert all(k in learned for k in keys[:1_000])

    probes = keys[:256]
    state = {"i": 0}

    def one_query():
        q = probes[state["i"] & 255]
        state["i"] += 1
        return q in learned

    benchmark(one_query)
