"""E8 — Appendix E: Bloom filter with model-hashes.

Paper: discretizing the classifier into an m-bit bitmap plus an
auxiliary filter at FPR_B = p*/FPR_m gives bigger savings than the
tau-threshold construction — 27.4% vs 15% at p*=0.1%, 41% vs 36% at
p*=1% (with m = 1,000,000 bits).

Shape to reproduce: at the same overall FPR target, the model-hash
variant's total size is at most that of the Section 5.1.1 variant for
a well-chosen m, and both beat the standard filter.
"""

from __future__ import annotations

import numpy as np

from repro.bench import Table, format_bytes
from repro.bloom import BloomFilter
from repro.core import LearnedBloomFilter, ModelHashBloomFilter
from repro.data import url_dataset
from repro.models import GRUClassifier

from conftest import console, scaled, show_table

TARGETS = (0.01, 0.001)


def test_appendixE_model_hash_bloom(benchmark):
    n_keys = scaled(50_000)
    keys, negatives = url_dataset(n_keys, n_keys, seed=42)
    third = len(negatives) // 3
    train_negs = negatives[:third]
    validation = negatives[third:2 * third]
    test = negatives[2 * third:]

    model = GRUClassifier(width=8, embedding_dim=16, max_length=40, seed=0)
    labels = np.array([1.0] * len(keys) + [0.0] * len(train_negs))
    model.fit(
        keys + train_negs,
        labels,
        epochs=2,
        batch_size=512,
        learning_rate=5e-3,
    )

    # The paper scans over m; we sweep a grid around |K| and keep the
    # best total size per target.
    bitmap_grid = [
        max(len(keys) // 2, 1_024),
        len(keys),
        len(keys) * 2,
        len(keys) * 4,
        len(keys) * 8,
    ]

    table = Table(
        f"Appendix E: model-hash Bloom filter (m swept over "
        f"{bitmap_grid}, |K|={len(keys):,})",
        [
            "target FPR",
            "bloom filter",
            "tau-variant (5.1.1)",
            "model-hash (App E)",
            "best m",
            "measured FPR (model-hash)",
        ],
    )
    results = {}
    for target in TARGETS:
        plain = BloomFilter.for_capacity(len(keys), target)
        tau_variant = LearnedBloomFilter(
            model, keys, validation, target_fpr=target
        )
        best = None
        for bits in bitmap_grid:
            candidate = ModelHashBloomFilter(
                model, keys, validation, target_fpr=target, bitmap_bits=bits
            )
            if best is None or candidate.size_bytes() < best.size_bytes():
                best = candidate
        model_hash = best
        fpr = model_hash.measured_fpr(test)
        results[target] = (
            plain.size_bytes(),
            tau_variant.size_bytes(),
            model_hash.size_bytes(),
            fpr,
        )
        table.add_row(
            f"{target:.2%}",
            format_bytes(plain.size_bytes()),
            format_bytes(tau_variant.size_bytes()),
            format_bytes(model_hash.size_bytes()),
            str(model_hash.bitmap_bits),
            f"{fpr:.3%}",
        )
        # zero false negatives, per the existence-index contract
        assert all(k in model_hash for k in keys[:800])
    show_table(table)

    for target, (plain, tau_size, mh_size, fpr) in results.items():
        assert fpr <= target * 3 + 0.002
        assert mh_size < plain, f"model-hash must beat plain at {target}"
        assert tau_size < plain, f"tau variant must beat plain at {target}"
    # Known deviation from the paper: App E reports the model-hash
    # variant beating the tau variant (27.4% vs 15% at p*=0.1%).  Our
    # synthetic key set deliberately contains benign-looking phishing
    # keys (for a realistic non-zero FNR), and those keys overlap the
    # non-key score region — which poisons the low end of the bitmap
    # discretization and costs the model-hash variant most of its edge.
    # Both constructions still beat the standard filter; see
    # EXPERIMENTS.md E8 for the full discussion.
    console(
        "[appE shape] savings vs plain: "
        + ", ".join(
            f"p*={t:.1%}: tau {1 - r[1] / r[0]:+.0%} / model-hash "
            f"{1 - r[2] / r[0]:+.0%}"
            for t, r in results.items()
        )
    )

    probes = keys[:256]
    model_hash = ModelHashBloomFilter(
        model, keys, validation, target_fpr=0.01, bitmap_bits=len(keys) * 4
    )
    state = {"i": 0}

    def one_query():
        q = probes[state["i"] & 255]
        state["i"] += 1
        return q in model_hash

    benchmark(one_query)
