"""Serving benchmark: request coalescing + sharded stores (ISSUE 8).

The batch engine's throughput only materializes if the serving layer
feeds it batches.  This benchmark measures the two halves of that
story end to end:

* **coalescing** — closed-loop clients at 1/4/16 concurrency issue
  single-key lookups against (a) a per-request front end that calls
  the store once per request and (b) the
  :class:`~repro.serving.coalescer.CoalescingIndexServer`, which
  gathers every request arriving in an event-loop tick into one
  ``lookup_batch``.  Reported per cell: ops/s and request-latency
  p50/p99/p99.9.  The per-request cost is constant, so the coalesced
  advantage grows with concurrency — the gate requires >= 5x at 16
  clients.  An open-loop section then fixes the arrival rate and
  reports latency against *scheduled* arrival times (the
  coordinated-omission-safe form).
* **sharding** — bulk-loaded :class:`ShardedLSMStore` at 1 vs 4
  shards, large read batches fanned out ``via="worker"`` so each
  shard's kernels run in its own process.  On a multi-core box the
  gate requires >= 2x read throughput from 1 -> 4 shards; on smaller
  runners (CI containers often expose a single vCPU, where four
  workers timeshare one core and IPC is pure overhead) the gate
  degrades to a sanity floor and the CPU count is recorded alongside
  the ratio.
* **correctness** — every path is checked bit-identical against a
  single ``LearnedLSMStore`` oracle before any throughput number is
  believed.

Run standalone (not a pytest file):

    PYTHONPATH=src python benchmarks/bench_serving.py
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke --json

``--json`` appends a record to the shared ``BENCH_throughput.json``
trajectory (tagged ``"section": "serving"``); the exit code enforces
the gates.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_throughput import append_trajectory  # noqa: E402

from repro.bench import Table  # noqa: E402
from repro.lsm import LearnedLSMStore  # noqa: E402
from repro.obs import summarize_latencies  # noqa: E402
from repro.serving import (  # noqa: E402
    CoalescingIndexServer,
    ShardedLSMStore,
)

#: ISSUE 8 acceptance: coalesced throughput >= 5x the per-request
#: front end at 16 concurrent clients.
COALESCE_MIN_SPEEDUP_16 = 5.0

#: ISSUE 8 acceptance on multi-core hardware: worker-fanout read
#: throughput >= 2x from 1 shard to 4.  Judged only when the box has
#: at least SHARD_GATE_MIN_CPUS cores — four workers on one vCPU
#: timeshare a single core, so the parallel win cannot physically
#: exist there and only the sanity floor applies.
SHARD_MIN_SCALING = 2.0
SHARD_GATE_MIN_CPUS = 4
#: Below the CPU threshold: 4-shard throughput may not collapse under
#: IPC overhead to less than this fraction of 1-shard throughput.
SHARD_SANITY_FLOOR = 0.25

CONCURRENCY_LEVELS = (1, 4, 16)


# ---------------------------------------------------------------------------
# closed-loop coalescing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClosedLoopResult:
    frontend: str
    clients: int
    total_ops: int
    ops_per_sec: float
    p50_us: float
    p99_us: float
    p999_us: float
    mean_batch: float
    identical: bool


def _percentiles(latencies: np.ndarray) -> tuple[float, float, float]:
    """Microsecond p50/p99/p99.9 via the shared obs histogram — the
    same quantile math the throughput bench and the serving stack's
    online latency histograms use."""
    p50, p99, p999 = summarize_latencies(latencies, (50.0, 99.0, 99.9))
    return p50 * 1e6, p99 * 1e6, p999 * 1e6


async def _closed_loop(
    request_fn, queries: np.ndarray, clients: int, ops_per_client: int
) -> tuple[float, np.ndarray, np.ndarray]:
    """``clients`` coroutines, each awaiting one request at a time.

    Returns (elapsed seconds, per-request latencies, gathered values).
    """
    latencies = np.empty(clients * ops_per_client)
    values = np.empty(clients * ops_per_client, dtype=np.int64)

    async def client(c: int) -> None:
        base = c * ops_per_client
        for i in range(ops_per_client):
            key = int(queries[base + i])
            t0 = time.perf_counter()
            value = await request_fn(key)
            latencies[base + i] = time.perf_counter() - t0
            values[base + i] = -1 if value is None else value

    start = time.perf_counter()
    await asyncio.gather(*(client(c) for c in range(clients)))
    elapsed = time.perf_counter() - start
    return elapsed, latencies, values


def run_closed_loop(
    store, queries: np.ndarray, expected: np.ndarray,
    ops_per_client: int, *, label_suffix: str = "",
) -> list[ClosedLoopResult]:
    """Per-request vs coalesced front ends at each concurrency level.

    ``expected`` holds the oracle's answer per query (-1 for absent);
    every cell is bit-checked against it, so a front end that corrupts
    the scatter cannot post a throughput number.
    """
    results: list[ClosedLoopResult] = []

    async def per_request(key: int):
        # What a non-batching server does: one store call per request.
        # The sleep(0) is the fairness yield any real async handler
        # pays between requests.
        await asyncio.sleep(0)
        values, found = store.lookup_batch(
            np.array([key], dtype=np.int64)
        )
        return int(values[0]) if found[0] else None

    for clients in CONCURRENCY_LEVELS:
        total = clients * ops_per_client
        workload = queries[:total]
        expect = expected[:total]

        elapsed, lat, got = asyncio.run(
            _closed_loop(per_request, workload, clients, ops_per_client)
        )
        p50, p99, p999 = _percentiles(lat)
        results.append(ClosedLoopResult(
            frontend="per-request" + label_suffix,
            clients=clients,
            total_ops=total,
            ops_per_sec=total / elapsed,
            p50_us=p50, p99_us=p99, p999_us=p999,
            mean_batch=1.0,
            identical=bool(np.array_equal(got, expect)),
        ))

        async def coalesced_run():
            srv = CoalescingIndexServer(store)
            out = await _closed_loop(
                srv.lookup, workload, clients, ops_per_client
            )
            return out, srv.stats

        (elapsed, lat, got), stats = asyncio.run(coalesced_run())
        p50, p99, p999 = _percentiles(lat)
        results.append(ClosedLoopResult(
            frontend="coalesced" + label_suffix,
            clients=clients,
            total_ops=total,
            ops_per_sec=total / elapsed,
            p50_us=p50, p99_us=p99, p999_us=p999,
            mean_batch=stats.mean_point_batch(),
            identical=bool(np.array_equal(got, expect)),
        ))
    return results


def render_closed_loop(results: list[ClosedLoopResult]) -> str:
    table = Table(
        "Closed-loop serving: per-request front end vs coalescing "
        "server",
        [
            "frontend", "clients", "ops", "ops/s",
            "p50", "p99", "p99.9", "mean batch", "identical",
        ],
    )
    for r in results:
        table.add_row(
            r.frontend,
            str(r.clients),
            f"{r.total_ops:,}",
            f"{r.ops_per_sec:,.0f}",
            f"{r.p50_us:,.0f}us",
            f"{r.p99_us:,.0f}us",
            f"{r.p999_us:,.0f}us",
            f"{r.mean_batch:.1f}",
            "yes" if r.identical else "NO",
        )
    return table.render()


# ---------------------------------------------------------------------------
# open-loop coalescing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OpenLoopResult:
    rate_per_sec: int
    requests: int
    achieved_per_sec: float
    p50_us: float
    p99_us: float
    p999_us: float
    identical: bool


async def _open_loop(
    srv: CoalescingIndexServer,
    queries: np.ndarray,
    rate: int,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Fixed-rate arrivals; latency is measured from each request's
    *scheduled* arrival, so queueing delay under overload is charged
    to the server rather than silently dropped (coordinated
    omission)."""
    n = queries.size
    latencies = np.empty(n)
    values = np.empty(n, dtype=np.int64)
    start = time.perf_counter()

    async def one(i: int) -> None:
        scheduled = start + i / rate
        delay = scheduled - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        value = await srv.lookup(int(queries[i]))
        latencies[i] = time.perf_counter() - scheduled
        values[i] = -1 if value is None else value

    await asyncio.gather(*(one(i) for i in range(n)))
    elapsed = time.perf_counter() - start
    return latencies, values, elapsed


def run_open_loop(
    store, queries: np.ndarray, expected: np.ndarray,
    rates: tuple[int, ...], requests: int,
) -> list[OpenLoopResult]:
    results: list[OpenLoopResult] = []
    for rate in rates:
        workload = queries[:requests]
        expect = expected[:requests]

        async def main():
            srv = CoalescingIndexServer(store)
            return await _open_loop(srv, workload, rate)

        latencies, got, elapsed = asyncio.run(main())
        p50, p99, p999 = _percentiles(latencies)
        results.append(OpenLoopResult(
            rate_per_sec=rate,
            requests=requests,
            achieved_per_sec=requests / elapsed,
            p50_us=p50, p99_us=p99, p999_us=p999,
            identical=bool(np.array_equal(got, expect)),
        ))
    return results


def render_open_loop(results: list[OpenLoopResult]) -> str:
    table = Table(
        "Open-loop serving: fixed arrival rate through the coalescer "
        "(latency vs scheduled arrival)",
        [
            "target req/s", "requests", "achieved req/s",
            "p50", "p99", "p99.9", "identical",
        ],
    )
    for r in results:
        table.add_row(
            f"{r.rate_per_sec:,}",
            f"{r.requests:,}",
            f"{r.achieved_per_sec:,.0f}",
            f"{r.p50_us:,.0f}us",
            f"{r.p99_us:,.0f}us",
            f"{r.p999_us:,.0f}us",
            "yes" if r.identical else "NO",
        )
    return table.render()


# ---------------------------------------------------------------------------
# sharded scaling
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardScalingResult:
    num_shards: int
    n: int
    batch_size: int
    worker_ops_per_sec: float
    local_ops_per_sec: float
    identical: bool


def run_shard_scaling(
    keys: np.ndarray, values: np.ndarray, queries: np.ndarray,
    expected_values: np.ndarray, expected_found: np.ndarray,
    shard_counts: tuple[int, ...] = (1, 4),
    repeats: int = 3,
) -> list[ShardScalingResult]:
    """Worker-fanout read throughput per shard count.

    One large batch per measurement: the splitter routes it, each
    shard's sub-batch resolves inside its worker process, and the
    client stitches.  The ``local`` column resolves the same batch on
    the client's zero-copy views — the single-process ceiling the
    worker path must beat when real cores exist.
    """
    results: list[ShardScalingResult] = []
    for num_shards in shard_counts:
        with ShardedLSMStore(num_shards, keys, values) as store:
            got_v, got_f = store.lookup_batch(queries, via="worker")
            identical = bool(
                np.array_equal(got_f, expected_found)
                and np.array_equal(
                    got_v[got_f], expected_values[expected_found]
                )
            )
            worker_s = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                store.lookup_batch(queries, via="worker")
                worker_s = min(worker_s, time.perf_counter() - t0)
            local_s = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                store.lookup_batch(queries, via="local")
                local_s = min(local_s, time.perf_counter() - t0)
        results.append(ShardScalingResult(
            num_shards=num_shards,
            n=int(keys.size),
            batch_size=int(queries.size),
            worker_ops_per_sec=queries.size / worker_s,
            local_ops_per_sec=queries.size / local_s,
            identical=identical,
        ))
    return results


def render_shard_scaling(
    results: list[ShardScalingResult], cpus: int
) -> str:
    table = Table(
        "Sharded reads: worker-fanout vs client-local, by shard count",
        [
            "shards", "n", "batch", "worker ops/s",
            "local ops/s", "identical",
        ],
    )
    for r in results:
        table.add_row(
            str(r.num_shards),
            f"{r.n:,}",
            f"{r.batch_size:,}",
            f"{r.worker_ops_per_sec:,.0f}",
            f"{r.local_ops_per_sec:,.0f}",
            "yes" if r.identical else "NO",
        )
    out = table.render()
    base = results[0].worker_ops_per_sec
    top = results[-1].worker_ops_per_sec
    ratio = top / base
    gated = cpus >= SHARD_GATE_MIN_CPUS
    out += (
        f"\nread scaling {results[0].num_shards} -> "
        f"{results[-1].num_shards} shards: {ratio:.2f}x on {cpus} "
        f"CPU(s) ("
        + (
            f"gate: >= {SHARD_MIN_SCALING:.1f}x"
            if gated
            else f"gate waived below {SHARD_GATE_MIN_CPUS} CPUs; "
            f"sanity floor {SHARD_SANITY_FLOOR:.2f}x"
        )
        + ")"
    )
    return out


# ---------------------------------------------------------------------------
# main
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--n", type=int, default=1_000_000,
        help="resident keys in the served store (default 1M)",
    )
    parser.add_argument(
        "--ops-per-client", type=int, default=400,
        help="closed-loop requests each client issues (default 400)",
    )
    parser.add_argument(
        "--open-requests", type=int, default=4_000,
        help="open-loop request count per rate (default 4000)",
    )
    parser.add_argument(
        "--shard-batch", type=int, default=400_000,
        help="query batch size for the shard-scaling section",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI scale: shrink the store and workloads",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="append a record to the BENCH_throughput.json trajectory",
    )
    parser.add_argument(
        "--json-path", type=Path, default=Path("BENCH_throughput.json"),
        help="where --json writes its report",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.n = min(args.n, 100_000)
        args.ops_per_client = min(args.ops_per_client, 150)
        args.open_requests = min(args.open_requests, 1_500)
        args.shard_batch = min(args.shard_batch, 150_000)
    if args.json:
        parent = args.json_path.resolve().parent
        if not parent.is_dir():
            parser.error(f"--json-path directory does not exist: {parent}")

    rng = np.random.default_rng(8)
    keys = np.unique(
        rng.integers(0, 1 << 62, args.n, dtype=np.int64)
    )
    values = keys * 3

    # Closed-loop workload: 90% present / 10% absent, shared across
    # front ends so every cell answers the identical request stream.
    max_ops = max(CONCURRENCY_LEVELS) * args.ops_per_client
    num_queries = max(max_ops, args.open_requests)
    queries = rng.choice(keys, num_queries)
    absent = rng.integers(0, 1 << 62, num_queries // 10, dtype=np.int64)
    queries[:absent.size] = absent
    rng.shuffle(queries)

    store = LearnedLSMStore(keys, values, background=False)
    oracle_v, oracle_f = store.lookup_batch(queries)
    expected = np.where(oracle_f, oracle_v, -1)

    closed = run_closed_loop(
        store, queries, expected, args.ops_per_client
    )
    print(render_closed_loop(closed))

    open_rates = (2_000, 10_000)
    open_results = run_open_loop(
        store, queries, expected, open_rates, args.open_requests
    )
    print()
    print(render_open_loop(open_results))
    store.close()

    # Shard scaling reuses the key set; the query batch is large so
    # the per-shard sub-batches amortize the pipe round trip.
    shard_queries = rng.choice(keys, args.shard_batch)
    shard_absent = rng.integers(
        0, 1 << 62, args.shard_batch // 10, dtype=np.int64
    )
    shard_queries[:shard_absent.size] = shard_absent
    with LearnedLSMStore(keys, values, background=False) as oracle:
        shard_v, shard_f = oracle.lookup_batch(shard_queries)
    cpus = os.cpu_count() or 1
    scaling = run_shard_scaling(
        keys, values, shard_queries, shard_v, shard_f
    )
    print()
    print(render_shard_scaling(scaling, cpus))

    by_cell = {(r.frontend, r.clients): r for r in closed}
    speedup_16 = (
        by_cell[("coalesced", 16)].ops_per_sec
        / by_cell[("per-request", 16)].ops_per_sec
    )
    scaling_ratio = (
        scaling[-1].worker_ops_per_sec / scaling[0].worker_ops_per_sec
    )
    all_identical = (
        all(r.identical for r in closed)
        and all(r.identical for r in open_results)
        and all(r.identical for r in scaling)
    )
    print(
        f"\ncoalesced vs per-request at 16 clients: {speedup_16:.1f}x "
        f"(gate: >= {COALESCE_MIN_SPEEDUP_16:.0f}x); "
        f"mean coalesced batch at 16 clients: "
        f"{by_cell[('coalesced', 16)].mean_batch:.1f} keys; "
        f"all results oracle-identical: {all_identical}"
    )

    if args.json:
        record = {
            "recorded_at": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "section": "serving",
            "n": int(keys.size),
            "smoke": args.smoke,
            "cpus": cpus,
            "coalesce_min_speedup_16": COALESCE_MIN_SPEEDUP_16,
            "coalesce_speedup_16": speedup_16,
            "shard_min_scaling": SHARD_MIN_SCALING,
            "shard_gate_min_cpus": SHARD_GATE_MIN_CPUS,
            "shard_scaling_ratio": scaling_ratio,
            "all_identical": all_identical,
            "closed_loop": [asdict(r) for r in closed],
            "open_loop": [asdict(r) for r in open_results],
            "shard_scaling": [asdict(r) for r in scaling],
        }
        payload = append_trajectory(args.json_path, record)
        print(
            f"wrote {args.json_path} "
            f"({len(payload['trajectory'])} trajectory entries)"
        )

    ok = all_identical
    ok = ok and speedup_16 >= COALESCE_MIN_SPEEDUP_16
    if cpus >= SHARD_GATE_MIN_CPUS:
        ok = ok and scaling_ratio >= SHARD_MIN_SCALING
    else:
        # One core: four workers timeshare it, so parallel speedup is
        # physically impossible; only guard against IPC collapse.
        ok = ok and scaling_ratio >= SHARD_SANITY_FLOOR
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
