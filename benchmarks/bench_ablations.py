"""E12 — Ablations over the design choices DESIGN.md calls out.

Not a paper table; these benches justify the reproduction's own design
decisions and quantify the paper's qualitative remarks:

* search-strategy ablation (Section 3.4): error-bounded binary vs
  biased binary vs biased quaternary vs bound-free exponential search,
  in comparisons per lookup;
* second-stage size sweep: error window vs leaf count (the Figure 4
  size/accuracy dial);
* stage-count ablation: 2-stage vs 3-stage RMI;
* misprediction fix-up rate: how often the Section 3.4 widening path
  fires for absent keys (the monotonicity discussion).
"""

from __future__ import annotations

import numpy as np

from repro.bench import Table, measure_lookups
from repro.core import RecursiveModelIndex
from repro.models import LinearModel

from conftest import console, query_mix, show_table

STRATEGIES = ("binary", "biased_binary", "biased_quaternary", "exponential")


def test_ablation_search_strategies(fig4_datasets, query_rng, benchmark):
    keys = fig4_datasets["weblogs"]
    leaves = max(keys.size // 2_000, 8)
    queries = query_mix(keys, query_rng, count=1_500)
    table = Table(
        "Ablation: last-mile search strategy (weblogs)",
        ["strategy", "lookup ns", "comparisons/lookup"],
    )
    comparisons = {}
    indexes = {}
    for strategy in STRATEGIES:
        index = RecursiveModelIndex(
            keys, stage_sizes=(1, leaves), search_strategy=strategy
        )
        indexes[strategy] = index
        result = measure_lookups(index.lookup, queries, repeats=2)
        index.stats.reset()
        for q in queries:
            index.lookup(q)
        per_lookup = index.stats.comparisons / index.stats.lookups
        comparisons[strategy] = per_lookup
        table.add_row(strategy, f"{result.mean_ns:.0f}", f"{per_lookup:.1f}")
    show_table(table)

    # Bounded strategies beat unbounded exponential in comparisons;
    # biasing the first probe cannot hurt the bounded search much.
    assert comparisons["binary"] <= comparisons["exponential"] * 1.2
    assert comparisons["biased_binary"] <= comparisons["binary"] + 1.5
    console(
        "[ablation search] comparisons/lookup: "
        + ", ".join(f"{s}={c:.1f}" for s, c in comparisons.items())
    )

    index = indexes["binary"]
    state = {"i": 0}

    def one_lookup():
        q = queries[state["i"] % len(queries)]
        state["i"] += 1
        return index.lookup(q)

    benchmark(one_lookup)


def test_ablation_leaf_count_sweep(fig4_datasets, benchmark):
    keys = fig4_datasets["lognormal"]
    table = Table(
        "Ablation: second-stage size vs error window (lognormal)",
        ["leaves", "mean window", "max window", "size bytes"],
    )
    windows = []
    for leaves in (16, 64, 256, 1024, 4096):
        index = RecursiveModelIndex(keys, stage_sizes=(1, leaves))
        windows.append(index.mean_error_window)
        table.add_row(
            str(leaves),
            f"{index.mean_error_window:.1f}",
            str(index.max_error_window),
            str(index.size_bytes()),
        )
    show_table(table)
    # More experts -> monotonically smaller mean windows (Section 3.2).
    assert all(a >= b * 0.9 for a, b in zip(windows, windows[1:]))
    assert windows[-1] < windows[0] / 4
    console(f"[ablation leaves] windows: {['%.0f' % w for w in windows]}")

    benchmark(lambda: RecursiveModelIndex(keys[:20_000], stage_sizes=(1, 64)))


def test_ablation_stage_count(fig4_datasets, query_rng, benchmark):
    keys = fig4_datasets["weblogs"]
    queries = query_mix(keys, query_rng, count=1_000)
    leaves = max(keys.size // 2_000, 8)
    two_stage = RecursiveModelIndex(keys, stage_sizes=(1, leaves))
    three_stage = RecursiveModelIndex(
        keys,
        stage_sizes=(1, 32, leaves),
        model_factories=[LinearModel, LinearModel, LinearModel],
    )
    two_ns = measure_lookups(two_stage.lookup, queries, repeats=2)
    three_ns = measure_lookups(three_stage.lookup, queries, repeats=2)
    table = Table(
        "Ablation: number of RMI stages (weblogs)",
        ["stages", "lookup ns", "mean window", "size bytes"],
    )
    table.add_row(
        "2", f"{two_ns.mean_ns:.0f}", f"{two_stage.mean_error_window:.1f}",
        str(two_stage.size_bytes()),
    )
    table.add_row(
        "3", f"{three_ns.mean_ns:.0f}", f"{three_stage.mean_error_window:.1f}",
        str(three_stage.size_bytes()),
    )
    show_table(table)
    # An intermediate routing stage can sharpen leaf assignment on hard
    # data; it must at least stay correct and comparable.
    for q in queries[:200]:
        assert two_stage.lookup(q) == three_stage.lookup(q)
    console(
        f"[ablation stages] 2-stage window={two_stage.mean_error_window:.0f} "
        f"3-stage window={three_stage.mean_error_window:.0f}"
    )

    state = {"i": 0}

    def one_lookup():
        q = queries[state["i"] % len(queries)]
        state["i"] += 1
        return three_stage.lookup(q)

    benchmark(one_lookup)


def test_ablation_fixup_rate(fig4_datasets, query_rng, benchmark):
    """How often the Section 3.4 widening fix-up fires for absent keys."""
    table = Table(
        "Ablation: misprediction fix-up rate (absent-key lookups)",
        ["dataset", "fixups / 10k absent lookups"],
    )
    rates = {}
    for name, keys in fig4_datasets.items():
        index = RecursiveModelIndex(
            keys, stage_sizes=(1, max(keys.size // 2_000, 8))
        )
        absent = [
            float(q)
            for q in query_rng.integers(keys.min(), keys.max(), size=10_000)
        ]
        index.stats.reset()
        for q in absent:
            index.lookup(q)
        rates[name] = index.stats.fixups
        table.add_row(name, str(index.stats.fixups))
    show_table(table)
    # Fix-ups must be rare — the bounded search handles the bulk.
    for name, fixups in rates.items():
        assert fixups < 1_000, name
    console(f"[ablation fixups] {rates}")

    keys = fig4_datasets["maps"]
    index = RecursiveModelIndex(keys, stage_sizes=(1, 64))
    benchmark(lambda: index.lookup(float(keys[0]) + 0.5))
