"""Standard Bloom filter (Section 5 baseline).

"Internally, Bloom filters use a bit array of size m and k hash
functions, which each map a key to one of the m array positions."

Implements the classic filter with double hashing (h1 + i*h2, the
Kirsch-Mitzenmacher construction, which preserves the asymptotic FPR of
k independent hashes), optimal parameter selection from (n, target
FPR), and measured-FPR evaluation — Figure 10's baseline curve comes
from :meth:`BloomFilter.size_bytes` at each target FPR.
"""

from __future__ import annotations

import math
import struct

import numpy as np

from ..hashmap.hashing import murmur3_string, murmur_fmix64, murmur_fmix64_batch

__all__ = ["BloomFilter", "optimal_bits", "optimal_hash_count"]


def optimal_bits(n: int, fpr: float) -> int:
    """m = -n ln(p) / (ln 2)^2, the classic optimum."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if not 0.0 < fpr < 1.0:
        raise ValueError("fpr must be in (0, 1)")
    if n == 0:
        return 8
    return max(8, int(math.ceil(-n * math.log(fpr) / (math.log(2) ** 2))))


def optimal_hash_count(m: int, n: int) -> int:
    """k = (m/n) ln 2, at least 1."""
    if n <= 0:
        return 1
    return max(1, int(round(m / n * math.log(2))))


class BloomFilter:
    """Bit-array Bloom filter over string or integer keys."""

    def __init__(self, num_bits: int, num_hashes: int):
        if num_bits < 1:
            raise ValueError("num_bits must be >= 1")
        if num_hashes < 1:
            raise ValueError("num_hashes must be >= 1")
        self.num_bits = int(num_bits)
        self.num_hashes = int(num_hashes)
        self._bits = np.zeros((self.num_bits + 7) // 8, dtype=np.uint8)
        self.count = 0

    @classmethod
    def for_capacity(cls, n: int, fpr: float) -> "BloomFilter":
        """Optimally sized filter for ``n`` keys at the target FPR."""
        m = optimal_bits(n, fpr)
        k = optimal_hash_count(m, max(n, 1))
        return cls(m, k)

    # -- hashing --------------------------------------------------------------

    def _hash_pair(self, key) -> tuple[int, int]:
        if isinstance(key, str):
            h1 = murmur3_string(key, seed=0x9747B28C)
            h2 = murmur3_string(key, seed=0x1B873593)
        else:
            h = murmur_fmix64(int(key), seed=1)
            h1, h2 = h & 0xFFFFFFFF, (h >> 32) & 0xFFFFFFFF
        # Double hashing degenerates if h2 == 0 mod m.
        if h2 % self.num_bits == 0:
            h2 += 1
        return h1, h2

    def _positions(self, key) -> list[int]:
        h1, h2 = self._hash_pair(key)
        m = self.num_bits
        return [(h1 + i * h2) % m for i in range(self.num_hashes)]

    def _positions_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_positions` for an integer key array.

        Returns an ``(n, k)`` int64 array of bit positions, bit-exact
        with the scalar double-hashing schedule: ``h1``/``h2`` are the
        two 32-bit halves of the same fmix64 hash, with the identical
        ``h2 % m == 0`` degeneracy bump.
        """
        h = murmur_fmix64_batch(keys.astype(np.int64, copy=False), seed=1)
        m = np.uint64(self.num_bits)
        h1 = h & np.uint64(0xFFFFFFFF)
        h2 = h >> np.uint64(32)
        h2 = np.where(h2 % m == 0, h2 + np.uint64(1), h2)
        i = np.arange(self.num_hashes, dtype=np.uint64)
        return ((h1[:, None] + i[None, :] * h2[:, None]) % m).astype(np.int64)

    @staticmethod
    def _as_int_array(keys) -> np.ndarray | None:
        """``keys`` as an integer ndarray, or None for the scalar path
        (strings, object dtypes, ints overflowing int64)."""
        if isinstance(keys, np.ndarray) and keys.dtype.kind in "iu":
            return keys.ravel()
        try:
            arr = np.asarray(keys)
        except (ValueError, OverflowError):
            return None
        return arr.ravel() if arr.dtype.kind in "iu" else None

    # -- operations ------------------------------------------------------------

    def add(self, key) -> None:
        for pos in self._positions(key):
            self._bits[pos >> 3] |= 1 << (pos & 7)
        self.count += 1

    def add_batch(self, keys) -> None:
        """Add every key; integer arrays take one vectorized pass.

        The vectorized path hashes the whole batch with
        :func:`~repro.hashmap.hashing.murmur_fmix64_batch` and sets all
        ``n * k`` bits with a single ``np.bitwise_or.at`` scatter —
        this is what makes sealing an LSM memtable into a bloom-guarded
        run cheap.  Bit-exact with the per-key loop.
        """
        arr = self._as_int_array(keys)
        if arr is None:
            for key in keys:
                self.add(key)
            return
        if arr.size == 0:
            return
        positions = self._positions_batch(arr).ravel()
        np.bitwise_or.at(
            self._bits,
            positions >> 3,
            np.left_shift(np.uint8(1), (positions & 7).astype(np.uint8)),
        )
        self.count += int(arr.size)

    def __contains__(self, key) -> bool:
        bits = self._bits
        for pos in self._positions(key):
            if not (bits[pos >> 3] >> (pos & 7)) & 1:
                return False
        return True

    def contains_batch(self, keys) -> np.ndarray:
        """Batched membership: one bool per key.

        Integer arrays hash in one vectorized
        :func:`~repro.hashmap.hashing.murmur_fmix64_batch` pass; for
        string keys hashing stays per-key (murmur over strings is
        scalar Python) but the ``k`` bit probes per key are still
        gathered with one vectorized bitmap read per batch.
        """
        arr = self._as_int_array(keys)
        if arr is not None:
            if arr.size == 0:
                return np.zeros(0, dtype=bool)
            positions = self._positions_batch(arr)
        else:
            keys = list(keys)
            if not keys:
                return np.zeros(0, dtype=bool)
            positions = np.array(
                [self._positions(key) for key in keys], dtype=np.int64
            )
        probes = (self._bits[positions >> 3] >> (positions & 7)) & 1
        return probes.all(axis=1)

    # -- serialization ------------------------------------------------------------

    _WIRE = struct.Struct("<4sIIQ")
    _WIRE_MAGIC = b"BLM1"

    def to_bytes(self) -> bytes:
        """Wire form: packed parameters + the raw bit array.

        Bit-exact round trip with :meth:`from_bytes` — a persisted LSM
        run reloads its guard instead of rehashing every key, and the
        reloaded filter answers every probe identically (same bits,
        same double-hashing schedule).
        """
        return self._WIRE.pack(
            self._WIRE_MAGIC, self.num_bits, self.num_hashes, self.count
        ) + self._bits.tobytes()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "BloomFilter":
        """Inverse of :meth:`to_bytes`; ValueError on malformed input."""
        if len(blob) < cls._WIRE.size:
            raise ValueError("bloom blob too short")
        magic, num_bits, num_hashes, count = cls._WIRE.unpack_from(blob)
        if magic != cls._WIRE_MAGIC:
            raise ValueError(f"bad bloom magic {magic!r}")
        bits = np.frombuffer(blob, dtype=np.uint8, offset=cls._WIRE.size)
        expected = (num_bits + 7) // 8
        if bits.size != expected:
            raise ValueError(
                f"bloom blob carries {bits.size} bit-array bytes, "
                f"expected {expected}"
            )
        out = cls(num_bits, num_hashes)
        out._bits = bits.copy()  # frombuffer views are read-only
        out.count = int(count)
        return out

    # -- evaluation ---------------------------------------------------------------

    def measured_fpr(self, non_keys) -> float:
        """Empirical FPR over a held-out non-key sample."""
        if not len(non_keys):
            return 0.0
        hits = sum(1 for key in non_keys if key in self)
        return hits / len(non_keys)

    def expected_fpr(self) -> float:
        """(1 - e^{-kn/m})^k with the current occupancy."""
        if self.count == 0:
            return 0.0
        k, n, m = self.num_hashes, self.count, self.num_bits
        return (1.0 - math.exp(-k * n / m)) ** k

    def fill_ratio(self) -> float:
        """Fraction of set bits (diagnostics)."""
        set_bits = int(np.unpackbits(self._bits).sum())
        return set_bits / (len(self._bits) * 8)

    def size_bytes(self) -> int:
        return len(self._bits)

    def __repr__(self) -> str:
        return (
            f"BloomFilter(bits={self.num_bits}, k={self.num_hashes}, "
            f"n={self.count}, size={self.size_bytes()}B)"
        )
