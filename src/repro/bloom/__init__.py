"""Existence-index substrate: the standard Bloom filter baseline."""

from .standard import BloomFilter, optimal_bits, optimal_hash_count

__all__ = ["BloomFilter", "optimal_bits", "optimal_hash_count"]
