"""Appendix A: theoretical scaling of learned range indexes.

The paper derives, for i.i.d. data sampled from a known CDF F:

    E[(F(x) - F_hat_N(x))^2] = F(x)(1 - F(x)) / N        (Eq. 3)

so the expected *position* error |N F(x) - N F_hat_N(x)| grows as
O(sqrt(N)) for a constant-size model — sub-linear, versus the O(N)
growth of a constant-size B-Tree (whose page count, and hence page
size at fixed index size, must grow linearly).

This module provides the analytic quantities plus an empirical
estimator used by the E10 benchmark to verify the sqrt(N) exponent,
and the Dvoretzky–Kiefer–Wolfowitz bound the paper cites as the
classical grounding ([28]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "expected_squared_cdf_error",
    "expected_position_error",
    "dkw_bound",
    "empirical_position_error",
    "fit_error_exponent",
    "ScalingMeasurement",
]


def expected_squared_cdf_error(f_x: np.ndarray, n: int) -> np.ndarray:
    """Eq. 3: variance of the empirical CDF at points with F(x)=f_x."""
    f_x = np.asarray(f_x, dtype=np.float64)
    if np.any((f_x < 0) | (f_x > 1)):
        raise ValueError("F(x) values must lie in [0, 1]")
    if n < 1:
        raise ValueError("n must be >= 1")
    return f_x * (1.0 - f_x) / float(n)


def expected_position_error(f_x: np.ndarray, n: int) -> np.ndarray:
    """RMS position error N * sqrt(Var) = sqrt(N F(x)(1-F(x)))."""
    return float(n) * np.sqrt(expected_squared_cdf_error(f_x, n))


def dkw_bound(n: int, alpha: float = 0.05) -> float:
    """DKW: with prob >= 1-alpha, sup_x |F_N(x) - F(x)| <= this."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    return float(np.sqrt(np.log(2.0 / alpha) / (2.0 * n)))


@dataclass(frozen=True)
class ScalingMeasurement:
    """Mean absolute position error of the true-CDF model at one N."""

    n: int
    mean_absolute_error: float
    max_absolute_error: float


def empirical_position_error(
    sampler: Callable[[int, int], np.ndarray],
    true_cdf: Callable[[np.ndarray], np.ndarray],
    n: int,
    *,
    seed: int = 0,
) -> ScalingMeasurement:
    """Measure |N F(x) - rank(x)| for a sample of size ``n``.

    ``sampler(n, seed)`` draws the sample; ``true_cdf`` is the known
    generating distribution — the "constant-size model" of Appendix A,
    whose parameter count does not grow with N.
    """
    sample = np.sort(np.asarray(sampler(n, seed), dtype=np.float64))
    ranks = np.arange(1, n + 1, dtype=np.float64)
    predicted = true_cdf(sample) * n
    errors = np.abs(predicted - ranks)
    return ScalingMeasurement(
        n=n,
        mean_absolute_error=float(errors.mean()),
        max_absolute_error=float(errors.max()),
    )


def fit_error_exponent(measurements: list[ScalingMeasurement]) -> float:
    """Log-log slope of mean error vs N (Appendix A predicts ~0.5)."""
    if len(measurements) < 2:
        raise ValueError("need at least two measurements")
    log_n = np.log([m.n for m in measurements])
    log_err = np.log(
        [max(m.mean_absolute_error, 1e-12) for m in measurements]
    )
    slope, _intercept = np.polyfit(log_n, log_err, 1)
    return float(slope)
