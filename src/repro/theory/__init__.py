"""Theoretical analysis utilities (Appendix A)."""

from .scaling import (
    ScalingMeasurement,
    dkw_bound,
    empirical_position_error,
    expected_position_error,
    expected_squared_cdf_error,
    fit_error_exponent,
)

__all__ = [
    "ScalingMeasurement",
    "dkw_bound",
    "empirical_position_error",
    "expected_position_error",
    "expected_squared_cdf_error",
    "fit_error_exponent",
]
