"""Analytic cost model in CPU cycles (Section 2.1).

The paper's back-of-envelope: "traversing a single B-Tree page with
binary search takes roughly 50 cycles", "a modern CPU can do 8-16 SIMD
operations per cycle", "a single cache-miss costs 50-100 additional
cycles".  This module turns those constants into a deterministic cost
model so every range-index benchmark can report paper-scale nanosecond
figures alongside measured Python wall-clock (whose *ratios* are
meaningful but whose absolute values are interpreter-bound).

The model prices a lookup from the structure's own instrumentation:
tree levels visited, comparisons executed, model multiply-adds, and an
estimate of cache misses from the structure's size and access pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CostModel", "CostEstimate", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class CostEstimate:
    """Cycles and derived nanoseconds for one average lookup."""

    model_cycles: float
    search_cycles: float
    cache_miss_cycles: float
    clock_ghz: float

    @property
    def total_cycles(self) -> float:
        return self.model_cycles + self.search_cycles + self.cache_miss_cycles

    @property
    def total_ns(self) -> float:
        return self.total_cycles / self.clock_ghz

    @property
    def model_ns(self) -> float:
        return self.model_cycles / self.clock_ghz

    def __repr__(self) -> str:
        return (
            f"CostEstimate(total={self.total_ns:.0f}ns, "
            f"model={self.model_ns:.0f}ns)"
        )


@dataclass(frozen=True)
class CostModel:
    """Section 2.1 constants, overridable for sensitivity studies."""

    #: cycles to binary-search one B-Tree page ("roughly 50 cycles")
    cycles_per_page_search: float = 50.0
    #: multiply-adds per cycle with SIMD ("8-16 SIMD operations"; we
    #: take the conservative end)
    ops_per_cycle: float = 8.0
    #: penalty per last-level cache miss ("50-100 additional cycles")
    cycles_per_cache_miss: float = 75.0
    #: cycles per individual comparison outside a packed page search
    cycles_per_comparison: float = 4.0
    #: clock speed used to convert cycles to wall-clock ns
    clock_ghz: float = 3.0
    #: bytes that stay resident (top tree levels / model roots)
    hot_cache_bytes: int = 256 * 1024

    # -- structure-specific estimators -----------------------------------------

    def btree_lookup(
        self,
        height: int,
        page_size: int,
        size_bytes: int,
    ) -> CostEstimate:
        """B-Tree descent: one page search per level plus the data page.

        Levels that spill out of the hot cache pay a miss each — the
        paper: "this calculation still assumes that all B-Tree pages are
        in the cache.  A single cache-miss costs 50-100 cycles".
        """
        pages_searched = height + 1  # inner levels + final data page
        search = pages_searched * self.cycles_per_page_search
        cold_levels = self._cold_levels(height, size_bytes)
        misses = cold_levels + 1  # +1 for the data page itself
        return CostEstimate(
            model_cycles=0.0,
            search_cycles=search,
            cache_miss_cycles=misses * self.cycles_per_cache_miss,
            clock_ghz=self.clock_ghz,
        )

    def learned_lookup(
        self,
        model_ops: int,
        mean_window: float,
        size_bytes: int,
    ) -> CostEstimate:
        """RMI lookup: model multiply-adds + bounded binary search.

        The second-stage model parameters rarely fit in cache at 100k
        models, costing one miss; the bounded search touches ~2 data
        cache lines (window of a few hundred keys).
        """
        model = model_ops / self.ops_per_cycle
        window = max(mean_window, 1.0)
        comparisons = np.ceil(np.log2(window + 1.0))
        search = comparisons * self.cycles_per_comparison
        misses = 1.0 if size_bytes > self.hot_cache_bytes else 0.0
        misses += max(np.ceil(comparisons / 3.0), 1.0)  # data probes
        return CostEstimate(
            model_cycles=model,
            search_cycles=float(search),
            cache_miss_cycles=misses * self.cycles_per_cache_miss,
            clock_ghz=self.clock_ghz,
        )

    def binary_search_lookup(self, n: int) -> CostEstimate:
        """Full-array binary search: log2(n) comparisons, mostly misses."""
        comparisons = float(np.ceil(np.log2(max(n, 2))))
        cached = np.log2(self.hot_cache_bytes / 16.0)
        misses = max(comparisons - cached, 0.0)
        return CostEstimate(
            model_cycles=0.0,
            search_cycles=comparisons * self.cycles_per_comparison,
            cache_miss_cycles=misses * self.cycles_per_cache_miss,
            clock_ghz=self.clock_ghz,
        )

    def framework_model_lookup(
        self, model_ops: int, invocation_overhead_ns: float = 75_000.0
    ) -> CostEstimate:
        """Section 2.3: a Tensorflow-style invocation costs ~microseconds
        of overhead regardless of model size."""
        model = model_ops / self.ops_per_cycle
        overhead_cycles = invocation_overhead_ns * self.clock_ghz
        return CostEstimate(
            model_cycles=model + overhead_cycles,
            search_cycles=0.0,
            cache_miss_cycles=0.0,
            clock_ghz=self.clock_ghz,
        )

    def _cold_levels(self, height: int, size_bytes: int) -> float:
        """Levels of a tree that do not fit in the hot cache."""
        if size_bytes <= self.hot_cache_bytes or height <= 0:
            return 0.0
        # Size is dominated by the bottom level; each level up is
        # ~1/fanout of the one below.  Count levels until the cumulative
        # size from the top fits the budget.
        cold = 0.0
        level_bytes = float(size_bytes)
        for _ in range(height):
            if level_bytes > self.hot_cache_bytes:
                cold += 1.0
            level_bytes /= 64.0
        return cold


#: Shared instance used by the benchmark harness.
DEFAULT_COST_MODEL = CostModel()
