"""Wall-clock measurement harness for per-lookup latency.

Python cannot reproduce the paper's absolute nanoseconds, but the
*ratios* between structures are governed by the same operation counts,
so every benchmark reports measured ns/lookup from this harness next to
the Section 2.1 cost model's figures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["LatencyResult", "measure_lookups", "measure_callable"]


@dataclass(frozen=True)
class LatencyResult:
    """Per-operation latency summary in nanoseconds."""

    mean_ns: float
    p50_ns: float
    p99_ns: float
    operations: int
    repeats: int

    def __repr__(self) -> str:
        return (
            f"LatencyResult(mean={self.mean_ns:.0f}ns, "
            f"p50={self.p50_ns:.0f}ns, p99={self.p99_ns:.0f}ns, "
            f"n={self.operations}x{self.repeats})"
        )


def measure_callable(
    fn: Callable[[], None],
    *,
    repeats: int = 5,
    inner: int = 1,
) -> float:
    """Best-of-``repeats`` wall-clock ns for ``fn`` (amortized by inner)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        elapsed = (time.perf_counter() - start) / inner
        best = min(best, elapsed)
    return best * 1e9


def measure_lookups(
    lookup: Callable,
    queries: Sequence,
    *,
    repeats: int = 3,
    warmup: int = 64,
    chunk: int = 256,
) -> LatencyResult:
    """Measure ``lookup(q)`` latency over ``queries``.

    The queries are timed in chunks to keep the timer overhead per
    operation negligible; p50/p99 are over the chunk means, which is
    the right granularity for comparing index structures (per-call
    timing in Python is dominated by timer noise).
    """
    queries = list(queries)
    if not queries:
        raise ValueError("need at least one query")
    for q in queries[:warmup]:
        lookup(q)
    chunk_means: list[float] = []
    best_total = float("inf")
    for _ in range(repeats):
        start_all = time.perf_counter()
        for start in range(0, len(queries), chunk):
            piece = queries[start:start + chunk]
            t0 = time.perf_counter()
            for q in piece:
                lookup(q)
            t1 = time.perf_counter()
            chunk_means.append((t1 - t0) / len(piece) * 1e9)
        best_total = min(
            best_total, (time.perf_counter() - start_all) / len(queries) * 1e9
        )
    means = np.asarray(chunk_means)
    return LatencyResult(
        mean_ns=float(best_total),
        p50_ns=float(np.percentile(means, 50)),
        p99_ns=float(np.percentile(means, 99)),
        operations=len(queries),
        repeats=repeats,
    )
