"""Paper-style table rendering for benchmark output.

Every benchmark prints rows in the layout of the figure it reproduces
(size with factor-vs-reference, lookup ns with speedup, model ns with
share of total), so the console output can be read directly against
the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Table", "format_bytes", "factor", "percentage"]


def format_bytes(num_bytes: float) -> str:
    """Human-readable size, MB-first like the paper's tables."""
    mb = num_bytes / (1024.0 * 1024.0)
    if mb >= 0.01:
        return f"{mb:.2f} MB"
    kb = num_bytes / 1024.0
    if kb >= 0.1:
        return f"{kb:.1f} KB"
    return f"{num_bytes:.0f} B"


def factor(value: float, reference: float) -> str:
    """"(4.00x)"-style factor against a reference row."""
    if reference == 0:
        return "(n/a)"
    return f"({value / reference:.2f}x)"


def percentage(part: float, whole: float) -> str:
    if whole == 0:
        return "(n/a)"
    return f"({part / whole * 100.0:.1f}%)"


@dataclass
class Table:
    """Fixed-width console table with a title and column alignment."""

    title: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(
            c.ljust(widths[i]) for i, c in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())
        print()
