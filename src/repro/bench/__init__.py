"""Measurement substrate: cost model, timing harness, table rendering."""

from .cost import DEFAULT_COST_MODEL, CostEstimate, CostModel
from .tables import Table, factor, format_bytes, percentage
from .timing import LatencyResult, measure_callable, measure_lookups

__all__ = [
    "DEFAULT_COST_MODEL",
    "CostEstimate",
    "CostModel",
    "LatencyResult",
    "Table",
    "factor",
    "format_bytes",
    "measure_callable",
    "measure_lookups",
    "percentage",
]
