"""Hierarchical lookup table with AVX-style branch-free scan (Figure 5).

The paper's description: "We included a comparison against a 3-stage
lookup table, which is constructed by taking every 64th key and putting
it into an array including padding to make it a multiple of 64.  Then
we repeat that process one more time over the array without padding,
creating two arrays in total.  To lookup a key, we use binary search on
the top table followed by an AVX optimized branch-free scan for the
second table and the data itself."

This class reproduces that exact construction.  The "AVX branch-free
scan" is modeled with a numpy vectorized comparison over the 64-slot
group (a data-parallel count of keys <= lookup key — the same operation
an AVX implementation performs with packed compares + popcount).
"""

from __future__ import annotations

import numpy as np

from ..range_scan import RangeScanIndexMixin
from .btree import TraversalStats
from .search_baselines import binary_search

__all__ = ["HierarchicalLookupTable"]

_KEY_BYTES = 8
_GROUP = 64


class HierarchicalLookupTable(RangeScanIndexMixin):
    """Two auxiliary arrays over the data, 64-way fan-out at each stage."""

    def __init__(self, keys: np.ndarray, group: int = _GROUP):
        keys = np.asarray(keys)
        if keys.size and np.any(keys[:-1] > keys[1:]):
            raise ValueError("keys must be sorted ascending")
        if group < 2:
            raise ValueError("group must be >= 2")
        self.keys = keys
        self.group = int(group)
        self.stats = TraversalStats()
        self._build()

    def _build(self) -> None:
        g = self.group
        # Auxiliary tables keep the key's native dtype (a float64 copy
        # would round >= 2^53 integer keys and misroute the scans); the
        # +inf padding of the original becomes the dtype maximum for
        # integer keys — pads are only ever compared strictly-less, so
        # a never-less sentinel behaves identically.
        data = self.keys
        pad_value = (
            np.inf
            if data.dtype.kind not in "iu"
            else np.iinfo(data.dtype).max
        )
        # Second table: every g-th key, padded to a multiple of g.
        second = data[::g].copy()
        pad = (-second.size) % g
        if pad:
            second = np.concatenate(
                [second, np.full(pad, pad_value, dtype=second.dtype)]
            )
        # Top table: every g-th key of the second table, no padding.
        top = second[::g].copy()
        self._second = second
        self._top = top

    def size_bytes(self) -> int:
        """Both auxiliary arrays (the data array is not index overhead)."""
        return int(self._second.size + self._top.size) * _KEY_BYTES

    def _scan_group(self, array: np.ndarray, start: int, key: float) -> int:
        """Branch-free rank of ``key`` within ``array[start:start+group]``."""
        block = array[start:start + self.group]
        self.stats.comparisons += int(block.size)
        return int((block < key).sum())

    def lookup(self, key: float) -> int:
        """Lower-bound position of ``key`` in the data array."""
        self.stats.lookups += 1
        n = self.keys.size
        if n == 0:
            return 0
        # Stage 1: binary search the top table for the last entry
        # strictly < key (a separator == key may still have equal keys
        # in the group before it — lower-bound semantics under
        # duplicates).
        top_rank = binary_search(self._top, key, counter=None)
        self.stats.nodes_visited += 1
        self.stats.comparisons += max(
            1, int(np.ceil(np.log2(max(self._top.size, 2))))
        )
        top_slot = max(top_rank - 1, 0)
        # Stage 2: AVX scan of the corresponding 64-entry second-table group.
        second_start = top_slot * self.group
        self.stats.nodes_visited += 1
        rank2 = self._scan_group(self._second, second_start, key)
        second_slot = second_start + max(rank2 - 1, 0)
        second_slot = min(second_slot, self._second.size - 1)
        # Stage 3: AVX scan of the data group.
        data_start = second_slot * self.group
        data_start = min(data_start, max(n - 1, 0))
        self.stats.nodes_visited += 1
        rank3 = self._scan_group(self.keys, data_start, key)
        pos = data_start + rank3
        # rank counts strictly-smaller keys, so pos is the lower bound
        # within the group; if the key exceeds the whole group the lower
        # bound is the group end, which is the next group's start.
        return int(min(pos, n))

    def contains(self, key: float) -> bool:
        pos = self.lookup(key)
        return pos < self.keys.size and self.keys[pos] == key

    def __repr__(self) -> str:
        return (
            f"HierarchicalLookupTable(n={self.keys.size}, group={self.group}, "
            f"size={self.size_bytes()}B)"
        )
