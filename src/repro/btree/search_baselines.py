"""Whole-array search baselines: binary / interpolation / exponential.

Section 2.3 compares the naive learned index against "binary search
over the entire data" (~900ns); Figure 5's fixed-height B-Tree finishes
with interpolation search [35]; Section 3.4 proposes exponential search
as the bound-free fallback.  These are the primitive routines, each
with an optional comparison counter so the cost model can price them.

All routines return **lower-bound** positions: the index of the first
element >= key, matching ``numpy.searchsorted(..., side="left")``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "binary_search",
    "interpolation_search",
    "exponential_search",
    "Counter",
]


class Counter:
    """A mutable comparison counter shared across search calls."""

    __slots__ = ("comparisons",)

    def __init__(self):
        self.comparisons = 0

    def reset(self) -> None:
        self.comparisons = 0


def binary_search(
    keys: np.ndarray,
    key: float,
    lo: int = 0,
    hi: int | None = None,
    counter: Counter | None = None,
) -> int:
    """Classic lower-bound binary search over ``keys[lo:hi]``."""
    n = len(keys)
    if hi is None:
        hi = n
    lo = max(0, min(lo, n))
    hi = max(lo, min(hi, n))
    while lo < hi:
        mid = (lo + hi) >> 1
        if counter is not None:
            counter.comparisons += 1
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def interpolation_search(
    keys: np.ndarray,
    key: float,
    lo: int = 0,
    hi: int | None = None,
    counter: Counter | None = None,
    max_interpolations: int = 32,
) -> int:
    """Lower-bound interpolation search.

    Guesses the split point by linear interpolation between the window
    endpoints — effectively a locally learned linear model, which is
    why the paper's related-work section treats it as a precursor to
    learned indexes.  Falls back to binary search if it fails to
    converge (adversarial key distributions).
    """
    n = len(keys)
    if hi is None:
        hi = n
    lo = max(0, min(lo, n))
    hi = max(lo, min(hi, n))
    steps = 0
    while lo < hi:
        left_key = keys[lo]
        right_key = keys[hi - 1]
        if counter is not None:
            counter.comparisons += 2
        if key <= left_key:
            return lo
        if key > right_key:
            return hi
        steps += 1
        if steps > max_interpolations:
            return binary_search(keys, key, lo, hi, counter)
        span = float(right_key) - float(left_key)
        if span <= 0:
            return binary_search(keys, key, lo, hi, counter)
        frac = (float(key) - float(left_key)) / span
        mid = lo + int(frac * (hi - lo - 1))
        mid = min(max(mid, lo), hi - 1)
        if counter is not None:
            counter.comparisons += 1
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def exponential_search(
    keys: np.ndarray,
    key: float,
    guess: int,
    counter: Counter | None = None,
) -> int:
    """Lower-bound search expanding geometrically from ``guess``.

    Section 3.4: with a normally distributed prediction error this
    costs O(log |error|) without storing any min/max bounds.  The
    doubling phase brackets the key; binary search finishes.
    """
    n = len(keys)
    if n == 0:
        return 0
    guess = max(0, min(guess, n - 1))
    if counter is not None:
        counter.comparisons += 1
    if keys[guess] < key:
        # Double rightward until a key >= lookup key brackets the answer.
        bound = 1
        while guess + bound < n and keys[guess + bound] < key:
            if counter is not None:
                counter.comparisons += 1
            bound <<= 1
        lo = guess + (bound >> 1)
        hi = min(guess + bound + 1, n)
        return binary_search(keys, key, lo, hi, counter)
    # Double leftward until a key < lookup key brackets the answer.
    bound = 1
    while guess - bound >= 0 and keys[guess - bound] >= key:
        if counter is not None:
            counter.comparisons += 1
        bound <<= 1
    lo = max(guess - bound, 0)
    hi = guess - (bound >> 1) + 1
    return binary_search(keys, key, lo, hi, counter)
