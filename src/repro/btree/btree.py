"""Read-optimized bulk-loaded B+Tree over a sorted array.

The paper's baseline is "a production quality B-Tree implementation
which is similar to the stx::btree but with further cache-line
optimization, dense pages (i.e., fill factor of 100%), and very
competitive performance" (Section 3.7.1), used as an index over logical
pages of a dense sorted array (Section 2): "it is common not to index
every single key of the sorted records, rather only the key of every
n-th record, i.e., the first key of a page".

:class:`BTreeIndex` reproduces that design:

* the data is a sorted array held outside the tree;
* the tree indexes the first key of every ``page_size``-th record;
* nodes are dense (100% fill), bulk-loaded bottom-up, and store their
  keys in contiguous numpy arrays (the cache-line analogue);
* lookup descends with per-node binary search and returns the *page*,
  then the caller (or :meth:`lookup`) finishes with binary search
  inside the page — exactly the paper's "min-error of 0 and a
  max-error of the page-size" model view of a B-Tree.

The same class doubles as the *hybrid-index fallback* (Section 3.3) by
indexing an arbitrary key subrange, and as a generic comparable-key
tree (:class:`GenericBTreeIndex`) for strings.

Instrumentation counters (nodes visited, comparisons) feed the
Section 2.1 cost model.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

import numpy as np

from ..range_scan import (
    RangeScanIndexMixin,
    RangeScanResult,
    batch_range_scan_generic,
)
from ..util import batch_contains_generic, scalar_view

__all__ = ["BTreeIndex", "GenericBTreeIndex", "TraversalStats"]

_KEY_BYTES = 8
_POINTER_BYTES = 8


@dataclass
class TraversalStats:
    """Mutable counters accumulated across lookups."""

    lookups: int = 0
    nodes_visited: int = 0
    comparisons: int = 0
    extra: dict = field(default_factory=dict)

    def reset(self) -> None:
        self.lookups = 0
        self.nodes_visited = 0
        self.comparisons = 0
        self.extra.clear()


class BTreeIndex(RangeScanIndexMixin):
    """Bulk-loaded dense B+Tree over int/float keys in a sorted array.

    Parameters
    ----------
    keys:
        Sorted numpy array being indexed (the data itself; not copied).
    page_size:
        Number of *records* per logical page — the paper's page-size
        knob (Figure 4 uses 32..512).  The tree indexes one key per
        page.
    fanout:
        Keys per tree node.  The paper's page size doubles as its node
        width; by default we follow that (fanout = page_size), but the
        two can be decoupled for ablations.
    """

    def __init__(
        self,
        keys: np.ndarray,
        page_size: int = 128,
        fanout: int | None = None,
    ):
        keys = np.asarray(keys)
        if keys.ndim != 1:
            raise ValueError("keys must be one-dimensional")
        # Comparison instead of np.diff: no int64 difference overflow
        # on huge key spans and no full-width temporary.
        if keys.size and np.any(keys[:-1] > keys[1:]):
            raise ValueError("keys must be sorted ascending")
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        self.keys = keys
        self.page_size = int(page_size)
        self.fanout = int(fanout if fanout is not None else page_size)
        if self.fanout < 2:
            self.fanout = 2
        self.stats = TraversalStats()
        self._build()

    # -- construction --------------------------------------------------------

    def _build(self) -> None:
        n = self.keys.size
        # One separator key per logical page (first key of the page).
        # Separators stay in the key's native dtype: a float64 copy
        # would round int64 separators at or beyond 2^53, and a descent
        # through rounded separators can pick the wrong page (ISSUE 5).
        page_starts = np.arange(0, n, self.page_size, dtype=np.int64)
        leaf_keys = (
            self.keys[page_starts]
            if n
            else np.empty(0, dtype=self.keys.dtype)
        )
        self._page_starts = page_starts
        # levels[0] = leaf separator array; levels[i>0] = first key of
        # each fanout-group of the level below (bulk bottom-up build).
        levels: list[np.ndarray] = [leaf_keys]
        while levels[-1].size > self.fanout:
            below = levels[-1]
            firsts = below[::self.fanout].copy()
            levels.append(firsts)
        self._levels = levels
        # Scalar hot path: native views avoid numpy boxing per probe.
        self._level_views = [scalar_view(level) for level in levels]
        self._keys_view = scalar_view(self.keys)
        self._page_start_list = page_starts.tolist()

    # -- size accounting -------------------------------------------------------

    def size_bytes(self) -> int:
        """Index size: keys + child/page pointers at every level.

        Matches the paper's convention of counting only the index, not
        the data array (Section 3.7.1, "we only counted the extra index
        overhead excluding the sorted array itself").
        """
        total = 0
        for level in self._levels:
            total += int(level.size) * (_KEY_BYTES + _POINTER_BYTES)
        return total

    @property
    def height(self) -> int:
        """Number of levels descended before the in-page search."""
        return len(self._levels)

    @property
    def num_pages(self) -> int:
        return int(self._page_starts.size)

    # -- lookup ----------------------------------------------------------------

    def find_page(self, key: float) -> int:
        """Descend the tree; return the index of the candidate page.

        The returned page is the last page whose first key is strictly
        < key (page 0 if none).  Strict comparison matters under
        duplicates: when a run of keys equal to the query spans page
        boundaries, the *lower bound* lives in the first such page, not
        the last one whose separator matches.
        """
        self.stats.lookups += 1
        if self._levels[0].size == 0:
            return 0
        # Descend from the root level to the leaf separator array. At
        # each level we know the key lies within a fanout-wide group.
        stats = self.stats
        fanout = self.fanout
        lo = 0
        for depth in range(len(self._level_views) - 1, -1, -1):
            level = self._level_views[depth]
            hi = min(lo + fanout, len(level))
            stats.nodes_visited += 1
            # binary search inside the node for rightmost key < key
            left, right = lo, hi
            while left < right:
                mid = (left + right) >> 1
                stats.comparisons += 1
                if level[mid] < key:
                    left = mid + 1
                else:
                    right = mid
            slot = left - 1 if left > lo else lo
            if depth == 0:
                return slot
            lo = slot * fanout
        return 0  # pragma: no cover — loop always returns at depth 0

    def lookup(self, key: float) -> int:
        """Position of the first stored key >= ``key`` (lower bound)."""
        page = self.find_page(key)
        start = self._page_start_list[page] if self.num_pages else 0
        end = min(start + self.page_size, self.keys.size)
        # In-page binary search (the paper's ~50-cycle page scan).
        keys = self._keys_view
        stats = self.stats
        left, right = start, end
        while left < right:
            mid = (left + right) >> 1
            stats.comparisons += 1
            if keys[mid] < key:
                left = mid + 1
            else:
                right = mid
        # If the key exceeds everything in the page, ``left == end``,
        # which is exactly the first record of the next page — find_page
        # guarantees that page's first key is >= key, so this is the
        # correct lower bound.
        return left

    # lookup_batch / contains_batch / the range API come from
    # RangeScanIndexMixin: a B-Tree over a dense sorted array answers
    # batches fastest by skipping the tree entirely — the structure
    # exists to locate a page, and ``searchsorted`` does page + in-page
    # search in one vectorized pass.

    def contains(self, key: float) -> bool:
        pos = self.lookup(key)
        return pos < self.keys.size and self.keys[pos] == key

    def __repr__(self) -> str:
        return (
            f"BTreeIndex(n={self.keys.size}, page_size={self.page_size}, "
            f"height={self.height}, size={self.size_bytes()}B)"
        )


class GenericBTreeIndex:
    """Bulk-loaded B+Tree over arbitrary comparable keys (e.g. strings).

    Used as the hybrid fallback for string RMIs (Section 3.7.2) and as
    the string-dataset baseline in Figure 6.  Same dense bottom-up
    design as :class:`BTreeIndex`, with Python-object key storage.
    """

    def __init__(self, keys: list, page_size: int = 128):
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        if any(keys[i] > keys[i + 1] for i in range(len(keys) - 1)):
            raise ValueError("keys must be sorted ascending")
        self.keys = list(keys)
        self.page_size = int(page_size)
        self.fanout = max(int(page_size), 2)
        self.stats = TraversalStats()
        self._page_starts = list(range(0, len(self.keys), self.page_size))
        levels: list[list] = [[self.keys[p] for p in self._page_starts]]
        while len(levels[-1]) > self.fanout:
            below = levels[-1]
            levels.append(below[::self.fanout])
        self._levels = levels

    def size_bytes(self, *, key_bytes: int | None = None) -> int:
        """Index size; string keys default to their actual byte length."""
        total = 0
        for level in self._levels:
            for key in level:
                kb = key_bytes if key_bytes is not None else len(str(key))
                total += kb + _POINTER_BYTES
        return total

    @property
    def height(self) -> int:
        return len(self._levels)

    @property
    def num_pages(self) -> int:
        return len(self._page_starts)

    def find_page(self, key) -> int:
        self.stats.lookups += 1
        if not self._levels[0]:
            return 0
        lo = 0
        for depth in range(len(self._levels) - 1, -1, -1):
            level = self._levels[depth]
            hi = min(lo + self.fanout, len(level))
            self.stats.nodes_visited += 1
            left, right = lo, hi
            while left < right:
                mid = (left + right) >> 1
                self.stats.comparisons += 1
                # strict compare: see BTreeIndex.find_page on duplicates
                if level[mid] < key:
                    left = mid + 1
                else:
                    right = mid
            slot = max(left - 1, lo)
            if depth == 0:
                return slot
            lo = slot * self.fanout
        return 0  # pragma: no cover

    def lookup(self, key) -> int:
        page = self.find_page(key)
        start = self._page_starts[page] if self.num_pages else 0
        end = min(start + self.page_size, len(self.keys))
        pos = bisect.bisect_left(self.keys, key, start, end)
        self.stats.comparisons += max(1, int(np.ceil(np.log2(max(end - start, 2)))))
        return pos

    def contains(self, key) -> bool:
        pos = self.lookup(key)
        return pos < len(self.keys) and self.keys[pos] == key

    def lookup_batch(self, queries) -> np.ndarray:
        """Batched lower-bound lookups (``bisect`` per query; generic
        comparable keys cannot be vectorized by numpy)."""
        return np.array(
            [bisect.bisect_left(self.keys, q) for q in queries],
            dtype=np.int64,
        )

    def contains_batch(self, queries) -> np.ndarray:
        queries = list(queries)
        return batch_contains_generic(
            self.keys, queries, self.lookup_batch(queries)
        )

    def upper_bound(self, key) -> int:
        """Position one past the last stored key <= ``key``."""
        return bisect.bisect_right(self.keys, key, self.lookup(key))

    def range_query(self, low, high) -> list:
        """All stored keys in ``[low, high]`` (closed interval)."""
        if high < low:
            return []
        return self.keys[self.lookup(low):self.upper_bound(high)]

    def range_query_batch(self, lows, highs) -> RangeScanResult:
        """Batched :meth:`range_query`; values are list-backed."""
        return batch_range_scan_generic(
            self.keys, lows, highs, self.lookup_batch
        )

    def __repr__(self) -> str:
        return (
            f"GenericBTreeIndex(n={len(self.keys)}, "
            f"page_size={self.page_size}, height={self.height})"
        )
