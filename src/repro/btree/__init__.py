"""Tree and search substrates: every non-learned range-index baseline."""

from .btree import BTreeIndex, GenericBTreeIndex, TraversalStats
from .fast_tree import SIMD_WIDTH, FASTTree
from .fixed_btree import FixedSizeBTree
from .lookup_table import HierarchicalLookupTable
from .search_baselines import (
    Counter,
    binary_search,
    exponential_search,
    interpolation_search,
)

__all__ = [
    "BTreeIndex",
    "Counter",
    "FASTTree",
    "FixedSizeBTree",
    "GenericBTreeIndex",
    "HierarchicalLookupTable",
    "SIMD_WIDTH",
    "TraversalStats",
    "binary_search",
    "exponential_search",
    "interpolation_search",
]
