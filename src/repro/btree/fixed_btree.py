"""Fixed-size B-Tree with interpolation search (Figure 5 baseline).

The paper: "as proposed in a recent blog post we created a fixed-height
B-Tree with interpolation search.  The B-Tree height is set, so that
the total size of the tree is 1.5MB, similar to our learned model."

:class:`FixedSizeBTree` inverts the usual construction: given a target
*byte budget*, it chooses how many separator keys fit, spreads them
evenly over the data (one level), and finishes lookups with
interpolation search inside the separated run — interpolation being
the natural partner because each run is locally smooth.
"""

from __future__ import annotations

import numpy as np

from ..range_scan import RangeScanIndexMixin
from ..util import scalar_view
from .btree import TraversalStats
from .search_baselines import Counter, interpolation_search

__all__ = ["FixedSizeBTree"]

_KEY_BYTES = 8
_POINTER_BYTES = 8


class FixedSizeBTree(RangeScanIndexMixin):
    """Budgeted flat separator array + interpolation search in runs."""

    def __init__(
        self,
        keys: np.ndarray,
        size_budget_bytes: int,
        fanout: int = 64,
    ):
        keys = np.asarray(keys)
        if keys.size and np.any(keys[:-1] > keys[1:]):
            raise ValueError("keys must be sorted ascending")
        if size_budget_bytes < (_KEY_BYTES + _POINTER_BYTES):
            raise ValueError("size budget smaller than one entry")
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        self.keys = keys
        self.fanout = int(fanout)
        self.stats = TraversalStats()
        self._build(int(size_budget_bytes))

    def _build(self, budget: int) -> None:
        n = self.keys.size
        entry_bytes = _KEY_BYTES + _POINTER_BYTES
        max_entries = max(budget // entry_bytes, 1)
        # Budget is split across the separator levels of a B-Tree whose
        # bottom level has `bottom` entries; upper levels add ~1/fanout
        # overhead, so solve bottom * (1 + 1/f + 1/f^2 ...) <= max_entries.
        geometric = 1.0 / (1.0 - 1.0 / self.fanout)
        bottom = max(int(max_entries / geometric), 1)
        bottom = min(bottom, max(n, 1))
        starts = np.linspace(0, max(n - 1, 0), bottom).astype(np.int64)
        starts = np.unique(starts)
        # Native-dtype separators: float64 copies would round >= 2^53
        # integer keys and misroute the descent (ISSUE 5).
        separators = (
            self.keys[starts]
            if n
            else np.empty(0, dtype=self.keys.dtype)
        )
        self._run_starts = starts
        levels = [separators]
        while levels[-1].size > self.fanout:
            levels.append(levels[-1][::self.fanout].copy())
        self._levels = levels
        self._level_views = [scalar_view(level) for level in levels]
        self._keys_view = scalar_view(self.keys)
        self._run_start_list = starts.tolist()

    def size_bytes(self) -> int:
        total = 0
        for level in self._levels:
            total += int(level.size) * (_KEY_BYTES + _POINTER_BYTES)
        return total

    @property
    def height(self) -> int:
        return len(self._levels)

    def lookup(self, key: float) -> int:
        """Lower-bound position via tree descent + interpolation search."""
        self.stats.lookups += 1
        n = self.keys.size
        if n == 0:
            return 0
        # Descend the separator levels (same dense layout as BTreeIndex).
        lo = 0
        for depth in range(len(self._level_views) - 1, -1, -1):
            level = self._level_views[depth]
            hi = min(lo + self.fanout, len(level))
            self.stats.nodes_visited += 1
            left, right = lo, hi
            while left < right:
                mid = (left + right) >> 1
                self.stats.comparisons += 1
                # strict compare: the lower bound of a duplicated key
                # lives under the *first* separator >= it, so descend
                # to the last separator strictly below the query.
                if level[mid] < key:
                    left = mid + 1
                else:
                    right = mid
            slot = max(left - 1, lo)
            if depth == 0:
                run = slot
                break
            lo = slot * self.fanout
        run_start = self._run_start_list[run]
        run_end = (
            self._run_start_list[run + 1] + 1
            if run + 1 < len(self._run_start_list)
            else n
        )
        counter = Counter()
        pos = interpolation_search(
            self._keys_view, key, run_start, run_end, counter
        )
        self.stats.comparisons += counter.comparisons
        return pos

    def contains(self, key: float) -> bool:
        pos = self.lookup(key)
        return pos < self.keys.size and self.keys[pos] == key

    def __repr__(self) -> str:
        return (
            f"FixedSizeBTree(n={self.keys.size}, "
            f"separators={self._run_starts.size}, height={self.height}, "
            f"size={self.size_bytes()}B)"
        )
