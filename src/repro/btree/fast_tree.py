"""FAST-style SIMD tree (Figure 5 baseline).

FAST [Kim et al., SIGMOD 2010] lays a search tree out in a cache- and
SIMD-friendly blocked order and searches each node with branch-free
SIMD comparisons.  The paper uses it as an alternative baseline and
notes two properties this reproduction preserves:

* "FAST always requires to allocate memory in the power of 2 ... which
  can lead to significantly larger indexes" — Figure 5 shows FAST at
  1024MB vs 1.5MB for the learned index.  We allocate every level at
  the next power of two of its occupancy, so the same blow-up appears
  in ``size_bytes``.
* branch-free within-node search: each visited node compares the key
  against all 16 separators at once (a numpy vectorized compare — the
  Python stand-in for two AVX 256-bit register compares) and derives
  the child group arithmetically from the popcount, with no
  data-dependent branches.

Structurally the tree is a 16-ary static tree over page separators:
``level[d] = level[d+1][::16]`` (root stored first), which makes the
descent arithmetic (`child_base = slot * 16`) exact.  Lookup semantics
match :class:`repro.btree.BTreeIndex` — both return lower-bound
positions into the same sorted array — so Figure 5 compares equals.
"""

from __future__ import annotations

import numpy as np

from ..range_scan import RangeScanIndexMixin
from ..util import scalar_view
from .btree import TraversalStats

__all__ = ["FASTTree", "SIMD_WIDTH"]

#: Keys compared per SIMD node visit (16 32-bit lanes in the original).
SIMD_WIDTH = 16
_KEY_BYTES = 8
_POINTER_BYTES = 8


def _next_power_of_two(x: int) -> int:
    if x <= 1:
        return 1
    return 1 << (x - 1).bit_length()


class FASTTree(RangeScanIndexMixin):
    """Static 16-ary tree with branch-free SIMD node search."""

    def __init__(self, keys: np.ndarray, page_size: int = 128):
        keys = np.asarray(keys)
        if keys.size and np.any(keys[:-1] > keys[1:]):
            raise ValueError("keys must be sorted ascending")
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        self.keys = keys
        self.page_size = int(page_size)
        self.stats = TraversalStats()
        self._build()

    def _build(self) -> None:
        n = self.keys.size
        page_starts = np.arange(0, n, self.page_size, dtype=np.int64)
        # Separators keep the key's native dtype (a float64 copy would
        # round >= 2^53 int separators and misroute the descent); the
        # +inf padding of the original becomes the dtype's maximum for
        # integer keys — the descent only ever compares separators with
        # strictly-less, so a never-less sentinel behaves identically.
        separators = (
            self.keys[page_starts]
            if n
            else np.empty(0, dtype=self.keys.dtype)
        )
        pad_value = (
            np.inf
            if self.keys.dtype.kind not in "iu"
            else np.iinfo(self.keys.dtype).max
        )
        self._page_starts = page_starts
        # Leaf separator level, padded to a power of two and to whole
        # SIMD groups (the FAST alignment requirement).
        occupancy = max(int(separators.size), 1)
        padded = max(_next_power_of_two(occupancy), SIMD_WIDTH)
        leaf = np.full(padded, pad_value, dtype=separators.dtype)
        leaf[:separators.size] = separators
        levels = [leaf]
        while levels[-1].size > SIMD_WIDTH:
            below = levels[-1]
            level = below[::SIMD_WIDTH].copy()
            pad_to = max(_next_power_of_two(level.size), SIMD_WIDTH)
            if pad_to > level.size:
                level = np.concatenate(
                    [level, np.full(pad_to - level.size, pad_value,
                                    dtype=level.dtype)]
                )
            levels.append(level)
        levels.reverse()
        self._levels = levels  # root level first
        self._keys_view = scalar_view(self.keys)
        self._page_start_list = page_starts.tolist()

    def size_bytes(self) -> int:
        """Full allocated footprint, including power-of-two padding."""
        total = 0
        for level in self._levels:
            total += int(level.size) * _KEY_BYTES
        # Child offsets are implicit in the blocked layout; the page
        # pointers hanging off the (padded) leaf level are real storage.
        total += int(self._levels[-1].size) * _POINTER_BYTES
        return total

    @property
    def height(self) -> int:
        return len(self._levels)

    def find_page(self, key: float) -> int:
        """Branch-free descent; returns the candidate page index."""
        self.stats.lookups += 1
        if self._page_starts.size == 0:
            return 0
        slot = 0
        for depth, level in enumerate(self._levels):
            start = slot * SIMD_WIDTH if depth else 0
            block = level[start:start + SIMD_WIDTH]
            self.stats.nodes_visited += 1
            self.stats.comparisons += SIMD_WIDTH
            # SIMD lane compare + popcount: rank of the key in the node.
            # Strictly-less so duplicated keys resolve to the page of
            # their first occurrence (lower-bound semantics).
            rank = int((block < key).sum())
            slot = start + max(rank - 1, 0)
        page = min(slot, self._page_starts.size - 1)
        return int(page)

    def lookup(self, key: float) -> int:
        """Lower-bound position via descent + in-page binary search."""
        if self._page_starts.size == 0:
            return 0
        page = self.find_page(key)
        begin = self._page_start_list[page]
        end = min(begin + self.page_size, self.keys.size)
        keys = self._keys_view
        lo, hi = begin, end
        while lo < hi:
            mid = (lo + hi) >> 1
            self.stats.comparisons += 1
            if keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def contains(self, key: float) -> bool:
        pos = self.lookup(key)
        return pos < self.keys.size and self.keys[pos] == key

    def __repr__(self) -> str:
        return (
            f"FASTTree(n={self.keys.size}, page_size={self.page_size}, "
            f"height={self.height}, size={self.size_bytes()}B)"
        )
