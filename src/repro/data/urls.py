"""Simulated phishing-blacklist URL dataset.

The paper's existence-index experiment (Section 5.2) uses Google's
transparency report: 1.7M unique blacklisted phishing URLs as keys, and
a negative set mixing random valid URLs with whitelisted URLs "that
could be mistaken for phishing pages".

That data is proprietary, so this module provides a generative grammar
for three URL populations:

* ``phishing_urls`` — keys: typosquatted brands, credential-themed
  tokens, IP-literal hosts, deep redirect paths, excessive subdomains;
* ``benign_urls`` — easy negatives: ordinary pages on common domains;
* ``confusable_urls`` — hard negatives (the paper's "whitelisted URLs
  that could be mistaken for phishing"): legitimate login/account pages
  on real brand domains.

The three populations overlap in surface features but differ in
character-level statistics, giving a learnable separation — exactly the
setting the learned Bloom filter exploits.  The mixing ratio of the
negative set is a parameter so the paper's covariate-shift study
(random-only vs whitelist-only negatives) can be reproduced.
"""

from __future__ import annotations

import numpy as np

__all__ = ["phishing_urls", "benign_urls", "confusable_urls", "url_dataset"]

_BRANDS = [
    "paypal", "google", "amazon", "apple", "microsoft", "netflix",
    "facebook", "instagram", "chase", "wellsfargo", "dropbox", "adobe",
]
_TLDS_COMMON = [".com", ".org", ".net", ".edu", ".io"]
_TLDS_CHEAP = [".xyz", ".top", ".tk", ".ml", ".info", ".cc", ".club"]
_PHISH_TOKENS = [
    "login", "verify", "secure", "account", "update", "confirm",
    "signin", "banking", "wallet", "support", "alert", "suspended",
]
_BENIGN_WORDS = [
    "news", "blog", "wiki", "docs", "about", "contact", "products",
    "research", "weather", "sports", "music", "recipes", "travel",
    "photos", "forum", "events", "careers", "store", "library",
]
_PATH_WORDS = _BENIGN_WORDS + [
    "article", "post", "page", "item", "view", "category", "archive",
]


def _typosquat(brand: str, rng: np.random.Generator) -> str:
    """Corrupt a brand name the way phishing domains do."""
    swaps = {"l": "1", "o": "0", "i": "1", "e": "3", "a": "4", "s": "5"}
    style = rng.integers(0, 4)
    if style == 0:  # character substitution: paypa1
        candidates = [i for i, c in enumerate(brand) if c in swaps]
        if candidates:
            i = int(rng.choice(candidates))
            return brand[:i] + swaps[brand[i]] + brand[i + 1:]
        return brand + "s"
    if style == 1:  # doubled letter: googgle
        i = int(rng.integers(1, len(brand)))
        return brand[:i] + brand[i - 1] + brand[i:]
    if style == 2:  # hyphen insertion: pay-pal
        i = int(rng.integers(1, len(brand)))
        return brand[:i] + "-" + brand[i:]
    return brand + str(int(rng.integers(0, 99)))  # suffix digits


def _rand_word(rng: np.random.Generator, lo: int = 4, hi: int = 12) -> str:
    length = int(rng.integers(lo, hi))
    letters = "abcdefghijklmnopqrstuvwxyz"
    return "".join(letters[int(i)] for i in rng.integers(0, 26, size=length))


def phishing_urls(
    n: int, *, seed: int = 42, hard_fraction: float = 0.2
) -> list[str]:
    """Generate ``n`` unique phishing-style URLs (the key set).

    ``hard_fraction`` of the keys are *compromised benign sites*:
    phishing pages hosted on ordinary-looking URLs, drawn from the same
    grammar as :func:`benign_urls`.  No character-level classifier can
    separate those from real benign pages, which keeps the classifier's
    false-negative rate realistically non-zero (the paper reports 55%
    FNR at a 0.5% model FPR) so the overflow Bloom filter has real work
    to do.
    """
    rng = np.random.default_rng(seed)
    seen: set[str] = set()
    out: list[str] = []
    while len(out) < n:
        if rng.random() < hard_fraction:
            # Compromised legitimate site: benign-looking URL.
            host = str(rng.choice(_BENIGN_WORDS)) + _rand_word(rng, 2, 6)
            tld = str(rng.choice(_TLDS_COMMON))
            depth = int(rng.integers(1, 4))
            path = "/".join(
                str(rng.choice(_PATH_WORDS)) for _ in range(depth)
            )
            if rng.random() < 0.4:
                path += f"/{int(rng.integers(0, 10**5))}"
            url = f"https://www.{host}{tld}/{path}"
            if url not in seen:
                seen.add(url)
                out.append(url)
            continue
        style = rng.integers(0, 4)
        if style == 0:
            # typosquat + credential token + cheap TLD
            host = _typosquat(str(rng.choice(_BRANDS)), rng)
            tld = str(rng.choice(_TLDS_CHEAP))
            token = str(rng.choice(_PHISH_TOKENS))
            url = f"http://{host}{tld}/{token}"
        elif style == 1:
            # brand buried in subdomains of a junk domain
            brand = str(rng.choice(_BRANDS))
            token = str(rng.choice(_PHISH_TOKENS))
            junk = _rand_word(rng, 6, 14)
            tld = str(rng.choice(_TLDS_CHEAP))
            url = f"http://{brand}.{token}.{junk}{tld}/{_rand_word(rng, 4, 8)}"
        elif style == 2:
            # IP-literal host with a deep path
            octets = rng.integers(1, 255, size=4)
            ip = ".".join(str(int(o)) for o in octets)
            token = str(rng.choice(_PHISH_TOKENS))
            brand = str(rng.choice(_BRANDS))
            url = f"http://{ip}/{brand}/{token}/{_rand_word(rng, 6, 10)}.php"
        else:
            # long random host with phishing keywords in the path
            host = _rand_word(rng, 10, 18)
            tld = str(rng.choice(_TLDS_CHEAP))
            t1 = str(rng.choice(_PHISH_TOKENS))
            t2 = str(rng.choice(_PHISH_TOKENS))
            url = f"http://{host}{tld}/{t1}/{t2}?id={int(rng.integers(0, 10**6))}"
        if url not in seen:
            seen.add(url)
            out.append(url)
    return out


def benign_urls(n: int, *, seed: int = 43) -> list[str]:
    """Generate ``n`` unique ordinary URLs (easy negatives)."""
    rng = np.random.default_rng(seed)
    seen: set[str] = set()
    out: list[str] = []
    while len(out) < n:
        host = str(rng.choice(_BENIGN_WORDS)) + _rand_word(rng, 2, 6)
        tld = str(rng.choice(_TLDS_COMMON))
        depth = int(rng.integers(1, 4))
        path = "/".join(str(rng.choice(_PATH_WORDS)) for _ in range(depth))
        if rng.random() < 0.4:
            path += f"/{int(rng.integers(0, 10**5))}"
        url = f"https://www.{host}{tld}/{path}"
        if url not in seen:
            seen.add(url)
            out.append(url)
    return out


def confusable_urls(n: int, *, seed: int = 44) -> list[str]:
    """Generate ``n`` unique hard negatives: real brand login pages.

    These share tokens ("login", "account", brand names) with the
    phishing set but have clean host structure — the population the
    paper describes as "whitelisted URLs that could be mistaken for
    phishing pages".
    """
    rng = np.random.default_rng(seed)
    seen: set[str] = set()
    out: list[str] = []
    while len(out) < n:
        brand = str(rng.choice(_BRANDS))
        token = str(rng.choice(_PHISH_TOKENS))
        style = rng.integers(0, 3)
        if style == 0:
            url = f"https://www.{brand}.com/{token}"
        elif style == 1:
            url = f"https://{token}.{brand}.com/"
        else:
            url = f"https://www.{brand}.com/{token}/{_rand_word(rng, 3, 7)}"
        if url not in seen:
            seen.add(url)
            out.append(url)
        if len(seen) > 6 * len(_BRANDS) * len(_PHISH_TOKENS):
            # population is finite; pad with numbered variants
            url = f"https://www.{brand}.com/{token}?session={len(out)}"
            if url not in seen:
                seen.add(url)
                out.append(url)
    return out[:n]


def url_dataset(
    n_keys: int,
    n_negatives: int,
    *,
    confusable_fraction: float = 0.5,
    seed: int = 42,
) -> tuple[list[str], list[str]]:
    """Build the (keys, negatives) pair used by learned-Bloom benchmarks.

    ``confusable_fraction`` controls the negative mixture: 0.0 gives the
    paper's "only random URLs" variant, 1.0 the "only whitelisted URLs"
    variant, 0.5 the headline mixture.
    """
    if not 0.0 <= confusable_fraction <= 1.0:
        raise ValueError("confusable_fraction must be in [0, 1]")
    keys = phishing_urls(n_keys, seed=seed)
    n_conf = int(round(n_negatives * confusable_fraction))
    n_rand = n_negatives - n_conf
    negatives = benign_urls(n_rand, seed=seed + 1) + confusable_urls(
        n_conf, seed=seed + 2
    )
    rng = np.random.default_rng(seed + 3)
    order = rng.permutation(len(negatives))
    negatives = [negatives[i] for i in order]
    # Existence-index semantics: negatives must not collide with keys.
    key_set = set(keys)
    negatives = [u for u in negatives if u not in key_set]
    return keys, negatives
