"""Simulated OpenStreetMap-style longitude keys.

The paper's Maps dataset (Section 3.7.1) indexes "the longitude of
~200M user-maintained features (e.g., roads, museums, coffee shops)
across the world" and notes that "the longitude of locations is
relatively linear and has fewer irregularities than the Weblogs
dataset".

This module substitutes a mixture model over longitude: most map
features cluster in populated longitude bands (the Americas, Europe/
Africa, South Asia, East Asia), oceans are nearly empty, and within each
band feature density is lumpy (cities).  The result is the same
smooth-but-lumpy CDF the paper describes: far easier to learn than
weblogs, but not perfectly linear.

Longitudes are quantized to fixed-point integers (1e7 ~ the OSM
coordinate resolution) so that all range indexes operate on int64 keys,
like the other datasets.
"""

from __future__ import annotations

import numpy as np

__all__ = ["map_longitudes", "LONGITUDE_SCALE", "PAPER_QUANTA_PER_KEY"]

#: Fixed-point scale: 1e7 steps per degree (OpenStreetMap's resolution).
LONGITUDE_SCALE = 10_000_000

#: Integer quanta per key for the default (scaled) resolution.  Real
#: OSM features concentrate so heavily in mapped regions that populated
#: longitude bands are *saturated* with consecutive fixed-point values,
#: which is what makes the Maps CDF so learnable (77.5% conflict
#: reduction in Figure 8).  A synthetic mixture is necessarily less
#: concentrated than the real world, so this constant is calibrated so
#: the learned-hash conflict rate over the generated data matches the
#: paper's measured 7.9% (calibration sweep: 18 quanta/key -> 32%
#: conflicts, 3 -> 22%, 1.5 -> 8.8%).
PAPER_QUANTA_PER_KEY = 1.5

# (center degrees, std degrees, weight) for the world's population bands.
# Weights roughly follow the share of mapped features per region.
_BANDS = [
    (-122.0, 4.0, 0.06),   # US west coast
    (-95.0, 8.0, 0.08),    # central North America
    (-75.0, 5.0, 0.10),    # US east coast / eastern seaboard
    (-55.0, 8.0, 0.05),    # South America east
    (2.0, 8.0, 0.22),      # western/central Europe (most densely mapped)
    (20.0, 9.0, 0.12),     # eastern Europe
    (37.0, 6.0, 0.05),     # Middle East / east Africa
    (77.0, 6.0, 0.10),     # South Asia
    (105.0, 7.0, 0.08),    # Southeast Asia / China inland
    (121.0, 5.0, 0.07),    # China coast / Taiwan / Philippines
    (139.0, 3.0, 0.05),    # Japan / Korea
    (149.0, 5.0, 0.02),    # eastern Australia
]


def map_longitudes(
    n: int,
    *,
    seed: int = 42,
    city_lumpiness: float = 0.35,
    uniform_background: float = 0.04,
    scale: int | None = None,
) -> np.ndarray:
    """Generate ``n`` unique, sorted fixed-point longitude keys.

    Parameters
    ----------
    n:
        Number of unique keys.
    seed:
        RNG seed.
    city_lumpiness:
        Fraction of each band's mass concentrated in narrow "city"
        sub-clusters (adds fine-grained CDF steps).
    uniform_background:
        Fraction of features spread uniformly over all longitudes
        (shipping lanes, islands, data errors) — keeps the CDF strictly
        increasing everywhere.
    scale:
        Fixed-point steps per degree.  Defaults to a resolution that
        keeps the paper's quanta-per-key density (see
        :data:`PAPER_QUANTA_PER_KEY`); pass :data:`LONGITUDE_SCALE` for
        raw OSM resolution regardless of n.
    """
    if scale is None:
        scale = max(int(n * PAPER_QUANTA_PER_KEY / 360.0), 64)
    rng = np.random.default_rng(seed)
    centers = np.array([b[0] for b in _BANDS])
    stds = np.array([b[1] for b in _BANDS])
    weights = np.array([b[2] for b in _BANDS], dtype=np.float64)
    weights /= weights.sum()

    # Each band gets a few narrow city clusters, drawn once per dataset.
    city_centers = []
    city_stds = []
    for center, std, _weight in _BANDS:
        cities = rng.integers(3, 8)
        city_centers.append(rng.normal(center, std, size=cities))
        city_stds.append(rng.uniform(0.05, 0.4, size=cities))

    def draw(count: int) -> np.ndarray:
        u = rng.random(count)
        out = np.empty(count, dtype=np.float64)

        background = u < uniform_background
        n_bg = int(background.sum())
        out[background] = rng.uniform(-180.0, 180.0, size=n_bg)

        rest = ~background
        n_rest = int(rest.sum())
        band = rng.choice(len(_BANDS), size=n_rest, p=weights)
        in_city = rng.random(n_rest) < city_lumpiness
        values = rng.normal(centers[band], stds[band])
        # Re-draw the "city" subset from that band's narrow clusters.
        for b in range(len(_BANDS)):
            mask = in_city & (band == b)
            count_b = int(mask.sum())
            if count_b == 0:
                continue
            which = rng.integers(0, len(city_centers[b]), size=count_b)
            values[mask] = rng.normal(
                city_centers[b][which], city_stds[b][which]
            )
        out[rest] = values
        out = np.clip(out, -180.0, 180.0)
        return np.round(out * scale).astype(np.int64)

    keys = np.unique(draw(int(n * 1.2) + 16))
    attempts = 0
    while keys.size < n:
        attempts += 1
        if attempts > 64:
            raise RuntimeError("could not generate %d unique longitudes" % n)
        keys = np.unique(np.concatenate([keys, draw(int(n * 0.5) + 16)]))
    if keys.size > n:
        pick = rng.choice(keys.size, size=n, replace=False)
        pick.sort()
        keys = keys[pick]
    return keys.astype(np.int64)
