"""Dataset simulators for the learned-index reproduction.

The paper evaluates on proprietary Google datasets; every generator in
this package is a documented synthetic substitute (see DESIGN.md,
"Fidelity notes") producing deterministic, seeded data with the CDF
properties the paper relies on.
"""

from .maps import LONGITUDE_SCALE, map_longitudes
from .registry import (
    INTEGER_DATASETS,
    IntegerDataset,
    integer_dataset,
    string_dataset,
)
from .strings import document_ids, web_paths
from .synthetic import (
    clustered_keys,
    dedupe_sorted,
    hotspot_queries,
    lognormal_keys,
    normal_keys,
    osm_like,
    scan_workload,
    sequential_keys,
    u64_dense,
    uniform_keys,
    zipf_gap_keys,
    zipfian_queries,
)
from .urls import benign_urls, confusable_urls, phishing_urls, url_dataset
from .weblogs import weblog_timestamps

__all__ = [
    "INTEGER_DATASETS",
    "IntegerDataset",
    "LONGITUDE_SCALE",
    "benign_urls",
    "clustered_keys",
    "confusable_urls",
    "dedupe_sorted",
    "document_ids",
    "hotspot_queries",
    "integer_dataset",
    "lognormal_keys",
    "map_longitudes",
    "normal_keys",
    "osm_like",
    "phishing_urls",
    "scan_workload",
    "sequential_keys",
    "string_dataset",
    "u64_dense",
    "uniform_keys",
    "url_dataset",
    "web_paths",
    "weblog_timestamps",
    "zipf_gap_keys",
    "zipfian_queries",
]
