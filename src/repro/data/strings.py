"""Simulated document-id string keys.

The paper's string experiment (Section 3.7.2) builds "a secondary index
over 10M non-continuous document-ids of a large web index used as part
of a real product at Google".  That dataset is proprietary; this module
substitutes a hierarchical document-id generator with the properties
that make string indexing hard:

* ids are **non-continuous** — only a sparse subset of the id space is
  populated, with region-dependent density;
* ids share long common prefixes (hierarchical shards / collections),
  so early characters carry little information and the CDF conditioned
  on a prefix varies a lot between prefixes;
* lexicographic sort order, fixed alphabet.

Two generators are provided: ``document_ids`` (digit-based ids grouped
into shard prefixes — the default benchmark dataset) and ``web_paths``
(URL-path-like ids with word segments, used by tests and the string
example).
"""

from __future__ import annotations

import numpy as np

__all__ = ["document_ids", "web_paths"]

_WORDS = (
    "alpha beta gamma delta epsilon zeta eta theta iota kappa lamda mu nu "
    "xi omicron pi rho sigma tau upsilon phi chi psi omega index search "
    "doc page item node edge user group file data shard part chunk block "
    "store cache query plan scan join sort hash tree leaf root"
).split()


def document_ids(
    n: int,
    *,
    seed: int = 42,
    shards: int = 64,
    id_digits: int = 12,
) -> list[str]:
    """Generate ``n`` unique, lexicographically sorted document ids.

    An id looks like ``"017-000482117392"``: a zero-padded shard prefix
    followed by a sparse numeric suffix.  Shard populations follow a
    Zipf-like law so some prefixes are dense and others nearly empty —
    the non-uniform structure the paper's string RMI has to learn.
    """
    rng = np.random.default_rng(seed)
    shard_weights = 1.0 / np.arange(1, shards + 1, dtype=np.float64) ** 0.8
    shard_weights /= shard_weights.sum()
    shard_of = rng.choice(shards, size=int(n * 1.2) + 16, p=shard_weights)
    max_suffix = 10**id_digits
    # Per-shard density: some shards cluster their ids low, others spread.
    shard_scale = rng.uniform(0.05, 1.0, size=shards)
    suffix = (
        rng.random(shard_of.size) ** 2.0 * shard_scale[shard_of] * max_suffix
    ).astype(np.int64)

    seen: set[str] = set()
    out: list[str] = []
    shard_width = len(str(shards - 1))
    for s, x in zip(shard_of, suffix):
        key = f"{s:0{shard_width}d}-{x:0{id_digits}d}"
        if key not in seen:
            seen.add(key)
            out.append(key)
            if len(out) == n:
                break
    attempts = 0
    while len(out) < n:
        attempts += 1
        if attempts > 64:
            raise RuntimeError("could not generate %d unique document ids" % n)
        s = int(rng.choice(shards, p=shard_weights))
        x = int(rng.random() ** 2.0 * shard_scale[s] * max_suffix)
        key = f"{s:0{shard_width}d}-{x:0{id_digits}d}"
        if key not in seen:
            seen.add(key)
            out.append(key)
    out.sort()
    return out


def web_paths(
    n: int,
    *,
    seed: int = 42,
    max_depth: int = 4,
) -> list[str]:
    """Generate ``n`` unique sorted URL-path-like string keys.

    Paths like ``"data/shard/item0042"`` with shared prefixes and mixed
    alphanumeric segments; exercises tokenization on a realistic
    alphabet (lowercase + digits + '/').
    """
    rng = np.random.default_rng(seed)
    seen: set[str] = set()
    out: list[str] = []
    attempts = 0
    while len(out) < n:
        attempts += 1
        if attempts > n * 64:
            raise RuntimeError("could not generate %d unique paths" % n)
        depth = int(rng.integers(1, max_depth + 1))
        segments = []
        for level in range(depth):
            word = _WORDS[int(rng.integers(0, len(_WORDS)))]
            if level == depth - 1 and rng.random() < 0.7:
                word = f"{word}{int(rng.integers(0, 10_000)):04d}"
            segments.append(word)
        key = "/".join(segments)
        if key not in seen:
            seen.add(key)
            out.append(key)
    out.sort()
    return out
