"""Synthetic integer key distributions used throughout the paper.

The paper's third integer dataset (Section 3.7.1) is "a synthetic dataset
of 190M unique values sampled from a log-normal distribution with mu = 0
and sigma = 2. The values are scaled up to be integers up to 1B."  This
module reproduces that recipe at configurable scale, plus the uniform /
normal / clustered distributions used by tests and ablation benchmarks.

All generators return **sorted, unique** ``int64`` numpy arrays, which is
the storage layout every range index in this repository operates on
(Section 2 of the paper: a dense, sorted, in-memory array).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "lognormal_keys",
    "uniform_keys",
    "normal_keys",
    "clustered_keys",
    "sequential_keys",
    "zipf_gap_keys",
    "u64_dense",
    "osm_like",
    "dedupe_sorted",
    "zipfian_queries",
    "hotspot_queries",
    "scan_workload",
]

#: Paper scales lognormal values "to be integers up to 1B".  This is a
#: *default*, not a ceiling: every generator takes ``min_key`` /
#: ``max_key`` (up to the full int64 domain), and :func:`u64_dense`
#: produces uint64 keys beyond 2^63 — the batch query core compares
#: all of them exactly in their native dtype (ISSUE 5), so 64-bit
#: SOSD-style datasets flow through the same benchmark plumbing as the
#: paper-scaled ones.
DEFAULT_MAX_KEY = 1_000_000_000

#: Key-space density for the default (scaled) lognormal key range.  The
#: paper puts 190M unique keys in a 1B integer space; how saturated the
#: distribution's dense head is depends on how the raw samples were
#: scaled, which the paper does not pin down.  This constant is
#: calibrated so the learned-hash conflict rate over the generated data
#: matches the paper's measured 25.9% (sweep: 0.19 keys/integer -> 17%
#: conflicts, 0.02 -> 24%, 0.01 -> 26%).
PAPER_KEYS_PER_INTEGER = 0.01


def dedupe_sorted(values: np.ndarray) -> np.ndarray:
    """Sort and deduplicate ``values`` into the canonical key layout.

    Every key array handed to an index must be strictly increasing; this
    helper is the single place that invariant is established.
    """
    return np.unique(np.asarray(values, dtype=np.int64))


def _fill_unique(
    draw, n: int, rng: np.random.Generator, max_attempts: int = 64
) -> np.ndarray:
    """Draw from ``draw(count)`` until ``n`` unique values are collected.

    Heavy-tailed distributions quantized to integers collide; the paper's
    dataset is explicitly described as unique values, so we oversample
    until the unique count is reached.
    """
    unique = np.unique(draw(int(n * 1.1) + 16))
    attempts = 0
    while unique.size < n:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError(
                "could not draw %d unique keys after %d rounds; "
                "increase the key range" % (n, max_attempts)
            )
        extra = draw(int(n * 0.5) + 16)
        unique = np.unique(np.concatenate([unique, extra]))
    # Subsample without disturbing sortedness.
    if unique.size > n:
        pick = rng.choice(unique.size, size=n, replace=False)
        pick.sort()
        unique = unique[pick]
    return unique.astype(np.int64)


def lognormal_keys(
    n: int,
    *,
    mu: float = 0.0,
    sigma: float = 2.0,
    max_key: int | None = None,
    seed: int = 42,
) -> np.ndarray:
    """The paper's heavy-tailed synthetic dataset.

    Samples ``n`` unique values from LogNormal(mu, sigma) and scales them
    to integers in ``[0, max_key]``.  With sigma=2 the CDF is highly
    non-linear, which is what makes it "more difficult to learn using
    neural nets" (Section 3.7.1).

    ``max_key`` defaults to ``n / PAPER_KEYS_PER_INTEGER`` so that the
    key-space density (and hence the saturated dense head of the
    distribution) matches the paper's 190M-keys-in-1B-integers setup at
    any scale; pass ``max_key`` explicitly to decouple them.
    """
    if max_key is None:
        max_key = max(int(n / PAPER_KEYS_PER_INTEGER), 16)
    rng = np.random.default_rng(seed)
    # Scale so the bulk of the distribution lands inside [0, max_key]:
    # exp(mu + 3*sigma) covers ~99.9% of the mass.
    scale = max_key / np.exp(mu + 3.0 * sigma)

    def draw(count: int) -> np.ndarray:
        raw = rng.lognormal(mean=mu, sigma=sigma, size=count) * scale
        return np.clip(raw, 0, max_key).astype(np.int64)

    return _fill_unique(draw, n, rng)


def uniform_keys(
    n: int,
    *,
    min_key: int = 0,
    max_key: int = DEFAULT_MAX_KEY,
    seed: int = 42,
) -> np.ndarray:
    """Uniform random unique integers in ``[min_key, max_key]``.

    The easiest possible distribution for a learned index: a single
    linear model gets near-zero error (the paper's 1M-continuous-keys
    motivating example is the degenerate case of this).  The domain is
    fully parameterized — e.g. ``min_key=2**62`` places every key far
    beyond float64's 2^53 integer resolution, which the exact batch
    query core handles natively.
    """
    if max_key <= min_key:
        raise ValueError("max_key must exceed min_key")
    rng = np.random.default_rng(seed)

    def draw(count: int) -> np.ndarray:
        return rng.integers(min_key, max_key, size=count, dtype=np.int64)

    return _fill_unique(draw, n, rng)


def normal_keys(
    n: int,
    *,
    mu: float = 0.5,
    sigma: float = 0.1,
    min_key: int = 0,
    max_key: int = DEFAULT_MAX_KEY,
    seed: int = 42,
) -> np.ndarray:
    """Gaussian-distributed unique integer keys (mildly non-linear CDF).

    ``mu``/``sigma`` are fractions of the key domain; the domain itself
    is ``[min_key, max_key]``.
    """
    if max_key <= min_key:
        raise ValueError("max_key must exceed min_key")
    rng = np.random.default_rng(seed)
    span = max_key - min_key

    def draw(count: int) -> np.ndarray:
        raw = min_key + rng.normal(mu, sigma, size=count) * span
        return np.clip(raw, min_key, max_key).astype(np.int64)

    return _fill_unique(draw, n, rng)


def clustered_keys(
    n: int,
    *,
    clusters: int = 10,
    spread: float = 0.01,
    min_key: int = 0,
    max_key: int = DEFAULT_MAX_KEY,
    seed: int = 42,
) -> np.ndarray:
    """Keys concentrated around ``clusters`` random centers.

    Produces a step-like CDF with long flat gaps — the adversarial shape
    for a single linear model and the motivating case for the RMI's
    divide-and-conquer (Section 3.2) and for hybrid B-Tree fallback
    (Section 3.3).  The key domain is ``[min_key, max_key]``.
    """
    if max_key <= min_key:
        raise ValueError("max_key must exceed min_key")
    rng = np.random.default_rng(seed)
    span = max_key - min_key
    centers = rng.uniform(min_key, max_key, size=clusters)
    weights = rng.dirichlet(np.ones(clusters))

    def draw(count: int) -> np.ndarray:
        which = rng.choice(clusters, size=count, p=weights)
        raw = rng.normal(centers[which], spread * span)
        return np.clip(raw, min_key, max_key).astype(np.int64)

    return _fill_unique(draw, n, rng)


def sequential_keys(n: int, *, start: int = 0, step: int = 1) -> np.ndarray:
    """Perfectly linear keys: ``start, start+step, ...``.

    The paper's introductory example (keys 1..100M): a learned index
    collapses to a single multiply-add with zero error, turning lookup
    into an O(1) operation.
    """
    return (start + step * np.arange(n, dtype=np.int64)).astype(np.int64)


def zipf_gap_keys(
    n: int, *, alpha: float = 1.5, seed: int = 42, start: int = 0
) -> np.ndarray:
    """Keys whose successive gaps follow a Zipf distribution.

    Models the "mostly dense with occasional large holes" pattern common
    in auto-increment primary keys with deletions.
    """
    rng = np.random.default_rng(seed)
    gaps = rng.zipf(alpha, size=n).astype(np.int64)
    keys = start + np.cumsum(gaps)
    return keys.astype(np.int64)


def u64_dense(
    n: int,
    *,
    start: int | None = None,
    max_gap: int = 3,
    seed: int = 42,
) -> np.ndarray:
    """OSM-cellid-like dense uint64 keys straddling 2^53 and 2^63.

    SOSD's hardest real datasets (osm_cellids, amzn) are dense 64-bit
    domains whose neighbouring keys differ by single units — exactly
    the regime where a float64 round-trip collides adjacent keys
    (float64 resolves only even integers beyond 2^53, and only
    multiples of 1024 near 2^63).  This generator reproduces that
    shape synthetically: two equal dense walks with gaps drawn from
    ``[1, max_gap]``, one placed to straddle the 2^53 float-precision
    cliff, one to cross the 2^63 int64/uint64 boundary.  Keys are
    sorted, unique, ``uint64``.

    ``start`` overrides the first walk's origin (the second walk stays
    anchored at 2^63) — handy for pinning a specific boundary.
    """
    if n < 2:
        raise ValueError("n must be >= 2")
    if max_gap < 1:
        raise ValueError("max_gap must be >= 1")
    rng = np.random.default_rng(seed)
    half = n // 2
    mean_gap = (1 + max_gap) / 2.0

    def walk(origin: int, count: int) -> np.ndarray:
        gaps = rng.integers(1, max_gap + 1, size=count).astype(np.uint64)
        return np.uint64(origin) + np.cumsum(gaps)

    low_origin = (
        start if start is not None else 2**53 - int(half * mean_gap / 2)
    )
    low = walk(max(low_origin, 0), half)
    high = walk(2**63 - int((n - half) * mean_gap / 2), n - half)
    keys = np.concatenate([low, high])
    # The walks are individually strictly increasing; they could only
    # overlap if a caller moves ``start`` next to 2^63.
    return np.unique(keys)


def osm_like(n: int, *, seed: int = 42) -> np.ndarray:
    """Alias for :func:`u64_dense` under its benchmark-registry name."""
    return u64_dense(n, seed=seed)


# -- query workloads ----------------------------------------------------------
#
# SOSD and "Benchmarking Learned Indexes" (Marcus et al., VLDB 2020)
# both show that learned-vs-tree rankings change under *skewed* access
# patterns, not uniform point queries: skew concentrates probes on a few
# cache-resident leaves (flattering any small model) while range scans
# amortize the descent over the scan length.  The generators below
# produce the three canonical skewed workloads over an existing key
# array; all return query values (not positions), mixing no absent keys
# — callers blend in absent probes themselves when the fix-up path
# should be exercised.


def zipfian_queries(
    keys: np.ndarray, n: int, *, alpha: float = 1.1, seed: int = 42
) -> np.ndarray:
    """``n`` point queries whose *rank* popularity is Zipf(alpha).

    A random permutation maps popularity ranks onto key positions, so
    the hot keys are scattered across the key space (the realistic
    case) rather than clustered at one end.
    """
    keys = np.asarray(keys)
    if keys.size == 0:
        return np.empty(0, dtype=np.float64)
    rng = np.random.default_rng(seed)
    ranks = rng.zipf(alpha, size=n).astype(np.int64)
    ranks = np.minimum(ranks - 1, keys.size - 1)
    rank_to_pos = rng.permutation(keys.size)
    return keys[rank_to_pos[ranks]].astype(np.float64)


def hotspot_queries(
    keys: np.ndarray,
    n: int,
    *,
    hot_fraction: float = 0.01,
    hot_weight: float = 0.9,
    seed: int = 42,
) -> np.ndarray:
    """``n`` point queries, ``hot_weight`` of them inside one contiguous
    span covering ``hot_fraction`` of the key array.

    The classic YCSB "hotspot" distribution: 90% of traffic on 1% of
    the data by default.  The hot span's placement is drawn from the
    seed, so different seeds stress different leaves.
    """
    keys = np.asarray(keys)
    if keys.size == 0:
        return np.empty(0, dtype=np.float64)
    if not 0.0 < hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in (0, 1]")
    if not 0.0 <= hot_weight <= 1.0:
        raise ValueError("hot_weight must be in [0, 1]")
    rng = np.random.default_rng(seed)
    span = max(int(keys.size * hot_fraction), 1)
    start = int(rng.integers(0, max(keys.size - span, 0) + 1))
    hot = rng.random(n) < hot_weight
    positions = np.where(
        hot,
        rng.integers(start, start + span, size=n),
        rng.integers(0, keys.size, size=n),
    )
    return keys[positions].astype(np.float64)


def scan_workload(
    keys: np.ndarray,
    n: int,
    *,
    scan_fraction: float = 0.5,
    mean_span: int = 100,
    skew: str = "uniform",
    seed: int = 42,
) -> tuple[np.ndarray, np.ndarray]:
    """A mixed point/range workload: ``(lows, highs)`` endpoint arrays.

    ``scan_fraction`` of the ``n`` queries are range scans whose span
    (in *positions*) is geometric with mean ``mean_span`` — short scans
    dominate, with an exponential tail, the shape SOSD uses; the rest
    are point queries (``low == high``).  Scan start positions follow
    ``skew``: ``"uniform"``, ``"zipfian"`` or ``"hotspot"`` (reusing
    the point-query generators above), so a scan-heavy *and* skewed mix
    is one call.  Feed the result straight to ``range_query_batch``.
    """
    keys = np.asarray(keys)
    if keys.size == 0:
        empty = np.empty(0, dtype=np.float64)
        return empty, empty
    if not 0.0 <= scan_fraction <= 1.0:
        raise ValueError("scan_fraction must be in [0, 1]")
    if mean_span < 1:
        raise ValueError("mean_span must be >= 1")
    rng = np.random.default_rng(seed)
    if skew == "uniform":
        lows = keys[rng.integers(0, keys.size, size=n)].astype(np.float64)
    elif skew == "zipfian":
        lows = zipfian_queries(keys, n, seed=seed + 1)
    elif skew == "hotspot":
        lows = hotspot_queries(keys, n, seed=seed + 1)
    else:
        raise ValueError(
            f"unknown skew {skew!r}; known: uniform, zipfian, hotspot"
        )
    start_pos = np.searchsorted(keys, lows, side="left")
    spans = rng.geometric(1.0 / mean_span, size=n).astype(np.int64)
    spans[rng.random(n) >= scan_fraction] = 0
    end_pos = np.minimum(start_pos + spans, keys.size - 1)
    highs = keys[end_pos].astype(np.float64)
    return lows, highs
