"""Named dataset registry used by benchmarks and examples.

The paper evaluates on three integer datasets (Maps, Weblogs,
Lognormal), one string dataset (document ids) and one URL dataset.
Benchmarks refer to them by name through this registry so every
experiment pulls byte-identical data for a given (name, n, seed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from . import maps, strings, synthetic, weblogs

__all__ = ["IntegerDataset", "integer_dataset", "INTEGER_DATASETS", "string_dataset"]


@dataclass(frozen=True)
class IntegerDataset:
    """A sorted unique integer key array plus its provenance.

    Keys are int64 for the paper-scaled datasets and uint64 for the
    64-bit SOSD-style ones (``osm_like``); every index's batch path
    compares them exactly in their native dtype.
    """

    name: str
    keys: np.ndarray
    description: str

    @property
    def n(self) -> int:
        return int(self.keys.size)


_INTEGER_GENERATORS: dict[str, tuple[Callable[..., np.ndarray], str]] = {
    "maps": (
        maps.map_longitudes,
        "fixed-point longitudes of world map features (paper: Maps)",
    ),
    "weblogs": (
        weblogs.weblog_timestamps,
        "university web-server request timestamps (paper: Weblogs)",
    ),
    "lognormal": (
        synthetic.lognormal_keys,
        "lognormal(0, 2) values scaled to integers (paper: Lognormal)",
    ),
    "uniform": (synthetic.uniform_keys, "uniform random integers (ablation)"),
    "normal": (synthetic.normal_keys, "gaussian integers (ablation)"),
    "clustered": (
        synthetic.clustered_keys,
        "heavily clustered integers (adversarial ablation)",
    ),
    "osm_like": (
        synthetic.osm_like,
        "dense uint64 keys straddling 2^53 and 2^63 (SOSD osm_cellids "
        "stand-in; exercises the exact 64-bit query core)",
    ),
}

#: The paper's three evaluation datasets, in Figure 4 column order.
INTEGER_DATASETS = ("maps", "weblogs", "lognormal")


def integer_dataset(name: str, n: int, *, seed: int = 42) -> IntegerDataset:
    """Materialize a named integer dataset with ``n`` unique sorted keys."""
    try:
        generator, description = _INTEGER_GENERATORS[name]
    except KeyError:
        known = ", ".join(sorted(_INTEGER_GENERATORS))
        raise KeyError(f"unknown dataset {name!r}; known: {known}") from None
    keys = generator(n, seed=seed)
    if keys.size != n:
        raise AssertionError(f"{name} generator returned {keys.size} != {n}")
    return IntegerDataset(name=name, keys=keys, description=description)


def string_dataset(n: int, *, seed: int = 42) -> list[str]:
    """The paper's document-id string dataset (Section 3.7.2 substitute)."""
    return strings.document_ids(n, seed=seed)
