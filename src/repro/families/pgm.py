"""PGM-index: recursive ε-bounded piecewise-linear segments.

The Piecewise Geometric Model index (Ferragina & Vinciguerra, VLDB
2020) approximates the key CDF with linear segments whose prediction
error is provably at most ε, then *recurses*: the first keys of the
leaf segments are themselves a sorted array, indexed by another
ε-segmentation, and so on until a level is small enough to resolve
with a single fitted line.  A lookup descends the levels — at each one
a linear model plus an O(log ε) bounded search — and ends in a leaf
segment whose window is at most ``2ε + 3`` slots wide.

Mapping onto this repo's kernel:

* segments come from the vectorized split-refine fit in
  :mod:`repro.families.segmentation` (ε guarantee identical, build
  array-native instead of the paper's streaming convex-hull sweep);
* the leaf level *is* a :class:`~repro.core.engine.CompiledPlan` —
  four flat tables over the shared key column — so every batch path,
  the sorted-batch fast path, and the serving layer run unchanged;
* the recursive descent is this family's ``root_predict_batch``: it
  resolves a query batch to leaf indices with fixed-round lock-step
  bounded searches per level and hands the engine
  ``(leaf + 0.5) * n / m``, the fixed point of the plan's
  ``floor(pred * m / n)`` routing.

Internal levels index *distinct* keys, so every converged internal
segment — single-key segments fit exactly — obeys the uniform
ε_internal bound.  The descent exploits that twice: windows are a
constant ``2·ε_internal + 4`` wide (no per-segment offset gathers),
and the bounded search is *branchless lock-step*: a power-of-two
window halved by ``base += half * (keys[base + half - 1] <= q)``
rounds — one gather, one compare, one fused add per round, no masks
and no ``np.where`` — landing on the child *upper bound*, whose
``- 1`` is the predecessor segment with no correction pass.  The top
array (at most :data:`TOP_FANOUT` entries) is routed by a small
bucket table whose cells bracket the upper bound exactly (the cell
function is monotone in the key), so the top costs a handful of
arithmetic ops plus the measured ``ceil(log2(max bracket))`` rounds.

Exactness does not rest on the descent: the engine verifies every
result against the dtype-native column and fixes up the rare misses
(keys collapsing in float64, absent keys), so PGM lookups are
bit-identical to the bisect oracle even beyond 2^53.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import NamedTuple

import numpy as np

from ..models.cdf import positions_for_keys
from .base import CompiledPlanIndex
from .segmentation import epsilon_segment

__all__ = ["PGMIndex", "DEFAULT_PGM_EPSILON", "DEFAULT_PGM_EPSILON_INTERNAL"]

#: Default leaf ε — engine windows of ~2ε keys, comparable to the
#: tuned RMI's mean leaf window; larger values trade search width for
#: fewer segments and a faster build.
DEFAULT_PGM_EPSILON = 16

#: Default ε for the internal (recursive) levels.  Internal arrays are
#: tiny relative to the data, so a tight bound costs little space but
#: keeps each descent step to three lock-step rounds — the PGM paper
#: likewise tunes ε_internal separately from the leaf ε.
DEFAULT_PGM_EPSILON_INTERNAL = 2

#: Recursion stops once a segment-first array fits in this many
#: entries; the top is then resolved by a bucket table (or one
#: ``searchsorted`` when the key distribution packs too many top
#: entries into one bucket).
TOP_FANOUT = 512

#: Upper limit on the top bucket table (2**bits cells — at most 64KiB).
TOP_TABLE_MAX_BITS = 13

#: Fall back to ``searchsorted`` top routing when some bucket would
#: need more than this many lock-step rounds to resolve.
TOP_ROUNDS_CAP = 6


class _Level(NamedTuple):
    """One internal level: an ε-segmentation over ``child_keys`` (the
    strictly-increasing first keys of the level below, stored with the
    branchless-search sentinel tail).  No per-segment error bounds —
    the uniform ε_internal bound covers every converged segment of a
    distinct-key array."""

    first_keys: np.ndarray  # this level's segment first keys
    slopes: np.ndarray
    intercepts: np.ndarray
    child_padded: np.ndarray  # child first keys + inf tail
    child_count: int


def _predecessor(
    pos: np.ndarray, keys: np.ndarray, qf: np.ndarray
) -> np.ndarray:
    """Predecessor index per query from lower-bound positions over a
    strictly-increasing float64 key array (rightmost key <= query;
    queries below the first key clamp to 0)."""
    c = keys.size
    take = np.minimum(pos, c - 1)
    j = pos - ((pos == c) | (keys[take] > qf))
    np.clip(j, 0, c - 1, out=j)
    return j


def _pad_keys(keys: np.ndarray, rounds: int) -> np.ndarray:
    """``keys`` extended by a ``2**rounds`` tail of ``+inf`` sentinels
    so every branchless-round probe stays in bounds without masking
    (``inf <= q`` is false, so sentinels never advance ``base``)."""
    pad = np.full(1 << rounds, np.inf)
    return np.concatenate([keys.astype(np.float64), pad])


def _upper_bound_branchless(
    padded: np.ndarray,
    qf: np.ndarray,
    base: np.ndarray,
    rounds: int,
) -> np.ndarray:
    """Per-query upper bound by branchless lock-step halving.

    ``base`` brackets each query's upper bound in ``[base, base + W]``
    with ``W = 2**rounds``; ``padded`` carries a ``W``-long ``+inf``
    tail (:func:`_pad_keys`) so probes never leave the array.  Each
    round probes one position and advances ``base`` by ``half`` where
    the probe key is ``<= q`` — three vector ops, no mask, no
    ``np.where``; the classic branchless binary search run in lock
    step.  ``base`` is mutated in place and returned.  Out-of-model
    lanes (NaN predictions) compare false everywhere and stay at their
    clipped ``base`` — a routing hint the engine repairs downstream.
    """
    length = 1 << rounds
    while length > 1:
        half = length >> 1
        base += half * (padded.take(base + (half - 1)) <= qf)
        length -= half
    base += padded.take(base) <= qf
    return base


class PGMIndex(CompiledPlanIndex):
    """Read-optimized PGM-index over a sorted key array.

    Parameters
    ----------
    keys:
        Sorted numpy array (not copied); any dtype the shared column
        supports, including int64/uint64 beyond 2^53.
    epsilon:
        Leaf error bound: every segment spanning more than one distinct
        float64 key satisfies ``max |prediction - position| <= epsilon``
        (the hard invariant the test suite asserts).  Single-value runs
        store their measured bounds instead, so duplicate-heavy data
        stays exact with honestly-wider windows.
    epsilon_internal:
        Error bound for the recursive levels over segment first keys.
    """

    def __init__(
        self,
        keys: np.ndarray,
        epsilon: int = DEFAULT_PGM_EPSILON,
        epsilon_internal: int = DEFAULT_PGM_EPSILON_INTERNAL,
    ):
        self.epsilon = float(epsilon)
        self.epsilon_internal = float(epsilon_internal)
        self._levels: list[_Level] = []
        self._top_keys = np.zeros(0, dtype=np.float64)
        self._top_route: tuple = ("single",)
        super().__init__(keys)

    def _build(self) -> None:
        n = self.keys.size
        keys_f = self.keys.astype(np.float64)
        seg = epsilon_segment(
            keys_f, positions_for_keys(n), self.epsilon, fit="least_squares"
        )
        m = seg.segment_count
        self.build_rounds = seg.rounds
        first_keys = keys_f[seg.boundaries[:-1]]
        self._leaf_first_list = first_keys.tolist()
        # Recurse over segment first keys until the remainder fits the
        # top.  A level that fails to shrink its input (every child its
        # own segment — pathological float64 collapse) stops the
        # recursion; the top route just covers more entries.
        levels: list[_Level] = []
        child = first_keys
        k = int(np.ceil(self.epsilon_internal))
        # Window [floor(raw) - k - 1, floor(raw) + k + 3) brackets the
        # upper bound for a prediction within +-k; round up to the
        # enclosing power of two for the branchless halving.
        self._level_rounds = (2 * k + 3).bit_length()
        self._level_slack = k
        while child.size > TOP_FANOUT:
            lseg = epsilon_segment(
                child,
                positions_for_keys(child.size),
                self.epsilon_internal,
                fit="least_squares",
            )
            if lseg.segment_count >= child.size:
                break
            parents = child[lseg.boundaries[:-1]]
            levels.append(_Level(
                parents, lseg.slopes, lseg.intercepts,
                _pad_keys(child, self._level_rounds), child.size,
            ))
            child = parents
        levels.reverse()  # descent order: top level first
        self._levels = levels
        self._top_keys = child
        self._top_route = self._fit_top_route(child)
        inv = n / m
        self._route_inverse = inv

        def root_predict_batch(qf: np.ndarray) -> np.ndarray:
            leaf = self._descend(np.asarray(qf, dtype=np.float64))
            # The engine recovers the leaf via floor(pred * m / n);
            # centering on +0.5 keeps truncation exact through the
            # round trip for any realistic segment count.
            return (leaf.astype(np.float64) + 0.5) * inv

        self._install_plan(
            root_predict_batch, m,
            seg.slopes, seg.intercepts, seg.lo_offsets, seg.hi_offsets,
        )

    @staticmethod
    def _fit_top_route(top: np.ndarray) -> tuple:
        """Routing recipe for the top array: trivial for one entry, a
        bucket table otherwise (a few arithmetic ops plus the measured
        worst-bucket lock-step rounds beat ``searchsorted``'s fixed
        per-query overhead), ``searchsorted`` when some bucket is
        adversarially deep.

        The table stores ``table[c] = first top entry in a cell >= c``
        over ``cells = 2**bits`` equal key ranges; the cell function is
        monotone in the key, so a query in cell ``c`` has its top upper
        bound inside ``[table[c], table[c + 1] + 1]`` — an exact
        bracket, not a heuristic.
        """
        m = top.size
        if m <= 1:
            return ("single",)
        bits = min(int(np.ceil(np.log2(m))) + 2, TOP_TABLE_MAX_BITS)
        cells = 1 << bits
        min_f = float(top[0])
        span = float(top[-1]) - min_f
        if not span > 0 or not np.isfinite(span):
            return ("search",)
        scale = cells / span
        top_cells = ((top - min_f) * scale).astype(np.int64)
        np.clip(top_cells, 0, cells - 1, out=top_cells)
        table = np.searchsorted(
            top_cells, np.arange(cells + 1), side="left"
        ).astype(np.int64)
        max_bracket = int(np.max(table[1:] - table[:-1])) + 1
        rounds = max(max_bracket - 1, 1).bit_length()
        if rounds > TOP_ROUNDS_CAP:
            return ("search",)
        return ("table", min_f, scale, table, rounds, _pad_keys(top, rounds))

    def _descend(self, qf: np.ndarray) -> np.ndarray:
        """Leaf segment index per query: the recursive PGM descent.

        Resolve the top array to a segment of the highest level, then
        per level one gathered linear prediction plus a fixed-round
        bounded upper-bound search over the child first keys; the
        upper bound minus one is the predecessor segment.  A
        float64-degenerate misroute only costs the engine a verified
        fix-up downstream.
        """
        top = self._top_keys
        route = self._top_route
        if route[0] == "single":
            j = np.zeros(qf.size, dtype=np.int64)
        elif route[0] == "table":
            _tag, min_f, scale, table, rounds, padded = route
            cell = ((qf - min_f) * scale).astype(np.int64)
            np.clip(cell, 0, table.size - 2, out=cell)
            j = _upper_bound_branchless(padded, qf, table.take(cell), rounds)
            j -= 1
            np.clip(j, 0, top.size - 1, out=j)
        else:
            j = np.searchsorted(top, qf, side="right") - 1
            np.clip(j, 0, top.size - 1, out=j)
        slack = self._level_slack
        rounds = self._level_rounds
        for level in self._levels:
            raw = level.slopes[j] * qf
            raw += level.intercepts[j]
            base = raw.astype(np.int64)
            base -= slack + 1
            np.clip(base, 0, level.child_count, out=base)
            j = _upper_bound_branchless(level.child_padded, qf, base, rounds)
            j -= 1
            np.clip(j, 0, level.child_count - 1, out=j)
        return j

    def _route_scalar(self, key) -> int:
        # Scalar latency path: predecessor leaf by first key.  One
        # bisect over the Python-float mirror — the descent is a batch
        # amortization, not a correctness requirement.
        j = bisect_right(self._leaf_first_list, float(key)) - 1
        return j if j >= 0 else 0

    @property
    def level_count(self) -> int:
        """Internal levels between the top array and the leaves."""
        return len(self._levels)

    def _routing_size_bytes(self) -> int:
        total = self._top_keys.size * 8
        total += len(self._leaf_first_list) * 8
        if self._top_route[0] == "table":
            total += self._top_route[3].size * 8  # bucket table
            total += self._top_route[5].size * 8  # padded top keys
        for level in self._levels:
            # slopes + intercepts + padded child copy
            total += level.first_keys.size * 8 * 2
            total += level.child_padded.size * 8
        return total
