"""ALEX-style gapped-array writable learned index.

ALEX (Ding et al., SIGMOD 2020) answers the paper's open question of
inserts for learned indexes by storing keys in a *gapped array*: the
key space is spread over a larger slot array so most inserts land in a
nearby gap (amortized O(1) memmove) instead of shifting half the data,
and the learned model predicts slot positions directly.

This variant keeps the repo's kernel in charge of exactness.  The slot
array holds every live key at its slot, with each gap slot carrying a
*forward-filled copy* of its predecessor's value, so the whole array is
always sorted — which means a stock
:class:`~repro.core.rmi.RecursiveModelIndex` over the slot array stays
a *correct* router even as inserts and deletes mutate the slots in
place underneath it (the scalar view and the engine's verification
probe live memory; a stale model only costs fix-ups, never wrong
positions).  Ranks over live keys come from one exclusive prefix sum of
the occupancy bitmap.  When write drift makes the model's windows pay
too many fix-ups — or the array runs out of gaps — the index re-spreads
and retrains, exactly ALEX's "smart" node expansion collapsed to one
flat node.

Semantics: a sorted **set** of keys (duplicates dedup on build and
insert), with ``lookup``/``upper_bound``/``contains``/``range_query``
and their batch variants ranked over the live keys — the same contract
the differential churn suite cross-checks against a bisect set oracle.

Invariants (each preserved by every mutation, see the method bodies):

1. ``slots`` is non-decreasing; gap and deleted slots hold values, not
   holes.
2. The first slot whose value is >= v holds v's live copy if v is
   live — inserts always write at the lower bound, and a shift can
   only insert *ahead* of an equal-value run, never split it.
3. ``#live keys < v == cum[lower_bound(slots, v)]`` where ``cum`` is
   the exclusive prefix sum of ``occupied`` (slots before the lower
   bound are < v, slots after are >= v, and only occupied slots are
   live).
"""

from __future__ import annotations

import numpy as np

from ..core.rmi import RecursiveModelIndex, RMIStats
from ..range_scan import RangeScanResult, batch_range_scan
from ..core.engine import SortedKeyColumn
from ..util import scalar_view

__all__ = ["GappedArrayIndex", "DEFAULT_DENSITY"]

#: Fraction of slots occupied after a (re)build; the ALEX paper's
#: lower density bound is 0.6 and upper 0.8 — 0.7 sits between.
DEFAULT_DENSITY = 0.7

#: Re-spread + retrain once live keys exceed this slot fraction.
MAX_DENSITY = 0.85

#: Initial half-width of the expanding nearest-gap search.
GAP_SEARCH_WINDOW = 32


class GappedArrayIndex:
    """Writable learned index over a gapped slot array.

    Parameters
    ----------
    keys:
        Initial keys (any order, duplicates collapse — set semantics).
    density:
        Occupied fraction after a (re)build.
    dtype:
        Slot dtype when ``keys`` is empty (otherwise inherited).
    """

    def __init__(
        self,
        keys=None,
        *,
        density: float = DEFAULT_DENSITY,
        dtype=np.int64,
    ):
        if not 0.0 < density <= 1.0:
            raise ValueError("density must be in (0, 1]")
        self.density = float(density)
        arr = (
            np.zeros(0, dtype=dtype)
            if keys is None
            else np.unique(np.asarray(keys))
        )
        self.stats = RMIStats()
        self.rebuilds = -1  # the initial build is not a rebuild
        self._rebuild(arr)

    # -- (re)building ------------------------------------------------------

    def _rebuild(self, live: np.ndarray) -> None:
        """Spread ``live`` (sorted unique) over a fresh gapped array and
        retrain the slot model."""
        n = live.size
        self.rebuilds += 1
        self._count = int(n)
        if n == 0:
            self._slots = live[:0]
            self._occupied = np.zeros(0, dtype=bool)
            self._model = None
        else:
            capacity = max(int(np.ceil(n / self.density)), 16)
            # Strictly increasing slot targets (capacity >= n), first
            # key at slot 0 so forward-fill has a seed everywhere.
            slot_of = (np.arange(n, dtype=np.int64) * capacity) // n
            occupied = np.zeros(capacity, dtype=bool)
            occupied[slot_of] = True
            slots = np.empty(capacity, dtype=live.dtype)
            slots[slot_of] = live
            # Gap slots copy their predecessor's value: the array stays
            # sorted, so any sorted-array index can route over it.
            fill = np.maximum.accumulate(
                np.where(occupied, np.arange(capacity, dtype=np.int64), 0)
            )
            slots = slots[fill]
            self._slots = slots
            self._occupied = occupied
            leaves = int(max(16, min(capacity // 64, 1 << 17)))
            self._model = RecursiveModelIndex(slots, stage_sizes=(1, leaves))
            self._model.stats = self.stats
        self._slots_view = scalar_view(self._slots)
        self._cum = None
        self._live = None
        self._live_column = None
        self._writes_since_rebuild = 0
        self._rebuild_threshold = max(256, self.capacity // 8)

    def _note_write(self) -> None:
        self._cum = None
        self._live = None
        self._live_column = None
        self._writes_since_rebuild += 1

    def _maybe_rebuild(self) -> None:
        if (
            self._writes_since_rebuild > self._rebuild_threshold
            or self._count >= int(self.capacity * MAX_DENSITY)
        ):
            self._rebuild(self.live_keys().copy())

    # -- derived state -----------------------------------------------------

    @property
    def capacity(self) -> int:
        return int(self._slots.size)

    def __len__(self) -> int:
        return self._count

    def live_keys(self) -> np.ndarray:
        """The live keys, sorted unique (cached between writes)."""
        if self._live is None:
            self._live = self._slots[self._occupied]
        return self._live

    def _cumulative(self) -> np.ndarray:
        """``cum[s]`` = number of occupied slots before slot ``s``."""
        if self._cum is None:
            cum = np.zeros(self.capacity + 1, dtype=np.int64)
            np.cumsum(self._occupied, out=cum[1:])
            self._cum = cum
        return self._cum

    def _column(self) -> SortedKeyColumn:
        if self._live_column is None:
            self._live_column = SortedKeyColumn(self.live_keys())
        return self._live_column

    # -- reads (ranks over live keys) --------------------------------------

    def lookup(self, key) -> int:
        """Rank of the first live key >= ``key`` (lower bound)."""
        if self._model is None:
            return 0
        s = self._model.lookup(key)
        return int(self._cumulative()[s])

    def contains(self, key) -> bool:
        if self._model is None:
            return False
        s = self._model.lookup(key)
        return (
            s < self.capacity
            and self._slots_view[s] == key
            and bool(self._occupied[s])
        )

    def upper_bound(self, key) -> int:
        """Rank one past the last live key <= ``key``."""
        return self.lookup(key) + (1 if self.contains(key) else 0)

    def range_query(self, low, high) -> np.ndarray:
        """All live keys in ``[low, high]``."""
        live = self.live_keys()
        if high < low:
            return live[0:0]
        return live[self.lookup(low):self.upper_bound(high)]

    def lookup_batch(
        self, queries, *, sort: bool | None = None
    ) -> np.ndarray:
        """Batched :meth:`lookup`: live-key lower bounds, dtype-exact
        (the slot model's engine verifies against live slot memory)."""
        if self._model is None:
            return np.zeros(np.asarray(queries).size, dtype=np.int64)
        positions = self._model.lookup_batch(queries, sort=sort)
        return self._cumulative()[positions]

    def contains_batch(self, queries) -> np.ndarray:
        if self._model is None:
            return np.zeros(np.asarray(queries).size, dtype=bool)
        # The model's contains is dtype-exact over slot values; a hit is
        # live iff the lower-bound slot (= the run head, invariant 2)
        # is occupied.
        in_slots = self._model.contains_batch(queries)
        positions = self._model.lookup_batch(queries)
        np.clip(positions, 0, self.capacity - 1, out=positions)
        return in_slots & self._occupied[positions]

    def upper_bound_batch(
        self, queries, *, sort: bool | None = None
    ) -> np.ndarray:
        return (
            self.lookup_batch(queries, sort=sort)
            + self.contains_batch(queries)
        )

    def range_query_batch(
        self, lows, highs, *, sort: bool | None = None
    ) -> RangeScanResult:
        """Batched :meth:`range_query` over the live keys."""
        return batch_range_scan(
            self.live_keys(), lows, highs,
            lambda q: self.lookup_batch(q, sort=sort),
            column=self._column(),
        )

    # -- writes ------------------------------------------------------------

    def insert(self, key) -> bool:
        """Insert ``key``; returns False if already live (set
        semantics).  Amortized O(1): write into a nearby gap, shifting
        the few slots between."""
        if self._model is None:
            self._rebuild(np.array([key], dtype=self._slots.dtype))
            return True
        cap = self.capacity
        s = self._model.lookup(key)
        if s < cap and self._slots_view[s] == key:
            if self._occupied[s]:
                return False
            # Resurrect a deleted slot: the value is already in place.
            self._occupied[s] = True
            self._count += 1
            self._note_write()
            self._maybe_rebuild()
            return True
        g = self._nearest_gap(s)
        if g < 0:
            # No gaps left anywhere: expand via a full re-spread.
            live = self.live_keys()
            self._rebuild(np.union1d(
                live, np.array([key], dtype=live.dtype)
            ))
            return True
        slots, occupied = self._slots, self._occupied
        if g >= s:
            # Shift (s..g-1) right into the gap, write at the lower
            # bound: slots[s-1] < key < slots[s] keeps sortedness.
            slots[s + 1:g + 1] = slots[s:g]
            occupied[s + 1:g + 1] = occupied[s:g]
            slots[s] = key
            occupied[s] = True
        else:
            # Gap on the left: shift (g+1..s-1) left, write at s-1
            # (slots[s-1] < key by the lower bound, so the moved block
            # stays below the new key).
            slots[g:s - 1] = slots[g + 1:s]
            occupied[g:s - 1] = occupied[g + 1:s]
            slots[s - 1] = key
            occupied[s - 1] = True
        self._count += 1
        self._note_write()
        self._maybe_rebuild()
        return True

    def delete(self, key) -> bool:
        """Delete ``key`` if live: clear its occupancy bit, leaving the
        slot value as routing ballast (invariant 1 holds untouched)."""
        if self._model is None:
            return False
        s = self._model.lookup(key)
        if (
            s < self.capacity
            and self._slots_view[s] == key
            and self._occupied[s]
        ):
            self._occupied[s] = False
            self._count -= 1
            self._note_write()
            return True
        return False

    def insert_batch(self, keys) -> int:
        """Insert many keys; returns how many were new.  Large batches
        (vs the live size) take one union + re-spread instead of
        per-key gap shuffling."""
        arr = np.unique(np.asarray(keys, dtype=self._slots.dtype))
        if arr.size == 0:
            return 0
        if self._model is None or arr.size > max(64, self._count // 4):
            live = self.live_keys()
            before = self._count
            self._rebuild(np.union1d(live, arr))
            return self._count - before
        return sum(self.insert(key) for key in arr.tolist())

    def merge(self, keys) -> int:
        """Bulk-load alias for :meth:`insert_batch` (the writable-index
        contract used by the churn suite)."""
        return self.insert_batch(keys)

    def _nearest_gap(self, s: int) -> int:
        """Index of the unoccupied slot nearest ``s`` (either side),
        -1 if the array is gap-free.  Expanding windowed scan keeps the
        common case O(window) rather than O(capacity)."""
        occ = self._occupied
        cap = occ.size
        w = GAP_SEARCH_WINDOW
        while True:
            lo, hi = max(0, s - w), min(cap, s + w)
            free = np.nonzero(~occ[lo:hi])[0]
            if free.size:
                cands = free + lo
                return int(cands[np.argmin(np.abs(cands - s))])
            if lo == 0 and hi == cap:
                return -1
            w *= 8

    # -- accounting --------------------------------------------------------

    def size_bytes(self) -> int:
        """Slot array + occupancy bitmap + slot model."""
        total = self._slots.nbytes + self._occupied.nbytes
        if self._model is not None:
            total += self._model.size_bytes()
        return total

    def __repr__(self) -> str:
        return (
            f"GappedArrayIndex(live={self._count}, "
            f"capacity={self.capacity}, "
            f"rebuilds={self.rebuilds}, "
            f"writes_since_rebuild={self._writes_since_rebuild})"
        )
