"""Competing learned-index families over the shared kernel (PR 10).

The RMI (:mod:`repro.core.rmi`) is one point in the space of
CDF-approximating structures; this package adds the other modern
families, all compiled to the same
:class:`~repro.core.engine.CompiledPlan` flat tables so the batch
engine, the sorted-batch fast path, the dtype-exact column contract,
and the serving/obs layers apply to every one of them:

* :class:`PGMIndex` — recursive ε-bounded piecewise-linear segments;
* :class:`RadixSplineIndex` — spline knots behind a radix table;
* :class:`GappedArrayIndex` — the ALEX-style writable variant, a
  gapped slot array under a live-routed slot model.

``benchmarks/bench_matrix.py`` races them against the RMI and the
classic baselines across the SOSD-style dataset × workload matrix.
"""

from .alex import DEFAULT_DENSITY, GappedArrayIndex
from .base import CompiledPlanIndex
from .pgm import DEFAULT_PGM_EPSILON, PGMIndex
from .radix_spline import DEFAULT_SPLINE_EPSILON, RadixSplineIndex
from .segmentation import EpsilonSegmentation, epsilon_segment

__all__ = [
    "CompiledPlanIndex",
    "DEFAULT_DENSITY",
    "DEFAULT_PGM_EPSILON",
    "DEFAULT_SPLINE_EPSILON",
    "EpsilonSegmentation",
    "GappedArrayIndex",
    "PGMIndex",
    "RadixSplineIndex",
    "epsilon_segment",
]
