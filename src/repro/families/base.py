"""Shared chassis for learned-index families compiled to a plan.

The ISSUE 10 families (PGM-index, RadixSpline) differ from the RMI only
in how a query is *routed* to a linear leaf segment; everything after
routing — the Section 3.4 error window, the bounded search, the
dtype-exact verification and fix-up, the sorted-batch fast path, range
assembly — is the shared engine (:mod:`repro.core.engine`).  This base
class captures that split: a subclass builds its segments and routing
structure in ``_build`` and installs them with :meth:`_install_plan`;
the base provides the full scalar + batch public surface of
:class:`repro.core.rmi.RecursiveModelIndex` over the installed
:class:`~repro.core.engine.CompiledPlan`, so every family drops into
the differential-oracle and adversarial-dtype suites, the serving
layer, and the benchmark matrix unchanged.

The scalar latency path mirrors ``RecursiveModelIndex._lookup_fast``
(plain-float list mirrors, bounded binary search, exponential-search
fix-up) with the single hook :meth:`_route_scalar` supplying the leaf
index.  Exactness never depends on routing: any leaf's stored window is
searched and the result verified, so a misrouted query costs a fix-up,
never a wrong position — which is also why float64 routing stays exact
on int64/uint64 keys beyond 2^53.
"""

from __future__ import annotations

import numpy as np

from ..btree.search_baselines import exponential_search
from ..range_scan import RangeScanResult, batch_range_scan
from ..util import scalar_view
from ..core.engine import (
    CompiledPlan,
    SortedKeyColumn,
    clamp_window,
)
from ..core.rmi import RMIStats

__all__ = ["CompiledPlanIndex"]


class CompiledPlanIndex:
    """A learned range index whose batch surface is one compiled plan.

    Subclasses implement ``_build`` (segment fitting + routing
    structure; must call :meth:`_install_plan` when ``keys`` is
    non-empty) and ``_route_scalar`` (one key → leaf index, the scalar
    analogue of the plan's vectorized routing).  Lower-bound semantics
    are identical to every index in :mod:`repro.btree`.
    """

    def __init__(self, keys: np.ndarray):
        keys = np.asarray(keys)
        if keys.ndim != 1:
            raise ValueError("keys must be one-dimensional")
        # Comparison instead of np.diff: no int64 difference overflow
        # on huge key spans and no full-width temporary.
        if keys.size and np.any(keys[:-1] > keys[1:]):
            raise ValueError("keys must be sorted ascending")
        self.keys = keys
        self._keys_view = scalar_view(keys)
        self._column = SortedKeyColumn(keys)
        self.stats = RMIStats()
        self._plan: CompiledPlan | None = None
        if keys.size:
            self._build()

    # -- subclass contract -------------------------------------------------

    def _build(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _route_scalar(self, key) -> int:  # pragma: no cover - abstract
        """Leaf segment index for one (float-encoded) key."""
        raise NotImplementedError

    def _routing_size_bytes(self) -> int:
        """Bytes held by the family's routing structure (beyond the
        four flat leaf tables) — radix table, internal levels, ..."""
        return 0

    def _install_plan(
        self,
        root_predict_batch,
        leaf_count: int,
        slopes: np.ndarray,
        intercepts: np.ndarray,
        lo_offsets: np.ndarray,
        hi_offsets: np.ndarray,
    ) -> None:
        """Adopt solved leaf tables as this index's compiled plan.

        ``root_predict_batch`` must accept a bare float64 query array
        (the sorted-batch fast path re-routes deduplicated queries
        outside any prepared batch) and return float64 *position*
        predictions whose ``floor(pred * leaf_count / n)`` recovers the
        intended leaf — the plan's routing contract.
        """
        self._plan = CompiledPlan(
            self._column,
            root_predict_batch,
            leaf_count,
            slopes,
            intercepts,
            lo_offsets,
            hi_offsets,
        )
        # Python-list mirrors: native floats per probe on the scalar
        # latency path (indexing numpy boxes a np.float64 each time).
        self._slopes_list = slopes.tolist()
        self._intercepts_list = intercepts.tolist()
        self._lo_offsets_list = lo_offsets.tolist()
        self._hi_offsets_list = hi_offsets.tolist()

    # -- scalar latency path ----------------------------------------------

    def lookup(self, key) -> int:
        """Position of the first stored key >= ``key`` (lower bound)."""
        n = self.keys.size
        if n == 0:
            return 0
        stats = self.stats
        stats.lookups += 1
        j = self._route_scalar(key)
        raw = self._slopes_list[j] * key + self._intercepts_list[j]
        lo = int(raw - self._lo_offsets_list[j]) - 1
        hi = int(raw - self._hi_offsets_list[j]) + 2
        lo, hi = clamp_window(lo, hi, n)
        stats.window_total += hi - lo
        keys = self._keys_view
        comparisons = 0
        left, right = lo, hi
        while left < right:
            mid = (left + right) >> 1
            comparisons += 1
            if keys[mid] < key:
                left = mid + 1
            else:
                right = mid
        stats.comparisons += comparisons
        # Misprediction check (Section 3.4): widen if the window missed.
        if left < n and keys[left] < key:
            stats.fixups += 1
            return exponential_search(keys, key, left)
        if left > 0 and keys[left - 1] >= key:
            stats.fixups += 1
            return exponential_search(keys, key, left - 1)
        return left

    def upper_bound(self, key) -> int:
        """Position one past the last stored key <= ``key``."""
        pos = self.lookup(key)
        return pos + int(np.searchsorted(self.keys[pos:], key, side="right"))

    def contains(self, key) -> bool:
        pos = self.lookup(key)
        return pos < self.keys.size and self.keys[pos] == key

    def range_query(self, low, high) -> np.ndarray:
        """All stored keys in ``[low, high]``."""
        if high < low:
            return self.keys[0:0]
        start = self.lookup(low)
        end = self.lookup(high)
        end += int(np.searchsorted(self.keys[end:], high, side="right"))
        return self.keys[start:end]

    # -- batch surface (thin adapters over the shared engine) --------------

    def _prepare_queries(self, queries) -> np.ndarray:
        queries = np.asarray(queries)
        if queries.dtype == object:
            queries = queries.astype(np.float64)
        return queries.ravel()

    def lookup_batch(
        self, queries: np.ndarray, *, sort: bool | None = None
    ) -> np.ndarray:
        """Lower-bound positions for a whole query batch — identical to
        a per-query :meth:`lookup` loop and exact in the key dtype."""
        queries = self._prepare_queries(queries)
        if self.keys.size == 0:
            return np.zeros(queries.size, dtype=np.int64)
        qb = self._column.prepare(queries)
        return self._plan.lookup_batch(qb, sort=sort, stats=self.stats)

    def lookup_batch_scalar(self, queries: np.ndarray) -> np.ndarray:
        """Per-query :meth:`lookup` loop — the interpreter-bound
        baseline batch benchmarks compare against."""
        items = self._prepare_queries(queries).tolist()
        return np.array([self.lookup(q) for q in items], dtype=np.int64)

    def _lower_bounds_with_batch(self, queries, sort=None):
        queries = self._prepare_queries(queries)
        if self.keys.size == 0:
            return None, np.zeros(queries.size, dtype=np.int64)
        qb = self._column.prepare(queries)
        return qb, self._plan.lookup_batch(qb, sort=sort, stats=self.stats)

    def contains_batch(self, queries: np.ndarray) -> np.ndarray:
        """Vectorized membership: one bool per query, dtype-exact."""
        qb, positions = self._lower_bounds_with_batch(queries)
        if qb is None:
            return np.zeros(positions.size, dtype=bool)
        return self._column.contains_at(qb, positions)

    def upper_bound_batch(
        self, queries: np.ndarray, *, sort: bool | None = None
    ) -> np.ndarray:
        """Vectorized :meth:`upper_bound`: one position per query."""
        qb, positions = self._lower_bounds_with_batch(queries, sort=sort)
        if qb is None:
            return positions
        return self._column.upper_bounds(qb, positions)

    def range_query_batch(
        self, lows: np.ndarray, highs: np.ndarray, *, sort: bool | None = None
    ) -> RangeScanResult:
        """Batched :meth:`range_query` via one concatenated endpoint
        resolution (see :mod:`repro.range_scan`)."""
        return batch_range_scan(
            self.keys, lows, highs,
            lambda q: self.lookup_batch(q, sort=sort),
            column=self._column,
        )

    # -- accounting --------------------------------------------------------

    @property
    def segment_count(self) -> int:
        return self._plan.leaf_count if self._plan is not None else 0

    def size_bytes(self) -> int:
        """Leaf tables (4 x float64 per segment) + routing structure."""
        m = self.segment_count
        return m * 4 * 8 + self._routing_size_bytes()

    @property
    def max_error_window(self) -> int:
        if self._plan is None:
            return 0
        return int(np.max(self._plan.lo_offsets - self._plan.hi_offsets))

    @property
    def mean_error_window(self) -> float:
        if self._plan is None:
            return 0.0
        return float(np.mean(self._plan.lo_offsets - self._plan.hi_offsets))

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.keys.size}, "
            f"segments={self.segment_count}, "
            f"size={self.size_bytes()}B, "
            f"mean_window={self.mean_error_window:.1f})"
        )
