"""RadixSpline: error-bounded spline knots routed by a radix table.

The RadixSpline (Kipf et al., aiDM @ SIGMOD 2020) approximates the CDF
with a linear spline whose knots keep the prediction error within ε,
and replaces the knot binary search with a radix table: the top ``r``
bits of a key's offset from the minimum index a table cell whose two
entries bracket every knot that can precede the key.  A lookup is one
shift + two table reads + a bounded search over a handful of knots,
then the spline segment's linear interpolation.

Here the spline comes from the shared ε-segmentation run in
``endpoint`` mode (each segment's line interpolates its first and last
point — exactly a spline chord, built array-native instead of the
paper's streaming corridor), and the spline segments *are* the leaf
tables of a :class:`~repro.core.engine.CompiledPlan`.  The radix table
plus one lock-step bounded search over the knot array form this
family's ``root_predict_batch``.  The bracket property

    ``table[c] <= lower_bound(knots, q) <= table[c + 1]``   (q in cell c)

holds because the cell function is monotone in the key, so the bounded
search resolves the exact predecessor knot in float64; queries whose
keys collapse in float64 (or miss entirely) are caught by the engine's
dtype-native verification and fix-up, keeping results bit-identical to
the bisect oracle.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from ..core.search import vectorized_bounded_search
from ..models.cdf import positions_for_keys
from .base import CompiledPlanIndex
from .pgm import _predecessor
from .segmentation import epsilon_segment

__all__ = ["RadixSplineIndex", "DEFAULT_SPLINE_EPSILON"]

#: Default spline error bound; endpoint chords need a somewhat tighter
#: ε than least-squares segments for comparable window widths.
DEFAULT_SPLINE_EPSILON = 32

#: Radix table size limits (2**bits cells).
MIN_RADIX_BITS = 4
MAX_RADIX_BITS = 20


class RadixSplineIndex(CompiledPlanIndex):
    """Read-optimized RadixSpline over a sorted key array.

    Parameters
    ----------
    keys:
        Sorted numpy array (not copied); any dtype the shared column
        supports.
    epsilon:
        Spline error bound — same ε semantics as the PGM (hard bound
        on multi-value segments, measured bounds on single-value runs).
    radix_bits:
        Table size as log2(cells); ``None`` (default) sizes the table
        to roughly twice the knot count, clamped to
        ``[MIN_RADIX_BITS, MAX_RADIX_BITS]``.
    """

    def __init__(
        self,
        keys: np.ndarray,
        epsilon: int = DEFAULT_SPLINE_EPSILON,
        radix_bits: int | None = None,
    ):
        self.epsilon = float(epsilon)
        self._radix_bits_arg = radix_bits
        super().__init__(keys)

    def _build(self) -> None:
        n = self.keys.size
        keys_f = self.keys.astype(np.float64)
        seg = epsilon_segment(
            keys_f, positions_for_keys(n), self.epsilon, fit="endpoint"
        )
        m = seg.segment_count
        self.build_rounds = seg.rounds
        knots = keys_f[seg.boundaries[:-1]]  # strictly increasing
        self._knots = knots
        self._knots_list = knots.tolist()
        if self._radix_bits_arg is not None:
            bits = int(self._radix_bits_arg)
        else:
            bits = int(np.ceil(np.log2(max(m, 2)))) + 1
        self.radix_bits = min(max(bits, MIN_RADIX_BITS), MAX_RADIX_BITS)
        cells = 1 << self.radix_bits
        self._num_cells = cells
        min_f = float(knots[0])
        span = float(keys_f[-1]) - min_f
        # scale maps a key offset to its cell; multiplication by a
        # positive float is monotone, which is all the bracket proof
        # needs.  A single-point span degenerates to one cell.
        self._min_f = min_f
        self._scale = cells / span if span > 0 else 0.0
        knot_cells = ((knots - min_f) * self._scale).astype(np.int64)
        np.clip(knot_cells, 0, cells - 1, out=knot_cells)
        # table[c] = first knot whose cell >= c; the bracket for cell c
        # is [table[c], table[c + 1]].
        self._table = np.searchsorted(
            knot_cells, np.arange(cells + 1), side="left"
        ).astype(np.int64)
        inv = n / m

        def root_predict_batch(qf: np.ndarray) -> np.ndarray:
            j = self._route_knots(np.asarray(qf, dtype=np.float64))
            return (j.astype(np.float64) + 0.5) * inv

        self._install_plan(
            root_predict_batch, m,
            seg.slopes, seg.intercepts, seg.lo_offsets, seg.hi_offsets,
        )

    def _route_knots(self, qf: np.ndarray) -> np.ndarray:
        """Predecessor knot index per query via the radix table."""
        knots = self._knots
        cell = ((qf - self._min_f) * self._scale).astype(np.int64)
        np.clip(cell, 0, self._num_cells - 1, out=cell)
        lo = self._table[cell]
        hi = self._table[cell + 1]
        pos = vectorized_bounded_search(knots, qf, lo, hi)
        return _predecessor(pos, knots, qf)

    def _route_scalar(self, key) -> int:
        j = bisect_right(self._knots_list, float(key)) - 1
        return j if j >= 0 else 0

    def _routing_size_bytes(self) -> int:
        return self._knots.size * 8 + self._table.size * 8
