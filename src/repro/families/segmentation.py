"""Shared ε-bounded piecewise-linear segmentation (PR 10).

Both new read-optimized families — the PGM-index (Ferragina & Vinciguerra,
VLDB 2020) and the RadixSpline (Kipf et al., aiDM 2020) — reduce the key
CDF to a sequence of linear segments whose prediction error is bounded by
a chosen ε.  The reference implementations build those segments with
*streaming* one-key-at-a-time algorithms (an O(n) convex-hull sweep for
the PGM, a greedy spline corridor for the RadixSpline), which in this
pure-Python reproduction would put an interpreter-bound loop back on the
build path that ISSUE 6 spent a PR removing.

This module is the array-native substitute: a split-refine loop that
fits *every* segment of the current partition at once (reusing the
vectorized machinery in :func:`repro.models.linear.segmented_linear_fit`
and :func:`repro.models.cdf.segment_reducer`), measures every segment's
worst signed residual in one ``reduceat`` pass, and splits every
violating segment into ``ceil(max_abs/ε)`` equal-run chunks in one
vectorized round.  Each round is a handful of O(n) array passes and the
round count is logarithmic (children carry at most half a violator's
distinct-key runs), so a million-key segmentation costs a small constant
multiple of the RMI's one-pass vectorized build — the ISSUE 10 gate.

ε semantics
-----------
Segment boundaries are always snapped to *distinct-value run starts* of
the float64-encoded keys, so segment first-keys are strictly increasing
(the property the PGM's recursive levels and the RadixSpline's radix
table both rely on).  At convergence every segment spanning more than
one distinct value satisfies ``max |prediction - position| <= ε`` — the
provable bound, asserted as a hard invariant by the test suite.  A
segment holding a single distinct value cannot be split further; its
*measured* residual bounds are stored instead (a run of more than 2ε
duplicates honestly reports the wider window), so compiled lookups stay
exact either way — the shared engine searches whatever window the
stored bounds describe and verifies the result.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from ..models.cdf import segment_reducer
from ..models.linear import segmented_linear_fit

__all__ = ["EpsilonSegmentation", "FIT_MODES", "epsilon_segment"]

#: Accepted ``fit`` values: ``"least_squares"`` minimizes the mean
#: squared residual per segment (PGM-style optimal piecewise linear
#: approximation under the vectorized solver), ``"endpoint"``
#: interpolates each segment's first and last point (spline knots —
#: zero residual at both ends, the RadixSpline corridor analogue).
FIT_MODES = ("least_squares", "endpoint")

#: Safety cap on split-refine rounds.  Every round splits each violating
#: segment into >= 2 pieces whose largest child carries at most
#: ``ceil(runs / 2)`` distinct-key runs, so any input converges within
#: ``log2(#runs) + 1`` rounds — the cap is unreachable for arrays
#: addressable by int64 and exists only as a guard against logic drift.
MAX_ROUNDS = 80


class EpsilonSegmentation(NamedTuple):
    """A converged ε-segmentation over one sorted key array.

    ``boundaries`` (int64, length ``m + 1``, starting at 0 and ending at
    ``n``) delimits ``m`` contiguous segments; every interior boundary
    is a distinct-value run start, so ``keys[boundaries[:-1]]`` is
    strictly increasing.  ``slopes``/``intercepts`` are the per-segment
    lines and ``lo_offsets``/``hi_offsets`` the measured signed residual
    bounds in the compiled-plan convention (``lo = ceil(max signed
    error)``, ``hi = floor(min signed error)`` — the search window for a
    raw prediction is ``[raw - lo - 1, raw - hi + 2)``).
    """

    boundaries: np.ndarray
    slopes: np.ndarray
    intercepts: np.ndarray
    lo_offsets: np.ndarray
    hi_offsets: np.ndarray
    rounds: int

    @property
    def segment_count(self) -> int:
        return int(self.boundaries.size - 1)


def _fit_partition(
    keys_f: np.ndarray,
    positions: np.ndarray,
    boundaries: np.ndarray,
    fit: str,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(slopes, intercepts, per-key predictions) for one partition."""
    m = boundaries.size - 1
    if fit == "least_squares":
        # ``boundaries`` asserts the contiguous layout, so the fit never
        # touches the (unused) assignment argument.
        slopes, intercepts, _counts, predictions = segmented_linear_fit(
            keys_f, positions, None, m,
            return_predictions=True, boundaries=boundaries,
        )
        return slopes, intercepts, predictions
    # Endpoint interpolation: the segment's line passes through its
    # first and last (key, position) pair — knot-style fitting with
    # zero residual at both ends.  Degenerate spans (single distinct
    # value) fall back to a flat line through the first position.
    starts = boundaries[:-1]
    last = np.maximum(boundaries[1:] - 1, starts)
    x0 = keys_f[starts]
    span = keys_f[last] - x0
    y0 = positions[starts]
    slopes = np.zeros(m, dtype=np.float64)
    np.divide(positions[last] - y0, span, out=slopes, where=span > 0)
    intercepts = y0 - slopes * x0
    counts = boundaries[1:] - starts
    predictions = np.repeat(slopes, counts)
    predictions *= keys_f
    predictions += np.repeat(intercepts, counts)
    return slopes, intercepts, predictions


def epsilon_segment(
    keys_f: np.ndarray,
    positions: np.ndarray,
    epsilon: float,
    *,
    fit: str = "least_squares",
) -> EpsilonSegmentation:
    """Partition ``keys_f`` into ε-bounded linear segments, vectorized.

    ``keys_f`` must be the sorted float64 encoding of the key column
    (the precision model predictions run at) and ``positions`` the
    float64 target positions ``0..n-1``.  Returns the converged
    :class:`EpsilonSegmentation`; ``n == 0`` yields zero segments.
    """
    if fit not in FIT_MODES:
        raise ValueError(f"fit must be one of {FIT_MODES}")
    eps = float(epsilon)
    if eps < 1.0:
        raise ValueError("epsilon must be >= 1")
    n = keys_f.size
    if n == 0:
        empty = np.zeros(0, dtype=np.float64)
        return EpsilonSegmentation(
            np.zeros(1, dtype=np.int64), empty, empty.copy(),
            empty.copy(), empty.copy(), 0,
        )
    # Distinct-value run starts in float64 space: the only legal split
    # points.  Splitting mid-run would give two segments the same first
    # key, breaking the strict monotonicity the routing layers need.
    run_starts = np.nonzero(
        np.concatenate(([True], keys_f[1:] != keys_f[:-1]))
    )[0]
    boundaries = np.array([0, n], dtype=np.int64)
    rounds = 0
    while True:
        slopes, intercepts, predictions = _fit_partition(
            keys_f, positions, boundaries, fit
        )
        signed = predictions - positions
        _counts, _empty, reduce = segment_reducer(boundaries, n)
        seg_min = reduce(np.minimum, signed)
        seg_max = reduce(np.maximum, signed)
        max_abs = np.maximum(np.abs(seg_min), seg_max)
        # Boundaries are run starts, so these searchsorteds recover the
        # exact run-index range [r0, r1) each segment spans.
        r0 = np.searchsorted(run_starts, boundaries[:-1], side="left")
        r1 = np.searchsorted(run_starts, boundaries[1:], side="left")
        nruns = r1 - r0
        violating = (max_abs > eps) & (nruns >= 2)
        if rounds >= MAX_ROUNDS or not np.any(violating):
            break
        rounds += 1
        # Split every violator into k equal-run chunks at once.  The
        # residual of a least-squares line grows at least linearly with
        # the span it must cover, so k = ceil(max_abs / ε) jumps most
        # of the way to the converged partition in one round; the clip
        # to [2, nruns] guarantees strict progress.
        k = np.ceil(max_abs[violating] / eps).astype(np.int64)
        np.clip(k, 2, nruns[violating], out=k)
        pieces = k - 1  # interior cuts per violating segment
        total = int(pieces.sum())
        # Flat (segment, cut) index pairs without a Python loop: for
        # each violator j repeated pieces[j] times, offs counts
        # 0..pieces[j]-1 within the repeat.
        offs = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(pieces) - pieces, pieces
        )
        cut_runs = (
            np.repeat(r0[violating], pieces)
            + ((offs + 1) * np.repeat(nruns[violating], pieces))
            // np.repeat(k, pieces)
        )
        boundaries = np.unique(
            np.concatenate([boundaries, run_starts[cut_runs]])
        )
    return EpsilonSegmentation(
        boundaries,
        slopes,
        intercepts,
        np.ceil(seg_max),
        np.floor(seg_min),
        rounds,
    )
