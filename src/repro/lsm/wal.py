"""Binary write-ahead log for the LSM memtable.

The durability contract of :class:`repro.lsm.LearnedLSMStore` is
*fsync-before-ack*: a write call returns only after its record is
appended to the WAL and fsynced, so everything an application has been
told about survives a crash.  The memtable is then just a cache of the
WAL's suffix — recovery replays the log into a fresh memtable.

Record framing is length-prefixed and checksummed::

    [crc u32][payload_len u32][payload]
    payload = [kind u8][count u32][keys int64 * count]([values int64 * count])

with ``kind`` 1 for puts (keys + values) and 2 for deletes (keys
only).  One *batch* call produces one record, which makes the batch
atomic at record granularity: replay either sees the whole batch or —
when the crash tore the tail — none of it, never half.  Replay
(:func:`replay`) walks records until the first one whose length or
checksum fails and reports the byte offset of that boundary; the store
truncates the file there, which is simultaneously the torn-tail repair
and the recover-to-last-consistent-state behavior for a bit flip in
the middle of the log (records after a corrupt one are unordered
against it, so they must be dropped too).

Logs rotate at every seal: the sealed run absorbs the memtable, a
fresh generation file is created and fsynced, the manifest commits the
new generation, and only then is the old log deleted — the log
referenced by the manifest always covers exactly the memtable's
contents.
"""

from __future__ import annotations

import struct
import time

import numpy as np

from .format import checksum

__all__ = ["WriteAheadLog", "WALRecord", "replay"]

RECORD_PUT = 1
RECORD_DELETE = 2

_FRAME = struct.Struct("<II")
_KIND = struct.Struct("<BI")


class WALRecord:
    """One replayed record: ``kind`` plus parallel key/value arrays
    (``values is None`` for deletes)."""

    __slots__ = ("kind", "keys", "values")

    def __init__(self, kind: int, keys: np.ndarray, values):
        self.kind = kind
        self.keys = keys
        self.values = values


def _encode(kind: int, keys: np.ndarray, values=None) -> bytes:
    head = _KIND.pack(kind, keys.size)
    body = keys.astype(np.int64, copy=False).tobytes()
    if values is not None:
        body += values.astype(np.int64, copy=False).tobytes()
    return head + body


def _decode(payload: bytes):
    if len(payload) < _KIND.size:
        return None
    kind, count = _KIND.unpack_from(payload)
    nbytes = count * 8
    if kind == RECORD_PUT:
        expected = _KIND.size + 2 * nbytes
    elif kind == RECORD_DELETE:
        expected = _KIND.size + nbytes
    else:
        return None
    if len(payload) != expected:
        return None
    keys = np.frombuffer(payload, dtype=np.int64, count=count,
                         offset=_KIND.size)
    values = None
    if kind == RECORD_PUT:
        values = np.frombuffer(payload, dtype=np.int64, count=count,
                               offset=_KIND.size + nbytes)
    return WALRecord(kind, keys, values)


class WriteAheadLog:
    """Append-side handle over one WAL generation file.

    ``fsync=True`` (the default) makes every append durable before it
    returns — the store's ack barrier.  ``fsync=False`` trades the
    crash guarantee for throughput (group-commit style); ``close``
    still flushes whatever is pending, and the two group-commit knobs
    bound how much "pending" can ever be:

    * ``group_commit_bytes`` — auto-fsync once the unsynced tail
      reaches this many bytes;
    * ``group_commit_interval`` — auto-fsync once this many seconds
      have passed since the last sync (checked at append time, so an
      idle log syncs on its next append — or at ``close``).

    With either bound set, a machine crash under ``fsync=False`` loses
    at most the configured window of acknowledged writes instead of
    everything since the last seal.  ``clock`` is injectable for
    deterministic interval tests.  Both knobs are ignored under
    ``fsync=True`` (every record is already durable).
    """

    def __init__(
        self,
        fs,
        path: str,
        *,
        fsync: bool = True,
        group_commit_bytes: int | None = None,
        group_commit_interval: float | None = None,
        clock=time.monotonic,
    ):
        if group_commit_bytes is not None and int(group_commit_bytes) < 1:
            raise ValueError("group_commit_bytes must be >= 1")
        if (
            group_commit_interval is not None
            and float(group_commit_interval) <= 0
        ):
            raise ValueError("group_commit_interval must be > 0")
        self._fs = fs
        self.path = path
        self._fsync = bool(fsync)
        self._group_bytes = (
            None if group_commit_bytes is None else int(group_commit_bytes)
        )
        self._group_interval = (
            None
            if group_commit_interval is None
            else float(group_commit_interval)
        )
        self._clock = clock
        self._handle = fs.open_append(path)
        self._dirty = False
        self._pending_bytes = 0
        self._last_sync = clock()
        self.records_appended = 0
        #: Records known durable (fsynced); the loss window under
        #: ``fsync=False`` is ``records_appended - synced_records``.
        self.synced_records = 0

    @classmethod
    def create(cls, fs, path: str) -> None:
        """Create an empty generation file and make its existence
        durable (the manifest is about to point at it)."""
        handle = fs.open_write(path)
        try:
            fs.fsync(handle)
        finally:
            fs.close(handle)
        import os

        fs.fsync_dir(os.path.dirname(path) or ".")

    def _append(self, payload: bytes) -> None:
        frame = _FRAME.pack(checksum(payload), len(payload)) + payload
        fs = self._fs
        fs.write(self._handle, frame)
        self.records_appended += 1
        if self._fsync:
            fs.fsync(self._handle)
            self.synced_records = self.records_appended
            return
        self._dirty = True
        self._pending_bytes += len(frame)
        if self._group_due():
            self.sync()

    def _group_due(self) -> bool:
        if (
            self._group_bytes is not None
            and self._pending_bytes >= self._group_bytes
        ):
            return True
        return (
            self._group_interval is not None
            and self._clock() - self._last_sync >= self._group_interval
        )

    def append_puts(self, keys: np.ndarray, values: np.ndarray) -> None:
        self._append(_encode(RECORD_PUT, keys, values))

    def append_deletes(self, keys: np.ndarray) -> None:
        self._append(_encode(RECORD_DELETE, keys))

    def sync(self) -> None:
        if self._dirty:
            self._fs.fsync(self._handle)
            self._dirty = False
            self.synced_records = self.records_appended
        self._pending_bytes = 0
        self._last_sync = self._clock()

    def close(self) -> None:
        if self._handle is None:
            return
        handle, self._handle = self._handle, None
        try:
            if self._dirty:
                self._fs.fsync(handle)
                self._dirty = False
                self.synced_records = self.records_appended
            self._pending_bytes = 0
        finally:
            # Release the descriptor even when the final flush died
            # (e.g. a simulated crash at the fsync site) — the handle
            # is unusable either way.
            self._fs.close(handle)


def replay(fs, path: str) -> tuple[list[WALRecord], int, int]:
    """Decode ``path`` into records, stopping at the first bad one.

    Returns ``(records, valid_size, file_size)``: ``valid_size`` is the
    byte offset of the first record that is torn, length-implausible,
    or checksum-corrupt — everything before it is intact, everything
    from it on must be discarded (the store truncates the file there
    before reopening it for append).
    """
    data = fs.read_bytes(path)
    size = len(data)
    records: list[WALRecord] = []
    offset = 0
    while offset + _FRAME.size <= size:
        crc, length = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        if start + length > size:
            break  # torn tail: the record never finished landing
        payload = data[start:start + length]
        if checksum(payload) != crc:
            break
        record = _decode(payload)
        if record is None:
            break
        records.append(record)
        offset = start + length
    return records, offset, size
