"""Learned LSM storage engine (Appendix D.1 at system scale).

Tiered immutable sorted runs, each indexed by a vectorized RMI and
guarded by a bloom filter, behind an O(1) memtable and pluggable
compaction — the Bigtable-shaped insert design the paper sketches,
composed from the repo's learned-index substrate.
"""

from .compaction import (
    CompactionPolicy,
    LeveledCompaction,
    SizeTieredCompaction,
    merge_runs,
)
from .faultfs import (
    FaultInjectingFilesystem,
    RealFileSystem,
    SimulatedCrash,
    flip_byte,
)
from .format import CorruptRunError
from .manifest import MANIFEST_NAME, commit_manifest, load_manifest
from .memtable import Memtable
from .run import LearnedBloomGuard, SortedRun, learned_bloom_factory
from .store import LearnedLSMStore, LSMReadStats, LSMWriteStats
from .wal import WriteAheadLog

__all__ = [
    "CompactionPolicy",
    "CorruptRunError",
    "FaultInjectingFilesystem",
    "LearnedBloomGuard",
    "LearnedLSMStore",
    "LeveledCompaction",
    "LSMReadStats",
    "LSMWriteStats",
    "MANIFEST_NAME",
    "Memtable",
    "RealFileSystem",
    "SimulatedCrash",
    "SortedRun",
    "SizeTieredCompaction",
    "WriteAheadLog",
    "commit_manifest",
    "flip_byte",
    "learned_bloom_factory",
    "load_manifest",
    "merge_runs",
]
