"""Learned LSM storage engine (Appendix D.1 at system scale).

Tiered immutable sorted runs, each indexed by a vectorized RMI and
guarded by a bloom filter, behind an O(1) memtable and pluggable
compaction — the Bigtable-shaped insert design the paper sketches,
composed from the repo's learned-index substrate.
"""

from .compaction import (
    CompactionPolicy,
    LeveledCompaction,
    SizeTieredCompaction,
    merge_runs,
)
from .memtable import Memtable
from .run import LearnedBloomGuard, SortedRun, learned_bloom_factory
from .store import LearnedLSMStore, LSMReadStats, LSMWriteStats

__all__ = [
    "CompactionPolicy",
    "LearnedBloomGuard",
    "LearnedLSMStore",
    "LeveledCompaction",
    "LSMReadStats",
    "LSMWriteStats",
    "Memtable",
    "learned_bloom_factory",
    "merge_runs",
    "SizeTieredCompaction",
    "SortedRun",
]
