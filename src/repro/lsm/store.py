"""LearnedLSMStore — tiered runs of learned indexes (Appendix D.1).

The paper: "all inserts are kept in buffer and from time to time
merged ... already widely used, for example in Bigtable."  This module
is that design at system scale: a :class:`~repro.lsm.memtable.Memtable`
absorbs writes in O(1), seals into immutable
:class:`~repro.lsm.run.SortedRun` levels (each indexed by a vectorized
RMI and guarded by a bloom filter), and a
:class:`~repro.lsm.compaction.CompactionPolicy` bounds the run count in
the background of the write path.  The result is the trade-off triangle
the single-run :class:`~repro.core.writable.WritableLearnedIndex`
cannot express:

* **write amplification** — a write is rewritten once per tier it
  passes through (policy-controlled), never O(N) per merge;
* **read amplification** — point reads fan out newest-first across
  runs, with per-run bloom filters short-circuiting the runs that
  cannot hold the key (:attr:`LSMReadStats` meters exactly how many
  negative probes the guards eliminate);
* **retrain cost** — every seal/compaction builds its run's RMI with
  the PR 3 segmented least-squares pass, so model maintenance rides
  the merge's array math.

Point reads return *values* (the store maps int64 keys to int64
payloads; key-only callers let values default to the keys); range
reads return live keys, k-way merged across memtable + runs with
newest-wins dedup and tombstone shadowing via
:func:`repro.range_scan.merge_scan_results`, and
:meth:`LearnedLSMStore.range_items_batch` returns live (key, value)
pairs through the same merge.  All reads — point and range — resolve
through the exact int64 query core (ISSUE 5), so 64-bit keys beyond
2^53 never alias.

Durability (PR 6)
-----------------
Passing ``path=`` turns the store into a crash-safe database rooted at
that directory.  The moving parts:

* **WAL** (:mod:`repro.lsm.wal`) — every write call appends one
  checksummed record and (by default) fsyncs before returning, so a
  write that was acknowledged is a write that survives.  The memtable
  is a cache of the current WAL generation.
* **Run files** (:meth:`repro.lsm.run.SortedRun.save`) — seals and
  compactions publish each new run as one atomic checksummed section
  file; reopening maps it lazily in O(metadata).
* **Manifest** (:mod:`repro.lsm.manifest`) — the run set, current WAL
  generation, and id counters, swapped atomically on every structural
  change.  Files a new state needs are durable *before* the swap;
  files only the old state needed are deleted *after* it, so a crash
  at any intermediate point leaves either the old state or the new
  state plus harmless orphans.
* **Recovery** (``LearnedLSMStore(path=...)`` on an existing
  directory) — load the manifest, lazily open its runs,
  garbage-collect orphans, replay the WAL into the memtable
  (truncating at the first torn/corrupt record), and resume.  Recovery
  is idempotent: crashing *during* recovery and recovering again
  reaches the same state.

The fsync-per-batch ack barrier also reframes the PR 4 compaction
sharp edge: a seal used to cascade synchronous merges indefinitely
while the caller's acknowledged batch waited.  Durable stores
therefore bound compaction to ``seal_merge_budget`` merge windows per
seal (default 1); the policy's remaining debt drains one window per
subsequent seal, and :meth:`compact` still folds everything.
Memory-only stores keep the unbounded cascade (their seals never hold
an fsynced ack hostage, and layout-sensitive callers rely on it).

Background compaction + snapshot reads (ISSUE 7)
------------------------------------------------
``background=True`` (or ``REPRO_LSM_BACKGROUND=1``) moves every
policy-selected merge off the write path onto one daemon worker
thread: a seal only *kicks* the worker, so the acking write batch
never waits on a merge at all — the remaining write-path pauses are
the seals themselves, and :attr:`LSMWriteStats.write_stalls` meters
exactly the merges that did run inline (zero in background mode, the
property the bench gates).

Threading contract: **one writer, any number of readers**.  Write
calls (`insert*` / `delete*` / `flush` / `compact`) must come from a
single thread; reads (`lookup*`, `range_*`, `live_keys`) may race the
writer and the compactor freely.  The machinery:

* **Snapshot reads.**  Every read pins a ``(memtable-view, run-set)``
  snapshot: the memtable's immutable materialized triple is grabbed
  *first*, then the run list is copied and each run's pin count
  incremented under the state lock.  Memtable-first ordering is the
  loss-free direction — a seal that lands between the two grabs moves
  data *into* the run set, so the reader sees it twice (newest-wins
  dedup resolves the duplicate) rather than never.
* **Atomic swap.**  The worker merges its window from a snapshot
  without holding any structural lock, then swaps ``runs[start:stop]
  = [merged]`` + commits the manifest under the structure lock.
  Seals only ever *prepend*, so the window is relocated by identity
  and its is-oldest (tombstone-GC eligibility) property is stable.
* **Deferred deletion.**  Superseded runs are retired, and closed +
  unlinked only once their pin count returns to zero — a reader
  mid-probe never loses its memmap.  Retired files a crash strands
  are manifest-unreferenced orphans the next recovery sweeps.

Lock order (outermost first): merge lock (serializes the worker
against explicit :meth:`compact`) → structure lock (serializes
manifest-committing transitions: seal vs merge swap) → state lock
(run-list reads/swaps, pins, retirement, id/sequence counters).
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable

import numpy as np

from ..core.engine import SortedKeyColumn
from ..obs import MetricsRegistry
from ..obs import span as obs_span
from ..range_scan import RangeScanResult, assemble_slices, merge_scan_results
from .compaction import (
    CompactionPolicy,
    LeveledCompaction,
    SizeTieredCompaction,
    merge_runs,
    newest_versions,
)
from .faultfs import RealFileSystem
from .format import CorruptRunError
from .manifest import MANIFEST_NAME, commit_manifest, load_manifest
from .memtable import Memtable
from .run import DEFAULT_LEAF_TARGET, SortedRun
from .wal import RECORD_PUT, WriteAheadLog
from .wal import replay as wal_replay

__all__ = [
    "LearnedLSMStore",
    "LSMReadStats",
    "LSMWriteStats",
    "StoreSnapshot",
    "resolve_point_batch",
    "resolve_range_batch",
]

#: name -> zero-argument policy factory for the ``compaction=`` string
#: shorthand.
COMPACTION_POLICIES: dict[str, Callable[[], CompactionPolicy]] = {
    "size_tiered": SizeTieredCompaction,
    "leveled": LeveledCompaction,
}

#: Incremental-fsync bound for merged-run saves in background mode
#: (RocksDB's ``bytes_per_sync``): caps how much dirty run-file data a
#: concurrent foreground WAL fsync can get queued behind.
_MERGE_SAVE_FSYNC_BYTES = 1 << 20


def resolve_point_batch(
    queries: np.ndarray,
    put_keys: np.ndarray,
    put_values: np.ndarray,
    tomb_keys: np.ndarray,
    runs,
    stats: "LSMReadStats | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """(values, found) for a query batch over an explicit read state.

    The store's newest-first batch walk, factored out of the store so
    any holder of a consistent ``(memtable views, run sequence)`` pair
    can run it: :meth:`LearnedLSMStore.lookup_batch` over its live
    state, :class:`StoreSnapshot` over a pinned one, and the serving
    layer's shared-memory clients over runs rebuilt in another process
    (ISSUE 8) — all bit-identical, because they are the same code.

    ``put_keys``/``tomb_keys`` must be sorted (the memtable's ``views``
    contract); ``runs`` iterates newest-first.  ``stats`` receives the
    usual read-amplification counters when provided.
    """
    m = queries.size
    values = np.zeros(m, dtype=np.int64)
    found = np.zeros(m, dtype=bool)
    if m == 0:
        return values, found
    resolved = np.zeros(m, dtype=bool)
    if put_keys.size:
        pos = np.searchsorted(put_keys, queries)
        safe = np.minimum(pos, put_keys.size - 1)
        hit = (pos < put_keys.size) & (put_keys[safe] == queries)
        values[hit] = put_values[safe[hit]]
        found |= hit
        resolved |= hit
    if tomb_keys.size:
        pos = np.searchsorted(tomb_keys, queries)
        safe = np.minimum(pos, tomb_keys.size - 1)
        dead = (pos < tomb_keys.size) & (tomb_keys[safe] == queries)
        resolved |= dead
    memtable_hits = int(np.count_nonzero(resolved))
    rejects = probes = misses = 0
    for run in runs:
        open_idx = np.nonzero(~resolved)[0]
        if open_idx.size == 0:
            break
        sub = queries[open_idx]
        passed = run.bloom_contains_batch(sub)
        rejects += int(sub.size - np.count_nonzero(passed))
        cand_idx = open_idx[passed]
        if cand_idx.size == 0:
            continue
        hit, dead, vals = run.probe_batch(queries[cand_idx])
        probes += int(cand_idx.size)
        misses += int(np.count_nonzero(~hit))
        live = hit & ~dead
        values[cand_idx[live]] = vals[live]
        found[cand_idx[live]] = True
        resolved[cand_idx[hit]] = True
    if stats is not None:
        stats.add(
            lookups=m,
            memtable_hits=memtable_hits,
            run_probes=probes,
            probe_misses=misses,
            bloom_rejects=rejects,
        )
    return values, found


def _memtable_range_source(
    keys: np.ndarray,
    mem_values: np.ndarray,
    dead: np.ndarray,
    lows: np.ndarray,
    highs: np.ndarray,
    *,
    with_values: bool = False,
):
    """Range-scan one memtable snapshot triple like a run would.

    Endpoints resolve through the query core like every run's RMI does
    — a raw searchsorted would promote the int64 snapshot to float64
    under float endpoints, making memtable-resident data answer
    differently from run-resident data beyond 2^53.
    """
    column = SortedKeyColumn(keys)
    lo = column.rank_in(keys, column.prepare(lows), side="left")
    hi = column.rank_in(keys, column.prepare(highs), side="right")
    hi = np.maximum(hi, lo)
    values, offsets = assemble_slices(keys, lo, hi)
    flags, _ = assemble_slices(dead, lo, hi)
    result = RangeScanResult(values=values, offsets=offsets)
    if not with_values:
        return result, flags
    payloads, _ = assemble_slices(mem_values, lo, hi)
    return result, flags, payloads


def resolve_range_batch(
    lows: np.ndarray,
    highs: np.ndarray,
    memtable_snapshot,
    runs,
    *,
    with_values: bool = False,
):
    """Merged live range results over an explicit read state.

    The counterpart of :func:`resolve_point_batch` for ranges: every
    source — the ``(keys, values, dead)`` memtable snapshot triple (or
    None) plus each run's vectorized scan — contributes its entries,
    and one :func:`~repro.range_scan.merge_scan_results` pass
    interleaves them newest-first, deduplicates to the newest version
    per key, and drops keys whose newest version is a tombstone.
    Returns a :class:`RangeScanResult`, plus the parallel payload
    array when ``with_values``.
    """
    n = lows.size
    sources: list[RangeScanResult] = []
    masks: list[np.ndarray | None] = []
    payloads: list[np.ndarray] = []
    if memtable_snapshot is not None and memtable_snapshot[0].size:
        mem_keys, mem_values, mem_dead = memtable_snapshot
        parts = _memtable_range_source(
            mem_keys, mem_values, mem_dead, lows, highs,
            with_values=with_values,
        )
        sources.append(parts[0])
        masks.append(parts[1])
        if with_values:
            payloads.append(parts[2])
    for run in runs:
        parts = run.range_scan_batch(lows, highs, with_values=with_values)
        sources.append(parts[0])
        masks.append(parts[1])
        if with_values:
            payloads.append(parts[2])
    if not sources:
        empty = RangeScanResult(
            values=np.empty(0, dtype=np.int64),
            offsets=np.zeros(n + 1, dtype=np.int64),
        )
        return (empty, np.empty(0, dtype=np.int64)) if with_values else empty
    if with_values:
        merged, values = merge_scan_results(
            sources, drop_masks=masks, payloads=payloads
        )
        return (
            RangeScanResult(
                values=np.asarray(merged.values, dtype=np.int64),
                offsets=merged.offsets,
            ),
            np.asarray(values, dtype=np.int64),
        )
    merged = merge_scan_results(sources, drop_masks=masks)
    return RangeScanResult(
        values=np.asarray(merged.values, dtype=np.int64),
        offsets=merged.offsets,
    )


class StoreSnapshot:
    """A pinned point-in-time read view of a :class:`LearnedLSMStore`.

    Captures the memtable's materialized snapshot triple and a pinned
    run set in the loss-free order (memtable first — see the module
    docstring), then answers ``lookup_batch`` / ``range_query_batch``
    / ``range_items_batch`` from exactly that state no matter how many
    writes, seals, or compactions land afterwards.  This is the PR 7
    epoch-read contract as a first-class object — the serving layer
    pins one per shard to read a consistent cross-shard epoch
    (ISSUE 8).

    Use as a context manager, or call :meth:`release` explicitly
    (idempotent); an unreleased snapshot blocks deletion of every run
    it pins.
    """

    def __init__(self, store: "LearnedLSMStore"):
        self._store = store
        keys, values, dead = store.memtable.snapshot()
        self.memtable_snapshot = (keys, values, dead)
        live = ~dead
        self._put_keys = keys[live]
        self._put_values = values[live]
        self._tomb_keys = keys[dead]
        self.runs = store._pin_runs()
        self._released = False

    def lookup_batch(self, keys) -> tuple[np.ndarray, np.ndarray]:
        """(values, found) against the pinned state — same contract as
        :meth:`LearnedLSMStore.lookup_batch`."""
        self._ensure_live()
        queries = np.asarray(keys, dtype=np.int64).ravel()
        return resolve_point_batch(
            queries, self._put_keys, self._put_values, self._tomb_keys,
            self.runs, stats=self._store.read_stats,
        )

    def range_query_batch(self, lows, highs) -> RangeScanResult:
        """Live keys per closed range, against the pinned state."""
        self._ensure_live()
        lows, highs = LearnedLSMStore._range_endpoints(lows, highs)
        return resolve_range_batch(
            lows, highs, self.memtable_snapshot, self.runs
        )

    def range_items_batch(self, lows, highs):
        """Live (key, value) pairs per closed range, pinned state."""
        self._ensure_live()
        lows, highs = LearnedLSMStore._range_endpoints(lows, highs)
        return resolve_range_batch(
            lows, highs, self.memtable_snapshot, self.runs,
            with_values=True,
        )

    def _ensure_live(self) -> None:
        if self._released:
            raise ValueError("snapshot has been released")

    def release(self) -> None:
        """Unpin every run (idempotent).  Deferred deletions the
        snapshot was blocking proceed at the store's next sweep."""
        if self._released:
            return
        self._released = True
        self._store._unpin_runs(self.runs)

    def __enter__(self) -> "StoreSnapshot":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


def _counter_field(slot: str, doc: str | None = None):
    """Property exposing registry counter ``slot`` as a plain attribute."""

    def _get(self):
        return self._counters[slot].value

    def _set(self, value):
        self._counters[slot].set(value)

    return property(_get, _set, doc=doc)


class _StatsBase:
    """Stats objects are thin views over a :class:`repro.obs`
    :class:`~repro.obs.registry.MetricsRegistry`: every public field is
    a property reading a named counter, so the same numbers flow into
    exporters and cross-process merges with no parallel bookkeeping.
    Each counter takes its own lock, so :meth:`add` keeps the
    lost-increment-free concurrency discipline the old shared-lock
    dataclasses had (bare ``+=`` on a shared attribute is a
    read-modify-write race)."""

    _FIELDS: tuple = ()
    _PREFIX = ""

    def __init__(self, registry=None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            name: self.registry.counter(self._PREFIX + name)
            for name in self._FIELDS
        }

    def add(self, **deltas) -> None:
        """Atomically add every ``counter=delta`` pair."""
        counters = self._counters
        for name, delta in deltas.items():
            counters[name].inc(delta)

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.set(0)

    def __repr__(self) -> str:
        body = ", ".join(f"{n}={getattr(self, n)}" for n in self._FIELDS)
        return f"{type(self).__name__}({body})"


class LSMReadStats(_StatsBase):
    """Read-amplification instrumentation.

    A *run probe* is one (query, run) RMI lookup actually executed; a
    *bloom reject* is a (query, run) pair the filter short-circuited
    before the model ran.  ``probe_misses`` counts executed probes that
    found no entry — i.e. bloom false positives.  The fraction of
    negative-run probes the guards eliminate is
    ``bloom_rejects / (bloom_rejects + probe_misses)``.
    """

    _FIELDS = (
        "lookups",
        "memtable_hits",
        "run_probes",
        "probe_misses",
        "bloom_rejects",
    )
    _PREFIX = "lsm.read."

    lookups = _counter_field("lookups")
    memtable_hits = _counter_field("memtable_hits")
    run_probes = _counter_field("run_probes")
    probe_misses = _counter_field("probe_misses")
    bloom_rejects = _counter_field("bloom_rejects")

    @property
    def negative_probes_eliminated(self) -> float:
        total = self.bloom_rejects + self.probe_misses
        return self.bloom_rejects / total if total else 0.0


class LSMWriteStats(_StatsBase):
    """Write-amplification instrumentation.

    ``keys_written`` counts every entry landed in the memtable;
    ``entries_sealed`` / ``entries_compacted`` count entries rewritten
    into runs, so ``write_amplification`` is (sealed + compacted) /
    written — the LSM's defining cost curve.  ``write_stalls`` counts
    merge windows executed *inline on the write path* (a seal whose
    caller waited for the merge) and ``stall_seconds`` their summed
    wall time; with background compaction both stay zero — the axis
    the tail-latency bench gates.
    """

    _FIELDS = (
        "keys_written",
        "seals",
        "entries_sealed",
        "compactions",
        "entries_compacted",
        "write_stalls",
        "stall_seconds",
    )
    _PREFIX = "lsm.write."

    keys_written = _counter_field("keys_written")
    seals = _counter_field("seals")
    entries_sealed = _counter_field("entries_sealed")
    compactions = _counter_field("compactions")
    entries_compacted = _counter_field("entries_compacted")
    write_stalls = _counter_field("write_stalls")
    stall_seconds = _counter_field("stall_seconds")

    def __init__(self, registry=None) -> None:
        super().__init__(registry)
        self.extra: dict = {}

    @property
    def write_amplification(self) -> float:
        if not self.keys_written:
            return 0.0
        return (self.entries_sealed + self.entries_compacted) / (
            self.keys_written
        )


class _BackgroundCompactor:
    """One daemon thread owning every policy-selected merge.

    The write path :meth:`kick`\\ s after each seal and returns
    immediately; the worker drains merge windows until the policy goes
    quiet, then sleeps on its condition.  A failure (e.g. a simulated
    crash from the fault harness) is captured and re-raised from the
    next :meth:`drain` — the worker never takes the process down.
    """

    def __init__(self, store: "LearnedLSMStore"):
        self._store = store
        self._cond = threading.Condition()
        self._pending = False
        self._idle = True
        self._stopped = False
        self.error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._loop, name="lsm-compactor", daemon=True
        )
        self._thread.start()

    def kick(self) -> None:
        """Schedule a drain pass (cheap, non-blocking)."""
        with self._cond:
            self._pending = True
            self._cond.notify_all()

    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._stopped:
                    self._cond.wait()
                if self._stopped:
                    return
                self._pending = False
                self._idle = False
            try:
                # Fresh no-progress signature set per burst: a new kick
                # means new input (a seal), which legitimately reopens
                # windows an earlier burst declared unproductive.
                seen: set = set()
                while self._store._background_merge_once(seen):
                    pass
            except BaseException as exc:  # noqa: BLE001 — surfaced via drain
                with self._cond:
                    self.error = exc
                    self._idle = True
                    self._cond.notify_all()
                return
            with self._cond:
                self._idle = True
                self._cond.notify_all()

    def drain(self) -> None:
        """Block until no merge is running or pending; re-raise the
        worker's error (sticky — every drain after a failure reports
        it, like a poisoned queue)."""
        with self._cond:
            while (
                self.error is None
                and not self._stopped
                and self._thread.is_alive()
                and (self._pending or not self._idle)
            ):
                # Timed wait: immune to a notify lost to an unlucky
                # interleaving of kick / burst-end.
                self._cond.wait(timeout=0.05)
            if self.error is not None:
                raise self.error

    def stop(self) -> None:
        """Finish the in-flight window, then join the worker."""
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
        self._thread.join()


class LearnedLSMStore:
    """Tiered LSM key-value store whose every run is RMI-indexed.

    Parameters
    ----------
    keys / values:
        Optional bulk load; keys are deduplicated (last value wins) and
        sealed directly into a single bottom run — no write
        amplification for the initial load.  Only valid when the target
        directory holds no existing store.
    memtable_capacity:
        Buffered entries (puts + tombstones) per seal.
    compaction:
        ``"size_tiered"`` (default), ``"leveled"``, or any
        :class:`~repro.lsm.compaction.CompactionPolicy` instance.
    bloom_fpr / bloom_factory / leaf_target:
        Per-run knobs, forwarded to :class:`~repro.lsm.run.SortedRun`.
    path:
        Directory for durable operation.  ``None`` (default) keeps the
        store memory-only; a directory with an existing ``MANIFEST``
        recovers the persisted state (crash-safe), an empty or fresh
        directory initializes a new durable store.
    filesystem:
        File-layer override (the fault-injection harness); defaults to
        :class:`~repro.lsm.faultfs.RealFileSystem`.  Requires ``path``.
    wal_fsync:
        ``True`` (default) fsyncs every WAL append before the write
        call returns — the durability ack barrier.  ``False`` defers
        syncing to seals/``close`` (group-commit throughput, weaker
        guarantee).
    seal_merge_budget:
        Maximum compaction merge windows executed per seal.  Defaults
        to 1 for durable stores (bounds acknowledged-write latency;
        remaining debt drains on later seals) and unbounded for
        memory-only stores.  Ignored in background mode (the worker
        drains every window off the write path anyway).
    background:
        ``True`` runs compaction on a daemon worker thread — seals
        kick it and return, reads serve pinned snapshots, and
        superseded runs are deleted only when unpinned (see the module
        docstring).  ``None`` (default) reads the
        ``REPRO_LSM_BACKGROUND`` env var (the CI stress lane's knob);
        ``False`` pins the classic synchronous mode regardless of the
        env.  Threading contract either way: one writer thread, any
        number of reader threads.
    wal_group_commit_bytes / wal_group_commit_interval:
        Group-commit bounds for ``wal_fsync=False``: auto-fsync once
        the unsynced WAL tail exceeds the byte budget, or once the
        interval (seconds) since the last sync elapses — turning "may
        lose everything since the last seal" into a bounded loss
        window.  ``None`` disables each bound.

    The store is a context manager; :meth:`close` is idempotent,
    stops the background worker, flushes + fsyncs pending WAL bytes
    (also on the exception exit path — an error inside the ``with``
    block cannot drop acknowledged writes), and releases all run
    memmaps.
    """

    def __init__(
        self,
        keys=None,
        values=None,
        *,
        memtable_capacity: int = 8_192,
        compaction: str | CompactionPolicy = "size_tiered",
        bloom_fpr: float = 0.01,
        bloom_factory=None,
        leaf_target: int = DEFAULT_LEAF_TARGET,
        path: str | None = None,
        filesystem=None,
        wal_fsync: bool = True,
        seal_merge_budget: int | None = None,
        background: bool | None = None,
        wal_group_commit_bytes: int | None = None,
        wal_group_commit_interval: float | None = None,
    ):
        if memtable_capacity < 1:
            raise ValueError("memtable_capacity must be >= 1")
        if isinstance(compaction, str):
            try:
                compaction = COMPACTION_POLICIES[compaction]()
            except KeyError:
                known = ", ".join(sorted(COMPACTION_POLICIES))
                raise ValueError(
                    f"unknown compaction policy {compaction!r}; "
                    f"known: {known}"
                ) from None
        self.policy = compaction
        self.memtable_capacity = int(memtable_capacity)
        self.policy.configure(self.memtable_capacity)
        self._run_kwargs = dict(
            bloom_fpr=bloom_fpr,
            bloom_factory=bloom_factory,
            leaf_target=leaf_target,
        )
        self.memtable = Memtable()
        self.runs: list[SortedRun] = []
        self._sequence = 0
        self._file_id = 0
        self._closed = False
        self._wal: WriteAheadLog | None = None
        self._wal_name: str | None = None
        self._wal_fsync = bool(wal_fsync)
        self._wal_group = dict(
            group_commit_bytes=wal_group_commit_bytes,
            group_commit_interval=wal_group_commit_interval,
        )
        self.path = None if path is None else str(path)
        self.recovered_wal_records = 0
        # Lock order (outer → inner): _merge_lock → _structure_lock →
        # _state_lock.  See the module docstring.
        self._merge_lock = threading.RLock()
        self._structure_lock = threading.RLock()
        self._state_lock = threading.RLock()
        #: Superseded runs awaiting deferred deletion (pins > 0).
        self._retired: list[SortedRun] = []
        if background is None:
            background = os.environ.get(
                "REPRO_LSM_BACKGROUND", ""
            ).strip() not in ("", "0")
        self._background = bool(background)
        #: Created at the end of __init__ so recovery-time seals stay
        #: synchronous (deterministic for the crash-fuzz sweep).
        self._compactor: _BackgroundCompactor | None = None
        if seal_merge_budget is not None and int(seal_merge_budget) < 1:
            raise ValueError("seal_merge_budget must be >= 1")
        self._seal_merge_budget = (
            int(seal_merge_budget)
            if seal_merge_budget is not None
            else (1 if self.path is not None else None)
        )
        #: Per-store metrics registry; the public stats objects are
        #: views over it, so ``registry.snapshot()`` exports the same
        #: counters and ``ShardedLSMStore`` can merge them per shard.
        self.registry = MetricsRegistry()
        self.read_stats = LSMReadStats(self.registry)
        self.write_stats = LSMWriteStats(self.registry)

        bulk = None
        if keys is not None:
            keys = self._as_int64_keys(keys)
            if values is None:
                vals = keys.copy()
            else:
                vals = np.asarray(values, dtype=np.int64).ravel()
                if vals.size != keys.size:
                    raise ValueError("values must parallel keys")
            if keys.size:
                # Last value wins on duplicate keys, like a put loop.
                uniq, last = np.unique(keys[::-1], return_index=True)
                bulk = (uniq, vals[::-1][last])

        if self.path is None:
            if filesystem is not None:
                raise ValueError("filesystem requires path")
            self._fs = None
            if bulk is not None:
                self.runs.append(self._bulk_run(*bulk))
        else:
            self._fs = (
                filesystem if filesystem is not None else RealFileSystem()
            )
            self._fs.makedirs(self.path)
            try:
                if self._fs.exists(os.path.join(self.path, MANIFEST_NAME)):
                    if bulk is not None:
                        raise ValueError(
                            "cannot bulk-load into an existing store "
                            "directory; open it plain and insert instead"
                        )
                    self._recover()
                else:
                    self._init_fresh(bulk)
            except BaseException:
                # Failed bootstrap (corrupt manifest, injected crash):
                # the caller never receives the store, so release every
                # handle opened so far before propagating.
                try:
                    self.close()
                except Exception:
                    pass
                raise
        if self._background:
            self._compactor = _BackgroundCompactor(self)

    # -- durable bootstrap -----------------------------------------------------

    def _bulk_run(self, uniq: np.ndarray, vals: np.ndarray) -> SortedRun:
        return SortedRun(
            uniq,
            vals,
            sequence=self._next_sequence(),
            level=self.policy.initial_level(uniq.size),
            **self._run_kwargs,
        )

    def _file_path(self, name: str) -> str:
        return os.path.join(self.path, name)

    def _new_file_id(self) -> int:
        with self._state_lock:
            self._file_id += 1
            return self._file_id

    def _new_run_name(self) -> str:
        return f"run-{self._new_file_id():08d}.run"

    def _new_wal_name(self) -> str:
        return f"wal-{self._new_file_id():08d}.log"

    def _init_fresh(self, bulk) -> None:
        """Initialize a durable store in a directory with no manifest.

        Nothing is live until the first manifest commit, so a crash
        anywhere in here leaves only orphans the next open sweeps away
        — which is also why the sweep runs first: *this* open may be
        that next open.
        """
        self._gc_directory(live=frozenset())
        if bulk is not None:
            run = self._bulk_run(*bulk)
            run.save(self._fs, self._file_path(self._new_run_name()))
            self.runs.append(run)
        self._wal_name = self._new_wal_name()
        WriteAheadLog.create(self._fs, self._file_path(self._wal_name))
        self._commit_manifest()
        self._wal = WriteAheadLog(
            self._fs,
            self._file_path(self._wal_name),
            fsync=self._wal_fsync,
            **self._wal_group,
        )

    def _recover(self) -> None:
        """Rebuild from ``MANIFEST`` + WAL after a clean or dirty stop.

        Invariants this restores: (1) every acknowledged write is in a
        manifest-referenced run or the replayed WAL prefix; (2) no
        file outside the manifest's reference set survives; (3) a
        crash *during* recovery re-runs it to the same state, because
        recovery only deletes orphans and truncates the torn WAL tail
        — both idempotent.
        """
        fs = self._fs
        state = load_manifest(fs, self.path)
        self._file_id = int(state["next_file_id"])
        self._sequence = int(state["next_sequence"])
        self._wal_name = str(state["wal"])
        runs: list[SortedRun] = []
        for entry in state["runs"]:
            run_path = self._file_path(entry["file"])
            if not fs.exists(run_path):
                raise CorruptRunError(
                    f"{run_path}: manifest references a missing run file"
                )
            runs.append(SortedRun.load(fs, run_path, expect=entry))
        self.runs = runs
        live = {entry["file"] for entry in state["runs"]}
        live.add(self._wal_name)
        self._gc_directory(live=live)
        wal_path = self._file_path(self._wal_name)
        if not fs.exists(wal_path):
            raise CorruptRunError(
                f"{wal_path}: manifest references a missing WAL file"
            )
        records, valid_size, file_size = wal_replay(fs, wal_path)
        if valid_size < file_size:
            # Torn or corrupt tail: cut back to the last intact record
            # boundary before appending anything new.
            fs.truncate(wal_path, valid_size)
        for record in records:
            if record.kind == RECORD_PUT:
                self.memtable.put_batch(record.keys, record.values)
            else:
                self.memtable.delete_batch(record.keys)
        self.recovered_wal_records = len(records)
        self._wal = WriteAheadLog(
            fs, wal_path, fsync=self._wal_fsync, **self._wal_group
        )
        # A replayed memtable can be at or past capacity (the crash hit
        # mid-seal): finish the seal now, under the same crash-safe
        # protocol.
        self._maybe_seal()

    def _gc_directory(self, live: frozenset | set) -> None:
        """Delete orphans: tmp files and run/WAL files the manifest
        does not reference.  Only files matching the store's own naming
        is touched — foreign files in the directory survive."""
        fs = self._fs
        for name in fs.listdir(self.path):
            if name in live or name == MANIFEST_NAME:
                continue
            ours = (
                name.endswith(".tmp")
                or (name.startswith("run-") and name.endswith(".run"))
                or (name.startswith("wal-") and name.endswith(".log"))
            )
            if ours:
                fs.remove(self._file_path(name))

    def _commit_manifest(self) -> None:
        state = {
            "next_file_id": self._file_id,
            "next_sequence": self._sequence,
            "wal": self._wal_name,
            "runs": [
                {
                    "file": os.path.basename(run.path),
                    "sequence": run.sequence,
                    "level": run.level,
                    "n": len(run),
                    "tombstones": run.num_tombstones,
                }
                for run in self.runs
            ],
        }
        commit_manifest(self._fs, self.path, state)

    def _rotate_wal_begin(self) -> str:
        """Close the live WAL and durably create its successor; the
        manifest commit that follows flips the reference.  Returns the
        old generation's name for post-commit deletion."""
        old_name = self._wal_name
        self._wal.close()
        self._wal = None
        self._wal_name = self._new_wal_name()
        WriteAheadLog.create(self._fs, self._file_path(self._wal_name))
        return old_name

    def _rotate_wal_finish(self, old_name: str) -> None:
        self._fs.remove(self._file_path(old_name))
        self._wal = WriteAheadLog(
            self._fs,
            self._file_path(self._wal_name),
            fsync=self._wal_fsync,
            **self._wal_group,
        )

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release the WAL handle and every run's memmaps; idempotent.

        The background worker (if any) finishes its in-flight window
        and joins first; then pending WAL bytes are fsynced (only
        relevant under ``wal_fsync=False`` — the default path is
        already durable per batch).  `__exit__` funnels here even when
        the ``with`` block raised, so an exception-path exit flushes
        acknowledged-but-unsynced writes instead of dropping them; run
        memmaps are released even if that flush itself fails.  The
        memtable is *not* flushed to a run: its contents live in the
        WAL and replay on the next open.
        """
        if self._closed:
            return
        self._closed = True
        compactor, self._compactor = self._compactor, None
        if compactor is not None:
            compactor.stop()
        wal, self._wal = self._wal, None
        try:
            if wal is not None:
                wal.close()
        finally:
            with self._state_lock:
                retired, self._retired = self._retired, []
                runs = list(self.runs)
            for run in retired + runs:
                run.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "LearnedLSMStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise ValueError("store is closed")

    def _next_sequence(self) -> int:
        with self._state_lock:
            self._sequence += 1
            return self._sequence

    @staticmethod
    def _as_int64_keys(keys) -> np.ndarray:
        """Validate a batch key array: integer dtype required.

        The ``SortedKeyColumn`` contract from PR 5 — float keys would
        silently alias above 2^53, so the batch write surface refuses
        them instead of casting.  Plain Python int sequences infer an
        integer dtype and pass; an empty batch passes regardless of
        numpy's float64 default for ``[]``.
        """
        arr = np.asarray(keys)
        if arr.size == 0:
            return np.empty(0, dtype=np.int64)
        if arr.dtype.kind not in "iu":
            raise TypeError(
                "batch keys must be an integer array, got dtype "
                f"{arr.dtype}; cast explicitly if that loss is intended"
            )
        return arr.astype(np.int64, copy=False).ravel()

    # -- write path ------------------------------------------------------------

    def insert(self, key: int, value: int | None = None) -> None:
        """Write ``key -> value`` (value defaults to the key)."""
        self._ensure_open()
        key = int(key)
        value = key if value is None else int(value)
        if self._wal is not None:
            with obs_span("lsm.wal.append", records=1):
                self._wal.append_puts(
                    np.array([key], dtype=np.int64),
                    np.array([value], dtype=np.int64),
                )
        self.memtable.put(key, value)
        self.write_stats.add(keys_written=1)
        self._maybe_seal()

    def insert_batch(self, keys, values=None) -> None:
        """Bulk insert: one WAL record + one memtable update, at most
        one seal after.

        Duplicate keys within the batch resolve last-wins, matching a
        put loop.  The whole batch is atomic at WAL-record granularity:
        after a crash, either every entry of the batch survives or none
        does.  Raises ``TypeError`` on non-integer key arrays.
        """
        self._ensure_open()
        keys = self._as_int64_keys(keys)
        if values is None:
            values = keys
        else:
            values = np.asarray(values, dtype=np.int64).ravel()
            if values.size != keys.size:
                raise ValueError("keys and values must have the same length")
        if keys.size == 0:
            return
        if self._wal is not None:
            with obs_span("lsm.wal.append", records=int(keys.size)):
                self._wal.append_puts(keys, values)
        self.memtable.put_batch(keys, values)
        self.write_stats.add(keys_written=int(keys.size))
        self._maybe_seal()

    def delete(self, key: int) -> None:
        """Blind delete: a tombstone shadows every older version.

        No read is performed (the LSM discipline — presence is resolved
        at read/compaction time), so unlike
        ``WritableLearnedIndex.delete`` there is no return value.
        """
        self._ensure_open()
        key = int(key)
        if self._wal is not None:
            with obs_span("lsm.wal.append", records=1, deletes=True):
                self._wal.append_deletes(np.array([key], dtype=np.int64))
        self.memtable.delete(key)
        self.write_stats.add(keys_written=1)
        self._maybe_seal()

    def delete_batch(self, keys) -> None:
        """Bulk blind delete: one WAL record + one memtable sweep.

        Same atomicity and integer-dtype contract as
        :meth:`insert_batch`.
        """
        self._ensure_open()
        keys = self._as_int64_keys(keys)
        if keys.size == 0:
            return
        if self._wal is not None:
            with obs_span("lsm.wal.append", records=int(keys.size), deletes=True):
                self._wal.append_deletes(keys)
        self.memtable.delete_batch(keys)
        self.write_stats.add(keys_written=int(keys.size))
        self._maybe_seal()

    def _maybe_seal(self) -> None:
        if len(self.memtable) >= self.memtable_capacity:
            self.flush()

    def flush(self) -> None:
        """Seal the memtable into a fresh L0 run, then hand the policy
        its merge debt — to the background worker when one exists,
        inline (budgeted per seal in durable mode) otherwise.

        Durable seal protocol, in crash-safe order: write + fsync the
        run file → create + fsync the next WAL generation → commit the
        manifest (new run in, new WAL referenced) → delete the old WAL.
        A crash before the commit recovers through the *old* manifest +
        old WAL (the half-written run and fresh WAL are orphans); a
        crash after it recovers through the new run (the old WAL is the
        orphan).  Acknowledged writes survive either way.

        Concurrent readers: the sealed run enters the run list *before*
        the memtable clears, so a reader that misses the entries in the
        memtable finds them in its run snapshot — the same data may be
        visible in both for an instant, which newest-wins dedup
        resolves; it is never visible in neither.
        """
        self._ensure_open()
        with self._structure_lock:
            if len(self.memtable) == 0:
                return
            keys, values, dead = self.memtable.snapshot()
            tombstones: np.ndarray | None = dead
            if not self.runs and dead.any():
                # Nothing older to shadow: garbage-collect immediately.
                live = ~dead
                keys, values, tombstones = keys[live], values[live], None
                if keys.size == 0:
                    # Every buffered entry was an unshadowed tombstone.
                    # Still rotate the WAL in durable mode, or replay
                    # would keep resurrecting (and re-discarding) them
                    # forever.
                    if self._wal is not None:
                        old_wal = self._rotate_wal_begin()
                        self._commit_manifest()
                        self._rotate_wal_finish(old_wal)
                    self.memtable.clear()
                    return
            with obs_span("lsm.seal") as seal_attrs:
                run = SortedRun(
                    keys,
                    values,
                    tombstones,
                    sequence=self._next_sequence(),
                    level=0,
                    **self._run_kwargs,
                )
                if self._wal is not None:
                    run.save(self._fs, self._file_path(self._new_run_name()))
                    old_wal = self._rotate_wal_begin()
                    with self._state_lock:
                        self.runs.insert(0, run)
                    self.memtable.clear()
                    self._commit_manifest()
                    self._rotate_wal_finish(old_wal)
                else:
                    with self._state_lock:
                        self.runs.insert(0, run)
                    self.memtable.clear()
                self.write_stats.add(seals=1, entries_sealed=len(run))
                if seal_attrs is not None:
                    seal_attrs["entries"] = len(run)
                    seal_attrs["durable"] = self._wal is not None
        if self._compactor is not None:
            self._compactor.kick()
        else:
            self._compact(self._seal_merge_budget)

    def _plan_merge(self, runs: list[SortedRun], seen: set):
        """One validated, productive merge decision over a run-list
        snapshot, or None.

        This is the no-progress guard (ISSUE 7): ``policy.select`` is
        re-consulted after every merge, and a policy whose bucket/level
        boundaries shift under it can oscillate — re-selecting a window
        that rewrites data without changing the layout, forever.  Two
        checks bound that: a single-run window merged onto its own
        level with nothing to GC is rejected outright (a pure no-op),
        and a repeat of the exact (layout, selection) structural
        signature within one drain breaks the loop (the state space of
        signatures is finite, so termination is unconditional).
        Returns ``(window, at_end, new_level)``.
        """
        selection = self.policy.select(runs)
        if selection is None:
            return None
        start, stop, new_level = (
            int(selection[0]), int(selection[1]), int(selection[2]),
        )
        if not 0 <= start < stop <= len(runs):
            raise ValueError(
                f"compaction policy selected invalid window "
                f"{selection!r} over {len(runs)} runs"
            )
        signature = (
            tuple((len(r), r.level) for r in runs),
            (start, stop, new_level),
        )
        if signature in seen:
            return None
        seen.add(signature)
        window = runs[start:stop]
        # Tombstone GC is safe exactly when the window reaches the end
        # of the (newest-first) list; seals only prepend, so the
        # property decided on this snapshot holds through the commit.
        at_end = stop == len(runs)
        if (
            stop - start == 1
            and new_level == window[0].level
            and not (at_end and window[0].num_tombstones)
        ):
            return None
        return window, at_end, new_level

    def _commit_merge(self, window: list[SortedRun], merged: SortedRun) -> None:
        """Swap ``window`` → ``merged`` atomically; retire the inputs.

        Durable merge protocol: write + fsync the merged run file →
        swap + commit the manifest with the window replaced → delete
        the input run files (deferred until unpinned).  A crash before
        the commit leaves the old manifest (merged file is an orphan);
        after it, the inputs are orphans — no intermediate point can
        lose a key or resurrect a tombstoned one, because inputs
        outlive the commit that supersedes them.

        The window is relocated by identity: seals prepend while a
        background merge runs, shifting indices but never breaking the
        window's contiguity (only merges remove runs, and merges are
        serialized by the merge lock).
        """
        # Durability is keyed on ``self.path`` here, not ``self._wal``:
        # flush() parks ``_wal`` at None mid-rotation, and this check
        # runs outside the structure lock — reading ``_wal`` raced that
        # window and skipped the save entirely.
        if self.path is not None:
            # Saved before any lock: the file is an orphan until the
            # manifest commit below, so seals and readers proceed
            # through this (potentially long) I/O instead of queueing
            # on the structure lock.  In background mode the save also
            # fsyncs incrementally so the writer's per-batch WAL
            # fsyncs never land behind one multi-megabyte flush; the
            # synchronous path keeps the single trailing fsync so the
            # crash fuzz's injection-site sequence stays deterministic.
            merged.save(
                self._fs,
                self._file_path(self._new_run_name()),
                fsync_every=_MERGE_SAVE_FSYNC_BYTES
                if self._background
                else None,
            )
        with self._structure_lock:
            with self._state_lock:
                start = self.runs.index(window[0])
                assert self.runs[start:start + len(window)] == window
                self.runs[start:start + len(window)] = [merged]
                self._retired.extend(window)
            if self.path is not None:
                self._commit_manifest()
        self._drain_retired()

    def _drain_retired(self) -> None:
        """Close + unlink retired runs nobody pins anymore.

        Called after structural transitions, never from reader threads
        (readers just unpin — they stay IO-free).  In synchronous
        single-threaded use every pin count is already zero here, so
        inputs are deleted at exactly the point the pre-snapshot code
        deleted them — the crash-fuzz site sequence is unchanged.
        """
        with self._state_lock:
            free = [r for r in self._retired if r.pins == 0]
            if not free:
                return
            self._retired = [r for r in self._retired if r.pins > 0]
        for run in free:
            run.close()
            if self._fs is not None and run.path is not None:
                self._fs.remove(run.path)

    def _background_merge_once(self, seen: set) -> bool:
        """One window, executed on the worker thread; True if merged.

        The expensive part — :func:`merge_runs` + the RMI rebuild —
        runs without any structural lock, so the writer keeps sealing
        and readers keep serving their pinned snapshots; only the swap
        itself synchronizes.
        """
        with self._merge_lock:
            if self._closed:
                return False
            with self._state_lock:
                runs = list(self.runs)
            plan = self._plan_merge(runs, seen)
            if plan is None:
                return False
            window, at_end, new_level = plan
            with obs_span(
                "lsm.compact.window", background=True, runs=len(window)
            ) as attrs:
                merged = merge_runs(
                    window, drop_tombstones=at_end, **self._run_kwargs
                )
                merged.level = new_level
                self._commit_merge(window, merged)
                if attrs is not None:
                    attrs["entries"] = len(merged)
        self.write_stats.add(compactions=1, entries_compacted=len(merged))
        return True

    def _compact(self, budget: int | None = None) -> None:
        """Inline (write-path) compaction: at most ``budget`` windows.

        Every window executed here stalled the caller's write batch,
        which is exactly what :attr:`LSMWriteStats.write_stalls` /
        ``stall_seconds`` meter — the counters the tail-latency bench
        asserts stay zero in background mode.
        """
        merges = 0
        seen: set = set()
        with self._merge_lock:
            while budget is None or merges < budget:
                with self._state_lock:
                    runs = list(self.runs)
                plan = self._plan_merge(runs, seen)
                if plan is None:
                    break
                window, at_end, new_level = plan
                began = time.perf_counter()
                with obs_span(
                    "lsm.compact.window", background=False, runs=len(window)
                ):
                    merged = merge_runs(
                        window, drop_tombstones=at_end, **self._run_kwargs
                    )
                    merged.level = new_level
                    self._commit_merge(window, merged)
                self.write_stats.add(
                    compactions=1,
                    entries_compacted=len(merged),
                    write_stalls=1,
                    stall_seconds=time.perf_counter() - began,
                )
                merges += 1

    def compact(self) -> None:
        """Force a full compaction: flush, then fold everything into
        one bottom run with tombstones garbage-collected (ignores the
        per-seal merge budget — this is the explicit maintenance call,
        so its merge time is not metered as a write stall)."""
        self.flush()
        with self._merge_lock:
            with self._state_lock:
                window = list(self.runs)
            if len(window) > 1:
                merged = merge_runs(
                    window, drop_tombstones=True, **self._run_kwargs
                )
                merged.level = max(r.level for r in window)
                self._commit_merge(window, merged)
                self.write_stats.add(
                    compactions=1, entries_compacted=len(merged)
                )

    def wait_for_compaction(self) -> None:
        """Block until the background worker has drained its merge
        debt, then sweep unpinned retired runs; re-raises any error
        the worker hit.  No-op (beyond the sweep) in synchronous mode
        — the write path already ran every merge inline.
        """
        if self._compactor is not None:
            self._compactor.drain()
        self._drain_retired()

    # -- snapshot machinery ----------------------------------------------------

    def _pin_runs(self) -> tuple[SortedRun, ...]:
        """An immutable run-set snapshot, each run pinned against
        deferred deletion.  Callers MUST pair with :meth:`_unpin_runs`
        (try/finally).  Grab memtable views *before* calling this —
        that ordering is what makes snapshots loss-free under a
        concurrent seal (see the module docstring)."""
        with self._state_lock:
            runs = tuple(self.runs)
            for run in runs:
                run.pins += 1
        return runs

    def _unpin_runs(self, runs: tuple[SortedRun, ...]) -> None:
        with self._state_lock:
            for run in runs:
                run.pins -= 1

    def snapshot(self) -> StoreSnapshot:
        """A pinned point-in-time read view (see :class:`StoreSnapshot`).

        Safe from any reader thread; release it (context manager or
        :meth:`StoreSnapshot.release`) when done — it holds every run
        of its epoch against deletion until then.
        """
        self._ensure_open()
        return StoreSnapshot(self)

    # -- backup ----------------------------------------------------------------

    def backup(self, dest: str) -> None:
        """Snapshot the durable state into directory ``dest``.

        Runs and the manifest are immutable rename-published inodes, so
        the backup hard-links them — O(runs) metadata operations, no
        data copy no matter how large the store (the reason LSM stores
        back up this way in practice).  Only the WAL, which is appended
        in place, is copied byte-for-byte; it is synced first so the
        copy contains every acknowledged write.  The result is a
        directory ``LearnedLSMStore(path=dest)`` opens like any other
        store, holding exactly the state at the backup point.

        Counts as a write-path call under the threading contract (it
        reads the live WAL); holds the structure lock, so it excludes
        seals and merge commits but not in-flight merge I/O.  The
        manifest is linked *last* and the directory fsynced after, so
        a crash mid-backup leaves a manifest-less directory that can
        never be mistaken for a valid store.
        """
        self._ensure_open()
        if self.path is None:
            raise ValueError("backup requires a durable store (path=...)")
        dest = str(dest)
        if os.path.abspath(dest) == os.path.abspath(self.path):
            raise ValueError("backup destination is the store directory")
        fs = self._fs
        with self._structure_lock:
            fs.makedirs(dest)
            if fs.listdir(dest):
                raise ValueError(f"backup destination {dest!r} not empty")
            if self._wal is not None:
                self._wal.sync()
            with self._state_lock:
                runs = list(self.runs)
            for run in runs:
                name = os.path.basename(run.path)
                fs.link(run.path, os.path.join(dest, name))
            wal_src = self._file_path(self._wal_name)
            wal_dst = os.path.join(dest, self._wal_name)
            handle = fs.open_write(wal_dst)
            try:
                fs.write(handle, fs.read_bytes(wal_src))
                fs.fsync(handle)
            finally:
                fs.close(handle)
            fs.link(
                self._file_path(MANIFEST_NAME),
                os.path.join(dest, MANIFEST_NAME),
            )
            fs.fsync_dir(dest)

    # -- point reads -----------------------------------------------------------

    def lookup(self, key: int):
        """The live value for ``key``, or None — scalar read path.

        Memtable first (O(1) lock-free dict probes), then a pinned run
        snapshot newest-first; each run's bloom filter is consulted
        before its RMI runs.
        """
        self._ensure_open()
        key = int(key)
        if self.memtable.is_tombstone(key):
            self.read_stats.add(lookups=1, memtable_hits=1)
            return None
        if self.memtable.has_put(key):
            value = self.memtable.get(key)
            if value is not None:
                self.read_stats.add(lookups=1, memtable_hits=1)
                return value
            # The entry vanished between probe and fetch (a racing
            # seal): fall through to the runs, which now hold it.
        rejects = probes = misses = 0
        result = None
        runs = self._pin_runs()
        try:
            for run in runs:
                if key not in run.bloom:
                    rejects += 1
                    continue
                probes += 1
                hit, dead, value = run.probe(key)
                if hit:
                    result = None if dead else value
                    break
                misses += 1
        finally:
            self._unpin_runs(runs)
        self.read_stats.add(
            lookups=1,
            run_probes=probes,
            probe_misses=misses,
            bloom_rejects=rejects,
        )
        return result

    def lookup_batch(self, keys) -> tuple[np.ndarray, np.ndarray]:
        """(values, found) for a whole key batch.

        One ``lookup_batch`` fans newest-first across runs: each run
        sees only the queries still unresolved, its bloom filter drops
        the ones it cannot hold, and its RMI probes the survivors —
        the batch analogue of the scalar walk, with identical results.
        ``values[i]`` is 0 wherever ``found[i]`` is False.  The whole
        batch answers from one pinned (memtable-view, run-set)
        snapshot, so a concurrent seal or background merge can neither
        hide an entry nor unmap a run mid-probe.
        """
        self._ensure_open()
        queries = np.asarray(keys, dtype=np.int64).ravel()
        # One consistent (puts, values, tombstones) triple: fetching
        # the three views separately could pair arrays from different
        # memtable generations under a racing writer.
        put_keys, put_values, tombs = self.memtable.views()
        runs = self._pin_runs()
        try:
            return resolve_point_batch(
                queries, put_keys, put_values, tombs, runs,
                stats=self.read_stats,
            )
        finally:
            self._unpin_runs(runs)

    def contains(self, key: int) -> bool:
        """Does a live (non-tombstoned) entry exist for ``key``?"""
        return self.lookup(key) is not None

    def contains_batch(self, keys) -> np.ndarray:
        """One bool per key: does a live (non-tombstoned) entry exist?"""
        _values, found = self.lookup_batch(keys)
        return found

    # -- range reads -----------------------------------------------------------

    @staticmethod
    def _range_endpoints(lows, highs) -> tuple[np.ndarray, np.ndarray]:
        """Normalize endpoint arrays, keeping their native dtype so
        int64 ranges resolve exactly through every run's query core."""
        lows = np.asarray(lows).ravel()
        highs = np.asarray(highs).ravel()
        if lows.size != highs.size:
            raise ValueError("lows and highs must have the same length")
        return lows, highs

    def range_query_batch(self, lows, highs) -> RangeScanResult:
        """Live keys in each closed range ``[lows[i], highs[i]]``.

        Every source — memtable snapshot plus each run's vectorized
        range scan — contributes its entries; one
        :func:`~repro.range_scan.merge_scan_results` pass interleaves
        them newest-first, deduplicates to the newest version per key,
        and drops keys whose newest version is a tombstone.
        """
        self._ensure_open()
        lows_f, highs_f = self._range_endpoints(lows, highs)
        if lows_f.size == 0:
            return RangeScanResult(
                values=np.empty(0, dtype=np.int64),
                offsets=np.zeros(1, dtype=np.int64),
            )
        # Inverted ranges come out empty in every source: the run RMIs
        # pin them (closed-interval semantics shared with the whole
        # repo) and the memtable's hi = max(hi, lo) clamp does the same.
        # Memtable snapshot before the run pin — the loss-free order
        # under a concurrent seal.
        mem = self.memtable.snapshot() if len(self.memtable) else None
        runs = self._pin_runs()
        try:
            return resolve_range_batch(lows_f, highs_f, mem, runs)
        finally:
            self._unpin_runs(runs)

    def range_items_batch(
        self, lows, highs
    ) -> tuple[RangeScanResult, np.ndarray]:
        """Live ``(key, value)`` pairs in each closed range.

        Same newest-wins / tombstone-shadowing merge as
        :meth:`range_query_batch`, with every source gathering its
        stored payloads through the identical slice plan and
        :func:`~repro.range_scan.merge_scan_results` carrying them
        through the merge (its ``payloads`` parameter — the PR 4
        follow-up).  Returns ``(result, values)`` where ``values`` is
        parallel to ``result.values``: the live value for
        ``result.values[j]`` is ``values[j]``.
        """
        self._ensure_open()
        lows_f, highs_f = self._range_endpoints(lows, highs)
        if lows_f.size == 0:
            return (
                RangeScanResult(
                    values=np.empty(0, dtype=np.int64),
                    offsets=np.zeros(1, dtype=np.int64),
                ),
                np.empty(0, dtype=np.int64),
            )
        mem = self.memtable.snapshot() if len(self.memtable) else None
        runs = self._pin_runs()
        try:
            return resolve_range_batch(
                lows_f, highs_f, mem, runs, with_values=True
            )
        finally:
            self._unpin_runs(runs)

    def range_query(self, low, high) -> np.ndarray:
        """Scalar range read: all live keys in ``[low, high]``."""
        result = self.range_query_batch([low], [high])
        return np.asarray(result[0], dtype=np.int64)

    # -- accounting ------------------------------------------------------------

    def live_keys(self) -> np.ndarray:
        """All live keys, merged and deduplicated — O(N log N)."""
        self._ensure_open()
        mem_keys, _mem_values, mem_dead = self.memtable.snapshot()
        runs = self._pin_runs()
        try:
            parts = [mem_keys] + [r.keys for r in runs]
            dead_parts = [mem_dead] + [r.tombstones for r in runs]
            keys = np.concatenate(parts)
            dead = np.concatenate(dead_parts)
        finally:
            self._unpin_runs(runs)
        if keys.size == 0:
            return keys
        rank = np.repeat(
            np.arange(len(parts), dtype=np.int64),
            [p.size for p in parts],
        )
        order, newest = newest_versions(keys, rank)
        return keys[order][newest & ~dead[order]]

    def __len__(self) -> int:
        """Exact live key count (O(N log N) — see :meth:`live_keys`)."""
        return int(self.live_keys().size)

    @property
    def num_runs(self) -> int:
        return len(self.runs)

    def size_bytes(self) -> int:
        runs = self._pin_runs()
        try:
            return self.memtable.size_bytes() + sum(
                r.size_bytes() for r in runs
            )
        finally:
            self._unpin_runs(runs)

    def __repr__(self) -> str:
        levels = [r.level for r in tuple(self.runs)]
        where = f", path={self.path!r}" if self.path is not None else ""
        return (
            f"LearnedLSMStore(runs={len(self.runs)}, levels={levels}, "
            f"memtable={len(self.memtable)}, "
            f"seals={self.write_stats.seals}, "
            f"compactions={self.write_stats.compactions}{where})"
        )
