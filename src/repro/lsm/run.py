"""Immutable sorted runs: per-run RMI + bloom guard (Appendix D.1).

"Learned Indexes for a Google-scale Disk-based Database" (Abu-Libdeh
et al.) and "Evaluating Learned Indexes in LSM-tree Systems" (Liu et
al.) converge on the same production shape the paper's Bigtable remark
points at: writes land in a buffer, seals produce *immutable* sorted
runs, and each run carries its own learned index — immutability is
precisely what makes learned indexes practical here, because a run's
model is trained once at seal/compaction time and never invalidated.

A :class:`SortedRun` is that unit: a sorted unique key array (with
parallel values and a tombstone mask), indexed by a
:class:`~repro.core.rmi.RecursiveModelIndex` built with
``build_mode="vectorized"`` — so sealing costs one segmented
least-squares pass (PR 3), not ten thousand Python model fits — and
guarded by a bloom filter over its keys, so point probes for keys the
run cannot hold skip the model entirely.

The bloom filter defaults to :class:`repro.bloom.BloomFilter`; any
object with ``add_batch`` / ``contains_batch`` / ``size_bytes`` fits
the ``bloom_factory`` slot.  :func:`learned_bloom_factory` builds that
adapter over :class:`repro.core.learned_bloom.LearnedBloomFilter`
(Section 5.1.1): each seal trains the pluggable classifier on the
run's encoded keys and covers its false negatives with the overflow
filter, so the zero-false-negative guarantee — the property LSM read
correctness rests on — is preserved by construction.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..bloom.standard import BloomFilter
from ..core.learned_bloom import LearnedBloomFilter
from ..core.rmi import RecursiveModelIndex
from ..range_scan import assemble_slices

__all__ = [
    "SortedRun",
    "DEFAULT_LEAF_TARGET",
    "LearnedBloomGuard",
    "learned_bloom_factory",
]

#: Target keys per RMI leaf when sealing a run; leaves scale with run
#: size so error windows stay page-sized from 4k-key seals to
#: million-key compacted runs.
DEFAULT_LEAF_TARGET = 256


def _default_bloom(n: int, fpr: float) -> BloomFilter:
    return BloomFilter.for_capacity(max(n, 1), fpr)


class LearnedBloomGuard:
    """Adapter fitting :class:`LearnedBloomFilter` into the
    ``bloom_factory`` slot of :class:`SortedRun`.

    A learned Bloom filter needs its whole key set at construction
    (the classifier trains against it, and the overflow filter covers
    its false negatives), while a run's guard is created empty and
    filled once via ``add_batch``.  The guard therefore defers the
    filter build to that single ``add_batch`` call — which a run makes
    exactly once, at seal/compaction time, so the training cost rides
    the merge like the RMI rebuild does.  Integer keys are encoded to
    strings (``encode``) for the string-input classifiers of Section 5.
    """

    __slots__ = (
        "_model_factory", "_validation", "_fpr", "_encode",
        "_model_fpr_share", "_filter", "_added",
    )

    def __init__(
        self,
        model_factory: Callable[[], object],
        validation_nonkeys: Sequence[str],
        fpr: float,
        encode: Callable[[int], str] = str,
        model_fpr_share: float = 0.5,
    ):
        self._model_factory = model_factory
        self._validation = list(validation_nonkeys)
        self._fpr = float(fpr)
        self._encode = encode
        self._model_fpr_share = float(model_fpr_share)
        self._filter: LearnedBloomFilter | None = None
        self._added: list[str] = []

    def add_batch(self, keys) -> None:
        # Accumulate across calls: a plain BloomFilter in the same slot
        # supports incremental adds, and silently dropping an earlier
        # batch would break the zero-false-negative guarantee.  A run
        # calls add_batch once, so the rebuild normally happens once.
        encode = self._encode
        self._added.extend(encode(int(k)) for k in np.asarray(keys).tolist())
        self._filter = LearnedBloomFilter(
            self._model_factory(),
            self._added,
            self._validation,
            self._fpr,
            model_fpr_share=self._model_fpr_share,
        )

    def __contains__(self, key) -> bool:
        if self._filter is None:  # empty run: nothing can be present
            return False
        return self._encode(int(key)) in self._filter

    def contains_batch(self, queries) -> np.ndarray:
        queries = np.asarray(queries)
        if self._filter is None:
            return np.zeros(queries.size, dtype=bool)
        encode = self._encode
        return np.asarray(
            self._filter.contains_batch(
                [encode(int(k)) for k in queries.tolist()]
            ),
            dtype=bool,
        )

    def size_bytes(self) -> int:
        return self._filter.size_bytes() if self._filter is not None else 0


def learned_bloom_factory(
    model_factory: Callable[[], object],
    validation_nonkeys: Sequence[str],
    *,
    encode: Callable[[int], str] = str,
    model_fpr_share: float = 0.5,
) -> Callable[[int, float], LearnedBloomGuard]:
    """A ``bloom_factory`` producing :class:`LearnedBloomGuard` runs.

    ``model_factory`` builds a fresh classifier per seal (each run's
    key distribution is its own training set); ``validation_nonkeys``
    tunes every guard's tau exactly as Section 5.1.1 prescribes.
    """

    def factory(_n: int, fpr: float) -> LearnedBloomGuard:
        return LearnedBloomGuard(
            model_factory, validation_nonkeys, fpr,
            encode=encode, model_fpr_share=model_fpr_share,
        )

    return factory


class SortedRun:
    """One immutable level of an LSM store.

    Parameters
    ----------
    keys:
        Sorted unique int64 keys — both live entries and tombstones.
    values:
        Parallel payloads (ignored for tombstone entries).
    tombstones:
        Parallel bool mask; True marks a delete marker that shadows any
        older run's version of the key.
    bloom_fpr / bloom_factory:
        Target false-positive rate, and the filter constructor
        ``(n, fpr) -> filter``.
    leaf_target:
        Keys per RMI leaf (the run's model granularity).
    sequence / level:
        Bookkeeping: seal sequence number (larger = newer) and the
        compaction level the run currently occupies.
    """

    def __init__(
        self,
        keys: np.ndarray,
        values: np.ndarray | None = None,
        tombstones: np.ndarray | None = None,
        *,
        bloom_fpr: float = 0.01,
        bloom_factory: Callable[[int, float], object] | None = None,
        leaf_target: int = DEFAULT_LEAF_TARGET,
        sequence: int = 0,
        level: int = 0,
    ):
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size and np.any(keys[1:] <= keys[:-1]):
            raise ValueError("run keys must be sorted and unique")
        self.keys = keys
        self.values = (
            np.asarray(values, dtype=np.int64)
            if values is not None
            else keys.copy()
        )
        self.tombstones = (
            np.asarray(tombstones, dtype=bool)
            if tombstones is not None
            else np.zeros(keys.size, dtype=bool)
        )
        if self.values.size != keys.size or self.tombstones.size != keys.size:
            raise ValueError("values/tombstones must parallel keys")
        self.sequence = int(sequence)
        self.level = int(level)
        self.leaf_target = int(leaf_target)
        leaves = max(1, -(-keys.size // max(leaf_target, 1)))
        self.rmi = RecursiveModelIndex(
            keys, stage_sizes=(1, leaves), build_mode="vectorized"
        )
        factory = bloom_factory or _default_bloom
        self.bloom = factory(keys.size, bloom_fpr)
        if keys.size:
            self.bloom.add_batch(keys)

    # -- point reads -----------------------------------------------------------

    def bloom_contains_batch(self, queries: np.ndarray) -> np.ndarray:
        """One bool per query: may this run hold an entry for it?"""
        return np.asarray(self.bloom.contains_batch(queries), dtype=bool)

    def probe(self, key: int) -> tuple[bool, bool, int]:
        """(entry present, entry is tombstone, value) — scalar probe.

        The caller is expected to have consulted the bloom filter; this
        runs the RMI's scalar latency path (exact: the key stays a
        Python int through every comparison).
        """
        pos = self.rmi.lookup(key)
        if pos < self.keys.size and int(self.keys[pos]) == key:
            return True, bool(self.tombstones[pos]), int(self.values[pos])
        return False, False, 0

    def probe_batch(
        self, queries: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(entry mask, tombstone mask, values) for a query batch.

        One vectorized ``lookup_batch`` against the run's RMI — int64
        end to end through the shared query core, so keys >= 2^53
        resolve exactly; the masks tell the store which queries this
        run *answers* (present or deleted) versus which fall through
        to older runs.
        """
        n = self.keys.size
        if n == 0:
            empty = np.zeros(queries.size, dtype=bool)
            return empty, empty.copy(), np.zeros(queries.size, dtype=np.int64)
        pos = self.rmi.lookup_batch(queries)
        safe = np.minimum(pos, n - 1)
        hit = (pos < n) & (self.keys[safe] == queries)
        dead = hit & self.tombstones[safe]
        return hit, dead, self.values[safe]

    # -- range reads -----------------------------------------------------------

    def range_scan_batch(
        self, lows: np.ndarray, highs: np.ndarray, *, with_values: bool = False
    ):
        """(per-range entries, tombstone flags aligned to the values).

        The run's RMI resolves all bounds vectorized; the tombstone
        flags for every returned entry assemble in the same one-gather
        pass the keys do.  ``with_values=True`` appends a third element
        — the stored payloads, gathered through the identical slice
        plan — for the store's ``range_items_batch``.
        """
        result = self.rmi.range_query_batch(lows, highs)
        flags, _ = assemble_slices(self.tombstones, result.starts, result.ends)
        if not with_values:
            return result, flags
        values, _ = assemble_slices(self.values, result.starts, result.ends)
        return result, flags, values

    # -- accounting ------------------------------------------------------------

    @property
    def num_tombstones(self) -> int:
        return int(np.count_nonzero(self.tombstones))

    @property
    def live_count(self) -> int:
        return self.keys.size - self.num_tombstones

    def __len__(self) -> int:
        return int(self.keys.size)

    def size_bytes(self) -> int:
        """Data (keys + values + mask) plus index overhead (RMI + bloom)."""
        return (
            self.keys.size * 17
            + self.rmi.size_bytes()
            + int(self.bloom.size_bytes())
        )

    def __repr__(self) -> str:
        return (
            f"SortedRun(n={self.keys.size}, level={self.level}, "
            f"seq={self.sequence}, tombstones={self.num_tombstones})"
        )
