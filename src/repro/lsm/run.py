"""Immutable sorted runs: per-run RMI + bloom guard (Appendix D.1).

"Learned Indexes for a Google-scale Disk-based Database" (Abu-Libdeh
et al.) and "Evaluating Learned Indexes in LSM-tree Systems" (Liu et
al.) converge on the same production shape the paper's Bigtable remark
points at: writes land in a buffer, seals produce *immutable* sorted
runs, and each run carries its own learned index — immutability is
precisely what makes learned indexes practical here, because a run's
model is trained once at seal/compaction time and never invalidated.

A :class:`SortedRun` is that unit: a sorted unique key array (with
parallel values and a tombstone mask), indexed by a
:class:`~repro.core.rmi.RecursiveModelIndex` built with
``build_mode="vectorized"`` — so sealing costs one segmented
least-squares pass (PR 3), not ten thousand Python model fits — and
guarded by a bloom filter over its keys, so point probes for keys the
run cannot hold skip the model entirely.

Durability (PR 6): immutability also makes a run the perfect unit of
persistence.  :meth:`SortedRun.save` writes one checksummed section
file (:mod:`repro.lsm.format`) holding the key/value/tombstone arrays,
the RMI's compiled state (root parameters + the four flat leaf
tables), and the bloom filter's exported bits;
:meth:`SortedRun.load` reopens it in O(metadata) — every array is a
lazy ``np.memmap`` property, the RMI reconstructs from the stored
arrays via :meth:`RecursiveModelIndex.from_compiled_arrays` (bit-exact
lookups, no retrain), and the guard rehydrates from its exported bits
(no rehashing).  Each section's checksum verifies on first
materialization, so a flipped bit raises
:class:`~repro.lsm.format.CorruptRunError` instead of answering wrong.

The bloom filter defaults to :class:`repro.bloom.BloomFilter`; any
object with ``add_batch`` / ``contains_batch`` / ``size_bytes`` fits
the ``bloom_factory`` slot.  :func:`learned_bloom_factory` builds that
adapter over :class:`repro.core.learned_bloom.LearnedBloomFilter`
(Section 5.1.1): each seal trains the pluggable classifier on the
run's encoded keys and covers its false negatives with the overflow
filter, so the zero-false-negative guarantee — the property LSM read
correctness rests on — is preserved by construction.  Standard filters
persist via their compact ``to_bytes`` wire form; learned guards fall
back to pickle (their classifier is arbitrary Python), which the run
metadata records so a reader knows what it is deserializing.
"""

from __future__ import annotations

import pickle
from typing import Callable, Sequence

import numpy as np

from ..bloom.standard import BloomFilter
from ..core.learned_bloom import LearnedBloomFilter
from ..core.rmi import RecursiveModelIndex
from ..range_scan import assemble_slices
from .format import RUN_MAGIC, CorruptRunError, SectionFile, write_section_file

__all__ = [
    "SortedRun",
    "DEFAULT_LEAF_TARGET",
    "LearnedBloomGuard",
    "learned_bloom_factory",
]

#: Target keys per RMI leaf when sealing a run; leaves scale with run
#: size so error windows stay page-sized from 4k-key seals to
#: million-key compacted runs.
DEFAULT_LEAF_TARGET = 256


def _default_bloom(n: int, fpr: float) -> BloomFilter:
    return BloomFilter.for_capacity(max(n, 1), fpr)


class LearnedBloomGuard:
    """Adapter fitting :class:`LearnedBloomFilter` into the
    ``bloom_factory`` slot of :class:`SortedRun`.

    A learned Bloom filter needs its whole key set at construction
    (the classifier trains against it, and the overflow filter covers
    its false negatives), while a run's guard is created empty and
    filled once via ``add_batch``.  The guard therefore defers the
    filter build to that single ``add_batch`` call — which a run makes
    exactly once, at seal/compaction time, so the training cost rides
    the merge like the RMI rebuild does.  Integer keys are encoded to
    strings (``encode``) for the string-input classifiers of Section 5.
    """

    __slots__ = (
        "_model_factory", "_validation", "_fpr", "_encode",
        "_model_fpr_share", "_filter", "_added",
    )

    def __init__(
        self,
        model_factory: Callable[[], object],
        validation_nonkeys: Sequence[str],
        fpr: float,
        encode: Callable[[int], str] = str,
        model_fpr_share: float = 0.5,
    ):
        self._model_factory = model_factory
        self._validation = list(validation_nonkeys)
        self._fpr = float(fpr)
        self._encode = encode
        self._model_fpr_share = float(model_fpr_share)
        self._filter: LearnedBloomFilter | None = None
        self._added: list[str] = []

    def add_batch(self, keys) -> None:
        # Accumulate across calls: a plain BloomFilter in the same slot
        # supports incremental adds, and silently dropping an earlier
        # batch would break the zero-false-negative guarantee.  A run
        # calls add_batch once, so the rebuild normally happens once.
        encode = self._encode
        self._added.extend(encode(int(k)) for k in np.asarray(keys).tolist())
        self._filter = LearnedBloomFilter(
            self._model_factory(),
            self._added,
            self._validation,
            self._fpr,
            model_fpr_share=self._model_fpr_share,
        )

    def __contains__(self, key) -> bool:
        if self._filter is None:  # empty run: nothing can be present
            return False
        return self._encode(int(key)) in self._filter

    def contains_batch(self, queries) -> np.ndarray:
        queries = np.asarray(queries)
        if self._filter is None:
            return np.zeros(queries.size, dtype=bool)
        encode = self._encode
        return np.asarray(
            self._filter.contains_batch(
                [encode(int(k)) for k in queries.tolist()]
            ),
            dtype=bool,
        )

    def size_bytes(self) -> int:
        return self._filter.size_bytes() if self._filter is not None else 0

    # -- serialization ---------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Pickle wire form (the classifier is arbitrary Python — a
        compact binary encoding cannot exist in general).  The trained
        filter state round-trips exactly: same tau, same overflow
        bits, so the reloaded guard answers every probe identically.
        Raises ``TypeError`` with a pointed message for unpicklable
        classifiers (lambdas, closures)."""
        try:
            return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise TypeError(
                "LearnedBloomGuard is not picklable (use module-level "
                f"model factories and encoders): {exc}"
            ) from exc

    @classmethod
    def from_bytes(cls, blob: bytes) -> "LearnedBloomGuard":
        guard = pickle.loads(blob)
        if not isinstance(guard, cls):
            raise TypeError(
                f"blob decoded to {type(guard).__name__}, not a guard"
            )
        return guard


def learned_bloom_factory(
    model_factory: Callable[[], object],
    validation_nonkeys: Sequence[str],
    *,
    encode: Callable[[int], str] = str,
    model_fpr_share: float = 0.5,
) -> Callable[[int, float], LearnedBloomGuard]:
    """A ``bloom_factory`` producing :class:`LearnedBloomGuard` runs.

    ``model_factory`` builds a fresh classifier per seal (each run's
    key distribution is its own training set); ``validation_nonkeys``
    tunes every guard's tau exactly as Section 5.1.1 prescribes.
    """

    def factory(_n: int, fpr: float) -> LearnedBloomGuard:
        return LearnedBloomGuard(
            model_factory, validation_nonkeys, fpr,
            encode=encode, model_fpr_share=model_fpr_share,
        )

    return factory


#: Bloom wire kinds recorded in run metadata.
_BLOOM_STANDARD = "standard"
_BLOOM_PICKLE = "pickle"


def _serialize_bloom(bloom) -> tuple[str, bytes]:
    if isinstance(bloom, BloomFilter):
        return _BLOOM_STANDARD, bloom.to_bytes()
    if hasattr(bloom, "to_bytes"):
        return _BLOOM_PICKLE, bloom.to_bytes()
    try:
        return _BLOOM_PICKLE, pickle.dumps(
            bloom, protocol=pickle.HIGHEST_PROTOCOL
        )
    except Exception as exc:
        raise TypeError(
            f"bloom guard {type(bloom).__name__} is not serializable "
            f"(needs to_bytes() or picklability): {exc}"
        ) from exc


def _deserialize_bloom(kind: str, blob: bytes, path: str):
    if kind == _BLOOM_STANDARD:
        try:
            return BloomFilter.from_bytes(blob)
        except ValueError as exc:
            raise CorruptRunError(f"{path}: bad bloom section ({exc})") from None
    if kind == _BLOOM_PICKLE:
        # Trusted-input caveat: pickle runs arbitrary code; run files
        # carry it only for learned guards and are checksummed, but
        # they are not a safe interchange format across trust domains.
        return pickle.loads(blob)
    raise CorruptRunError(f"{path}: unknown bloom kind {kind!r}")


class SortedRun:
    """One immutable level of an LSM store.

    Parameters
    ----------
    keys:
        Sorted unique int64 keys — both live entries and tombstones.
    values:
        Parallel payloads (ignored for tombstone entries).
    tombstones:
        Parallel bool mask; True marks a delete marker that shadows any
        older run's version of the key.
    bloom_fpr / bloom_factory:
        Target false-positive rate, and the filter constructor
        ``(n, fpr) -> filter``.
    leaf_target:
        Keys per RMI leaf (the run's model granularity).
    sequence / level:
        Bookkeeping: seal sequence number (larger = newer) and the
        compaction level the run currently occupies.

    Constructed runs are eager (arrays in memory, RMI and bloom built
    at init); runs reopened from disk via :meth:`load` are lazy —
    ``keys`` / ``values`` / ``tombstones`` / ``rmi`` / ``bloom`` are
    properties that materialize from the checksummed section file on
    first touch, so reopening a store is O(metadata) per run.
    """

    def __init__(
        self,
        keys: np.ndarray,
        values: np.ndarray | None = None,
        tombstones: np.ndarray | None = None,
        *,
        bloom_fpr: float = 0.01,
        bloom_factory: Callable[[int, float], object] | None = None,
        leaf_target: int = DEFAULT_LEAF_TARGET,
        sequence: int = 0,
        level: int = 0,
    ):
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size and np.any(keys[1:] <= keys[:-1]):
            raise ValueError("run keys must be sorted and unique")
        self._keys = keys
        self._values = (
            np.asarray(values, dtype=np.int64)
            if values is not None
            else keys.copy()
        )
        self._tombstones = (
            np.asarray(tombstones, dtype=bool)
            if tombstones is not None
            else np.zeros(keys.size, dtype=bool)
        )
        if (
            self._values.size != keys.size
            or self._tombstones.size != keys.size
        ):
            raise ValueError("values/tombstones must parallel keys")
        self.sequence = int(sequence)
        self.level = int(level)
        self.leaf_target = int(leaf_target)
        #: Snapshot pin count (ISSUE 7): reads pin every run in their
        #: run-set snapshot so a background merge that supersedes the
        #: run defers closing + deleting it until the count returns to
        #: zero.  Mutated only under the store's state lock.
        self.pins = 0
        self._n = int(keys.size)
        self._num_tombstones = int(np.count_nonzero(self._tombstones))
        self._source: SectionFile | None = None
        self.path: str | None = None
        leaves = max(1, -(-keys.size // max(leaf_target, 1)))
        self._rmi: RecursiveModelIndex | None = RecursiveModelIndex(
            keys, stage_sizes=(1, leaves), build_mode="vectorized"
        )
        factory = bloom_factory or _default_bloom
        self._bloom = factory(keys.size, bloom_fpr)
        if keys.size:
            self._bloom.add_batch(keys)

    @classmethod
    def from_arrays(
        cls,
        keys: np.ndarray,
        values: np.ndarray,
        tombstones: np.ndarray,
        *,
        compiled_state: dict | None = None,
        bloom=None,
        sequence: int = 0,
        level: int = 0,
        leaf_target: int = DEFAULT_LEAF_TARGET,
    ) -> "SortedRun":
        """Wrap existing arrays as a run without copying or retraining.

        The zero-copy rebuild path (ISSUE 8): a serving client that
        receives a sealed run's key/value/tombstone arrays plus its
        RMI's ``compiled_state()`` tables and its guard object — e.g.
        mapped out of a shared-memory segment — reconstructs a run
        answering every probe bit-identically to the original, in
        O(leaves), with the arrays still aliasing the shared pages.

        ``compiled_state=None`` trains a fresh vectorized RMI (the
        arrays are still adopted without copy); ``bloom=None`` builds
        the default guard over ``keys``.
        """
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        tombstones = np.asarray(tombstones, dtype=bool)
        if values.size != keys.size or tombstones.size != keys.size:
            raise ValueError("values/tombstones must parallel keys")
        self = cls.__new__(cls)
        self._keys = keys
        self._values = values
        self._tombstones = tombstones
        self.sequence = int(sequence)
        self.level = int(level)
        self.leaf_target = int(leaf_target)
        self.pins = 0
        self._n = int(keys.size)
        self._num_tombstones = int(np.count_nonzero(tombstones))
        self._source = None
        self.path = None
        if compiled_state is not None:
            self._rmi = RecursiveModelIndex.from_compiled_arrays(
                keys,
                root_slope=float(compiled_state["root_slope"]),
                root_intercept=float(compiled_state["root_intercept"]),
                slopes=compiled_state["slopes"],
                intercepts=compiled_state["intercepts"],
                lo_offsets=compiled_state["lo_offsets"],
                hi_offsets=compiled_state["hi_offsets"],
            )
        else:
            leaves = max(1, -(-keys.size // max(leaf_target, 1)))
            self._rmi = RecursiveModelIndex(
                keys, stage_sizes=(1, leaves), build_mode="vectorized"
            )
        if bloom is not None:
            self._bloom = bloom
        else:
            self._bloom = _default_bloom(keys.size, 0.01)
            if keys.size:
                self._bloom.add_batch(keys)
        return self

    # -- persistence -----------------------------------------------------------

    def save(self, fs, path: str, *, fsync_every: int | None = None) -> None:
        """Write this run as one atomic checksummed section file.

        Data (keys/values/tombstones), index (the RMI's compiled
        state), and guard (bloom wire form) all land in a single file;
        see :mod:`repro.lsm.format` for the publish discipline.  Sets
        :attr:`path` on success — the name the manifest will record.
        ``fsync_every`` is the incremental-flush bound for saves that
        run concurrently with foreground WAL fsyncs (see
        :func:`~repro.lsm.format.write_section_file`).
        """
        state = self.rmi.compiled_state()
        bloom_kind, bloom_blob = _serialize_bloom(self.bloom)
        meta = {
            "kind": "run",
            "n": self._n,
            "sequence": self.sequence,
            "level": self.level,
            "leaf_target": self.leaf_target,
            "num_tombstones": self._num_tombstones,
            # float64 round-trips JSON exactly (shortest-repr), so the
            # root parameters reload bit-identical.
            "root_slope": state["root_slope"],
            "root_intercept": state["root_intercept"],
            "bloom_kind": bloom_kind,
        }
        sections = [
            ("keys", self.keys),
            ("values", self.values),
            ("tombstones", self.tombstones.astype(np.uint8)),
            ("slopes", state["slopes"]),
            ("intercepts", state["intercepts"]),
            ("lo_offsets", state["lo_offsets"]),
            ("hi_offsets", state["hi_offsets"]),
            ("bloom", bloom_blob),
        ]
        write_section_file(
            fs, path, magic=RUN_MAGIC, meta=meta, sections=sections,
            fsync_every=fsync_every,
        )
        self.path = path

    @classmethod
    def load(cls, fs, path: str, *, expect: dict | None = None) -> "SortedRun":
        """Reopen a saved run in O(metadata).

        Only the header and metadata block are read here; arrays map
        lazily on first access (each section checksum-verified exactly
        once, at materialization).  ``expect`` carries the manifest's
        per-run record — any disagreement with the file's own metadata
        (count, sequence, level, tombstones) raises
        :class:`CorruptRunError`, catching wrong-file and stale-file
        corruption that per-section checksums cannot see.
        """
        source = SectionFile(fs, path, magic=RUN_MAGIC)
        meta = source.meta
        if meta.get("kind") != "run":
            raise CorruptRunError(f"{path}: not a run file")
        self = cls.__new__(cls)
        try:
            self._n = int(meta["n"])
            self._num_tombstones = int(meta["num_tombstones"])
            self.sequence = int(meta["sequence"])
            self.level = int(meta["level"])
            self.leaf_target = int(meta["leaf_target"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptRunError(
                f"{path}: incomplete run metadata ({exc})"
            ) from None
        if expect is not None:
            for field, attr in (
                ("n", "_n"), ("sequence", "sequence"),
                ("level", "level"), ("tombstones", "_num_tombstones"),
            ):
                if field in expect and int(expect[field]) != getattr(
                    self, attr
                ):
                    raise CorruptRunError(
                        f"{path}: manifest expects {field}="
                        f"{expect[field]}, file has {getattr(self, attr)}"
                    )
        self._source = source
        self.path = path
        self.pins = 0
        self._keys = None
        self._values = None
        self._tombstones = None
        self._rmi = None
        self._bloom = None
        return self

    @property
    def keys(self) -> np.ndarray:
        if self._keys is None:
            self._keys = self._source.array("keys")
            if self._keys.size != self._n:
                raise CorruptRunError(
                    f"{self.path}: key section holds {self._keys.size} "
                    f"entries, metadata says {self._n}"
                )
        return self._keys

    @property
    def values(self) -> np.ndarray:
        if self._values is None:
            values = self._source.array("values")
            if values.size != self._n:
                raise CorruptRunError(
                    f"{self.path}: value section holds {values.size} "
                    f"entries, metadata says {self._n}"
                )
            self._values = values
        return self._values

    @property
    def tombstones(self) -> np.ndarray:
        if self._tombstones is None:
            mask = self._source.array("tombstones")
            if mask.size != self._n:
                raise CorruptRunError(
                    f"{self.path}: tombstone section holds {mask.size} "
                    f"entries, metadata says {self._n}"
                )
            self._tombstones = mask.view(np.bool_)
        return self._tombstones

    @property
    def rmi(self) -> RecursiveModelIndex:
        if self._rmi is None:
            source = self._source
            meta = source.meta
            try:
                self._rmi = RecursiveModelIndex.from_compiled_arrays(
                    self.keys,
                    root_slope=float(meta["root_slope"]),
                    root_intercept=float(meta["root_intercept"]),
                    slopes=source.array("slopes"),
                    intercepts=source.array("intercepts"),
                    lo_offsets=source.array("lo_offsets"),
                    hi_offsets=source.array("hi_offsets"),
                )
            except (KeyError, ValueError) as exc:
                raise CorruptRunError(
                    f"{self.path}: unusable compiled index ({exc})"
                ) from None
        return self._rmi

    @property
    def bloom(self):
        if self._bloom is None:
            meta = self._source.meta
            self._bloom = _deserialize_bloom(
                meta.get("bloom_kind", _BLOOM_STANDARD),
                self._source.read("bloom"),
                self.path,
            )
        return self._bloom

    def close(self) -> None:
        """Release lazily mapped sections (memmaps hold the file open).

        Only meaningful for loaded runs; an eager in-memory run keeps
        its arrays.  Idempotent; a closed run re-materializes on next
        touch if the file still exists.
        """
        if self._source is None:
            return
        self._keys = None
        self._values = None
        self._tombstones = None
        self._rmi = None
        self._bloom = None

    # -- point reads -----------------------------------------------------------

    def bloom_contains_batch(self, queries: np.ndarray) -> np.ndarray:
        """One bool per query: may this run hold an entry for it?"""
        return np.asarray(self.bloom.contains_batch(queries), dtype=bool)

    def probe(self, key: int) -> tuple[bool, bool, int]:
        """(entry present, entry is tombstone, value) — scalar probe.

        The caller is expected to have consulted the bloom filter; this
        runs the RMI's scalar latency path (exact: the key stays a
        Python int through every comparison).
        """
        pos = self.rmi.lookup(key)
        if pos < self._n and int(self.keys[pos]) == key:
            return True, bool(self.tombstones[pos]), int(self.values[pos])
        return False, False, 0

    def probe_batch(
        self, queries: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(entry mask, tombstone mask, values) for a query batch.

        One vectorized ``lookup_batch`` against the run's RMI — int64
        end to end through the shared query core, so keys >= 2^53
        resolve exactly; the masks tell the store which queries this
        run *answers* (present or deleted) versus which fall through
        to older runs.
        """
        n = self._n
        if n == 0:
            empty = np.zeros(queries.size, dtype=bool)
            return empty, empty.copy(), np.zeros(queries.size, dtype=np.int64)
        pos = self.rmi.lookup_batch(queries)
        safe = np.minimum(pos, n - 1)
        hit = (pos < n) & (self.keys[safe] == queries)
        dead = hit & self.tombstones[safe]
        return hit, dead, self.values[safe]

    # -- range reads -----------------------------------------------------------

    def range_scan_batch(
        self, lows: np.ndarray, highs: np.ndarray, *, with_values: bool = False
    ):
        """(per-range entries, tombstone flags aligned to the values).

        The run's RMI resolves all bounds vectorized; the tombstone
        flags for every returned entry assemble in the same one-gather
        pass the keys do.  ``with_values=True`` appends a third element
        — the stored payloads, gathered through the identical slice
        plan — for the store's ``range_items_batch``.
        """
        result = self.rmi.range_query_batch(lows, highs)
        flags, _ = assemble_slices(self.tombstones, result.starts, result.ends)
        if not with_values:
            return result, flags
        values, _ = assemble_slices(self.values, result.starts, result.ends)
        return result, flags, values

    # -- accounting ------------------------------------------------------------

    @property
    def num_tombstones(self) -> int:
        return self._num_tombstones

    @property
    def live_count(self) -> int:
        return self._n - self._num_tombstones

    def __len__(self) -> int:
        return self._n

    def is_loaded_lazy(self) -> bool:
        """True while this is a disk-backed run whose key array has not
        been materialized (the O(metadata) reopen invariant benchmarks
        and tests pin)."""
        return self._source is not None and self._keys is None

    def size_bytes(self) -> int:
        """Data (keys + values + mask) plus index overhead (RMI + bloom)."""
        if self._source is not None and (
            self._rmi is None or self._bloom is None
        ):
            # Not fully materialized: the on-disk footprint is the
            # honest answer, and computing the in-memory one would
            # defeat the lazy reopen.
            return self._source.file_size()
        return (
            self._n * 17
            + self.rmi.size_bytes()
            + int(self.bloom.size_bytes())
        )

    def __repr__(self) -> str:
        return (
            f"SortedRun(n={self._n}, level={self.level}, "
            f"seq={self.sequence}, tombstones={self.num_tombstones})"
        )
