"""On-disk section-file format shared by runs and the manifest.

Durability (PR 6) rests on one framing discipline: every file the LSM
writes is a *section file* — a fixed header, a checksummed JSON
metadata block, then zero or more raw data sections whose offsets,
byte lengths, dtypes, and checksums are all recorded in the metadata.
The layout is::

    [magic 4s][algo u8][meta_len u32][meta_crc u32]   13-byte header
    [meta: UTF-8 JSON, meta_len bytes]
    [section 0 bytes][section 1 bytes]...

Offsets in the section table are relative to the end of the metadata
block, so the table never has to describe its own length.  The
metadata block is padded (trailing spaces — still valid JSON) and
sections are padded with zero bytes so every section starts 8-byte
aligned in the file: ``np.memmap`` over an unaligned int64 region
exports a non-native buffer format that Python memoryviews cannot
index, and unaligned loads are slower everywhere else too.  Files are
always produced whole via the atomic-publish discipline (write to
``<path>.tmp``, fsync, ``rename``, fsync the directory), so a crash
mid-write leaves only an unreferenced ``.tmp`` orphan — a reader never
sees a partially written section file.

Checksums: the format *records the checksum algorithm* in its header
byte.  Writers default to hardware-accelerated ``crc32c`` when the
optional package is importable and ``zlib.crc32`` (also C speed)
otherwise; ``REPRO_CHECKSUM=crc32c`` / ``=crc32`` overrides the
choice.  Readers dispatch on the recorded byte — and since PR 8 a
vendored slice-by-8 software CRC32C (:func:`software_crc32c`,
bit-compatible with the wheel) backs the CRC32C id everywhere, so a
file written on a machine with the wheel always verifies on a machine
without it instead of raising.  The software path is pure Python
(~ms/MB), which is why it is the *fallback* verifier, not the default
writer.

Section reads are *lazy and verified*: :meth:`SectionFile.array` maps
a section with ``np.memmap`` and checks its checksum on first
materialization — reopening a run is O(metadata), and a flipped bit in
any section surfaces as :class:`CorruptRunError` before the data can
answer a query wrong.
"""

from __future__ import annotations

import json
import os
import struct
import zlib

import numpy as np

__all__ = [
    "CorruptRunError",
    "RUN_MAGIC",
    "MANIFEST_MAGIC",
    "ALGO_CRC32",
    "ALGO_CRC32C",
    "checksum",
    "crc32c",
    "software_crc32c",
    "SectionFile",
    "write_section_file",
]

#: Four-byte magics: learned-run v1 and learned-manifest v1.
RUN_MAGIC = b"LRN1"
MANIFEST_MAGIC = b"LMF1"

_HEADER = struct.Struct("<4sBII")

#: Sections start at multiples of this so memmapped int64/float64
#: arrays are naturally aligned (native buffer exports, fast loads).
_ALIGN = 8

#: Checksum algorithm ids recorded in the header's ``algo`` byte.
ALGO_CRC32 = 1
ALGO_CRC32C = 2

try:  # pragma: no cover - exercised only where the wheel exists
    import crc32c as _crc32c_mod

    _HAVE_CRC32C = True
except ImportError:
    _crc32c_mod = None
    _HAVE_CRC32C = False


def _build_crc32c_tables() -> list[list[int]]:
    """Slice-by-8 lookup tables for the Castagnoli polynomial.

    The standard construction (Intel's slicing-by-8, as vendored by
    LevelDB/RocksDB): table 0 is the classic byte-at-a-time table for
    the reflected polynomial 0x82F63B78; table k advances a CRC by one
    byte-position more than table k-1, so eight lookups fold eight
    input bytes at once.
    """
    poly = 0x82F63B78
    tables = [[0] * 256 for _ in range(8)]
    t0 = tables[0]
    for n in range(256):
        c = n
        for _ in range(8):
            c = (c >> 1) ^ poly if c & 1 else c >> 1
        t0[n] = c
    for n in range(256):
        c = t0[n]
        for k in range(1, 8):
            c = t0[c & 0xFF] ^ (c >> 8)
            tables[k][n] = c
    return tables


_CRC32C_TABLES: list[list[int]] | None = None


def software_crc32c(data) -> int:
    """Pure-Python CRC32C (Castagnoli), bit-compatible with the
    ``crc32c`` wheel — RFC 3720 test vector ``b"123456789"`` →
    ``0xE3069283``.

    Slice-by-8 over 8-byte words; roughly three orders of magnitude
    slower than the hardware instruction, so it serves as the
    *verification fallback* for CRC32C-stamped files on machines
    without the wheel (and as the writer only under an explicit
    ``REPRO_CHECKSUM=crc32c`` opt-in).
    """
    global _CRC32C_TABLES
    if _CRC32C_TABLES is None:
        _CRC32C_TABLES = _build_crc32c_tables()
    t0, t1, t2, t3, t4, t5, t6, t7 = _CRC32C_TABLES
    buf = bytes(data)
    n = len(buf)
    crc = 0xFFFFFFFF
    end8 = n & ~7
    for (word,) in struct.iter_unpack("<Q", memoryview(buf)[:end8]):
        lo = crc ^ (word & 0xFFFFFFFF)
        hi = word >> 32
        crc = (
            t7[lo & 0xFF]
            ^ t6[(lo >> 8) & 0xFF]
            ^ t5[(lo >> 16) & 0xFF]
            ^ t4[lo >> 24]
            ^ t3[hi & 0xFF]
            ^ t2[(hi >> 8) & 0xFF]
            ^ t1[(hi >> 16) & 0xFF]
            ^ t0[hi >> 24]
        )
    for byte in buf[end8:]:
        crc = t0[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def crc32c(data) -> int:
    """CRC32C via the wheel when importable, software otherwise."""
    if _HAVE_CRC32C:
        return int(_crc32c_mod.crc32c(bytes(data)))
    return software_crc32c(data)


def _default_algo() -> int:
    choice = os.environ.get("REPRO_CHECKSUM", "").strip().lower()
    if choice == "crc32c":
        return ALGO_CRC32C
    if choice == "crc32":
        return ALGO_CRC32
    if choice:
        raise ValueError(
            f"REPRO_CHECKSUM={choice!r} (known: crc32, crc32c)"
        )
    return ALGO_CRC32C if _HAVE_CRC32C else ALGO_CRC32


_DEFAULT_ALGO = _default_algo()


class CorruptRunError(Exception):
    """A durable file failed validation (bad magic, checksum mismatch,
    truncated section, or metadata that contradicts the manifest).

    Raised instead of returning data: a corrupt section must never
    answer a query.  The message always names the file and the failing
    part.
    """


def checksum(data, algo: int = _DEFAULT_ALGO) -> int:
    """Checksum of ``data`` (bytes-like) under the given algorithm id."""
    if algo == ALGO_CRC32:
        return zlib.crc32(data) & 0xFFFFFFFF
    if algo == ALGO_CRC32C:
        return crc32c(data)
    raise CorruptRunError(f"unknown checksum algorithm id {algo}")


def _encode_meta(meta: dict) -> bytes:
    return json.dumps(
        meta, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def write_section_file(
    fs,
    path: str,
    *,
    magic: bytes,
    meta: dict,
    sections: list[tuple[str, np.ndarray | bytes]] = (),
    fsync_every: int | None = None,
) -> None:
    """Atomically publish a section file at ``path``.

    ``meta`` gains a ``"sections"`` table describing every entry of
    ``sections`` (offset / nbytes / dtype / checksum; raw ``bytes``
    payloads record dtype ``"bytes"``).  The file lands via write-tmp +
    fsync + rename + directory fsync, so it either exists complete and
    validated or not at all; each section is its own ``fs.write`` call,
    which is what gives the fault harness one injection site per
    section.

    ``fsync_every`` bounds how many dirty bytes can accumulate before
    an intermediate fsync (writes are also split to that granularity) —
    the RocksDB ``bytes_per_sync`` idea.  Publication stays atomic (the
    rename still gates visibility); the point is to keep one
    multi-megabyte background flush from entangling a concurrent
    foreground fsync (the WAL's) in a single giant journal commit.
    Callers needing a deterministic injection-site count (the crash
    fuzz's synchronous sweeps) must leave it None.
    """
    algo = _DEFAULT_ALGO
    table: dict[str, dict] = {}
    blobs: list = []
    offset = 0
    for name, data in sections:
        if isinstance(data, np.ndarray):
            # Zero-copy view, not ``tobytes()``: the copy is a
            # multi-megabyte memcpy under the GIL, which on the
            # background worker stalls concurrent foreground inserts.
            # ``os.write`` and large-buffer crc32 both release the GIL,
            # so handing the view straight down keeps the save
            # GIL-quiet.
            arr = np.ascontiguousarray(data)
            blob = memoryview(arr).cast("B")
            dtype = arr.dtype.str
        else:
            blob = bytes(data)
            dtype = "bytes"
        pad = -offset % _ALIGN
        if pad:
            blobs.append(b"\x00" * pad)
            offset += pad
        table[name] = {
            "offset": offset,
            "nbytes": len(blob),
            "dtype": dtype,
            "crc": checksum(blob, algo),
        }
        blobs.append(blob)
        offset += len(blob)
    meta = dict(meta)
    meta["sections"] = table
    payload = _encode_meta(meta)
    # Pad the metadata so the data region starts 8-byte aligned
    # (trailing spaces keep the payload valid JSON).
    payload += b" " * (-(_HEADER.size + len(payload)) % _ALIGN)
    header = _HEADER.pack(magic, algo, len(payload), checksum(payload, algo))
    tmp = path + ".tmp"
    handle = fs.open_write(tmp)
    try:
        fs.write(handle, header)
        fs.write(handle, payload)
        pending = len(header) + len(payload)
        for blob in blobs:
            if not blob:
                continue
            if fsync_every is None:
                fs.write(handle, blob)
                continue
            view = memoryview(blob)
            for start in range(0, len(view), fsync_every):
                chunk = view[start:start + fsync_every]
                fs.write(handle, chunk)
                pending += len(chunk)
                if pending >= fsync_every:
                    fs.fsync(handle)
                    pending = 0
        fs.fsync(handle)
    finally:
        fs.close(handle)
    fs.rename(tmp, path)
    fs.fsync_dir(os.path.dirname(path) or ".")


class SectionFile:
    """Validated reader over one section file.

    Construction reads and verifies only the header + metadata block —
    O(metadata) regardless of data size.  Section payloads map lazily
    (:meth:`array` / :meth:`read`) and verify their checksum exactly
    once, on first materialization; every validation failure raises
    :class:`CorruptRunError`.
    """

    def __init__(self, fs, path: str, *, magic: bytes):
        self._fs = fs
        self.path = path
        head = fs.read_bytes(path, 0, _HEADER.size)
        if len(head) < _HEADER.size:
            raise CorruptRunError(f"{path}: truncated header")
        got_magic, algo, meta_len, meta_crc = _HEADER.unpack(head)
        if got_magic != magic:
            raise CorruptRunError(
                f"{path}: bad magic {got_magic!r} (expected {magic!r})"
            )
        self.algo = algo
        payload = fs.read_bytes(path, _HEADER.size, meta_len)
        if len(payload) < meta_len:
            raise CorruptRunError(f"{path}: truncated metadata block")
        if checksum(payload, algo) != meta_crc:
            raise CorruptRunError(f"{path}: metadata checksum mismatch")
        try:
            self.meta = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CorruptRunError(
                f"{path}: undecodable metadata ({exc})"
            ) from None
        self._data_start = _HEADER.size + meta_len
        self._sections = self.meta.get("sections", {})
        self._verified: set[str] = set()

    def _entry(self, name: str) -> dict:
        try:
            return self._sections[name]
        except KeyError:
            raise CorruptRunError(
                f"{self.path}: missing section {name!r}"
            ) from None

    def _verify(self, name: str, view) -> None:
        if name in self._verified:
            return
        entry = self._entry(name)
        if checksum(view, self.algo) != entry["crc"]:
            raise CorruptRunError(
                f"{self.path}: checksum mismatch in section {name!r}"
            )
        self._verified.add(name)

    def array(self, name: str) -> np.ndarray:
        """Section ``name`` as a read-only memmapped array, checksum-
        verified on this first materialization (the verification pass
        is the first time the section's pages are read at all)."""
        entry = self._entry(name)
        dtype = np.dtype(entry["dtype"])
        nbytes = int(entry["nbytes"])
        if nbytes % dtype.itemsize:
            raise CorruptRunError(
                f"{self.path}: section {name!r} length {nbytes} is not "
                f"a multiple of dtype {dtype}"
            )
        count = nbytes // dtype.itemsize
        if count == 0:
            self._verified.add(name)
            return np.empty(0, dtype=dtype)
        offset = self._data_start + int(entry["offset"])
        if offset + nbytes > self.file_size():
            raise CorruptRunError(
                f"{self.path}: section {name!r} extends past end of file"
            )
        arr = self._fs.memmap(
            self.path, dtype=dtype, offset=offset, shape=(count,)
        )
        self._verify(name, memoryview(arr).cast("B"))
        return arr

    def read(self, name: str) -> bytes:
        """Section ``name`` as verified raw bytes (for non-array
        payloads: bloom bits, pickled guards)."""
        entry = self._entry(name)
        offset = self._data_start + int(entry["offset"])
        blob = self._fs.read_bytes(self.path, offset, int(entry["nbytes"]))
        if len(blob) < int(entry["nbytes"]):
            raise CorruptRunError(
                f"{self.path}: section {name!r} is truncated"
            )
        self._verify(name, blob)
        return blob

    def section_span(self, name: str) -> tuple[int, int]:
        """(absolute offset, nbytes) of a section — corruption tests
        use this to aim their byte flips."""
        entry = self._entry(name)
        return self._data_start + int(entry["offset"]), int(entry["nbytes"])

    def file_size(self) -> int:
        return self._fs.file_size(self.path)
