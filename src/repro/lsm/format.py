"""On-disk section-file format shared by runs and the manifest.

Durability (PR 6) rests on one framing discipline: every file the LSM
writes is a *section file* — a fixed header, a checksummed JSON
metadata block, then zero or more raw data sections whose offsets,
byte lengths, dtypes, and checksums are all recorded in the metadata.
The layout is::

    [magic 4s][algo u8][meta_len u32][meta_crc u32]   13-byte header
    [meta: UTF-8 JSON, meta_len bytes]
    [section 0 bytes][section 1 bytes]...

Offsets in the section table are relative to the end of the metadata
block, so the table never has to describe its own length.  The
metadata block is padded (trailing spaces — still valid JSON) and
sections are padded with zero bytes so every section starts 8-byte
aligned in the file: ``np.memmap`` over an unaligned int64 region
exports a non-native buffer format that Python memoryviews cannot
index, and unaligned loads are slower everywhere else too.  Files are
always produced whole via the atomic-publish discipline (write to
``<path>.tmp``, fsync, ``rename``, fsync the directory), so a crash
mid-write leaves only an unreferenced ``.tmp`` orphan — a reader never
sees a partially written section file.

Checksums: the issue calls for CRC32C; the stdlib has no CRC32C and
this environment cannot grow dependencies, so the format *records the
checksum algorithm* in its header byte and uses hardware-accelerated
``crc32c`` when the optional package is importable, falling back to
``zlib.crc32`` (also C speed) otherwise.  Readers dispatch on the
recorded byte, so files stay portable across both environments.

Section reads are *lazy and verified*: :meth:`SectionFile.array` maps
a section with ``np.memmap`` and checks its checksum on first
materialization — reopening a run is O(metadata), and a flipped bit in
any section surfaces as :class:`CorruptRunError` before the data can
answer a query wrong.
"""

from __future__ import annotations

import json
import os
import struct
import zlib

import numpy as np

__all__ = [
    "CorruptRunError",
    "RUN_MAGIC",
    "MANIFEST_MAGIC",
    "checksum",
    "SectionFile",
    "write_section_file",
]

#: Four-byte magics: learned-run v1 and learned-manifest v1.
RUN_MAGIC = b"LRN1"
MANIFEST_MAGIC = b"LMF1"

_HEADER = struct.Struct("<4sBII")

#: Sections start at multiples of this so memmapped int64/float64
#: arrays are naturally aligned (native buffer exports, fast loads).
_ALIGN = 8

#: Checksum algorithm ids recorded in the header's ``algo`` byte.
ALGO_CRC32 = 1
ALGO_CRC32C = 2

try:  # pragma: no cover - exercised only where the wheel exists
    import crc32c as _crc32c_mod

    def _crc32c(data) -> int:
        return int(_crc32c_mod.crc32c(bytes(data)))

    _HAVE_CRC32C = True
except ImportError:
    _crc32c_mod = None
    _HAVE_CRC32C = False

_DEFAULT_ALGO = ALGO_CRC32C if _HAVE_CRC32C else ALGO_CRC32


class CorruptRunError(Exception):
    """A durable file failed validation (bad magic, checksum mismatch,
    truncated section, or metadata that contradicts the manifest).

    Raised instead of returning data: a corrupt section must never
    answer a query.  The message always names the file and the failing
    part.
    """


def checksum(data, algo: int = _DEFAULT_ALGO) -> int:
    """Checksum of ``data`` (bytes-like) under the given algorithm id."""
    if algo == ALGO_CRC32:
        return zlib.crc32(data) & 0xFFFFFFFF
    if algo == ALGO_CRC32C:
        if not _HAVE_CRC32C:
            raise CorruptRunError(
                "file was written with CRC32C but the crc32c module is "
                "not available to verify it"
            )
        return _crc32c(data)
    raise CorruptRunError(f"unknown checksum algorithm id {algo}")


def _encode_meta(meta: dict) -> bytes:
    return json.dumps(
        meta, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def write_section_file(
    fs,
    path: str,
    *,
    magic: bytes,
    meta: dict,
    sections: list[tuple[str, np.ndarray | bytes]] = (),
    fsync_every: int | None = None,
) -> None:
    """Atomically publish a section file at ``path``.

    ``meta`` gains a ``"sections"`` table describing every entry of
    ``sections`` (offset / nbytes / dtype / checksum; raw ``bytes``
    payloads record dtype ``"bytes"``).  The file lands via write-tmp +
    fsync + rename + directory fsync, so it either exists complete and
    validated or not at all; each section is its own ``fs.write`` call,
    which is what gives the fault harness one injection site per
    section.

    ``fsync_every`` bounds how many dirty bytes can accumulate before
    an intermediate fsync (writes are also split to that granularity) —
    the RocksDB ``bytes_per_sync`` idea.  Publication stays atomic (the
    rename still gates visibility); the point is to keep one
    multi-megabyte background flush from entangling a concurrent
    foreground fsync (the WAL's) in a single giant journal commit.
    Callers needing a deterministic injection-site count (the crash
    fuzz's synchronous sweeps) must leave it None.
    """
    algo = _DEFAULT_ALGO
    table: dict[str, dict] = {}
    blobs: list = []
    offset = 0
    for name, data in sections:
        if isinstance(data, np.ndarray):
            # Zero-copy view, not ``tobytes()``: the copy is a
            # multi-megabyte memcpy under the GIL, which on the
            # background worker stalls concurrent foreground inserts.
            # ``os.write`` and large-buffer crc32 both release the GIL,
            # so handing the view straight down keeps the save
            # GIL-quiet.
            arr = np.ascontiguousarray(data)
            blob = memoryview(arr).cast("B")
            dtype = arr.dtype.str
        else:
            blob = bytes(data)
            dtype = "bytes"
        pad = -offset % _ALIGN
        if pad:
            blobs.append(b"\x00" * pad)
            offset += pad
        table[name] = {
            "offset": offset,
            "nbytes": len(blob),
            "dtype": dtype,
            "crc": checksum(blob, algo),
        }
        blobs.append(blob)
        offset += len(blob)
    meta = dict(meta)
    meta["sections"] = table
    payload = _encode_meta(meta)
    # Pad the metadata so the data region starts 8-byte aligned
    # (trailing spaces keep the payload valid JSON).
    payload += b" " * (-(_HEADER.size + len(payload)) % _ALIGN)
    header = _HEADER.pack(magic, algo, len(payload), checksum(payload, algo))
    tmp = path + ".tmp"
    handle = fs.open_write(tmp)
    try:
        fs.write(handle, header)
        fs.write(handle, payload)
        pending = len(header) + len(payload)
        for blob in blobs:
            if not blob:
                continue
            if fsync_every is None:
                fs.write(handle, blob)
                continue
            view = memoryview(blob)
            for start in range(0, len(view), fsync_every):
                chunk = view[start:start + fsync_every]
                fs.write(handle, chunk)
                pending += len(chunk)
                if pending >= fsync_every:
                    fs.fsync(handle)
                    pending = 0
        fs.fsync(handle)
    finally:
        fs.close(handle)
    fs.rename(tmp, path)
    fs.fsync_dir(os.path.dirname(path) or ".")


class SectionFile:
    """Validated reader over one section file.

    Construction reads and verifies only the header + metadata block —
    O(metadata) regardless of data size.  Section payloads map lazily
    (:meth:`array` / :meth:`read`) and verify their checksum exactly
    once, on first materialization; every validation failure raises
    :class:`CorruptRunError`.
    """

    def __init__(self, fs, path: str, *, magic: bytes):
        self._fs = fs
        self.path = path
        head = fs.read_bytes(path, 0, _HEADER.size)
        if len(head) < _HEADER.size:
            raise CorruptRunError(f"{path}: truncated header")
        got_magic, algo, meta_len, meta_crc = _HEADER.unpack(head)
        if got_magic != magic:
            raise CorruptRunError(
                f"{path}: bad magic {got_magic!r} (expected {magic!r})"
            )
        self.algo = algo
        payload = fs.read_bytes(path, _HEADER.size, meta_len)
        if len(payload) < meta_len:
            raise CorruptRunError(f"{path}: truncated metadata block")
        if checksum(payload, algo) != meta_crc:
            raise CorruptRunError(f"{path}: metadata checksum mismatch")
        try:
            self.meta = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CorruptRunError(
                f"{path}: undecodable metadata ({exc})"
            ) from None
        self._data_start = _HEADER.size + meta_len
        self._sections = self.meta.get("sections", {})
        self._verified: set[str] = set()

    def _entry(self, name: str) -> dict:
        try:
            return self._sections[name]
        except KeyError:
            raise CorruptRunError(
                f"{self.path}: missing section {name!r}"
            ) from None

    def _verify(self, name: str, view) -> None:
        if name in self._verified:
            return
        entry = self._entry(name)
        if checksum(view, self.algo) != entry["crc"]:
            raise CorruptRunError(
                f"{self.path}: checksum mismatch in section {name!r}"
            )
        self._verified.add(name)

    def array(self, name: str) -> np.ndarray:
        """Section ``name`` as a read-only memmapped array, checksum-
        verified on this first materialization (the verification pass
        is the first time the section's pages are read at all)."""
        entry = self._entry(name)
        dtype = np.dtype(entry["dtype"])
        nbytes = int(entry["nbytes"])
        if nbytes % dtype.itemsize:
            raise CorruptRunError(
                f"{self.path}: section {name!r} length {nbytes} is not "
                f"a multiple of dtype {dtype}"
            )
        count = nbytes // dtype.itemsize
        if count == 0:
            self._verified.add(name)
            return np.empty(0, dtype=dtype)
        offset = self._data_start + int(entry["offset"])
        if offset + nbytes > self.file_size():
            raise CorruptRunError(
                f"{self.path}: section {name!r} extends past end of file"
            )
        arr = self._fs.memmap(
            self.path, dtype=dtype, offset=offset, shape=(count,)
        )
        self._verify(name, memoryview(arr).cast("B"))
        return arr

    def read(self, name: str) -> bytes:
        """Section ``name`` as verified raw bytes (for non-array
        payloads: bloom bits, pickled guards)."""
        entry = self._entry(name)
        offset = self._data_start + int(entry["offset"])
        blob = self._fs.read_bytes(self.path, offset, int(entry["nbytes"]))
        if len(blob) < int(entry["nbytes"]):
            raise CorruptRunError(
                f"{self.path}: section {name!r} is truncated"
            )
        self._verify(name, blob)
        return blob

    def section_span(self, name: str) -> tuple[int, int]:
        """(absolute offset, nbytes) of a section — corruption tests
        use this to aim their byte flips."""
        entry = self._entry(name)
        return self._data_start + int(entry["offset"]), int(entry["nbytes"])

    def file_size(self) -> int:
        return self._fs.file_size(self.path)
