"""Compaction: k-way vectorized merges of sorted runs + policies.

Compaction is where an LSM's write amplification is decided: the
policy chooses *which* age-adjacent runs to fold together, and
:func:`merge_runs` executes the fold as pure array math — one
``np.lexsort`` on (key, age) interleaves every run at once, a
first-occurrence scan keeps the newest version of each key, and the
merged run re-indexes through the PR 3 segmented least-squares build
(``build_mode="vectorized"``), so compacting a million keys is
memcpy-plus-array-math, not Python loops.

Two classic policies:

* :class:`SizeTieredCompaction` — seal-sized runs accumulate at the
  front of the run list; whenever ``min_runs`` *age-adjacent* runs
  share a size bucket (log-scaled), they merge into one run a bucket
  up.  Geometric tiers ⇒ O(log N / memtable) write amplification,
  read fan-out up to ``min_runs`` per tier.
* :class:`LeveledCompaction` — sealed runs collect in L0; when L0
  fills, all of L0 folds into the single L1 run, and any level
  exceeding its geometric capacity (``base_size * fanout**level``)
  cascades into the level below.  One run per level ⇒ minimal read
  fan-out, at higher write amplification.

Both restrict merges to *contiguous* slices of the newest-first run
list: without per-entry timestamps, merging non-adjacent runs could
bury a key's newer version under an older one.  Tombstone garbage
collection is safe exactly when the merge output becomes the oldest
run — no older run can still hold a shadowed version — which is also
when a tombstone has finished its job.

Selection contract (ISSUE 7): ``select`` is consulted repeatedly —
after every executed window, and from the background worker over a
run-list *snapshot* that may be stale by one seal by the time the
merge commits.  A policy may therefore return windows that make no
progress (e.g. a single run re-selected onto its own level when a
merge shifted a size bucket's boundary); the store's planner rejects
pure no-ops and breaks on any repeated (layout, selection) signature,
so policies need not prove monotonic shrinkage themselves — they must
only keep ``(start, stop, new_level)`` inside the list bounds.
"""

from __future__ import annotations

import math

import numpy as np

from .run import SortedRun

__all__ = [
    "CompactionPolicy",
    "LeveledCompaction",
    "SizeTieredCompaction",
    "merge_runs",
    "newest_versions",
]


def newest_versions(
    keys: np.ndarray, rank: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """The newest-wins core shared by merges and live-set scans.

    ``rank`` is each entry's source age (0 = newest source).  Returns
    ``(order, newest)``: ``keys[order]`` is key-sorted with the newest
    copy of every duplicate first, and ``newest`` marks those first
    occurrences — one ``np.lexsort`` plus one shifted compare.
    """
    order = np.lexsort((rank, keys))
    sorted_keys = keys[order]
    newest = np.ones(sorted_keys.size, dtype=bool)
    newest[1:] = sorted_keys[1:] != sorted_keys[:-1]
    return order, newest


def merge_runs(
    runs: list[SortedRun],
    *,
    drop_tombstones: bool,
    **run_kwargs,
) -> SortedRun:
    """Fold age-ordered runs (newest first) into one sorted run.

    Newest-wins per key (:func:`newest_versions`); with
    ``drop_tombstones`` (merging into the oldest position) delete
    markers are garbage-collected instead of rewritten.
    """
    if not runs:
        raise ValueError("need at least one run to merge")
    keys = np.concatenate([r.keys for r in runs])
    values = np.concatenate([r.values for r in runs])
    dead = np.concatenate([r.tombstones for r in runs])
    rank = np.repeat(
        np.arange(len(runs), dtype=np.int64),
        [r.keys.size for r in runs],
    )
    order, newest = newest_versions(keys, rank)
    keys, values, dead = keys[order], values[order], dead[order]
    keep = newest & ~dead if drop_tombstones else newest
    return SortedRun(
        keys[keep],
        values[keep],
        dead[keep] if not drop_tombstones else None,
        sequence=max(r.sequence for r in runs),
        **run_kwargs,
    )


class CompactionPolicy:
    """Chooses the next merge: a contiguous window of the run list.

    ``select`` receives the newest-first run list and returns
    ``(start, stop, new_level)`` — merge ``runs[start:stop]`` into one
    run at ``new_level`` — or None when the layout is stable.  The
    store calls it in a loop after every seal, so one seal can cascade
    through multiple merges.
    """

    def select(self, runs: list[SortedRun]) -> tuple[int, int, int] | None:
        raise NotImplementedError

    def configure(self, memtable_capacity: int) -> None:
        """Hook: the store reports its memtable capacity at attach."""

    def initial_level(self, n: int) -> int:
        """Level assigned to a bulk-loaded seed run."""
        return 0


class SizeTieredCompaction(CompactionPolicy):
    """Merge ``min_runs`` age-adjacent runs of the same size bucket.

    ``max_runs`` is the fan-out backstop: workloads whose merged
    outputs shrink back into lower buckets (heavy tombstone GC, a
    confined keyspace) can produce alternating-bucket run lists where
    no same-bucket streak ever forms — once the list reaches
    ``max_runs``, the oldest ``min_runs`` runs merge regardless of
    bucket (still age-contiguous, and reaching the end of the list, so
    tombstones GC), keeping read fan-out bounded.
    """

    def __init__(self, min_runs: int = 4, max_runs: int | None = None):
        if min_runs < 2:
            raise ValueError("min_runs must be >= 2")
        if max_runs is None:
            max_runs = max(32, min_runs * 8)
        if max_runs < min_runs:
            raise ValueError("max_runs must be >= min_runs")
        self.min_runs = int(min_runs)
        self.max_runs = int(max_runs)

    @staticmethod
    def _bucket(run: SortedRun) -> int:
        # Base-4 size buckets: merging ``min_runs`` (default 4) runs
        # multiplies size by ~4, landing the output exactly one bucket
        # up, and same-tier seals never straddle a boundary the way
        # finer (log2) buckets let them.
        return int(math.log(max(len(run), 2), 4))

    def select(self, runs):
        count = 1
        for i in range(1, len(runs) + 1):
            same = (
                i < len(runs)
                and self._bucket(runs[i]) == self._bucket(runs[i - 1])
            )
            if same:
                count += 1
                continue
            if count >= self.min_runs:
                return i - count, i, runs[i - 1].level
            count = 1
        if len(runs) >= self.max_runs:
            return len(runs) - self.min_runs, len(runs), runs[-1].level
        return None


class LeveledCompaction(CompactionPolicy):
    """L0 seal pile + one run per deeper level, geometric capacities."""

    def __init__(
        self,
        level0_runs: int = 4,
        fanout: int = 10,
        base_size: int | None = None,
    ):
        if level0_runs < 1:
            raise ValueError("level0_runs must be >= 1")
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        self.level0_runs = int(level0_runs)
        self.fanout = int(fanout)
        #: Keys L1 may hold (deeper levels scale by ``fanout`` each);
        #: the store fills it in from its memtable capacity when left
        #: unset (and re-derives on every attach, so a policy instance
        #: reused across stores does not keep the first store's sizing
        #: — policies are still best treated as per-store).
        self._auto_base = base_size is None
        self.base_size = base_size if base_size is None else int(base_size)

    def capacity(self, level: int) -> int:
        base = self.base_size or 4_096
        return base * self.fanout ** (max(level, 1) - 1)

    def configure(self, memtable_capacity: int) -> None:
        # Levels size geometrically from the seal size unless the
        # caller pinned an explicit base.
        if self._auto_base:
            self.base_size = int(memtable_capacity) * self.fanout

    def initial_level(self, n: int) -> int:
        level = 1
        while n > self.capacity(level):
            level += 1
        return level

    def select(self, runs):
        num_l0 = sum(1 for r in runs if r.level == 0)
        if num_l0 >= self.level0_runs:
            # Fold all of L0 plus the L1 run (if any) into L1.
            stop = num_l0
            if stop < len(runs) and runs[stop].level == 1:
                stop += 1
            return 0, stop, 1
        # Cascade any over-capacity level into the level below it.
        for i, run in enumerate(runs):
            if run.level >= 1 and len(run) > self.capacity(run.level):
                stop = i + 1
                if stop < len(runs) and runs[stop].level == run.level + 1:
                    stop += 1
                return i, stop, run.level + 1
        return None
