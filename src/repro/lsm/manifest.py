"""Versioned manifest: the single source of truth for the run set.

The manifest is the store's durable super-root.  One small section
file (``MANIFEST``, see :mod:`repro.lsm.format`) records everything
needed to reconstruct the store's structure:

* the live run files, newest-first, with per-run sanity metadata
  (sequence, level, entry count, tombstone count — cross-checked
  against each run file's own header at load);
* the current WAL generation file name;
* the next file id and next run sequence number (so ids never recycle
  across a crash — a half-deleted orphan can never collide with a
  fresh file).

Every structural transition — seal, compaction window, full compact —
builds the new state in memory and commits it with one atomic swap:
write ``MANIFEST.tmp``, fsync, ``rename`` over ``MANIFEST``, fsync the
directory.  A crash at any intermediate point leaves the *old*
manifest in force, and every file the new state would have introduced
is an unreferenced orphan that recovery garbage-collects.  Ordering
discipline around the swap:

* files the **new** state needs (run file, fresh WAL generation) are
  written and fsynced *before* the commit;
* files only the **old** state needs (replaced runs, the previous WAL
  generation) are deleted *after* it — and with background compaction
  (ISSUE 7) "after" stretches further: a replaced run stays on disk
  until the last pinned read snapshot releases it.  That deferral is
  crash-free by construction, because a retired-but-undeleted run is
  exactly a manifest-unreferenced orphan, the category recovery
  already garbage-collects.

Corruption of a committed manifest raises
:class:`~repro.lsm.format.CorruptRunError` rather than silently
falling back to an older state: the old state would be missing
acknowledged writes, and inventing a consistent-looking but stale
store is worse than failing loudly.  (Torn manifests cannot happen
under the rename-atomicity assumption; a detected-corrupt one means
the storage itself lied.)
"""

from __future__ import annotations

import os

from .format import MANIFEST_MAGIC, SectionFile, write_section_file

__all__ = ["MANIFEST_NAME", "load_manifest", "commit_manifest"]

MANIFEST_NAME = "MANIFEST"

#: Manifest schema version (bump on incompatible layout changes).
VERSION = 1


def commit_manifest(fs, directory: str, state: dict) -> None:
    """Atomically publish ``state`` as ``directory/MANIFEST``."""
    meta = dict(state)
    meta["version"] = VERSION
    write_section_file(
        fs,
        os.path.join(directory, MANIFEST_NAME),
        magic=MANIFEST_MAGIC,
        meta=meta,
        sections=[],
    )


def load_manifest(fs, directory: str) -> dict:
    """Read and validate ``directory/MANIFEST``.

    Raises :class:`~repro.lsm.format.CorruptRunError` on any header,
    checksum, or schema failure.
    """
    reader = SectionFile(
        fs, os.path.join(directory, MANIFEST_NAME), magic=MANIFEST_MAGIC
    )
    state = dict(reader.meta)
    state.pop("sections", None)
    from .format import CorruptRunError

    if state.get("version") != VERSION:
        raise CorruptRunError(
            f"{reader.path}: unsupported manifest version "
            f"{state.get('version')!r}"
        )
    for field in ("next_file_id", "next_sequence", "wal", "runs"):
        if field not in state:
            raise CorruptRunError(
                f"{reader.path}: manifest missing field {field!r}"
            )
    return state
