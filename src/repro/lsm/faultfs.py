"""File layer + deterministic fault injection for the durable LSM.

Crash-consistency can only be *tested* if every point where the store
touches stable storage is enumerable and interceptable.  The store
therefore performs all I/O through a tiny primitive interface
(:class:`RealFileSystem`): open/write/append/fsync/close, rename,
remove, truncate, directory fsync, whole-or-ranged reads, and
``np.memmap``.  Production uses the real one; the crash-recovery fuzz
wraps it in :class:`FaultInjectingFilesystem`, which

* counts every *mutating* primitive call as an **injection site**;
* at site ``crash_at`` refuses to perform the operation (optionally
  landing a torn prefix of an in-flight write), then simulates the
  machine dying: with ``mode="lose"`` every byte written since a
  file's last fsync is rolled back (the page cache never reached the
  platter), with ``mode="keep"`` everything issued before the crash
  persists (an orderly kernel flush) — real crashes land between the
  two, so recovery must cope with both extremes;
* raises :class:`SimulatedCrash` from the crashed call and from every
  call after it, so the in-process store object cannot limp on.

Modeling notes: ``rename`` is treated as atomic *and* immediately
durable.  POSIX only guarantees the former — a rename can be undone by
a crash before the directory entry reaches disk — but the store always
follows rename with ``fsync_dir`` before depending on it (deleting the
pre-rename WAL or run files), so collapsing the two keeps the harness
simple without hiding a real recovery bug.

:func:`flip_byte` is the corruption half of the harness: it XORs one
byte in place so detection tests can damage each file section
individually.
"""

from __future__ import annotations

import os
import threading

import numpy as np

__all__ = [
    "FileHandle",
    "RealFileSystem",
    "FaultInjectingFilesystem",
    "SimulatedCrash",
    "flip_byte",
]


class SimulatedCrash(RuntimeError):
    """The fault harness killed the process at an injection site.

    Everything after this is what a real ``kill -9`` leaves behind:
    the recovery path must rebuild a consistent store from the files
    alone.
    """


class FileHandle:
    """An open file plus the path it mutates (the harness keys its
    dirty-tracking by path)."""

    __slots__ = ("path", "file")

    def __init__(self, path: str, file):
        self.path = path
        self.file = file


class RealFileSystem:
    """The primitive I/O surface the store is written against.

    Writes are unbuffered (``buffering=0``) so a byte handed to
    ``write`` is a byte the OS has — the store's only durability
    boundary is then ``fsync``, exactly like the C systems this
    reproduces.
    """

    def open_write(self, path: str) -> FileHandle:
        return FileHandle(path, open(path, "wb", buffering=0))

    def open_append(self, path: str) -> FileHandle:
        return FileHandle(path, open(path, "ab", buffering=0))

    def write(self, handle: FileHandle, data) -> None:
        handle.file.write(data)

    def fsync(self, handle: FileHandle) -> None:
        os.fsync(handle.file.fileno())

    def close(self, handle: FileHandle) -> None:
        handle.file.close()

    def rename(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def link(self, src: str, dst: str) -> None:
        os.link(src, dst)

    def remove(self, path: str) -> None:
        os.remove(path)

    def truncate(self, path: str, size: int) -> None:
        os.truncate(path, size)

    def fsync_dir(self, path: str) -> None:
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def read_bytes(self, path: str, offset: int = 0, length=None) -> bytes:
        with open(path, "rb") as f:
            if offset:
                f.seek(offset)
            return f.read(length) if length is not None else f.read()

    def file_size(self, path: str) -> int:
        return os.path.getsize(path)

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def listdir(self, path: str) -> list[str]:
        return sorted(os.listdir(path))

    def makedirs(self, path: str) -> None:
        os.makedirs(path, exist_ok=True)

    def memmap(self, path: str, *, dtype, offset: int, shape) -> np.ndarray:
        return np.memmap(
            path, dtype=dtype, mode="r", offset=offset, shape=shape
        )


class FaultInjectingFilesystem(RealFileSystem):
    """Wraps the real primitives with a deterministic crash schedule.

    Parameters
    ----------
    crash_at:
        1-based index of the mutating call that dies (``None`` counts
        sites without crashing — run once to learn the sweep bound,
        exposed as :attr:`ops`).
    mode:
        ``"lose"`` rolls every file back to its last-fsynced length at
        the crash; ``"keep"`` persists everything issued before it.
    torn_fraction:
        When the crashed call is a data write, this fraction of the
        payload lands anyway — the classic torn tail the WAL's record
        checksums must truncate.  (Under ``"lose"`` the torn tail is
        itself unsynced and rolls back unless the file was never
        fsync-tracked — it still exercises short-write handling in
        ``"keep"`` mode.)
    """

    def __init__(
        self,
        *,
        crash_at: int | None = None,
        mode: str = "lose",
        torn_fraction: float = 0.0,
    ):
        if mode not in ("lose", "keep"):
            raise ValueError("mode must be 'lose' or 'keep'")
        self.crash_at = crash_at
        self.mode = mode
        self.torn_fraction = float(torn_fraction)
        self.ops = 0
        self.crashed = False
        #: path -> byte length known durable (fsynced or pre-existing).
        self._synced: dict[str, int] = {}
        #: Site counting must be exact even when the store's writer and
        #: background-compactor threads issue I/O concurrently — a lost
        #: ``ops += 1`` increment would shift every later site index
        #: and break the sweep's determinism contract.
        self._lock = threading.Lock()

    # -- crash machinery -------------------------------------------------------

    def _check_alive(self) -> None:
        if self.crashed:
            raise SimulatedCrash("filesystem already crashed")

    def _enter(self) -> bool:
        """Count one mutating call; True when it must crash.  The
        caller must hold :attr:`_lock`."""
        self._check_alive()
        self.ops += 1
        return self.crash_at is not None and self.ops == self.crash_at

    def _die(self) -> None:
        """Crash.  The caller must hold :attr:`_lock`: each mutating
        primitive is atomic (site check + real op + durability
        bookkeeping) under the lock, because a crash landing *between*
        another thread's rename/fsync and its ``_synced`` update would
        roll back an operation the real kernel had already made durable
        — the harness would then manufacture data loss no physical
        crash can produce."""
        self.crashed = True
        if self.mode == "lose":
            # The unsynced page cache evaporates: roll every
            # tracked file back to its last durable length.
            for path, size in list(self._synced.items()):
                try:
                    if os.path.getsize(path) > size:
                        os.truncate(path, size)
                except FileNotFoundError:
                    pass
        raise SimulatedCrash(f"crash at injection site {self.ops}")

    # -- mutating primitives (each call is one injection site) -----------------

    def open_write(self, handle_path: str) -> FileHandle:
        with self._lock:
            if self._enter():
                self._die()
            self._synced.setdefault(handle_path, 0)
            return super().open_write(handle_path)

    def open_append(self, path: str) -> FileHandle:
        with self._lock:
            if self._enter():
                self._die()
            self._synced.setdefault(
                path, os.path.getsize(path) if os.path.exists(path) else 0
            )
            return super().open_append(path)

    def write(self, handle: FileHandle, data) -> None:
        with self._lock:
            if self._enter():
                torn = int(len(data) * self.torn_fraction)
                if torn:
                    super().write(handle, data[:torn])
                self._die()
            super().write(handle, data)

    def fsync(self, handle: FileHandle) -> None:
        with self._lock:
            if self._enter():
                self._die()
            # No physical fsync: the loss model below is what simulates
            # the missing flush, and skipping thousands of real fsyncs
            # keeps the injection sweep fast.
            self._synced[handle.path] = os.path.getsize(handle.path)

    def close(self, handle: FileHandle) -> None:
        # Not a durability point and not a site: close never syncs.
        # Deliberately allowed after a crash — the kernel closes a dead
        # process's descriptors, and refusing here would only strand
        # handles (ResourceWarning noise under PYTHONDEVMODE) without
        # modeling anything real.
        super().close(handle)

    def rename(self, src: str, dst: str) -> None:
        with self._lock:
            if self._enter():
                self._die()
            super().rename(src, dst)
            self._synced[dst] = self._synced.pop(
                src, os.path.getsize(dst)
            )

    def link(self, src: str, dst: str) -> None:
        with self._lock:
            if self._enter():
                self._die()
            super().link(src, dst)
            # The new name aliases an inode whose durable length is the
            # source's: a backup taken just before a crash loses bytes
            # exactly when the source would have.
            self._synced[dst] = self._synced.get(
                src, os.path.getsize(dst)
            )

    def remove(self, path: str) -> None:
        with self._lock:
            if self._enter():
                self._die()
            super().remove(path)
            self._synced.pop(path, None)

    def truncate(self, path: str, size: int) -> None:
        with self._lock:
            if self._enter():
                self._die()
            super().truncate(path, size)
            self._synced[path] = min(self._synced.get(path, size), size)

    def fsync_dir(self, path: str) -> None:
        with self._lock:
            if self._enter():
                self._die()
            # Directory entries: modeled durable at rename time (see
            # module docstring), so nothing further to record.

    # -- read-only primitives (never sites, but dead after a crash) ------------

    def read_bytes(self, path: str, offset: int = 0, length=None) -> bytes:
        self._check_alive()
        return super().read_bytes(path, offset, length)

    def file_size(self, path: str) -> int:
        self._check_alive()
        return super().file_size(path)

    def exists(self, path: str) -> bool:
        self._check_alive()
        return super().exists(path)

    def listdir(self, path: str) -> list[str]:
        self._check_alive()
        return super().listdir(path)

    def makedirs(self, path: str) -> None:
        self._check_alive()
        super().makedirs(path)

    def memmap(self, path: str, *, dtype, offset: int, shape) -> np.ndarray:
        self._check_alive()
        return super().memmap(path, dtype=dtype, offset=offset, shape=shape)


def flip_byte(path: str, offset: int) -> None:
    """XOR one byte of ``path`` in place (corruption injection)."""
    with open(path, "r+b") as f:
        f.seek(offset)
        byte = f.read(1)
        f.seek(offset)
        f.write(bytes([byte[0] ^ 0xFF]))
