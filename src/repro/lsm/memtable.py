"""Sorted in-memory write buffer with tombstones (Appendix D.1).

The paper's insert story is LSM-flavoured: "all inserts are kept in
buffer and from time to time merged with a potential retraining of the
model.  This approach is already widely used, for example in Bigtable."
The *buffer* half of that sentence lives here, factored out of
:class:`repro.core.writable.WritableLearnedIndex` (which keeps exactly
one buffer in front of one run — the single-run reference design) so
the tiered :class:`repro.lsm.store.LearnedLSMStore` can stack many
sealed buffers behind it.

A :class:`Memtable` holds two disjoint pieces of state:

* **puts** — ``key -> value`` for keys written since the last seal
  (dict-backed, so the write path is O(1) per key and a bulk put is
  one C-level ``dict.update``);
* **tombstones** — keys deleted since the last seal.  A put and a
  tombstone for the same key never coexist: whichever lands last wins.

Reads need sorted views; those materialize lazily (one ``np.argsort``
per burst of mutations) and are cached until the next write, which
keeps scalar probes O(1) dict hits and batch probes single
``searchsorted`` calls without paying a per-insert sort like the old
``bisect.insort`` delta list did.

Concurrency (ISSUE 7): the LSM store now serves reads from reader
threads while a single writer mutates the buffer, so the lazy
materialization and every bulk mutation run under one internal lock.
Without it, two readers racing into :meth:`_materialize` (or a reader
racing a writer's ``dict.update``) could iterate a dict that changes
size mid-``np.fromiter`` — a crash, not just a stale answer.  Scalar
dict/set probes stay lock-free: each is a single atomic C-level
operation, and a concurrent reader is entitled to either the before or
the after state.  The materialized triple is immutable once built and
swapped in atomically, so :meth:`views` hands readers a consistent
(keys, values, tombstones) snapshot without copying.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["Memtable"]

#: Value stored for tombstone entries in a sealed snapshot.
TOMBSTONE_VALUE = 0


class Memtable:
    """Write buffer: dict puts + tombstone set + lazy sorted views."""

    def __init__(self):
        self._puts: dict[int, int] = {}
        self._tombstones: set[int] = set()
        self._sorted: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        #: Serializes mutation against lazy materialization; reads of
        #: the already-materialized triple are lock-free (it is swapped
        #: in atomically and never mutated in place).
        self._lock = threading.Lock()

    # -- mutation ------------------------------------------------------------

    def _dirty(self) -> None:
        self._sorted = None

    def put(self, key: int, value: int) -> None:
        """Write ``key -> value``; overrides any earlier tombstone."""
        with self._lock:
            self._tombstones.discard(key)
            self._puts[key] = value
            self._dirty()

    def put_batch(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        *,
        clear_tombstones: bool = True,
    ) -> None:
        """Bulk :meth:`put`: one tombstone sweep + one dict update.

        Later duplicates in the batch win, exactly like a put loop.
        ``clear_tombstones=False`` skips the resurrection sweep for
        callers that have already cleared (or proven disjoint) the
        batch against the tombstone set.
        """
        keys = np.asarray(keys, dtype=np.int64).ravel()
        values = np.asarray(values, dtype=np.int64).ravel()
        if keys.size != values.size:
            raise ValueError("keys and values must have the same length")
        if keys.size == 0:
            return
        with self._lock:
            if clear_tombstones:
                self._discard_tombstones_locked(keys)
            self._puts.update(zip(keys.tolist(), values.tolist()))
            self._dirty()

    def delete(self, key: int) -> None:
        """Blind LSM delete: drop any buffered put, record a tombstone.

        No read is performed — the tombstone shadows older runs whether
        or not they hold the key (resolved at compaction time).
        """
        with self._lock:
            self._puts.pop(key, None)
            self._tombstones.add(key)
            self._dirty()

    def delete_batch(self, keys: np.ndarray) -> None:
        """Bulk :meth:`delete`: one dict sweep + one set update.

        Order within the batch is irrelevant (every entry becomes a
        tombstone), and like the scalar form it is blind — no read.
        """
        keys = np.asarray(keys, dtype=np.int64).ravel()
        if keys.size == 0:
            return
        with self._lock:
            pop = self._puts.pop
            items = keys.tolist()
            for key in items:
                pop(key, None)
            self._tombstones.update(items)
            self._dirty()

    # Writable-index primitives: the single-run design decides *policy*
    # (e.g. "only tombstone keys the main index holds") itself, so it
    # composes these instead of calling ``delete``.

    def remove_put(self, key: int) -> bool:
        """Drop a buffered put without tombstoning; True if it existed."""
        with self._lock:
            if key in self._puts:
                del self._puts[key]
                self._dirty()
                return True
            return False

    def add_tombstone(self, key: int) -> None:
        with self._lock:
            self._tombstones.add(key)
            self._dirty()

    def discard_tombstone(self, key: int) -> None:
        with self._lock:
            if key in self._tombstones:
                self._tombstones.discard(key)
                self._dirty()

    def _discard_tombstones_locked(self, keys: np.ndarray) -> None:
        if not self._tombstones:
            return
        dead = np.fromiter(self._tombstones, dtype=np.int64)
        hit = keys[np.isin(keys, dead)]
        if hit.size:
            self._tombstones.difference_update(int(k) for k in hit)
            self._dirty()

    def discard_tombstones(self, keys: np.ndarray) -> None:
        """Drop every tombstone present in ``keys`` (one ``np.isin``)."""
        keys = np.asarray(keys, dtype=np.int64).ravel()
        with self._lock:
            self._discard_tombstones_locked(keys)

    def clear(self) -> None:
        with self._lock:
            self._puts.clear()
            self._tombstones.clear()
            self._dirty()

    # -- scalar probes ---------------------------------------------------------

    def has_put(self, key: int) -> bool:
        return key in self._puts

    def get(self, key: int):
        """The buffered value, or None when ``key`` has no put."""
        return self._puts.get(key)

    def is_tombstone(self, key: int) -> bool:
        return key in self._tombstones

    # -- sorted views ----------------------------------------------------------

    def _materialize(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        # Double-checked: the common case (cache warm) reads one
        # attribute lock-free — the triple is immutable once published.
        cached = self._sorted
        if cached is not None:
            return cached
        with self._lock:
            cached = self._sorted
            if cached is None:
                n = len(self._puts)
                keys = np.fromiter(
                    self._puts.keys(), dtype=np.int64, count=n
                )
                values = np.fromiter(
                    self._puts.values(), dtype=np.int64, count=n
                )
                order = np.argsort(keys)
                tombs = np.fromiter(
                    self._tombstones,
                    dtype=np.int64,
                    count=len(self._tombstones),
                )
                tombs.sort()
                cached = (keys[order], values[order], tombs)
                self._sorted = cached
        return cached

    def views(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One atomic (put keys, put values, tombstone keys) triple.

        Readers that fetch :meth:`put_keys` and :meth:`tombstone_keys`
        separately can interleave with a writer and pair views from two
        different generations; this returns the single cached triple,
        so the three arrays are always mutually consistent.
        """
        return self._materialize()

    def put_keys(self) -> np.ndarray:
        """Sorted buffered put keys (the classic delta array)."""
        return self._materialize()[0]

    def put_values(self) -> np.ndarray:
        """Values aligned to :meth:`put_keys`."""
        return self._materialize()[1]

    def tombstone_keys(self) -> np.ndarray:
        """Sorted tombstoned keys."""
        return self._materialize()[2]

    def snapshot(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(keys, values, tombstone mask) over *all* entries, sorted.

        Puts and tombstones are disjoint by invariant, so the union is
        the run layout a seal writes: tombstones become entries with
        :data:`TOMBSTONE_VALUE` and a set mask bit.
        """
        put_keys, put_values, tombs = self._materialize()
        if tombs.size == 0:
            return put_keys, put_values, np.zeros(put_keys.size, dtype=bool)
        keys = np.concatenate([put_keys, tombs])
        values = np.concatenate(
            [put_values, np.full(tombs.size, TOMBSTONE_VALUE, dtype=np.int64)]
        )
        dead = np.zeros(keys.size, dtype=bool)
        dead[put_keys.size:] = True
        order = np.argsort(keys, kind="stable")
        return keys[order], values[order], dead[order]

    # -- accounting ------------------------------------------------------------

    @property
    def num_puts(self) -> int:
        return len(self._puts)

    @property
    def num_tombstones(self) -> int:
        return len(self._tombstones)

    def __len__(self) -> int:
        """Total buffered entries (puts + tombstones) — what a seal
        writes, and what capacity policies meter."""
        return len(self._puts) + len(self._tombstones)

    def size_bytes(self) -> int:
        """Approximate buffered payload: 16B per put, 8B per tombstone."""
        return len(self._puts) * 16 + len(self._tombstones) * 8

    def __repr__(self) -> str:
        return (
            f"Memtable(puts={len(self._puts)}, "
            f"tombstones={len(self._tombstones)})"
        )
