"""Real-I/O paged lookups over sealed run files (ISSUE 8 satellite).

The PR 6 durability work left ROADMAP item 4 open: the paged index of
Appendix D.2 counted *simulated* page reads, while the LSM's runs are
actual on-disk section files.  This module closes the loop:
:func:`paged_index_over_run` builds a
:class:`~repro.core.paged.PagedLearnedIndex` whose page store is a
:class:`~repro.core.paged.FilePageStore` aimed at the run file's
``keys`` section — every page fetch is one ``os.pread`` against the
same bytes the LSM serves, and the store's ``preads`` counter reports
syscalls actually issued.  Dropping the OS page cache between batches
(``FilePageStore.drop_cache``) turns the same workload cold, which is
the cold/warm experiment the durability bench surfaces.

The pread path deliberately bypasses the fault-injection filesystem:
it measures real I/O, and a simulated crash schedule has no meaning
for read-only accounting.  Checksums still hold — the RMI trains from
the section file's *verified* key array before any pread happens.
"""

from __future__ import annotations

from typing import Sequence

from ..core.paged import FilePageStore, PagedLearnedIndex
from .format import RUN_MAGIC, SectionFile

__all__ = ["paged_index_over_run"]


def paged_index_over_run(
    fs,
    path: str,
    *,
    page_size: int = 256,
    partial_reads: bool = False,
    stage_sizes: Sequence[int] = (1, 100),
    buffer_pages: int = 4,
) -> PagedLearnedIndex:
    """A paged learned index reading pages straight out of a run file.

    Opens the section file at ``path`` (validated: magic, metadata
    checksum, key-section checksum), trains the paged RMI over the
    run's keys, then rebinds all reads to a :class:`FilePageStore`
    over the key section's byte span.  The returned index's
    ``store.preads`` / ``store.bytes_read`` count real syscalls; call
    ``store.drop_cache()`` to make the next batch cold.

    The caller owns the descriptor: close it via
    ``index.store.close()`` (or use ``index.store`` as a context
    manager).
    """
    source = SectionFile(fs, path, magic=RUN_MAGIC)
    keys = source.array("keys")
    byte_offset, nbytes = source.section_span("keys")
    store = FilePageStore(
        path,
        byte_offset=byte_offset,
        count=nbytes // 8,
        page_size=page_size,
        partial_reads=partial_reads,
        buffer_pages=buffer_pages,
    )
    return PagedLearnedIndex(
        keys, stage_sizes=stage_sizes, store=store
    )
