"""Learned-CDF-balanced key routing for the sharded store (ISSUE 8).

Hashing balances shards but destroys range locality; fixed-width
key-range splits keep locality but skew badly on non-uniform data (a
lognormal keyset would land almost entirely in shard 0).  The paper's
core idea resolves the tension: *model the CDF*.  A splitter trained
on a key sample places shard boundaries at the model's quantiles, so
each shard owns a contiguous key interval carrying ~1/N of the
distribution's mass — ranges stay contiguous per shard AND the load
balances, which is exactly how learned-index partitioning earns its
keep in a serving system.

Routing a batch is one vectorized ``searchsorted`` against N-1
boundaries — O(log N) per key with N tiny, and the boundaries are
explicit int64 keys, so the owner of a key is a pure function any
process can evaluate identically.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CDFSplitter"]

#: int64 domain edges used by the uniform fallback splitter.
_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


class CDFSplitter:
    """Routes int64 keys to ``num_shards`` contiguous key intervals.

    ``boundaries`` holds the N-1 interior split keys (sorted); shard
    ``i`` owns keys in ``[boundaries[i-1], boundaries[i])`` with the
    outer intervals unbounded.  Construct via :meth:`fit` (balanced on
    a sample's empirical CDF) or :meth:`uniform` (equal-width int64
    intervals, the no-sample fallback).
    """

    def __init__(self, boundaries: np.ndarray, num_shards: int):
        boundaries = np.asarray(boundaries, dtype=np.int64).ravel()
        if boundaries.size != num_shards - 1:
            raise ValueError(
                f"{num_shards} shards need {num_shards - 1} boundaries, "
                f"got {boundaries.size}"
            )
        if boundaries.size and np.any(np.diff(boundaries) < 0):
            raise ValueError("boundaries must be sorted")
        self.boundaries = boundaries
        self.num_shards = int(num_shards)

    @classmethod
    def fit(cls, sample_keys, num_shards: int) -> "CDFSplitter":
        """Boundaries at the sample CDF's 1/N quantiles.

        The sample is the training set for the distribution model (the
        empirical CDF — the zero-parameter learned model every RMI
        refines); unseen keys route by interpolation exactly like seen
        ones, so a modest sample balances the full stream.  Falls back
        to :meth:`uniform` when the sample is empty.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        sample = np.asarray(sample_keys, dtype=np.int64).ravel()
        if sample.size == 0:
            return cls.uniform(num_shards)
        sample = np.sort(sample)
        ranks = (
            np.arange(1, num_shards, dtype=np.int64) * sample.size
        ) // num_shards
        return cls(sample[ranks], num_shards)

    @classmethod
    def uniform(cls, num_shards: int) -> "CDFSplitter":
        """Equal-width int64 intervals (a uniform-CDF assumption)."""
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        edges = np.linspace(
            _INT64_MIN, _INT64_MAX, num_shards + 1
        )[1:-1].astype(np.int64)
        return cls(edges, num_shards)

    def shard_of_batch(self, keys) -> np.ndarray:
        """Owning shard id per key — one vectorized searchsorted."""
        keys = np.asarray(keys, dtype=np.int64)
        return np.searchsorted(
            self.boundaries, keys, side="right"
        ).astype(np.int64)

    def shard_interval(self, shard: int) -> tuple[int, int]:
        """Closed key interval ``[lo, hi]`` owned by ``shard``."""
        lo = (
            _INT64_MIN
            if shard == 0
            else int(self.boundaries[shard - 1])
        )
        hi = (
            _INT64_MAX
            if shard == self.num_shards - 1
            else int(self.boundaries[shard]) - 1
        )
        return lo, hi

    def shards_overlapping(self, lows, highs) -> np.ndarray:
        """Bool matrix ``[num_shards, num_ranges]``: does shard s own
        any part of range r?  Inverted ranges overlap nothing."""
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        first = self.shard_of_batch(lows)
        last = self.shard_of_batch(highs)
        shard_ids = np.arange(self.num_shards, dtype=np.int64)[:, None]
        return (
            (shard_ids >= first[None, :])
            & (shard_ids <= last[None, :])
            & (lows <= highs)[None, :]
        )

    def __repr__(self) -> str:
        return (
            f"CDFSplitter(num_shards={self.num_shards}, "
            f"boundaries={self.boundaries.tolist()})"
        )
