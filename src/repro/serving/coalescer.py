"""Asyncio request coalescing: many tiny requests, one kernel batch.

Every layer below this one is vectorized — a 1,000-key
``lookup_batch`` costs barely more than a 10-key one, because the
per-call overhead (Python dispatch, model root evaluation, bloom hash
setup) amortizes across the batch.  A serving front end that forwards
each client request individually throws that away: 16 concurrent
clients issue 16 single-key store calls per round trip.

:class:`CoalescingIndexServer` fixes the impedance mismatch.  Requests
arriving while the event loop is busy queue up; one flush callback per
tick (or per ``max_wait`` window) drains the queue, packs every
pending request into a single ``lookup_batch`` /
``range_query_batch``, and scatters the results back to each
request's future.  Under concurrency the batch size grows with the
arrival rate, so throughput scales with load instead of collapsing
under per-request overhead — the classic group-commit bargain, priced
in microseconds of queueing delay.

Error isolation: a failing batch falls back to per-request execution,
so one poisoned request rejects only its own future while the rest of
the batch still resolves.  Cancelled requests (client timeouts) are
skipped at flush time; a flush whose every request was cancelled
touches the store not at all.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from ..core.engine import pack_requests, unpack_results
from ..obs import MetricsRegistry, tracing
from ..obs import state as obs_state
from ..range_scan import RangeScanResult

__all__ = ["CoalescingIndexServer", "CoalescerStats"]


def _stat_field(slot: str, doc: str):
    """Property mapping ``stats.<slot>`` (including ``+=``) onto the
    backing ``serving.coalescer.*`` registry counter."""

    def _get(self):
        return self._counters[slot].value

    def _set(self, value):
        self._counters[slot].set(value)

    return property(_get, _set, doc=doc)


class CoalescerStats:
    """Flush-side accounting (read it to see the coalescing happen).

    A thin view over a :class:`repro.obs.MetricsRegistry` — every
    counter doubles as ``serving.coalescer.<name>`` for the exporters;
    the per-call batch-size lists stay plain lists (they are samples,
    not counters).
    """

    _FIELDS = (
        "ticks",
        "empty_ticks",
        "store_calls",
        "requests_served",
        "requests_cancelled",
        "fallback_requests",
    )

    ticks = _stat_field(
        "ticks", "Flush callbacks that ran (scheduled ticks / windows)."
    )
    empty_ticks = _stat_field(
        "empty_ticks", "Flushes where every pending request was cancelled."
    )
    store_calls = _stat_field(
        "store_calls", "Store batch calls issued (point and range together)."
    )
    requests_served = _stat_field(
        "requests_served", "Requests resolved through a coalesced batch."
    )
    requests_cancelled = _stat_field(
        "requests_cancelled", "Requests skipped: future already cancelled."
    )
    fallback_requests = _stat_field(
        "fallback_requests", "Requests re-run solo after a batch failure."
    )

    def __init__(self, registry=None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            name: self.registry.counter("serving.coalescer." + name)
            for name in self._FIELDS
        }
        #: Keys (or ranges) per point/range store call, most recent last.
        self.point_batch_sizes: list = []
        self.range_batch_sizes: list = []

    def mean_point_batch(self) -> float:
        sizes = self.point_batch_sizes
        return float(np.mean(sizes)) if sizes else 0.0

    def __repr__(self) -> str:
        body = ", ".join(f"{n}={getattr(self, n)}" for n in self._FIELDS)
        return f"CoalescerStats({body})"


class _Pending:
    """One queued request: its arrays and the future awaiting them.

    ``trace_id`` stamps the request the moment it is submitted (the
    caller's active trace if any, else a fresh ID) so the whole
    pipeline below — tick, store call, shard fanout, worker-side spans
    — can be joined back to it.
    """

    __slots__ = ("args", "future", "size", "trace_id", "start", "t0")

    def __init__(
        self,
        args: tuple,
        future: asyncio.Future,
        size: int,
        trace_id=None,
        start: float = 0.0,
        t0: float = 0.0,
    ):
        self.args = args
        self.future = future
        self.size = size
        self.trace_id = trace_id
        self.start = start
        self.t0 = t0


class CoalescingIndexServer:
    """Coalesces concurrent reads against one store into kernel batches.

    Parameters
    ----------
    store:
        Anything with ``lookup_batch(keys) -> (values, found)`` and
        ``range_query_batch(lows, highs) -> RangeScanResult`` — a
        learned index, an LSM store, a sharded store, or a snapshot.
    max_wait:
        Seconds to hold the first request of a window open for
        stragglers.  ``0.0`` (default) flushes on the next event-loop
        tick — no added latency beyond the loop's own scheduling, yet
        everything that arrived in the same tick still coalesces.
    max_batch:
        Flush at whole-request granularity into chunks of at most this
        many keys/ranges per store call (a single oversized request
        still goes through alone).  ``None`` = unbounded.

    All methods must be awaited on the owning event loop; the store
    call itself runs inline on the loop (the kernels release no GIL
    worth exploiting here, and inline keeps result arrays zero-copy).
    """

    def __init__(
        self,
        store,
        *,
        max_wait: float = 0.0,
        max_batch: int | None = None,
    ):
        if max_wait < 0:
            raise ValueError("max_wait must be >= 0")
        if max_batch is not None and max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.store = store
        self.max_wait = float(max_wait)
        self.max_batch = max_batch
        self.registry = MetricsRegistry()
        self.stats = CoalescerStats(self.registry)
        self._points: list[_Pending] = []
        self._ranges: list[_Pending] = []
        self._queued_sizes = 0
        self._flush_handle: asyncio.TimerHandle | None = None
        self._flush_immediate = False

    # -- public request surface ------------------------------------------------

    async def lookup(self, key: int):
        """Single-key read; resolves to the value or ``None``."""
        values, found = await self.lookup_batch(
            np.array([key], dtype=np.int64)
        )
        return int(values[0]) if found[0] else None

    async def lookup_batch(self, keys):
        """(values, found) for this request's keys, served from a
        coalesced store call shared with concurrent requests."""
        queries = np.asarray(keys, dtype=np.int64).ravel()
        return await self._submit(self._points, (queries,), queries.size)

    async def range_query(self, low: int, high: int) -> np.ndarray:
        """Live keys in the closed range ``[low, high]``."""
        result = await self.range_query_batch(
            np.array([low], dtype=np.int64),
            np.array([high], dtype=np.int64),
        )
        return np.asarray(result[0], dtype=np.int64)

    async def range_query_batch(self, lows, highs) -> RangeScanResult:
        lows = np.asarray(lows, dtype=np.int64).ravel()
        highs = np.asarray(highs, dtype=np.int64).ravel()
        if lows.size != highs.size:
            raise ValueError("lows and highs must have the same length")
        return await self._submit(
            self._ranges, (lows, highs), lows.size
        )

    # -- queueing & flush scheduling -------------------------------------------

    async def _submit(self, queue: list, args: tuple, size: int):
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        if obs_state.enabled:
            # Stamp the request: adopt the caller's trace if one is
            # active, otherwise this request starts its own.
            trace_id = tracing.current_trace_id() or tracing.new_trace_id()
            pending = _Pending(
                args, future, size, trace_id, time.time(),
                time.perf_counter(),
            )
        else:
            pending = _Pending(args, future, size)
        queue.append(pending)
        self._queued_sizes += size
        if (
            self.max_batch is not None
            and self._queued_sizes >= self.max_batch
        ):
            # The window is full — cancel any armed timer and flush
            # on the next tick instead of waiting out max_wait.
            self._schedule(loop, immediate=True)
        else:
            self._schedule(loop, immediate=self.max_wait == 0.0)
        return await future

    def _schedule(self, loop, *, immediate: bool) -> None:
        if self._flush_handle is not None:
            if not immediate or self._flush_immediate:
                return
            # Upgrade an armed max_wait timer to a next-tick flush.
            self._flush_handle.cancel()
        self._flush_immediate = immediate
        if immediate:
            self._flush_handle = loop.call_soon(self._flush)
        else:
            self._flush_handle = loop.call_later(
                self.max_wait, self._flush
            )

    def _flush(self) -> None:
        self._flush_handle = None
        self._flush_immediate = False
        points, self._points = self._points, []
        ranges, self._ranges = self._ranges, []
        self._queued_sizes = 0
        self.stats.ticks += 1
        points = self._drop_cancelled(points)
        ranges = self._drop_cancelled(ranges)
        if not points and not ranges:
            self.stats.empty_ticks += 1
            return
        if obs_state.enabled:
            # The tick serves many requests at once: it runs as its own
            # trace carrying every member request's ID, so exporting
            # any one request's trace picks up the shared tick, store
            # calls, and worker-side spans it rode in.
            members = [r.trace_id for r in points + ranges]
            with tracing.trace_scope(member_ids=members):
                with tracing.span(
                    "coalesce.tick", points=len(points), ranges=len(ranges)
                ):
                    self._run_flush(points, ranges)
        else:
            self._run_flush(points, ranges)

    def _run_flush(self, points: list, ranges: list) -> None:
        for chunk in self._chunks(points):
            self._run_chunk(chunk, self._point_call, kind="point")
        for chunk in self._chunks(ranges):
            self._run_chunk(chunk, self._range_call, kind="range")

    def _drop_cancelled(self, pending: list) -> list:
        kept = []
        for req in pending:
            if req.future.cancelled():
                self.stats.requests_cancelled += 1
            else:
                kept.append(req)
        return kept

    def _chunks(self, pending: list):
        """Split at whole-request granularity into <= max_batch keys
        per chunk; one oversized request forms its own chunk."""
        if self.max_batch is None:
            if pending:
                yield pending
            return
        chunk: list[_Pending] = []
        chunk_size = 0
        for req in pending:
            if chunk and chunk_size + req.size > self.max_batch:
                yield chunk
                chunk, chunk_size = [], 0
            chunk.append(req)
            chunk_size += req.size
        if chunk:
            yield chunk

    # -- batch execution -------------------------------------------------------

    def _point_call(self, requests: list[_Pending]) -> list:
        flat, offsets = pack_requests([r.args[0] for r in requests])
        self.stats.store_calls += 1
        self.stats.point_batch_sizes.append(int(flat.size))
        with tracing.span(
            "coalesce.store_call", kind="point", keys=int(flat.size)
        ):
            values, found = self.store.lookup_batch(flat)
        return [
            (v, f)
            for v, f in zip(
                unpack_results(np.asarray(values), offsets),
                unpack_results(np.asarray(found), offsets),
            )
        ]

    def _range_call(self, requests: list[_Pending]) -> list:
        lows, offsets = pack_requests([r.args[0] for r in requests])
        highs, _ = pack_requests([r.args[1] for r in requests])
        self.stats.store_calls += 1
        self.stats.range_batch_sizes.append(int(lows.size))
        with tracing.span(
            "coalesce.store_call", kind="range", ranges=int(lows.size)
        ):
            scan = self.store.range_query_batch(lows, highs)
        values = np.asarray(scan.values)
        csr = np.asarray(scan.offsets)
        out = []
        for i in range(len(requests)):
            first, last = int(offsets[i]), int(offsets[i + 1])
            sub_offsets = csr[first:last + 1] - csr[first]
            out.append(RangeScanResult(
                values=values[int(csr[first]):int(csr[last])],
                offsets=np.asarray(sub_offsets, dtype=np.int64),
            ))
        return out

    def _run_chunk(self, requests: list, call, *, kind: str) -> None:
        try:
            results = call(requests)
        except Exception:
            self._fallback(requests, kind)
            return
        for req, result in zip(requests, results):
            if req.future.cancelled():
                self.stats.requests_cancelled += 1
                continue
            req.future.set_result(result)
            self.stats.requests_served += 1
            self._finish_request(req, kind)

    def _finish_request(self, req: _Pending, kind: str) -> None:
        """Close the request-level span stamped at submit time."""
        if req.trace_id is None:
            return
        tracing.record_manual_span(
            "serving.request",
            req.trace_id,
            start=req.start,
            duration=time.perf_counter() - req.t0,
            attrs={"kind": kind, "size": req.size},
        )

    def _fallback(self, requests: list, kind: str) -> None:
        """Batch failed — re-run each request alone so only the
        poisoned one(s) reject."""
        for req in requests:
            if req.future.cancelled():
                self.stats.requests_cancelled += 1
                continue
            self.stats.fallback_requests += 1
            try:
                if kind == "point":
                    result = self.store.lookup_batch(req.args[0])
                else:
                    result = self.store.range_query_batch(*req.args)
                self.stats.store_calls += 1
            except Exception as exc:  # noqa: BLE001 — per-request verdict
                req.future.set_exception(exc)
            else:
                req.future.set_result(result)
                self.stats.requests_served += 1
                self._finish_request(req, kind)
