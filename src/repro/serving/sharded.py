"""Key-range-sharded LSM store with zero-copy cross-process reads.

:class:`ShardedLSMStore` partitions the key space across N
:class:`~repro.lsm.store.LearnedLSMStore` shards, each owned by a
worker *process* (real parallelism — each worker's kernel loops run on
its own interpreter).  Writes route through a learned-CDF-balanced
:class:`~repro.serving.splitter.CDFSplitter`; reads come in two
flavours:

* ``via="local"`` — the client resolves point/range batches itself,
  over :class:`~repro.lsm.run.SortedRun` views rebuilt from the
  workers' shared-memory segments (:mod:`repro.serving.shm`).  Zero
  IPC, zero copy: the client's probes touch the same physical pages
  the workers sealed.  This is the low-latency path for the small
  batches a coalescing front end produces.
* ``via="worker"`` — per-shard sub-batches fan out over the command
  pipes and resolve inside the worker processes concurrently.  This is
  the throughput path for large batches: N shards bring N cores to one
  batch, which is what the 1 → 4 shard scaling gate measures.

``via="auto"`` (default) picks by per-shard sub-batch size.

Consistency: each worker ack carries the shard's current epoch (run
set + memtable snapshot) and the client adopts it before issuing
another command, so a client that writes then reads always sees its
own write.  :meth:`ShardedLSMStore.snapshot` pins every shard's
current epoch into a :class:`ShardedSnapshot` — the PR 7 epoch-read
contract across the shard boundary: the snapshot answers from exactly
that cross-shard state while workers keep sealing, compacting, and
unlinking superseded segments (Linux keeps pinned mappings valid).

Threading contract mirrors the underlying store: one thread drives
writes and epoch adoption (the asyncio event loop, in the serving
stack); local reads and snapshot reads may not run concurrently with
that thread's epoch adoption — in practice everything lives on the
loop thread, where the contract holds by construction.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from multiprocessing import get_context

import numpy as np

from ..core.engine import GroupScatter
from ..lsm.store import (
    LearnedLSMStore,
    resolve_point_batch,
    resolve_range_batch,
)
from ..obs import (
    MetricsRegistry,
    RegistrySnapshot,
    default_registry,
    set_enabled,
    tracing,
)
from ..obs import state as obs_state
from ..range_scan import RangeScanResult
from .shm import (
    RunPublisher,
    attach_memtable,
    attach_run,
    default_prefix,
    segment_names,
)
from .splitter import CDFSplitter

__all__ = ["ShardedLSMStore", "ShardedSnapshot", "ShardedMetrics"]

#: ``via="auto"`` fans a read out to the workers once the *per-shard*
#: sub-batch reaches this size; below it, the pipe round-trip costs
#: more than the local zero-copy resolve saves.
WORKER_BATCH_THRESHOLD = 2_048

_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_BOOL = np.empty(0, dtype=bool)


def _try_close(shm) -> bool:
    """Close a mapping unless numpy views still export its buffer (a
    caller may briefly hold a result view); deferred retries catch it
    once the exports die."""
    try:
        shm.close()
        return True
    except BufferError:
        return False


def _shard_worker(
    conn, shard_id: int, store_kwargs: dict, obs_enabled: bool = False
) -> None:
    """Worker-process main loop: own one shard, answer commands, and
    publish every post-write epoch through shared memory.

    Telemetry protocol (PR 9): the client forwards its obs flag at
    spawn time (a spawned interpreter re-imports ``repro.obs.state``,
    so a runtime ``set_enabled`` would otherwise not propagate).  When
    on, each command executes under the client's adopted trace context
    inside a ``worker.<op>`` span, and the ack piggybacks ``{"obs":
    {"spans": [...], "metrics": delta}}`` — the finished span records
    plus the registry delta since the previous ack.  Workers are
    purely command-driven (``background=False``), so ack-time deltas
    are complete: merging every delta reconstructs the worker's
    registry exactly.
    """
    if obs_enabled:
        set_enabled(True)
    tracing.set_process_name(f"shard-{shard_id}")
    store = LearnedLSMStore(**store_kwargs)
    publisher = RunPublisher(default_prefix(shard_id))
    obs_prev = RegistrySnapshot()

    def obs_payload() -> dict:
        nonlocal obs_prev
        current = default_registry().snapshot()
        current.merge(store.registry.snapshot())
        delta = current.diff(obs_prev)
        obs_prev = current
        return {"spans": tracing.drain_spans(), "metrics": delta}

    def publish():
        with tracing.span("shm.publish", shard=shard_id):
            return publisher.publish(store)

    try:
        conn.send({"ok": True, "epoch": publisher.publish(store)})
        while True:
            cmd = conn.recv()
            # A new command proves the client processed the previous
            # ack (it adopts epochs before sending again), so every
            # segment that ack superseded is now unreferenced.
            publisher.unlink_retired()
            op = cmd["op"]
            if op == "close":
                conn.send({"ok": True, "result": None, "epoch": None})
                return
            try:
                result = None
                epoch = None
                with tracing.adopt(cmd.get("trace")), tracing.span(
                    "worker." + op, shard=shard_id
                ):
                    if op == "insert_batch":
                        store.insert_batch(cmd["keys"], cmd["values"])
                        epoch = publish()
                    elif op == "delete_batch":
                        store.delete_batch(cmd["keys"])
                        epoch = publish()
                    elif op == "flush":
                        store.flush()
                        epoch = publish()
                    elif op == "compact":
                        store.compact()
                        epoch = publish()
                    elif op == "lookup_batch":
                        result = store.lookup_batch(cmd["keys"])
                    elif op == "range_query_batch":
                        scan = store.range_query_batch(
                            cmd["lows"], cmd["highs"]
                        )
                        result = (
                            np.asarray(scan.values),
                            np.asarray(scan.offsets),
                        )
                    elif op == "range_items_batch":
                        scan, payloads = store.range_items_batch(
                            cmd["lows"], cmd["highs"]
                        )
                        result = (
                            np.asarray(scan.values),
                            np.asarray(scan.offsets),
                            payloads,
                        )
                    elif op == "backup":
                        store.backup(cmd["dest"])
                    elif op == "stats":
                        result = {
                            "num_runs": store.num_runs,
                            "live_keys": int(len(store)),
                            "seals": store.write_stats.seals,
                            "compactions": store.write_stats.compactions,
                            "memtable": len(store.memtable),
                        }
                    else:
                        raise ValueError(f"unknown op {op!r}")
                ack = {"ok": True, "result": result, "epoch": epoch}
                if obs_state.enabled:
                    ack["obs"] = obs_payload()
                conn.send(ack)
            except Exception as exc:  # noqa: BLE001 — relayed to client
                err_ack = {
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                }
                if obs_state.enabled:
                    # Ship (and clear) telemetry on failures too, so a
                    # failed command's spans don't leak into the next
                    # ack's trace.
                    err_ack["obs"] = obs_payload()
                conn.send(err_ack)
    finally:
        publisher.close()
        store.close()
        conn.close()


@dataclass
class ShardedMetrics:
    """Cross-process metrics view returned by
    :meth:`ShardedLSMStore.metrics`.

    ``per_shard[i]`` is the exact accumulation of every delta shard
    ``i`` piggybacked on its acks; ``merged`` folds all shards plus
    the client-side registry into one registry snapshot (exact, since
    histogram merge is a vector add).
    """

    client: RegistrySnapshot
    per_shard: list = field(default_factory=list)
    merged: RegistrySnapshot = field(default_factory=RegistrySnapshot)

    def to_dict(self) -> dict:
        return {
            "client": self.client.to_dict(),
            "per_shard": [s.to_dict() for s in self.per_shard],
            "merged": self.merged.to_dict(),
        }


class _ClientEpoch:
    """One shard's published state, mapped into the client process."""

    __slots__ = (
        "names", "runs", "memtable_snapshot",
        "put_keys", "put_values", "tomb_keys",
        "_mem_shm", "pins",
    )

    def __init__(self, desc: dict, cache: dict):
        self.names = segment_names(desc)
        self.runs = []
        for run_desc in desc["runs"]:
            entry = cache.get(run_desc["name"])
            if entry is None:
                entry = attach_run(run_desc)
                cache[run_desc["name"]] = entry
            self.runs.append(entry[1])
        mem_desc = desc.get("memtable")
        if mem_desc is None:
            self._mem_shm = None
            triple = (_EMPTY_I64, _EMPTY_I64, _EMPTY_BOOL)
        else:
            self._mem_shm, triple = attach_memtable(mem_desc)
        keys, values, dead = triple
        self.memtable_snapshot = triple
        # Mask indexing copies, so the derived arrays survive the
        # segment; only the triple itself aliases shared pages.
        live = ~dead
        self.put_keys = keys[live]
        self.put_values = values[live]
        self.tomb_keys = keys[dead]
        self.pins = 0

    def drop_mappings(self) -> list:
        """Release every reference into shared pages (the memtable
        mapping closes here; run mappings belong to the cache).
        Returns any mapping that could not close yet (live exports)."""
        self.runs = []
        self.memtable_snapshot = None
        shm, self._mem_shm = self._mem_shm, None
        if shm is not None and not _try_close(shm):
            return [shm]
        return []


class ShardedSnapshot:
    """A pinned cross-shard epoch: every read answers from the exact
    per-shard states current at construction, no matter what the
    workers do afterwards.  Release when done (context manager)."""

    def __init__(self, store: "ShardedLSMStore"):
        self._store = store
        self._epochs = list(store._epochs)
        for epoch in self._epochs:
            epoch.pins += 1
        self._released = False

    def lookup_batch(self, keys) -> tuple[np.ndarray, np.ndarray]:
        self._ensure_live()
        return self._store._local_points(keys, self._epochs)

    def range_query_batch(self, lows, highs) -> RangeScanResult:
        self._ensure_live()
        return self._store._local_ranges(lows, highs, self._epochs)

    def range_items_batch(self, lows, highs):
        self._ensure_live()
        return self._store._local_ranges(
            lows, highs, self._epochs, with_values=True
        )

    def _ensure_live(self) -> None:
        if self._released:
            raise ValueError("snapshot has been released")

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        for shard, epoch in enumerate(self._epochs):
            epoch.pins -= 1
            self._store._sweep_epochs(shard)

    def __enter__(self) -> "ShardedSnapshot":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


class ShardedLSMStore:
    """N worker-owned LSM shards behind one batch read/write surface.

    Parameters
    ----------
    num_shards:
        Worker process count (= key-range partitions).
    keys / values:
        Optional bulk load, routed by the splitter and loaded inside
        each worker at startup (no write amplification, like the
        single store's bulk path).
    sample_keys:
        Training sample for the CDF splitter; defaults to the bulk
        ``keys``, or a uniform int64 split when neither is given.
    splitter:
        Explicit :class:`CDFSplitter` (overrides ``sample_keys``).
    path:
        Durable root; shard ``i`` lives at ``path/shard-<i>``.
    store_kwargs:
        Extra :class:`LearnedLSMStore` keyword arguments applied to
        every shard (``memtable_capacity``, ``compaction``, ...).
    read_via:
        Default routing for reads issued without an explicit ``via``
        (``"auto"``/``"local"``/``"worker"``) — lets a front end that
        never sees the ``via`` kwarg (e.g. the coalescer) pin its
        reads to the worker path.
    """

    def __init__(
        self,
        num_shards: int,
        keys=None,
        values=None,
        *,
        sample_keys=None,
        splitter: CDFSplitter | None = None,
        path: str | None = None,
        store_kwargs: dict | None = None,
        read_via: str = "auto",
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if read_via not in ("auto", "local", "worker"):
            raise ValueError(
                f"read_via must be auto/local/worker, not {read_via!r}"
            )
        self.num_shards = int(num_shards)
        self.read_via = read_via
        #: Client-side registry (fanout accounting); worker-side
        #: metrics accumulate per shard from the ack piggyback.
        self.registry = MetricsRegistry()
        self._shard_metrics = [
            RegistrySnapshot() for _ in range(self.num_shards)
        ]
        if splitter is not None:
            if splitter.num_shards != self.num_shards:
                raise ValueError("splitter shard count mismatch")
            self.splitter = splitter
        else:
            sample = sample_keys if sample_keys is not None else keys
            self.splitter = (
                CDFSplitter.fit(sample, self.num_shards)
                if sample is not None
                else CDFSplitter.uniform(self.num_shards)
            )
        bulk_keys = [None] * self.num_shards
        bulk_values = [None] * self.num_shards
        if keys is not None:
            keys = LearnedLSMStore._as_int64_keys(keys)
            if values is None:
                values = keys
            else:
                values = np.asarray(values, dtype=np.int64).ravel()
                if values.size != keys.size:
                    raise ValueError("values must parallel keys")
            route = GroupScatter(
                self.splitter.shard_of_batch(keys), self.num_shards
            )
            for shard in range(self.num_shards):
                idx = route.indices(shard)
                if idx.size:
                    bulk_keys[shard] = keys[idx]
                    bulk_values[shard] = values[idx]
        base_kwargs = dict(store_kwargs or {})
        # Workers compact synchronously so every structural change
        # rides a command ack — the epoch protocol's invariant.
        base_kwargs["background"] = False
        ctx = get_context("spawn")
        self._procs = []
        self._conns = []
        self._closed = False
        self._caches: list[dict] = [{} for _ in range(self.num_shards)]
        #: Superseded-but-pinned epochs per shard.
        self._pinned: list[list[_ClientEpoch]] = [
            [] for _ in range(self.num_shards)
        ]
        #: Mappings awaiting close (BufferError-deferred) per shard.
        self._deferred: list[list] = [[] for _ in range(self.num_shards)]
        self._epochs: list[_ClientEpoch | None] = [None] * self.num_shards
        try:
            for shard in range(self.num_shards):
                kwargs = dict(base_kwargs)
                if path is not None:
                    kwargs["path"] = os.path.join(path, f"shard-{shard}")
                if bulk_keys[shard] is not None:
                    kwargs["keys"] = bulk_keys[shard]
                    kwargs["values"] = bulk_values[shard]
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_shard_worker,
                    args=(child, shard, kwargs, obs_state.enabled),
                    daemon=True,
                )
                proc.start()
                child.close()
                self._procs.append(proc)
                self._conns.append(parent)
            for shard in range(self.num_shards):
                ack = self._recv(shard)
                self._adopt(shard, ack["epoch"])
        except BaseException:
            self.close()
            raise

    # -- protocol plumbing -----------------------------------------------------

    def _recv(self, shard: int) -> dict:
        try:
            ack = self._conns[shard].recv()
        except EOFError:
            raise RuntimeError(f"shard {shard} worker died") from None
        payload = ack.pop("obs", None)
        if payload is not None:
            # Absorb telemetry before the ok-check so a failing
            # command still lands its spans and metric deltas.
            self._shard_metrics[shard].merge(payload["metrics"])
            tracing.record_spans(payload["spans"])
        if not ack.get("ok"):
            raise RuntimeError(
                f"shard {shard}: {ack.get('error', 'unknown error')}"
            )
        return ack

    def _roundtrip(self, shard: int, cmd: dict) -> dict:
        if obs_state.enabled:
            wire = tracing.wire_context()
            if wire is not None:
                cmd["trace"] = wire
        self._conns[shard].send(cmd)
        ack = self._recv(shard)
        if ack.get("epoch") is not None:
            self._adopt(shard, ack["epoch"])
        return ack

    def _fanout(self, commands: dict[int, dict]) -> dict[int, dict]:
        """Send one command per shard, then collect acks — the workers
        execute concurrently between the two loops.

        With obs enabled the whole exchange runs inside a
        ``sharded.fanout`` span, and each command carries the trace
        context captured *inside* that span, so worker-side spans
        parent onto the fanout in the exported timeline.
        """
        if obs_state.enabled and commands:
            op = next(iter(commands.values()))["op"]
            with tracing.span("sharded.fanout", op=op, shards=len(commands)):
                wire = tracing.wire_context()
                if wire is not None:
                    for cmd in commands.values():
                        cmd["trace"] = wire
                return self._fanout_inner(commands)
        return self._fanout_inner(commands)

    def _fanout_inner(self, commands: dict[int, dict]) -> dict[int, dict]:
        for shard, cmd in commands.items():
            self._conns[shard].send(cmd)
        acks: dict[int, dict] = {}
        errors = []
        for shard in commands:
            try:
                ack = self._recv(shard)
            except RuntimeError as exc:
                errors.append(exc)
                continue
            if ack.get("epoch") is not None:
                self._adopt(shard, ack["epoch"])
            acks[shard] = ack
        if errors:
            raise errors[0]
        return acks

    # -- epoch adoption --------------------------------------------------------

    def _adopt(self, shard: int, desc: dict) -> None:
        old = self._epochs[shard]
        self._epochs[shard] = _ClientEpoch(desc, self._caches[shard])
        if old is not None:
            if old.pins > 0:
                self._pinned[shard].append(old)
            else:
                self._deferred[shard] += old.drop_mappings()
        self._sweep_epochs(shard)

    def _sweep_epochs(self, shard: int) -> None:
        """Drop released superseded epochs, then close run segments no
        live epoch references (current + still-pinned)."""
        pinned = [e for e in self._pinned[shard] if e.pins > 0]
        deferred = []
        for epoch in self._pinned[shard]:
            if epoch.pins == 0:
                deferred += epoch.drop_mappings()
        self._pinned[shard] = pinned
        live_epochs = pinned + (
            [self._epochs[shard]] if self._epochs[shard] else []
        )
        referenced = set().union(*(e.names for e in live_epochs), set())
        cache = self._caches[shard]
        for name in [n for n in cache if n not in referenced]:
            shm = cache[name][0]
            # Drop the cache's run reference before closing — the run's
            # arrays are views into this very mapping.
            del cache[name]
            if not _try_close(shm):
                deferred.append(shm)
        deferred += [s for s in self._deferred[shard] if not _try_close(s)]
        self._deferred[shard] = deferred

    # -- write path ------------------------------------------------------------

    def insert(self, key: int, value: int | None = None) -> None:
        self.insert_batch(
            np.array([key], dtype=np.int64),
            None if value is None else np.array([value], dtype=np.int64),
        )

    def insert_batch(self, keys, values=None) -> None:
        """Route the batch to its owning shards; one concurrent
        sub-batch write per shard, last-wins on duplicates preserved
        (the scatter is stable)."""
        self._ensure_open()
        keys = LearnedLSMStore._as_int64_keys(keys)
        if values is None:
            values = keys
        else:
            values = np.asarray(values, dtype=np.int64).ravel()
            if values.size != keys.size:
                raise ValueError("keys and values must have the same length")
        if keys.size == 0:
            return
        route = GroupScatter(
            self.splitter.shard_of_batch(keys), self.num_shards
        )
        commands = {}
        for shard in range(self.num_shards):
            idx = route.indices(shard)
            if idx.size:
                commands[shard] = {
                    "op": "insert_batch",
                    "keys": keys[idx],
                    "values": values[idx],
                }
        self._fanout(commands)

    def delete(self, key: int) -> None:
        self.delete_batch(np.array([key], dtype=np.int64))

    def delete_batch(self, keys) -> None:
        self._ensure_open()
        keys = LearnedLSMStore._as_int64_keys(keys)
        if keys.size == 0:
            return
        route = GroupScatter(
            self.splitter.shard_of_batch(keys), self.num_shards
        )
        commands = {}
        for shard in range(self.num_shards):
            idx = route.indices(shard)
            if idx.size:
                commands[shard] = {"op": "delete_batch", "keys": keys[idx]}
        self._fanout(commands)

    def flush(self) -> None:
        self._ensure_open()
        self._fanout({s: {"op": "flush"} for s in range(self.num_shards)})

    def compact(self) -> None:
        self._ensure_open()
        self._fanout({s: {"op": "compact"} for s in range(self.num_shards)})

    def backup(self, dest: str) -> None:
        """Per-shard backups under ``dest/shard-<i>`` (hard-link
        snapshots — see :meth:`LearnedLSMStore.backup`)."""
        self._ensure_open()
        self._fanout({
            s: {"op": "backup", "dest": os.path.join(dest, f"shard-{s}")}
            for s in range(self.num_shards)
        })

    # -- read path -------------------------------------------------------------

    def lookup(self, key: int):
        values, found = self.lookup_batch(
            np.array([key], dtype=np.int64), via="local"
        )
        return int(values[0]) if found[0] else None

    def contains(self, key: int) -> bool:
        return self.lookup(key) is not None

    def lookup_batch(
        self, keys, *, via: str | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(values, found) across all shards — same contract as
        :meth:`LearnedLSMStore.lookup_batch`.  ``via=None`` falls back
        to the store's ``read_via`` default."""
        self._ensure_open()
        queries = np.asarray(keys, dtype=np.int64).ravel()
        if self._use_workers(queries.size, via or self.read_via):
            return self._worker_points(queries)
        return self._local_points(queries, self._epochs)

    def range_query_batch(
        self, lows, highs, *, via: str | None = None
    ) -> RangeScanResult:
        """Live keys per closed range, stitched across shards (shard
        intervals are ordered, so per-shard sorted results concatenate
        sorted)."""
        self._ensure_open()
        lows = np.asarray(lows, dtype=np.int64).ravel()
        highs = np.asarray(highs, dtype=np.int64).ravel()
        if self._use_workers(lows.size, via or self.read_via):
            return self._worker_ranges(lows, highs)
        return self._local_ranges(lows, highs, self._epochs)

    def range_items_batch(
        self, lows, highs, *, via: str | None = None
    ) -> tuple[RangeScanResult, np.ndarray]:
        self._ensure_open()
        lows = np.asarray(lows, dtype=np.int64).ravel()
        highs = np.asarray(highs, dtype=np.int64).ravel()
        if self._use_workers(lows.size, via or self.read_via):
            return self._worker_ranges(lows, highs, with_values=True)
        return self._local_ranges(
            lows, highs, self._epochs, with_values=True
        )

    def range_query(self, low, high) -> np.ndarray:
        result = self.range_query_batch([low], [high], via="local")
        return np.asarray(result[0], dtype=np.int64)

    def snapshot(self) -> ShardedSnapshot:
        """Pin the current cross-shard epoch for consistent reads."""
        self._ensure_open()
        return ShardedSnapshot(self)

    def _use_workers(self, batch_size: int, via: str) -> bool:
        if via == "local":
            return False
        if via == "worker":
            return True
        if via != "auto":
            raise ValueError(f"via must be auto/local/worker, not {via!r}")
        return (
            self.num_shards > 1
            and batch_size >= WORKER_BATCH_THRESHOLD * self.num_shards
        )

    def _local_points(self, keys, epochs) -> tuple[np.ndarray, np.ndarray]:
        queries = np.asarray(keys, dtype=np.int64).ravel()
        values = np.zeros(queries.size, dtype=np.int64)
        found = np.zeros(queries.size, dtype=bool)
        if queries.size == 0:
            return values, found
        route = GroupScatter(
            self.splitter.shard_of_batch(queries), self.num_shards
        )
        for shard in range(self.num_shards):
            idx = route.indices(shard)
            if idx.size == 0:
                continue
            epoch = epochs[shard]
            sub_values, sub_found = resolve_point_batch(
                queries[idx], epoch.put_keys, epoch.put_values,
                epoch.tomb_keys, epoch.runs,
            )
            values[idx] = sub_values
            found[idx] = sub_found
        return values, found

    def _worker_points(self, queries) -> tuple[np.ndarray, np.ndarray]:
        values = np.zeros(queries.size, dtype=np.int64)
        found = np.zeros(queries.size, dtype=bool)
        route = GroupScatter(
            self.splitter.shard_of_batch(queries), self.num_shards
        )
        commands = {}
        for shard in range(self.num_shards):
            idx = route.indices(shard)
            if idx.size:
                commands[shard] = {
                    "op": "lookup_batch", "keys": queries[idx],
                }
        # Client-observed worker read load: every lookup command issued
        # is answered by exactly one worker.lookup_batch span, so the
        # merged per-shard span histogram count equals this counter.
        self.registry.counter("serving.sharded.lookup.worker_batches").inc(
            len(commands)
        )
        self.registry.counter("serving.sharded.lookup.worker_keys").inc(
            int(queries.size)
        )
        acks = self._fanout(commands)
        for shard, ack in acks.items():
            idx = route.indices(shard)
            sub_values, sub_found = ack["result"]
            values[idx] = sub_values
            found[idx] = sub_found
        return values, found

    def _stitch_ranges(
        self, m: int, pieces: list[tuple], with_values: bool
    ):
        """Reassemble per-shard CSR results into one per-range CSR.

        ``pieces`` is ``[(range_ids, values[, payloads]), ...]`` in
        ascending shard order; a stable sort by range id then keeps
        shard order within each range, and shard intervals ascend, so
        each range's keys come out sorted.
        """
        if pieces:
            range_rep = np.concatenate([p[0] for p in pieces])
            values_all = np.concatenate([p[1] for p in pieces])
        else:
            range_rep = _EMPTY_I64
            values_all = _EMPTY_I64
        order = np.argsort(range_rep, kind="stable")
        offsets = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(range_rep, minlength=m), out=offsets[1:]
        ) if range_rep.size else None
        result = RangeScanResult(
            values=values_all[order], offsets=offsets
        )
        if not with_values:
            return result
        if pieces:
            payloads_all = np.concatenate([p[2] for p in pieces])
        else:
            payloads_all = _EMPTY_I64
        return result, payloads_all[order]

    def _local_ranges(
        self, lows, highs, epochs, *, with_values: bool = False
    ):
        lows = np.asarray(lows, dtype=np.int64).ravel()
        highs = np.asarray(highs, dtype=np.int64).ravel()
        if lows.size != highs.size:
            raise ValueError("lows and highs must have the same length")
        m = lows.size
        overlap = self.splitter.shards_overlapping(lows, highs)
        pieces = []
        for shard in range(self.num_shards):
            sel = np.nonzero(overlap[shard])[0]
            if sel.size == 0:
                continue
            epoch = epochs[shard]
            parts = resolve_range_batch(
                lows[sel], highs[sel], epoch.memtable_snapshot,
                epoch.runs, with_values=with_values,
            )
            scan = parts[0] if with_values else parts
            counts = np.diff(scan.offsets)
            range_ids = np.repeat(sel, counts)
            piece = (range_ids, np.asarray(scan.values, dtype=np.int64))
            if with_values:
                piece += (np.asarray(parts[1], dtype=np.int64),)
            pieces.append(piece)
        return self._stitch_ranges(m, pieces, with_values)

    def _worker_ranges(self, lows, highs, *, with_values: bool = False):
        if lows.size != highs.size:
            raise ValueError("lows and highs must have the same length")
        m = lows.size
        overlap = self.splitter.shards_overlapping(lows, highs)
        op = "range_items_batch" if with_values else "range_query_batch"
        commands = {}
        selections = {}
        for shard in range(self.num_shards):
            sel = np.nonzero(overlap[shard])[0]
            if sel.size:
                selections[shard] = sel
                commands[shard] = {
                    "op": op, "lows": lows[sel], "highs": highs[sel],
                }
        acks = self._fanout(commands)
        pieces = []
        for shard in sorted(acks):
            sel = selections[shard]
            result = acks[shard]["result"]
            values, offsets = result[0], result[1]
            range_ids = np.repeat(sel, np.diff(offsets))
            piece = (range_ids, np.asarray(values, dtype=np.int64))
            if with_values:
                piece += (np.asarray(result[2], dtype=np.int64),)
            pieces.append(piece)
        return self._stitch_ranges(m, pieces, with_values)

    # -- accounting / lifecycle ------------------------------------------------

    def shard_stats(self) -> list[dict]:
        """Per-shard store statistics, straight from the workers."""
        self._ensure_open()
        acks = self._fanout(
            {s: {"op": "stats"} for s in range(self.num_shards)}
        )
        return [acks[s]["result"] for s in range(self.num_shards)]

    def metrics(self) -> ShardedMetrics:
        """One merged cross-process registry + per-shard breakdown.

        Worker metrics arrive as deltas piggybacked on every command
        ack (see :func:`_shard_worker`); because workers only do work
        in response to commands, the accumulated per-shard snapshots
        are exact as of each shard's last ack — no sampling, no race
        with in-flight work.  ``merged`` additionally folds in the
        client-side registry (fanout accounting).
        """
        per_shard = [snap.copy() for snap in self._shard_metrics]
        merged = RegistrySnapshot.merged(per_shard)
        merged.merge(self.registry.snapshot())
        return ShardedMetrics(
            client=self.registry.snapshot(),
            per_shard=per_shard,
            merged=merged,
        )

    def _ensure_open(self) -> None:
        if self._closed:
            raise ValueError("store is closed")

    def close(self) -> None:
        """Stop every worker and release every mapping; idempotent.
        Outstanding snapshots become invalid."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send({"op": "close"})
            except (OSError, ValueError):
                pass
        for conn in self._conns:
            try:
                conn.recv()
            except (EOFError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            conn.close()
        for shard in range(self.num_shards):
            epoch = self._epochs[shard]
            if epoch is not None:
                self._deferred[shard] += epoch.drop_mappings()
            self._epochs[shard] = None
            for pinned in self._pinned[shard]:
                self._deferred[shard] += pinned.drop_mappings()
            self._pinned[shard] = []
            cache = self._caches[shard]
            for name in list(cache):
                shm = cache[name][0]
                del cache[name]
                if not _try_close(shm):
                    self._deferred[shard].append(shm)
            self._deferred[shard] = [
                s for s in self._deferred[shard] if not _try_close(s)
            ]

    def __enter__(self) -> "ShardedLSMStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardedLSMStore(num_shards={self.num_shards}, "
            f"closed={self._closed})"
        )
