"""Serving layer: request coalescing + sharded zero-copy stores (PR 8).

The batch engine is only as fast as the batches it is fed.  This
package converts request *streams* into the large vectorized batches
every layer below was built for (the deployment lesson of Abu-Libdeh
et al., 2012.12501):

* :class:`~repro.serving.coalescer.CoalescingIndexServer` — an asyncio
  front end gathering concurrent point/range requests into one
  ``lookup_batch`` / ``range_query_batch`` per event-loop tick;
* :class:`~repro.serving.splitter.CDFSplitter` — learned-CDF-balanced
  key-space partitioning;
* :class:`~repro.serving.sharded.ShardedLSMStore` — N
  ``LearnedLSMStore`` shards, each owned by a worker process, sealed
  runs published through ``multiprocessing.shared_memory`` so
  cross-process reads are zero-copy, with per-shard snapshot pinning
  preserving the PR 7 epoch-read contract across the shard boundary.
"""

from .coalescer import CoalescingIndexServer
from .sharded import ShardedLSMStore, ShardedSnapshot
from .splitter import CDFSplitter

__all__ = [
    "CoalescingIndexServer",
    "CDFSplitter",
    "ShardedLSMStore",
    "ShardedSnapshot",
]
