"""Zero-copy run publication over ``multiprocessing.shared_memory``.

The sharded store's workers own their LSM shards; clients in other
processes still want the kernel layer's read speed without copying
megabytes of run data over a pipe per epoch.  Immutability makes that
cheap: a sealed run's arrays never change, so the worker writes each
run's flat state — key/value/tombstone arrays, the RMI's compiled
tables, the bloom guard's wire bytes — into one shared-memory segment
*once*, and every subsequent epoch that still contains the run ships
only the segment's name.  The client maps the segment and rebuilds a
:class:`~repro.lsm.run.SortedRun` via
:meth:`~repro.lsm.run.SortedRun.from_arrays` whose arrays alias the
shared pages — bit-identical probes, zero copies, O(leaves) rebuild.

The memtable is the one mutable source, so each published epoch
carries a fresh (small, bounded by the memtable capacity) snapshot
triple segment.

Lifecycle protocol (the cross-process half of the PR 7 epoch
contract):

* The worker publishes an epoch descriptor in every command ack; the
  client attaches all new segments *while processing the ack*, before
  it sends another command.
* A segment superseded while publishing epoch E is therefore safe to
  unlink as soon as the *next* command arrives (its arrival proves the
  client processed E's ack).  Linux keeps existing mappings valid
  after unlink, so a client epoch pinned by a long-lived snapshot
  keeps reading the (now anonymous) pages.
* The client closes its mapping of a segment only when no live epoch
  — current or snapshot-pinned — references it.

Attaching never registers with the resource tracker (only creation
does, on this platform), so worker-side ``unlink`` plus client-side
``close`` is a complete cleanup story with no release RPC.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory

import numpy as np

from ..lsm.run import SortedRun, _deserialize_bloom, _serialize_bloom

__all__ = [
    "RunPublisher",
    "attach_run",
    "attach_memtable",
    "segment_names",
]

_ALIGN = 8


def _layout(parts: list[tuple[str, int]]) -> tuple[dict, int]:
    """8-aligned sequential section table: name -> [offset, nbytes]."""
    table = {}
    offset = 0
    for name, nbytes in parts:
        offset += -offset % _ALIGN
        table[name] = [offset, nbytes]
        offset += nbytes
    return table, max(offset, 1)


def _view(shm, dtype, offset: int, nbytes: int, *, writable: bool):
    count = nbytes // np.dtype(dtype).itemsize
    arr = np.frombuffer(shm.buf, dtype=dtype, count=count, offset=offset)
    if not writable:
        arr = arr.view()
        arr.flags.writeable = False
    return arr


class RunPublisher:
    """Worker-side segment registry: one segment per live run, one per
    epoch for the memtable snapshot, retirement deferred until the
    client has provably seen the superseding epoch.

    Keyed by run *identity*, not sequence number — merged runs inherit
    ``sequence=max(inputs)``, so sequences repeat across a shard's
    lifetime while ``id(run)`` is unique for as long as the publisher
    holds its strong reference (which it does, in the entry itself).
    """

    def __init__(self, prefix: str):
        self._prefix = prefix
        #: id(run) -> (name, shm, desc, run) for every published run.
        self._segments: dict[int, tuple] = {}
        #: Segments superseded in the latest publish; unlinkable once
        #: the next command arrives.
        self._retired: list[tuple] = []
        self._mem_current: tuple | None = None
        self._counter = 0

    def _new_name(self, tag: str) -> str:
        self._counter += 1
        return f"{self._prefix}{tag}{self._counter:06d}"

    def _create_run_segment(self, run: SortedRun) -> tuple:
        state = run.rmi.compiled_state()
        slopes = np.ascontiguousarray(state["slopes"], dtype=np.float64)
        intercepts = np.ascontiguousarray(
            state["intercepts"], dtype=np.float64
        )
        lo = np.ascontiguousarray(state["lo_offsets"], dtype=np.int64)
        hi = np.ascontiguousarray(state["hi_offsets"], dtype=np.int64)
        bloom_kind, bloom_blob = _serialize_bloom(run.bloom)
        n = len(run)
        table, total = _layout([
            ("keys", n * 8),
            ("values", n * 8),
            ("tombstones", n),
            ("slopes", slopes.nbytes),
            ("intercepts", intercepts.nbytes),
            ("lo_offsets", lo.nbytes),
            ("hi_offsets", hi.nbytes),
            ("bloom", len(bloom_blob)),
        ])
        name = self._new_name("r")
        shm = shared_memory.SharedMemory(name=name, create=True, size=total)
        for section, arr in (
            ("keys", np.ascontiguousarray(run.keys, dtype=np.int64)),
            ("values", np.ascontiguousarray(run.values, dtype=np.int64)),
            (
                "tombstones",
                np.ascontiguousarray(run.tombstones, dtype=np.uint8),
            ),
            ("slopes", slopes),
            ("intercepts", intercepts),
            ("lo_offsets", lo),
            ("hi_offsets", hi),
        ):
            off, nbytes = table[section]
            _view(shm, arr.dtype, off, nbytes, writable=True)[:] = arr
        off, nbytes = table["bloom"]
        shm.buf[off:off + nbytes] = bloom_blob
        desc = {
            "name": name,
            "n": n,
            "sequence": run.sequence,
            "level": run.level,
            "root_slope": float(state["root_slope"]),
            "root_intercept": float(state["root_intercept"]),
            "bloom_kind": bloom_kind,
            "sections": table,
        }
        return name, shm, desc, run

    def _publish_memtable(self, triple) -> dict | None:
        if self._mem_current is not None:
            self._retired.append(self._mem_current[:2])
            self._mem_current = None
        keys, values, dead = triple
        n = int(keys.size)
        if n == 0:
            return None
        table, total = _layout([
            ("keys", n * 8), ("values", n * 8), ("dead", n),
        ])
        name = self._new_name("m")
        shm = shared_memory.SharedMemory(name=name, create=True, size=total)
        for section, arr in (
            ("keys", np.ascontiguousarray(keys, dtype=np.int64)),
            ("values", np.ascontiguousarray(values, dtype=np.int64)),
            ("dead", np.ascontiguousarray(dead, dtype=np.uint8)),
        ):
            off, nbytes = table[section]
            _view(shm, arr.dtype, off, nbytes, writable=True)[:] = arr
        desc = {"name": name, "n": n, "sections": table}
        self._mem_current = (name, shm, desc)
        return desc

    def publish(self, store) -> dict:
        """Current epoch as a descriptor of segment names + metadata.

        Pins a :meth:`~repro.lsm.store.LearnedLSMStore.snapshot` for
        the duration, so the run set and memtable triple are one
        consistent epoch even if the store's background machinery were
        active; fills segments only for runs not yet published.
        """
        with store.snapshot() as snap:
            live_ids = set()
            run_descs = []
            for run in snap.runs:
                rid = id(run)
                live_ids.add(rid)
                entry = self._segments.get(rid)
                if entry is None:
                    entry = self._create_run_segment(run)
                    self._segments[rid] = entry
                run_descs.append(entry[2])
            for rid in [r for r in self._segments if r not in live_ids]:
                name, shm, _desc, _run = self._segments.pop(rid)
                self._retired.append((name, shm))
            mem_desc = self._publish_memtable(snap.memtable_snapshot)
        return {"runs": run_descs, "memtable": mem_desc}

    def unlink_retired(self) -> None:
        """Unlink segments superseded by an epoch the client has seen.

        Call on receipt of a new command: the client processes acks
        before sending again, so everything retired by the previous
        publish is now unreferenced by any epoch it could still adopt.
        """
        retired, self._retired = self._retired, []
        for _name, shm in retired:
            shm.close()
            shm.unlink()

    def close(self) -> None:
        """Unlink everything (worker shutdown)."""
        self.unlink_retired()
        segments, self._segments = self._segments, {}
        for _name, shm, _desc, _run in segments.values():
            shm.close()
            shm.unlink()
        if self._mem_current is not None:
            self._mem_current[1].close()
            self._mem_current[1].unlink()
            self._mem_current = None


def attach_run(desc: dict) -> tuple[shared_memory.SharedMemory, SortedRun]:
    """Map a published run segment into this process.

    Returns the mapping (the caller owns its ``close()``) and a
    :class:`SortedRun` whose arrays alias it — every probe
    bit-identical to the worker's own run, per the
    :meth:`~repro.lsm.run.SortedRun.from_arrays` contract.
    """
    shm = shared_memory.SharedMemory(name=desc["name"])
    sections = desc["sections"]

    def view(section, dtype):
        off, nbytes = sections[section]
        return _view(shm, dtype, off, nbytes, writable=False)

    off, nbytes = sections["bloom"]
    bloom = _deserialize_bloom(
        desc["bloom_kind"],
        bytes(shm.buf[off:off + nbytes]),
        f"shm:{desc['name']}",
    )
    run = SortedRun.from_arrays(
        view("keys", np.int64),
        view("values", np.int64),
        view("tombstones", np.uint8).view(np.bool_),
        compiled_state={
            "root_slope": desc["root_slope"],
            "root_intercept": desc["root_intercept"],
            "slopes": view("slopes", np.float64),
            "intercepts": view("intercepts", np.float64),
            "lo_offsets": view("lo_offsets", np.int64),
            "hi_offsets": view("hi_offsets", np.int64),
        },
        bloom=bloom,
        sequence=desc["sequence"],
        level=desc["level"],
    )
    return shm, run


def attach_memtable(desc: dict) -> tuple[shared_memory.SharedMemory, tuple]:
    """Map a published memtable snapshot triple (keys, values, dead)."""
    shm = shared_memory.SharedMemory(name=desc["name"])
    sections = desc["sections"]

    def view(section, dtype):
        off, nbytes = sections[section]
        return _view(shm, dtype, off, nbytes, writable=False)

    triple = (
        view("keys", np.int64),
        view("values", np.int64),
        view("dead", np.uint8).view(np.bool_),
    )
    return shm, triple


def segment_names(epoch_desc: dict) -> set[str]:
    """Every segment name an epoch descriptor references."""
    names = {run["name"] for run in epoch_desc["runs"]}
    if epoch_desc.get("memtable"):
        names.add(epoch_desc["memtable"]["name"])
    return names


def default_prefix(shard: int) -> str:
    """A segment-name prefix unique per (process, shard)."""
    return f"rsv{os.getpid()}s{shard}"
