"""Point-index substrates: hash functions and hash-map architectures.

Every map takes a pluggable hash callable, so learned CDF hashes
(:mod:`repro.core.learned_hash`) and murmur-style random hashes are
interchangeable — the orthogonality claim of Section 4.1.
"""

from .chaining import RECORD_BYTES, SLOT_BYTES, ChainingHashMap
from .cuckoo import BucketizedCuckooHashMap, GenericCuckooHashMap
from .hashing import (
    RandomHashFunction,
    murmur3_string,
    murmur_fmix64,
    murmur_fmix64_batch,
)
from .inplace import InPlaceChainedHashMap

__all__ = [
    "RECORD_BYTES",
    "SLOT_BYTES",
    "BucketizedCuckooHashMap",
    "ChainingHashMap",
    "GenericCuckooHashMap",
    "InPlaceChainedHashMap",
    "RandomHashFunction",
    "murmur3_string",
    "murmur_fmix64",
    "murmur_fmix64_batch",
]
