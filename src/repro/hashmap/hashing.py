"""Traditional hash functions (the Section 4.2 baseline).

The paper's baseline is "a simple MurmurHash3-like hash-function".
This module implements the MurmurHash3 64-bit finalizer (fmix64) — the
exact avalanche core of MurmurHash3 — for integer keys, plus the full
MurmurHash3 x64 32-bit-output routine for byte strings (used by Bloom
filters), all in pure Python with explicit 64-bit wrapping.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "murmur_fmix64",
    "murmur_fmix64_batch",
    "murmur3_string",
    "RandomHashFunction",
]

_MASK64 = (1 << 64) - 1


def murmur_fmix64(key: int, seed: int = 0) -> int:
    """MurmurHash3's 64-bit finalizer: full avalanche on a 64-bit int."""
    h = (int(key) ^ (seed * 0x9E3779B97F4A7C15)) & _MASK64
    h ^= h >> 33
    h = (h * 0xFF51AFD7ED558CCD) & _MASK64
    h ^= h >> 33
    h = (h * 0xC4CEB9FE1A85EC53) & _MASK64
    h ^= h >> 33
    return h


def murmur_fmix64_batch(keys: np.ndarray, seed: int = 0) -> np.ndarray:
    """Vectorized :func:`murmur_fmix64` over a uint64 view of ``keys``."""
    h = np.asarray(keys).astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        h ^= np.uint64((seed * 0x9E3779B97F4A7C15) & _MASK64)
        h ^= h >> np.uint64(33)
        h *= np.uint64(0xFF51AFD7ED558CCD)
        h ^= h >> np.uint64(33)
        h *= np.uint64(0xC4CEB9FE1A85EC53)
        h ^= h >> np.uint64(33)
    return h


def murmur3_string(data: bytes | str, seed: int = 0) -> int:
    """MurmurHash3 x86 32-bit for byte strings (Bloom-filter hashing)."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    c1, c2 = 0xCC9E2D51, 0x1B873593
    mask32 = 0xFFFFFFFF
    h = seed & mask32
    length = len(data)
    rounded = length - (length % 4)
    for i in range(0, rounded, 4):
        k = int.from_bytes(data[i:i + 4], "little")
        k = (k * c1) & mask32
        k = ((k << 15) | (k >> 17)) & mask32
        k = (k * c2) & mask32
        h ^= k
        h = ((h << 13) | (h >> 19)) & mask32
        h = (h * 5 + 0xE6546B64) & mask32
    k = 0
    tail = data[rounded:]
    if len(tail) >= 3:
        k ^= tail[2] << 16
    if len(tail) >= 2:
        k ^= tail[1] << 8
    if len(tail) >= 1:
        k ^= tail[0]
        k = (k * c1) & mask32
        k = ((k << 15) | (k >> 17)) & mask32
        k = (k * c2) & mask32
        h ^= k
    h ^= length
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & mask32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & mask32
    h ^= h >> 16
    return h


class RandomHashFunction:
    """A seeded murmur-style hash mapped onto ``num_slots`` slots.

    The drop-in traditional counterpart of
    :class:`repro.core.learned_hash.LearnedHashFunction`: same call
    interface, so every hash-map architecture accepts either.
    """

    def __init__(self, num_slots: int, seed: int = 0):
        if num_slots < 1:
            raise ValueError("num_slots must be >= 1")
        self.num_slots = int(num_slots)
        self.seed = int(seed)

    def __call__(self, key: float) -> int:
        return murmur_fmix64(int(key), self.seed) % self.num_slots

    def hash_batch(self, keys: np.ndarray) -> np.ndarray:
        h = murmur_fmix64_batch(np.asarray(keys, dtype=np.int64), self.seed)
        return (h % np.uint64(self.num_slots)).astype(np.int64)

    def size_bytes(self) -> int:
        return 8  # the seed

    def __repr__(self) -> str:
        return f"RandomHashFunction(slots={self.num_slots}, seed={self.seed})"
