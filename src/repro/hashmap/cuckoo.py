"""Cuckoo hash maps (Appendix C baselines).

Two variants, matching the paper's Table 1:

* :class:`BucketizedCuckooHashMap` — the "AVX Cuckoo Hash-map": two
  hash functions, 4-slot buckets probed with a vectorized compare (the
  numpy stand-in for an AVX packed compare), achieving ~99%
  utilization;
* :class:`GenericCuckooHashMap` — the "commercial" variant: handles
  every corner case (duplicate inserts, growth on failure, stash for
  pathological cycles) at the cost of a slower, more general code
  path, mirroring the paper's observation that the corner-case-complete
  implementation is about 2x slower.

Both store the paper's 20-byte records (key, payload, metadata) or
12-byte records (key + 32-bit value) for the Table 1 payload ablation.
"""

from __future__ import annotations

import numpy as np

from .hashing import murmur_fmix64

__all__ = ["BucketizedCuckooHashMap", "GenericCuckooHashMap"]

_EMPTY = np.int64(-(2**62))  # sentinel outside every dataset's key range


class BucketizedCuckooHashMap:
    """2-hash bucketized cuckoo map with vectorized (AVX-style) probes.

    Eight-slot buckets by default: the (2-choice, 8-slot) cuckoo load
    threshold is ~99.8%, which is what lets the paper's AVX variant run
    at 99% utilization (4-slot buckets cap out near 97.7%).
    """

    BUCKET_SLOTS = 8

    def __init__(
        self,
        capacity: int,
        *,
        bucket_slots: int | None = None,
        value_bytes: int = 12,
        max_kicks: int = 500,
        seed: int = 0,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if bucket_slots is not None:
            if bucket_slots < 1:
                raise ValueError("bucket_slots must be >= 1")
            self.BUCKET_SLOTS = int(bucket_slots)
        buckets = max(1, int(np.ceil(capacity / self.BUCKET_SLOTS)))
        self.num_buckets = buckets
        self.value_bytes = int(value_bytes)
        self.max_kicks = int(max_kicks)
        self.seed = int(seed)
        self._keys = np.full((buckets, self.BUCKET_SLOTS), _EMPTY, dtype=np.int64)
        self._values = np.zeros((buckets, self.BUCKET_SLOTS), dtype=np.int64)
        # Flat native mirrors for the probe path: a bucket probe is one
        # slice scan, the Python analogue of a single AVX register
        # compare (numpy per-call overhead would swamp it).
        flat = buckets * self.BUCKET_SLOTS
        self._keys_flat: list[int] = [int(_EMPTY)] * flat
        self._values_flat: list[int] = [0] * flat
        self.size = 0
        self.probe_count = 0

    # -- hashing -------------------------------------------------------------

    def _bucket1(self, key: int) -> int:
        return murmur_fmix64(key, self.seed) % self.num_buckets

    def _bucket2(self, key: int) -> int:
        return murmur_fmix64(key, self.seed + 1) % self.num_buckets

    # -- writes ----------------------------------------------------------------

    def insert(self, key: int, value: int) -> bool:
        """Insert; returns False when the kick chain exceeds max_kicks."""
        key = int(key)
        b1 = self._bucket1(key)
        if self._try_update(b1, key, value):
            return True
        b2 = self._bucket2(key)
        if self._try_update(b2, key, value):
            return True
        if self._try_place(b1, key, value) or self._try_place(b2, key, value):
            self.size += 1
            return True
        # Kick loop: evict a random victim and relocate it.
        rng = np.random.default_rng(key & 0xFFFF)
        bucket = b1
        for _ in range(self.max_kicks):
            victim_slot = int(rng.integers(0, self.BUCKET_SLOTS))
            victim_key = int(self._keys[bucket, victim_slot])
            victim_value = int(self._values[bucket, victim_slot])
            self._set(bucket, victim_slot, key, value)
            key, value = victim_key, victim_value
            alt1, alt2 = self._bucket1(key), self._bucket2(key)
            bucket = alt2 if bucket == alt1 else alt1
            if self._try_place(bucket, key, value):
                self.size += 1
                return True
        return False

    def _set(self, bucket: int, slot: int, key: int, value: int) -> None:
        self._keys[bucket, slot] = key
        self._values[bucket, slot] = value
        flat = bucket * self.BUCKET_SLOTS + slot
        self._keys_flat[flat] = key
        self._values_flat[flat] = value

    def _try_update(self, bucket: int, key: int, value: int) -> bool:
        row = self._keys[bucket]
        match = np.nonzero(row == key)[0]
        if match.size:
            self._set(bucket, int(match[0]), key, value)
            return True
        return False

    def _try_place(self, bucket: int, key: int, value: int) -> bool:
        row = self._keys[bucket]
        free = np.nonzero(row == _EMPTY)[0]
        if free.size:
            self._set(bucket, int(free[0]), key, value)
            return True
        return False

    # -- reads -------------------------------------------------------------------

    def get(self, key: int) -> int | None:
        """Probe both buckets; each probe scans one bucket in a single
        pass (the AVX packed-compare analogue)."""
        key = int(key)
        width = self.BUCKET_SLOTS
        keys_flat = self._keys_flat
        b1 = self._bucket1(key)
        self.probe_count += 1
        start = b1 * width
        row = keys_flat[start:start + width]
        if key in row:
            return self._values_flat[start + row.index(key)]
        b2 = self._bucket2(key)
        self.probe_count += 1
        start = b2 * width
        row = keys_flat[start:start + width]
        if key in row:
            return self._values_flat[start + row.index(key)]
        return None

    def __contains__(self, key: int) -> bool:
        return self.get(int(key)) is not None

    def __len__(self) -> int:
        return self.size

    # -- accounting ------------------------------------------------------------------

    @property
    def utilization(self) -> float:
        slots = self.num_buckets * self.BUCKET_SLOTS
        return self.size / slots if slots else 0.0

    def size_bytes(self) -> int:
        slot_bytes = 8 + self.value_bytes  # key + payload(+meta)
        return self.num_buckets * self.BUCKET_SLOTS * slot_bytes

    def __repr__(self) -> str:
        return (
            f"BucketizedCuckooHashMap(buckets={self.num_buckets}, "
            f"size={self.size}, util={self.utilization:.1%})"
        )


class GenericCuckooHashMap:
    """Corner-case-complete cuckoo map (the "commercial" baseline).

    Four-slot buckets (the libcuckoo-style layout, load threshold
    ~97.7%, run at the paper's 95%), two hash functions, a bounded
    stash for cycle escape, and automatic growth when the stash
    overflows.  Probing loops slot-by-slot with defensive validation —
    the generality the paper blames for the ~2x slowdown over the
    tuned AVX variant.
    """

    BUCKET_SLOTS = 4

    def __init__(
        self,
        capacity: int,
        *,
        target_utilization: float = 0.95,
        value_bytes: int = 12,
        max_kicks: int = 500,
        stash_size: int = 64,
        seed: int = 0,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 0.0 < target_utilization <= 0.97:
            raise ValueError("target_utilization must be in (0, 0.97]")
        self.value_bytes = int(value_bytes)
        self.max_kicks = int(max_kicks)
        self.stash_size = int(stash_size)
        self.seed = int(seed)
        buckets = max(
            2,
            int(np.ceil(capacity / (self.BUCKET_SLOTS * target_utilization))),
        )
        self._allocate(buckets)
        self.size = 0
        self.probe_count = 0

    def _allocate(self, buckets: int) -> None:
        self.num_buckets = int(buckets)
        shape = (self.num_buckets, self.BUCKET_SLOTS)
        self._keys = np.full(shape, _EMPTY, dtype=np.int64)
        self._values = np.zeros(shape, dtype=np.int64)
        self._stash: dict[int, int] = {}

    def _bucket1(self, key: int) -> int:
        return murmur_fmix64(key, self.seed) % self.num_buckets

    def _bucket2(self, key: int) -> int:
        return murmur_fmix64(key, self.seed + 1) % self.num_buckets

    def _find_in_bucket(self, bucket: int, key: int) -> int | None:
        """Slot index of ``key`` in ``bucket``, scanning slot by slot."""
        row = self._keys[bucket]
        for slot in range(self.BUCKET_SLOTS):
            if row[slot] == key:
                return slot
        return None

    def _free_slot(self, bucket: int) -> int | None:
        row = self._keys[bucket]
        for slot in range(self.BUCKET_SLOTS):
            if row[slot] == _EMPTY:
                return slot
        return None

    def insert(self, key: int, value: int) -> bool:
        key = int(key)
        value = int(value)
        if key == _EMPTY:
            raise ValueError("key collides with the empty sentinel")
        b1, b2 = self._bucket1(key), self._bucket2(key)
        for bucket in (b1, b2):
            slot = self._find_in_bucket(bucket, key)
            if slot is not None:
                self._values[bucket, slot] = value
                return True
        if key in self._stash:
            self._stash[key] = value
            return True
        for bucket in (b1, b2):
            slot = self._free_slot(bucket)
            if slot is not None:
                self._keys[bucket, slot] = key
                self._values[bucket, slot] = value
                self.size += 1
                return True
        # Kick chain with a deterministic-but-varied victim pick.
        rng = np.random.default_rng(key & 0xFFFFF)
        current_key, current_value, bucket = key, value, b1
        for _ in range(self.max_kicks):
            victim_slot = int(rng.integers(0, self.BUCKET_SLOTS))
            victim_key = int(self._keys[bucket, victim_slot])
            victim_value = int(self._values[bucket, victim_slot])
            self._keys[bucket, victim_slot] = current_key
            self._values[bucket, victim_slot] = current_value
            current_key, current_value = victim_key, victim_value
            alt1 = self._bucket1(current_key)
            alt2 = self._bucket2(current_key)
            bucket = alt2 if bucket == alt1 else alt1
            slot = self._free_slot(bucket)
            if slot is not None:
                self._keys[bucket, slot] = current_key
                self._values[bucket, slot] = current_value
                self.size += 1
                return True
        # Stash, then grow when the stash fills up.
        if len(self._stash) < self.stash_size:
            self._stash[current_key] = current_value
            self.size += 1
            return True
        self._grow()
        return self.insert(current_key, current_value)

    def _grow(self) -> None:
        old_keys = self._keys
        old_values = self._values
        old_stash = dict(self._stash)
        self._allocate(self.num_buckets * 2)
        self.size = 0
        for bucket in range(old_keys.shape[0]):
            for slot in range(self.BUCKET_SLOTS):
                key = int(old_keys[bucket, slot])
                if key != _EMPTY:
                    self.insert(key, int(old_values[bucket, slot]))
        for key, value in old_stash.items():
            self.insert(key, value)

    def get(self, key: int) -> int | None:
        key = int(key)
        for bucket in (self._bucket1(key), self._bucket2(key)):
            self.probe_count += 1
            slot = self._find_in_bucket(bucket, key)
            if slot is not None:
                return int(self._values[bucket, slot])
        if self._stash:
            return self._stash.get(key)
        return None

    def __contains__(self, key: int) -> bool:
        return self.get(int(key)) is not None

    def __len__(self) -> int:
        return self.size

    @property
    def utilization(self) -> float:
        slots = self.num_buckets * self.BUCKET_SLOTS
        return self.size / slots if slots else 0.0

    def size_bytes(self) -> int:
        slot_bytes = 8 + self.value_bytes
        slots = self.num_buckets * self.BUCKET_SLOTS
        return slots * slot_bytes + len(self._stash) * slot_bytes

    def __repr__(self) -> str:
        return (
            f"GenericCuckooHashMap(buckets={self.num_buckets}, "
            f"size={self.size}, util={self.utilization:.1%}, "
            f"stash={len(self._stash)})"
        )
