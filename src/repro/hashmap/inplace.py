"""In-place chained hash map with two-pass build (Appendix C).

The paper: "we implemented a chained Hash-map, which uses a two pass
algorithm: in the first pass, the learned hash function is used to put
items into slots.  If a slot is already taken, the item is skipped.
Afterwards we use a separate chaining approach for every skipped item
except that we use the remaining free slots with offsets as pointers
for them.  As a result, the utilization can be 100% (recall, we do not
consider inserts) and the quality of the learned hash function can only
make an impact on the performance not the size: the fewer conflicts,
the fewer cache misses."

:class:`InPlaceChainedHashMap` is a read-only (build-once) map with
exactly that structure; lookups walk the in-place chains and count
probes so benchmarks can relate hash quality to lookup cost.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["InPlaceChainedHashMap"]

_EMPTY = -1


class InPlaceChainedHashMap:
    """100%-utilization chained map built in two passes."""

    def __init__(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        hash_fn: Callable[[float], int],
        *,
        num_slots: int | None = None,
        record_bytes: int = 20,
    ):
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if keys.size != values.size:
            raise ValueError("keys and values must align")
        if np.unique(keys).size != keys.size:
            raise ValueError("keys must be unique for a build-once map")
        self.num_slots = int(num_slots if num_slots is not None else keys.size)
        if self.num_slots < keys.size:
            raise ValueError("need at least one slot per key")
        self.hash_fn = hash_fn
        self.record_bytes = int(record_bytes)
        self.size = int(keys.size)
        self.probe_count = 0
        self.first_pass_hits = 0
        self._build(keys, values)

    def _build(self, keys: np.ndarray, values: np.ndarray) -> None:
        slots = self.num_slots
        self._keys = np.zeros(slots, dtype=np.int64)
        self._values = np.zeros(slots, dtype=np.int64)
        self._occupied = np.zeros(slots, dtype=bool)
        self._next = np.full(slots, _EMPTY, dtype=np.int64)

        if hasattr(self.hash_fn, "hash_batch"):
            hashed = self.hash_fn.hash_batch(keys)
        else:
            hashed = np.fromiter(
                (self.hash_fn(int(k)) for k in keys),
                dtype=np.int64,
                count=keys.size,
            )

        # Pass 1: claim home slots; collisions get skipped.
        skipped: list[int] = []
        for i in range(keys.size):
            slot = int(hashed[i])
            if self._occupied[slot]:
                skipped.append(i)
                continue
            self._occupied[slot] = True
            self._keys[slot] = keys[i]
            self._values[slot] = values[i]
            self.first_pass_hits += 1

        # Pass 2: place skipped items in free slots, linked from their
        # home slot's chain via in-place offsets.
        free_slots = np.nonzero(~self._occupied)[0]
        cursor = 0
        for i in skipped:
            home = int(hashed[i])
            target = int(free_slots[cursor])
            cursor += 1
            self._occupied[target] = True
            self._keys[target] = keys[i]
            self._values[target] = values[i]
            # Hook into the chain headed at the home slot.
            node = home
            while self._next[node] != _EMPTY:
                node = self._next[node]
            self._next[node] = target

    # -- reads -------------------------------------------------------------

    def get(self, key: int) -> int | None:
        slot = self.hash_fn(key)
        self.probe_count += 1
        if not self._occupied[slot]:
            return None
        node = slot
        while True:
            if self._keys[node] == key:
                return int(self._values[node])
            node = int(self._next[node])
            if node == _EMPTY:
                return None
            self.probe_count += 1

    def __contains__(self, key: int) -> bool:
        return self.get(int(key)) is not None

    def __len__(self) -> int:
        return self.size

    # -- accounting ------------------------------------------------------------

    @property
    def utilization(self) -> float:
        if self.num_slots == 0:
            return 0.0
        return int(self._occupied.sum()) / self.num_slots

    @property
    def conflict_fraction(self) -> float:
        """Keys displaced from their home slot in pass 1."""
        if self.size == 0:
            return 0.0
        return 1.0 - self.first_pass_hits / self.size

    def size_bytes(self) -> int:
        # record + 32-bit in-place offset per slot
        return self.num_slots * (self.record_bytes + 4)

    def mean_probes_per_hit(self, sample_keys: np.ndarray) -> float:
        """Average chain probes for present keys (benchmark metric)."""
        before = self.probe_count
        hits = 0
        for key in np.asarray(sample_keys):
            if self.get(int(key)) is not None:
                hits += 1
        if hits == 0:
            return 0.0
        return (self.probe_count - before) / hits

    def __repr__(self) -> str:
        return (
            f"InPlaceChainedHashMap(slots={self.num_slots}, size={self.size}, "
            f"util={self.utilization:.1%}, "
            f"conflicts={self.conflict_fraction:.1%})"
        )
