"""Separate-chaining hash map with in-array records (Appendix B).

The paper's Appendix B architecture: "records are stored directly
within an array and only in the case of a conflict is the record
attached to the linked-list.  That is without a conflict there is at
most one cache miss."  Records are 20 bytes (64-bit key + 64-bit
payload + 32-bit metadata); the chain pointer makes each slot 24 bytes.

The map is storage-faithful: slots and the overflow region are numpy
arrays laid out exactly as described, so ``empty_slot_bytes`` (the
Figure 11 "wasted space" column) and utilization are measured, not
modeled.  The hash function is pluggable — a learned CDF model or a
murmur-style random hash — which is the entire point of Section 4.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["ChainingHashMap", "SLOT_BYTES", "RECORD_BYTES"]

#: 64-bit key + 64-bit payload + 32-bit metadata (paper, Appendix B).
RECORD_BYTES = 20
#: Record plus the 32-bit chain pointer.
SLOT_BYTES = 24

_EMPTY = -1


class ChainingHashMap:
    """Fixed-capacity separate-chaining map over int64 keys."""

    def __init__(self, num_slots: int, hash_fn: Callable[[float], int]):
        if num_slots < 1:
            raise ValueError("num_slots must be >= 1")
        self.num_slots = int(num_slots)
        self.hash_fn = hash_fn
        self._keys = np.zeros(num_slots, dtype=np.int64)
        self._values = np.zeros(num_slots, dtype=np.int64)
        self._meta = np.zeros(num_slots, dtype=np.int32)
        self._occupied = np.zeros(num_slots, dtype=bool)
        self._next = np.full(num_slots, _EMPTY, dtype=np.int64)
        # Overflow region grows on demand (the linked-list heap).
        self._of_keys: list[int] = []
        self._of_values: list[int] = []
        self._of_next: list[int] = []
        self.size = 0
        self.probe_count = 0

    # -- writes -------------------------------------------------------------

    def insert(self, key: int, value: int) -> None:
        """Insert or overwrite ``key``."""
        slot = self.hash_fn(key)
        if not self._occupied[slot]:
            self._occupied[slot] = True
            self._keys[slot] = key
            self._values[slot] = value
            self.size += 1
            return
        if self._keys[slot] == key:
            self._values[slot] = value
            return
        # Walk the chain looking for the key.
        prev_link = ("slot", slot)
        node = self._next[slot]
        while node != _EMPTY:
            if self._of_keys[node] == key:
                self._of_values[node] = value
                return
            prev_link = ("overflow", node)
            node = self._of_next[node]
        # Append a new overflow record.
        index = len(self._of_keys)
        self._of_keys.append(int(key))
        self._of_values.append(int(value))
        self._of_next.append(_EMPTY)
        kind, where = prev_link
        if kind == "slot":
            self._next[where] = index
        else:
            self._of_next[where] = index
        self.size += 1

    def insert_batch(self, keys: np.ndarray, values: np.ndarray) -> None:
        keys = np.asarray(keys)
        values = np.asarray(values)
        if keys.size != values.size:
            raise ValueError("keys and values must align")
        if hasattr(self.hash_fn, "hash_batch"):
            slots = self.hash_fn.hash_batch(keys)
            for key, value, slot in zip(keys, values, slots):
                self._insert_at(int(key), int(value), int(slot))
        else:
            for key, value in zip(keys, values):
                self.insert(int(key), int(value))

    def _insert_at(self, key: int, value: int, slot: int) -> None:
        """Insert with a pre-computed slot (batch path)."""
        if not self._occupied[slot]:
            self._occupied[slot] = True
            self._keys[slot] = key
            self._values[slot] = value
            self.size += 1
            return
        if self._keys[slot] == key:
            self._values[slot] = value
            return
        prev_kind, prev_where = "slot", slot
        node = self._next[slot]
        while node != _EMPTY:
            if self._of_keys[node] == key:
                self._of_values[node] = value
                return
            prev_kind, prev_where = "overflow", node
            node = self._of_next[node]
        index = len(self._of_keys)
        self._of_keys.append(key)
        self._of_values.append(value)
        self._of_next.append(_EMPTY)
        if prev_kind == "slot":
            self._next[prev_where] = index
        else:
            self._of_next[prev_where] = index
        self.size += 1

    # -- reads ----------------------------------------------------------------

    def get(self, key: int) -> int | None:
        """Payload for ``key`` or None; counts probes for the benchmarks."""
        slot = self.hash_fn(key)
        self.probe_count += 1
        if not self._occupied[slot]:
            return None
        if self._keys[slot] == key:
            return int(self._values[slot])
        node = self._next[slot]
        while node != _EMPTY:
            self.probe_count += 1
            if self._of_keys[node] == key:
                return self._of_values[node]
            node = self._of_next[node]
        return None

    def __contains__(self, key: int) -> bool:
        return self.get(int(key)) is not None

    def __len__(self) -> int:
        return self.size

    # -- storage accounting ------------------------------------------------------

    @property
    def occupied_slots(self) -> int:
        return int(self._occupied.sum())

    @property
    def empty_slots(self) -> int:
        return self.num_slots - self.occupied_slots

    def empty_slot_bytes(self) -> int:
        """Wasted primary-array bytes — Figure 11's "Empty Slots" column."""
        return self.empty_slots * SLOT_BYTES

    def overflow_records(self) -> int:
        return len(self._of_keys)

    def size_bytes(self) -> int:
        """Total storage: primary slots + overflow heap (records included).

        Appendix B: "in contrast to the B-Tree experiments, we do
        include the data size" because the records live inside the map.
        """
        return self.num_slots * SLOT_BYTES + len(self._of_keys) * SLOT_BYTES

    def chain_length_histogram(self) -> dict[int, int]:
        """chain length -> number of slots (diagnostics and tests)."""
        histogram: dict[int, int] = {}
        for slot in range(self.num_slots):
            if not self._occupied[slot]:
                histogram[0] = histogram.get(0, 0) + 1
                continue
            length = 1
            node = self._next[slot]
            while node != _EMPTY:
                length += 1
                node = self._of_next[node]
            histogram[length] = histogram.get(length, 0) + 1
        return histogram

    def __repr__(self) -> str:
        return (
            f"ChainingHashMap(slots={self.num_slots}, size={self.size}, "
            f"empty={self.empty_slots}, overflow={self.overflow_records()})"
        )
