"""Mergeable log-bucketed latency histograms.

HdrHistogram-style, but with one simplification that buys an important
property: the bucket layout is *fixed at module level* — every
histogram in every process uses the identical boundaries.  Two
histograms therefore merge by an exact vector add of their bucket
counts; aggregation across threads, shard workers, or benchmark runs
loses nothing beyond the original bucketing error.

Layout: geometric buckets, ``BUCKETS_PER_OCTAVE`` per power of two,
spanning ``MIN_TRACKABLE`` (~1 ns) to ``MAX_TRACKABLE`` (~68 min) —
672 int64 slots, ~5 KiB per histogram.  A recorded value lands in the
bucket covering it; quantiles report the geometric midpoint of the
selected bucket, clamped to the exact observed ``[min, max]``.  The
worst-case relative quantile error is one bucket's relative width,
``RELATIVE_BUCKET_WIDTH`` (~4.4 %) — the property-based tests pin this
bound.
"""

from __future__ import annotations

import math
import threading

import numpy as np

BUCKETS_PER_OCTAVE = 16
_MIN_EXP = -30  # 2**-30 s ~ 0.93 ns
_MAX_EXP = 12  # 2**12 s  ~ 68 min
MIN_TRACKABLE = 2.0**_MIN_EXP
MAX_TRACKABLE = 2.0**_MAX_EXP
NUM_BUCKETS = (_MAX_EXP - _MIN_EXP) * BUCKETS_PER_OCTAVE
RELATIVE_BUCKET_WIDTH = 2.0 ** (1.0 / BUCKETS_PER_OCTAVE) - 1.0


def bucket_index(value: float) -> int:
    """Bucket slot for ``value``; out-of-range values clamp to the ends."""
    if not value > MIN_TRACKABLE:  # also catches 0, negatives, NaN
        return 0
    if value >= MAX_TRACKABLE:
        return NUM_BUCKETS - 1
    idx = int((math.log2(value) - _MIN_EXP) * BUCKETS_PER_OCTAVE)
    if idx < 0:
        return 0
    if idx >= NUM_BUCKETS:
        return NUM_BUCKETS - 1
    return idx


def bucket_midpoint(index: int) -> float:
    """Geometric midpoint of bucket ``index`` (the quantile estimate)."""
    return 2.0 ** (_MIN_EXP + (index + 0.5) / BUCKETS_PER_OCTAVE)


def bucket_upper_bound(index: int) -> float:
    """Exclusive upper edge of bucket ``index`` (Prometheus ``le``)."""
    return 2.0 ** (_MIN_EXP + (index + 1) / BUCKETS_PER_OCTAVE)


class LatencyHistogram:
    """Thread-safe fixed-layout histogram of seconds-valued samples.

    Picklable (the lock is dropped and recreated), so a snapshot copy
    can ride a pipe to another process and merge there.
    """

    __slots__ = ("counts", "count", "sum", "min", "max", "_lock")

    def __init__(self) -> None:
        self.counts = np.zeros(NUM_BUCKETS, dtype=np.int64)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    # -- recording -------------------------------------------------------

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bucket_index(value)
        with self._lock:
            self.counts[idx] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def observe_many(self, values) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        clipped = np.clip(values, MIN_TRACKABLE, MAX_TRACKABLE)
        idx = ((np.log2(clipped) - _MIN_EXP) * BUCKETS_PER_OCTAVE).astype(
            np.int64
        )
        np.clip(idx, 0, NUM_BUCKETS - 1, out=idx)
        add = np.bincount(idx, minlength=NUM_BUCKETS)
        with self._lock:
            self.counts += add
            self.count += int(values.size)
            self.sum += float(values.sum())
            self.min = min(self.min, float(values.min()))
            self.max = max(self.max, float(values.max()))

    # -- aggregation -----------------------------------------------------

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into ``self`` (exact: vector add). Returns self."""
        with self._lock:
            self.counts += other.counts
            self.count += other.count
            self.sum += other.sum
            if other.min < self.min:
                self.min = other.min
            if other.max > self.max:
                self.max = other.max
        return self

    def diff(self, prev: "LatencyHistogram") -> "LatencyHistogram":
        """Delta since ``prev`` (an older snapshot of this histogram).

        Bucket counts, count, and sum subtract exactly; ``min``/``max``
        keep the current lifetime bounds (still valid bounds for any
        merge target, just not tight for the window alone).
        """
        out = LatencyHistogram()
        out.counts = self.counts - prev.counts
        out.count = self.count - prev.count
        out.sum = self.sum - prev.sum
        out.min = self.min
        out.max = self.max
        return out

    def copy(self) -> "LatencyHistogram":
        with self._lock:
            out = LatencyHistogram()
            out.counts = self.counts.copy()
            out.count = self.count
            out.sum = self.sum
            out.min = self.min
            out.max = self.max
            return out

    # -- queries ---------------------------------------------------------

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (q in [0, 100]).

        Locates the bucket holding the order statistic at rank
        ``floor(q/100 * (count-1))`` and returns its geometric
        midpoint, clamped to the exact observed range.  Empty
        histograms return 0.0.
        """
        if self.count == 0:
            return 0.0
        rank = (q / 100.0) * (self.count - 1)
        cum = np.cumsum(self.counts)
        idx = int(np.searchsorted(cum, math.floor(rank), side="right"))
        est = bucket_midpoint(min(idx, NUM_BUCKETS - 1))
        return min(max(est, self.min), self.max)

    def percentiles(self, qs) -> list:
        return [self.percentile(q) for q in qs]

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        """JSON-friendly sparse form (inf min/max map to None)."""
        (nonzero,) = np.nonzero(self.counts)
        return {
            "count": int(self.count),
            "sum": float(self.sum),
            "min": float(self.min) if self.count else None,
            "max": float(self.max) if self.count else None,
            "buckets": {int(i): int(self.counts[i]) for i in nonzero},
        }

    # -- pickling (drop the lock) ---------------------------------------

    def __getstate__(self):
        with self._lock:
            return (self.counts.copy(), self.count, self.sum, self.min, self.max)

    def __setstate__(self, state):
        self.counts, self.count, self.sum, self.min, self.max = state
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LatencyHistogram(count={self.count}, mean={self.mean:.3g}, "
            f"min={self.min:.3g}, max={self.max:.3g})"
        )


def summarize_latencies(values, qs=(50.0, 99.0, 99.9)) -> tuple:
    """Shared bench helper: histogram-backed percentiles of ``values``.

    Both throughput and serving benchmarks route their latency samples
    through this single function, so their quantile math cannot drift.
    """
    hist = LatencyHistogram()
    hist.observe_many(values)
    return tuple(hist.percentile(q) for q in qs)
