"""Exporters: Prometheus text exposition and JSON snapshots."""

from __future__ import annotations

import json

from .histogram import bucket_upper_bound
from .registry import RegistrySnapshot


def _sanitize(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    metric = "".join(out)
    if metric and metric[0].isdigit():
        metric = "_" + metric
    return metric


def prometheus_text(snapshot: RegistrySnapshot, prefix: str = "repro") -> str:
    """Prometheus text exposition format (version 0.0.4).

    Histogram buckets are emitted cumulatively with ``le`` labels at
    the fixed layout's upper bounds; empty buckets are skipped (the
    cumulative values remain correct without them).
    """
    lines = []
    for name in sorted(snapshot.counters):
        metric = f"{prefix}_{_sanitize(name)}"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {snapshot.counters[name]}")
    for name in sorted(snapshot.gauges):
        metric = f"{prefix}_{_sanitize(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {snapshot.gauges[name]}")
    for name in sorted(snapshot.histograms):
        hist = snapshot.histograms[name]
        metric = f"{prefix}_{_sanitize(name)}"
        lines.append(f"# TYPE {metric} histogram")
        cum = 0
        for idx in hist.counts.nonzero()[0]:
            cum += int(hist.counts[idx])
            le = bucket_upper_bound(int(idx))
            lines.append(f'{metric}_bucket{{le="{le:.9g}"}} {cum}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{metric}_sum {hist.sum:.9g}")
        lines.append(f"{metric}_count {hist.count}")
    return "\n".join(lines) + "\n"


def json_snapshot(snapshot: RegistrySnapshot, indent=None) -> str:
    """JSON form of a snapshot (sparse histogram buckets)."""
    return json.dumps(snapshot.to_dict(), indent=indent, sort_keys=True)


def trace_json(trace: dict, indent=2) -> str:
    """JSON form of ``tracing.export_trace`` output."""
    return json.dumps(trace, indent=indent, sort_keys=False)
