"""Tracing spans with cross-process trace-ID propagation.

In-process propagation rides a ``contextvars.ContextVar`` (so it
follows threads started with a copied context and survives the
coalescer's synchronous call chain).  Cross-process propagation is
explicit: the client serialises its current context with
``wire_context()`` and attaches it to the pipe-RPC command; the shard
worker wraps command handling in ``adopt(wire)`` so every span it opens
joins the client's trace.  Workers ``drain()`` their finished spans and
piggyback them on the ack; the client re-records them, so one recorder
holds the full cross-process timeline.

Batch spans (a coalescer tick serving many requests, a fanout hitting
many shards) carry a ``member_trace_ids`` list: ``trace_spans(tid)``
selects a span when ``tid`` is its primary trace ID *or* appears in its
membership list, so a single request's exported trace includes the
shared tick it rode in.

Span records are plain dicts (JSON- and pickle-friendly):
``name, trace_id, span_id, parent_id, process, start, duration, attrs``
with ``start`` in wall-clock epoch seconds (comparable across
processes) and ``duration`` from ``perf_counter``.  Every finished span
also observes its duration into the process default registry histogram
``span.<name>`` — that is what makes worker-side span counts exactly
aggregatable through the metrics piggyback.
"""

from __future__ import annotations

import collections
import contextlib
import contextvars
import os
import threading
import time
import uuid

from . import state
from .registry import default_registry

_MAX_RECORDED_SPANS = 20_000

_process_name = f"pid-{os.getpid()}"


def set_process_name(name: str) -> None:
    """Label spans recorded by this process (e.g. ``shard-3``)."""
    global _process_name
    _process_name = name


def process_name() -> str:
    return _process_name


class _Recorder:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans = collections.deque(maxlen=_MAX_RECORDED_SPANS)

    def record(self, span: dict) -> None:
        with self._lock:
            self._spans.append(span)

    def record_many(self, spans) -> None:
        with self._lock:
            self._spans.extend(spans)

    def drain(self) -> list:
        with self._lock:
            out = list(self._spans)
            self._spans.clear()
        return out

    def spans(self) -> list:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()


_recorder = _Recorder()

# (trace_id, current_span_id_or_None, member_trace_ids_tuple)
_ctx: contextvars.ContextVar = contextvars.ContextVar(
    "repro_obs_trace", default=None
)


def new_trace_id() -> str:
    return uuid.uuid4().hex[:16]


def current_trace_id():
    ctx = _ctx.get()
    return ctx[0] if ctx is not None else None


@contextlib.contextmanager
def span(name: str, **attrs):
    """Open a span; yields its attrs dict (None when disabled).

    Starts a fresh trace when no context is active.  On exit the span
    is recorded and its duration observed into the default registry
    histogram ``span.<name>``.
    """
    if not state.enabled:
        yield None
        return
    parent = _ctx.get()
    span_id = uuid.uuid4().hex[:16]
    if parent is None:
        trace_id, parent_id, members = new_trace_id(), None, ()
    else:
        trace_id, parent_id, members = parent
    token = _ctx.set((trace_id, span_id, members))
    start_wall = time.time()
    t0 = time.perf_counter()
    try:
        yield attrs
    finally:
        duration = time.perf_counter() - t0
        _ctx.reset(token)
        record = {
            "name": name,
            "trace_id": trace_id,
            "span_id": span_id,
            "parent_id": parent_id,
            "process": _process_name,
            "start": start_wall,
            "duration": duration,
            "attrs": attrs,
        }
        if members:
            record["member_trace_ids"] = list(members)
        _recorder.record(record)
        default_registry().histogram("span." + name).observe(duration)


@contextlib.contextmanager
def trace_scope(trace_id=None, parent_span_id=None, member_ids=()):
    """Install a trace context without recording a span of its own.

    Used by request stamping (each coalesced request gets an ID before
    any span opens) and by batch operations that serve many traces at
    once (``member_ids``).
    """
    if not state.enabled:
        yield None
        return
    tid = trace_id if trace_id is not None else new_trace_id()
    token = _ctx.set((tid, parent_span_id, tuple(member_ids)))
    try:
        yield tid
    finally:
        _ctx.reset(token)


def wire_context():
    """Picklable form of the active context for RPC piggyback."""
    if not state.enabled:
        return None
    ctx = _ctx.get()
    if ctx is None:
        return None
    return {
        "trace_id": ctx[0],
        "parent_span_id": ctx[1],
        "member_trace_ids": list(ctx[2]),
    }


@contextlib.contextmanager
def adopt(wire):
    """Install a context received over the wire (no-op for None)."""
    if wire is None or not state.enabled:
        yield
        return
    token = _ctx.set(
        (
            wire["trace_id"],
            wire.get("parent_span_id"),
            tuple(wire.get("member_trace_ids", ())),
        )
    )
    try:
        yield
    finally:
        _ctx.reset(token)


def record_manual_span(
    name: str,
    trace_id: str,
    *,
    start: float,
    duration: float,
    parent_id=None,
    attrs=None,
) -> None:
    """Record a span whose lifetime could not be a ``with`` block
    (e.g. a queued request resolved by a later callback).  Mirrors
    :func:`span`'s record shape and histogram side effect."""
    if not state.enabled:
        return
    _recorder.record(
        {
            "name": name,
            "trace_id": trace_id,
            "span_id": uuid.uuid4().hex[:16],
            "parent_id": parent_id,
            "process": _process_name,
            "start": start,
            "duration": duration,
            "attrs": attrs or {},
        }
    )
    default_registry().histogram("span." + name).observe(duration)


# -- recorder access ------------------------------------------------------


def record_spans(spans) -> None:
    """Merge externally produced span records (e.g. from a worker ack)."""
    _recorder.record_many(spans)


def drain_spans() -> list:
    """Remove and return every recorded span (worker-side piggyback)."""
    return _recorder.drain()


def all_spans() -> list:
    return _recorder.spans()


def trace_spans(trace_id: str) -> list:
    """Spans belonging to ``trace_id``, by primary ID or membership."""
    out = [
        s
        for s in _recorder.spans()
        if s["trace_id"] == trace_id
        or trace_id in s.get("member_trace_ids", ())
    ]
    out.sort(key=lambda s: s["start"])
    return out


def export_trace(trace_id: str) -> dict:
    """JSON-ready cross-process timeline for one trace."""
    return {"trace_id": trace_id, "spans": trace_spans(trace_id)}


def reset_tracing() -> None:
    """Drop all recorded spans (test hygiene)."""
    _recorder.clear()
