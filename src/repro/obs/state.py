"""Global on/off switch for the telemetry layer.

Hot paths guard instrumentation with a single module-attribute read
(``if state.enabled: ...``) so the disabled cost is one dict lookup and
a branch — no allocation, no lock, no context manager.  The flag is
process-local; ``ShardedLSMStore`` forwards it explicitly to spawned
workers (a spawn re-imports this module, so runtime ``set_enabled``
calls would otherwise be lost).

``REPRO_OBS=1`` in the environment enables instrumentation at import
time; spawned children inherit the environment, so the env knob
propagates on its own.
"""

from __future__ import annotations

import os

enabled: bool = os.environ.get("REPRO_OBS", "").strip() not in ("", "0")


def set_enabled(on: bool) -> bool:
    """Flip instrumentation on/off; returns the previous value."""
    global enabled
    prev = enabled
    enabled = bool(on)
    return prev
