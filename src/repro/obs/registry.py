"""Process-local metrics registry: counters, gauges, histograms.

A ``MetricsRegistry`` is a named bag of thread-safe instruments.
``snapshot()`` produces a lock-free, picklable ``RegistrySnapshot``
that supports ``merge`` (exact, for cross-process aggregation) and
``diff`` (for the delta-piggyback protocol: a shard worker snapshots
after each command and ships only the change since the previous ack).

Naming scheme (see the Observability section of ROADMAP.md): dotted
lowercase ``<subsystem>.<component>.<what>``; histograms of span
durations are auto-registered as ``span.<span-name>`` in the process
default registry.
"""

from __future__ import annotations

import threading

from .histogram import LatencyHistogram


class Counter:
    """Monotonic (by convention) numeric counter; ``inc`` is atomic."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, delta=1) -> None:
        with self._lock:
            self._value += delta

    def set(self, value) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self):
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self._value})"


class Gauge:
    """Point-in-time numeric value; last write wins on merge."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value) -> None:
        with self._lock:
            self._value = value

    def inc(self, delta=1) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self):
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name}={self._value})"


class MetricsRegistry:
    """Get-or-create instrument namespace; safe under free threading."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter(name))
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge(name))
        return g

    def histogram(self, name: str) -> LatencyHistogram:
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(name, LatencyHistogram())
        return h

    def snapshot(self) -> "RegistrySnapshot":
        with self._lock:
            counters = {n: c.value for n, c in self._counters.items()}
            gauges = {n: g.value for n, g in self._gauges.items()}
            hists = {n: h.copy() for n, h in self._histograms.items()}
        return RegistrySnapshot(counters, gauges, hists)

    def reset(self) -> None:
        """Drop every instrument (test hygiene, not for production use)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


class RegistrySnapshot:
    """Immutable-by-convention, picklable view of a registry's state."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self, counters=None, gauges=None, histograms=None) -> None:
        self.counters = dict(counters or {})
        self.gauges = dict(gauges or {})
        self.histograms = dict(histograms or {})

    def merge(self, other: "RegistrySnapshot") -> "RegistrySnapshot":
        """Fold ``other`` in: counters add, gauges last-write-wins,
        histograms vector-add.  Exact by construction. Returns self."""
        for name, v in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + v
        self.gauges.update(other.gauges)
        for name, h in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = h.copy()
            else:
                mine.merge(h)
        return self

    def diff(self, prev: "RegistrySnapshot") -> "RegistrySnapshot":
        """Delta since ``prev`` (an earlier snapshot of the same
        registry).  Instruments absent from ``prev`` pass through."""
        counters = {
            n: v - prev.counters.get(n, 0) for n, v in self.counters.items()
        }
        hists = {}
        for name, h in self.histograms.items():
            old = prev.histograms.get(name)
            hists[name] = h.copy() if old is None else h.diff(old)
        return RegistrySnapshot(counters, dict(self.gauges), hists)

    def copy(self) -> "RegistrySnapshot":
        return RegistrySnapshot(
            dict(self.counters),
            dict(self.gauges),
            {n: h.copy() for n, h in self.histograms.items()},
        )

    def to_dict(self) -> dict:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {n: h.to_dict() for n, h in self.histograms.items()},
        }

    @classmethod
    def merged(cls, snapshots) -> "RegistrySnapshot":
        out = cls()
        for snap in snapshots:
            out.merge(snap)
        return out


_default = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry (span durations land here)."""
    return _default
