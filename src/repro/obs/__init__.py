"""Unified telemetry core: metrics, histograms, cross-process tracing.

Three pieces, deliberately small:

- :mod:`repro.obs.registry` — named counters / gauges / histograms per
  process (or per store), with picklable snapshots that ``merge`` and
  ``diff`` exactly;
- :mod:`repro.obs.histogram` — fixed-layout log-bucketed latency
  histograms (merge = vector add);
- :mod:`repro.obs.tracing` — spans with trace IDs that propagate
  in-process via contextvars and cross-process over the shard pipe RPC.

Everything span- and histogram-shaped is gated on ``state.enabled``
(default off, env ``REPRO_OBS=1`` or ``set_enabled(True)``); the
always-on stats views (``LSMReadStats`` etc.) use bare registry
counters, whose cost matches the locked dataclass bookkeeping they
replaced.
"""

from . import state
from .state import set_enabled
from .histogram import (
    BUCKETS_PER_OCTAVE,
    LatencyHistogram,
    MAX_TRACKABLE,
    MIN_TRACKABLE,
    NUM_BUCKETS,
    RELATIVE_BUCKET_WIDTH,
    bucket_index,
    bucket_midpoint,
    bucket_upper_bound,
    summarize_latencies,
)
from .registry import (
    Counter,
    Gauge,
    MetricsRegistry,
    RegistrySnapshot,
    default_registry,
)
from .tracing import (
    adopt,
    all_spans,
    current_trace_id,
    drain_spans,
    export_trace,
    new_trace_id,
    record_manual_span,
    record_spans,
    reset_tracing,
    set_process_name,
    span,
    trace_scope,
    trace_spans,
    wire_context,
)
from .export import json_snapshot, prometheus_text, trace_json

__all__ = [
    "state",
    "set_enabled",
    "BUCKETS_PER_OCTAVE",
    "LatencyHistogram",
    "MAX_TRACKABLE",
    "MIN_TRACKABLE",
    "NUM_BUCKETS",
    "RELATIVE_BUCKET_WIDTH",
    "bucket_index",
    "bucket_midpoint",
    "bucket_upper_bound",
    "summarize_latencies",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "RegistrySnapshot",
    "default_registry",
    "adopt",
    "all_spans",
    "current_trace_id",
    "drain_spans",
    "export_trace",
    "new_trace_id",
    "record_manual_span",
    "record_spans",
    "reset_tracing",
    "set_process_name",
    "span",
    "trace_scope",
    "trace_spans",
    "wire_context",
    "json_snapshot",
    "prometheus_text",
    "trace_json",
]
