"""repro — a from-scratch reproduction of *The Case for Learned Index
Structures* (Kraska, Beutel, Chi, Dean, Polyzotis; SIGMOD 2018).

The package implements the paper's three learned index families and
every substrate its evaluation depends on:

* **Range indexes** — :class:`RecursiveModelIndex` (the RMI),
  :class:`HybridIndex` (Algorithm 1 with B-Tree fallback),
  :class:`StringRMI`, and the LIF synthesis loop (:func:`synthesize`);
  baselines: :class:`BTreeIndex`, :class:`FASTTree`,
  :class:`FixedSizeBTree`, :class:`HierarchicalLookupTable`.
* **Point indexes** — :class:`LearnedHashFunction` (CDF-scaled hashing)
  pluggable into :class:`ChainingHashMap`,
  :class:`BucketizedCuckooHashMap`, :class:`GenericCuckooHashMap`, and
  :class:`InPlaceChainedHashMap`.
* **Existence indexes** — :class:`LearnedBloomFilter` (classifier +
  overflow filter) and :class:`ModelHashBloomFilter` (Appendix E) over
  :class:`BloomFilter`, with the paper's character-level
  :class:`GRUClassifier`.
* **Storage engine** — :class:`LearnedLSMStore` (Appendix D.1 at
  system scale): tiered immutable runs, each indexed by a vectorized
  RMI and guarded by a bloom filter, behind an O(1) memtable with
  size-tiered or leveled compaction.
* **Competing index families** (PR 10) — :class:`PGMIndex` (recursive
  ε-bounded segments), :class:`RadixSplineIndex` (spline knots behind
  a radix table), and :class:`GappedArrayIndex` (the ALEX-style
  writable gapped array), all compiled onto the RMI's shared batch
  engine; raced in ``benchmarks/bench_matrix.py``.
* **Serving & observability** — :class:`CoalescingIndexServer`,
  :class:`ShardedLSMStore`, :class:`CDFSplitter` (PR 8) and the
  :mod:`repro.obs` metrics/tracing registry (PR 9).

Quickstart::

    import numpy as np
    from repro import RecursiveModelIndex

    keys = np.sort(np.random.default_rng(0).integers(0, 10**9, 10**6))
    index = RecursiveModelIndex(keys, stage_sizes=(1, 10_000))
    position = index.lookup(keys[1234])        # lower-bound semantics
    hits = index.range_query(10**8, 2 * 10**8)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured results of every reproduced table and figure.
"""

from .bloom import BloomFilter
from .btree import (
    BTreeIndex,
    FASTTree,
    FixedSizeBTree,
    GenericBTreeIndex,
    HierarchicalLookupTable,
)
from .core import (
    HybridIndex,
    LearnedBloomFilter,
    LearnedHashFunction,
    ModelHashBloomFilter,
    RecursiveModelIndex,
    RMIConfig,
    StringRMI,
    conflict_stats,
    synthesize,
)
from .families import (
    GappedArrayIndex,
    PGMIndex,
    RadixSplineIndex,
)
from .lsm import (
    LearnedLSMStore,
    LeveledCompaction,
    SizeTieredCompaction,
)
from .obs import default_registry, summarize_latencies
from .range_scan import RangeScanResult
from .serving import CDFSplitter, CoalescingIndexServer, ShardedLSMStore
from .hashmap import (
    BucketizedCuckooHashMap,
    ChainingHashMap,
    GenericCuckooHashMap,
    InPlaceChainedHashMap,
    RandomHashFunction,
)
from .models import MLP, GRUClassifier, LinearModel, MultivariateLinearModel

__version__ = "1.0.0"

__all__ = [
    "BTreeIndex",
    "BloomFilter",
    "BucketizedCuckooHashMap",
    "CDFSplitter",
    "ChainingHashMap",
    "CoalescingIndexServer",
    "FASTTree",
    "FixedSizeBTree",
    "GRUClassifier",
    "GappedArrayIndex",
    "GenericBTreeIndex",
    "GenericCuckooHashMap",
    "HierarchicalLookupTable",
    "HybridIndex",
    "InPlaceChainedHashMap",
    "LearnedBloomFilter",
    "LearnedHashFunction",
    "LearnedLSMStore",
    "LeveledCompaction",
    "LinearModel",
    "MLP",
    "ModelHashBloomFilter",
    "MultivariateLinearModel",
    "PGMIndex",
    "RMIConfig",
    "RadixSplineIndex",
    "RandomHashFunction",
    "RangeScanResult",
    "RecursiveModelIndex",
    "ShardedLSMStore",
    "SizeTieredCompaction",
    "StringRMI",
    "conflict_stats",
    "default_registry",
    "summarize_latencies",
    "synthesize",
]
