"""The paper's contribution: learned range, point and existence indexes."""

from .config import ROOT_MODEL_KINDS, RMIConfig, root_factory
from .hybrid import HybridIndex
from .learned_bloom import (
    LearnedBloomFilter,
    ModelHashBloomFilter,
    ThresholdTuning,
)
from .learned_hash import (
    ConflictStats,
    LearnedHashFunction,
    conflict_stats,
    make_linear_cdf_hash,
)
from .learned_sort import (
    LearnedSortStats,
    learned_sort,
    train_cdf_model_on_sample,
)
from ..range_scan import (
    RangeScanResult,
    batch_range_scan,
    batch_range_scan_generic,
    upper_bounds_batch,
)
from .engine import (
    SORTED_BATCH_MIN_DUP_FRACTION,
    SORTED_BATCH_THRESHOLD,
    CompiledPlan,
    QueryBatch,
    SortedKeyColumn,
)
from .lif import CandidateResult, default_grid, evaluate_config, synthesize
from .paged import PagedLearnedIndex, PageStore
from .rmi import (
    BUILD_MODES,
    DEFAULT_LEAF_ERROR,
    RecursiveModelIndex,
    RMIStats,
)
from .writable import WritableLearnedIndex
from .search import (
    SEARCH_STRATEGIES,
    biased_binary_search,
    biased_quaternary_search,
    bounded_search,
    verify_lower_bound,
)
from .string_index import StringRMI

__all__ = [
    "BUILD_MODES",
    "DEFAULT_LEAF_ERROR",
    "ROOT_MODEL_KINDS",
    "SEARCH_STRATEGIES",
    "SORTED_BATCH_MIN_DUP_FRACTION",
    "SORTED_BATCH_THRESHOLD",
    "CandidateResult",
    "CompiledPlan",
    "QueryBatch",
    "SortedKeyColumn",
    "RangeScanResult",
    "batch_range_scan",
    "batch_range_scan_generic",
    "upper_bounds_batch",
    "ConflictStats",
    "HybridIndex",
    "LearnedBloomFilter",
    "LearnedHashFunction",
    "ModelHashBloomFilter",
    "RMIConfig",
    "RMIStats",
    "LearnedSortStats",
    "PageStore",
    "PagedLearnedIndex",
    "RecursiveModelIndex",
    "StringRMI",
    "ThresholdTuning",
    "WritableLearnedIndex",
    "learned_sort",
    "train_cdf_model_on_sample",
    "biased_binary_search",
    "biased_quaternary_search",
    "bounded_search",
    "conflict_stats",
    "default_grid",
    "evaluate_config",
    "make_linear_cdf_hash",
    "root_factory",
    "synthesize",
    "verify_lower_bound",
]
