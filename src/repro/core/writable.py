"""Writable learned index — the Appendix D.1 delta-buffer design.

The paper on inserts: "there always exists a much simpler alternative
to handling inserts by building a delta-index [60].  All inserts are
kept in buffer and from time to time merged with a potential retraining
of the model.  This approach is already widely used, for example in
Bigtable."

:class:`WritableLearnedIndex` implements exactly that LSM-flavoured
design:

* reads consult the (immutable) learned main index and a small sorted
  delta buffer, merging their results;
* inserts go to the delta buffer (O(log d) into a sorted list);
* deletes are tombstones in the same buffer;
* when the buffer exceeds ``merge_threshold`` (or on explicit
  :meth:`merge`), the buffer is merged into the main array and the RMI
  retrained — cheap, because linear leaves train in closed form
  (Section 3.6).

It also demonstrates the paper's append observation: "for an index over
the timestamps of web-logs ... most if not all inserts will be appends
with increasing timestamps ... updating the index structure becomes an
O(1) operation" — appends beyond the trained key range never invalidate
the stored error bounds of existing leaves, so merges of append-only
batches can skip full retraining (``append_fast_path=True`` keeps the
model and only extends the array, re-checking the last leaf's bound).
"""

from __future__ import annotations

import bisect
from typing import Callable, Sequence

import numpy as np

from ..models.base import Model
from ..range_scan import RangeScanResult
from .rmi import RecursiveModelIndex

__all__ = ["WritableLearnedIndex"]


class WritableLearnedIndex:
    """RMI + sorted delta buffer with tombstone deletes."""

    def __init__(
        self,
        keys: np.ndarray | None = None,
        *,
        stage_sizes: Sequence[int] = (1, 100),
        model_factories: Sequence[Callable[[], Model]] | None = None,
        merge_threshold: int = 4_096,
        append_fast_path: bool = True,
    ):
        if merge_threshold < 1:
            raise ValueError("merge_threshold must be >= 1")
        base = (
            np.asarray(keys, dtype=np.int64)
            if keys is not None
            else np.empty(0, dtype=np.int64)
        )
        if base.size and np.any(np.diff(base) <= 0):
            raise ValueError("initial keys must be sorted and unique")
        self._stage_sizes = tuple(stage_sizes)
        self._model_factories = model_factories
        self.merge_threshold = int(merge_threshold)
        self.append_fast_path = bool(append_fast_path)
        self.merges = 0
        self.retrains = 0
        self.fast_appends = 0
        self._delta: list[int] = []        # sorted inserted keys
        self._tombstones: set[int] = set()  # deleted main-index keys
        self._rebuild(base)

    # -- construction helpers -----------------------------------------------

    def _rebuild(self, keys: np.ndarray) -> None:
        self._main = RecursiveModelIndex(
            keys,
            stage_sizes=self._stage_sizes,
            model_factories=self._model_factories,
        )
        self.retrains += 1

    # -- write path -----------------------------------------------------------

    def insert(self, key: int) -> None:
        """Insert ``key``; duplicate inserts are idempotent."""
        key = int(key)
        self._tombstones.discard(key)
        main_pos = self._main.lookup(float(key))
        in_main = (
            main_pos < self._main.keys.size
            and int(self._main.keys[main_pos]) == key
        )
        if in_main:
            return
        spot = bisect.bisect_left(self._delta, key)
        if spot < len(self._delta) and self._delta[spot] == key:
            return
        self._delta.insert(spot, key)
        if len(self._delta) >= self.merge_threshold:
            self.merge()

    def insert_batch(self, keys) -> None:
        for key in keys:
            self.insert(int(key))

    def delete(self, key: int) -> bool:
        """Delete ``key``; returns whether it was present."""
        key = int(key)
        spot = bisect.bisect_left(self._delta, key)
        if spot < len(self._delta) and self._delta[spot] == key:
            del self._delta[spot]
            return True
        main_pos = self._main.lookup(float(key))
        if (
            main_pos < self._main.keys.size
            and int(self._main.keys[main_pos]) == key
            and key not in self._tombstones
        ):
            self._tombstones.add(key)
            return True
        return False

    # -- merge ------------------------------------------------------------------

    def merge(self) -> None:
        """Fold the delta buffer and tombstones into the main index."""
        if not self._delta and not self._tombstones:
            return
        self.merges += 1
        main_keys = self._main.keys
        if self._tombstones:
            keep = ~np.isin(
                main_keys, np.fromiter(self._tombstones, dtype=np.int64)
            )
            main_keys = main_keys[keep]
            tombstoned = True
        else:
            tombstoned = False
        delta = np.array(self._delta, dtype=np.int64)
        is_pure_append = (
            self.append_fast_path
            and not tombstoned
            and main_keys.size > 0
            and delta.size > 0
            and delta[0] > main_keys[-1]
        )
        merged = (
            np.concatenate([main_keys, delta])
            if is_pure_append
            else np.union1d(main_keys, delta)
        )
        self._delta.clear()
        self._tombstones.clear()
        if is_pure_append and self._try_fast_append(merged, delta.size):
            self.fast_appends += 1
            return
        self._rebuild(merged)

    def _try_fast_append(self, merged: np.ndarray, appended: int) -> bool:
        """O(appended) append path: keep the model, extend the array.

        Valid when the model generalizes to the appended range — i.e.
        the existing leaf routing still predicts the new keys within a
        tolerable error.  We verify by measuring the worst new-key
        error; if it exceeds the current max window we fall back to
        retraining (the paper's "can it be detected?" question,
        answered by measurement).
        """
        old = self._main
        candidate = object.__new__(RecursiveModelIndex)
        candidate.__dict__.update(old.__dict__)
        # Rebind data arrays; models and error stats are shared.
        from ..util import scalar_view

        candidate.keys = merged
        candidate._keys_view = scalar_view(merged)
        new_keys = merged[-appended:]
        worst = 0
        for key in new_keys[:: max(appended // 64, 1)]:
            true_pos = int(np.searchsorted(merged, key))
            _leaf, raw = candidate._leaf_for(float(key))
            worst = max(worst, abs(int(raw) - true_pos))
        budget = max(old.max_error_window, 64) * 4
        if worst > budget:
            self._rebuild(merged)
            return False
        # Widen every leaf's stored bounds by the observed append error
        # so the guarantee stays honest without retraining.
        from ..models.cdf import ErrorStats

        slack = worst + 1
        candidate.leaf_errors = [
            ErrorStats(
                stats.min_error - slack,
                stats.max_error + slack,
                stats.mean_absolute,
                stats.std,
                stats.count,
            )
            for stats in old.leaf_errors
        ]
        candidate._compile()
        self._main = candidate
        return True

    # -- read path ----------------------------------------------------------------

    def contains(self, key: int) -> bool:
        key = int(key)
        if key in self._tombstones:
            return False
        spot = bisect.bisect_left(self._delta, key)
        if spot < len(self._delta) and self._delta[spot] == key:
            return True
        pos = self._main.lookup(float(key))
        return pos < self._main.keys.size and int(self._main.keys[pos]) == key

    def contains_batch(self, keys) -> np.ndarray:
        """Batched :meth:`contains`, merging main + delta + tombstones.

        The main index runs its vectorized ``lookup_batch``; the delta
        buffer is probed with one ``searchsorted`` over the batch; the
        tombstone set masks both — the delta-merge read path without a
        per-key Python loop.
        """
        queries = np.asarray(keys, dtype=np.int64).ravel()
        hit = np.zeros(queries.size, dtype=bool)
        if self._delta:
            delta = np.asarray(self._delta, dtype=np.int64)
            spot = np.searchsorted(delta, queries)
            safe = np.minimum(spot, delta.size - 1)
            hit |= (spot < delta.size) & (delta[safe] == queries)
        main_keys = self._main.keys
        if main_keys.size:
            hit |= self._main.contains_batch(queries.astype(np.float64))
        if self._tombstones:
            dead = np.fromiter(self._tombstones, dtype=np.int64)
            hit &= ~np.isin(queries, dead)
        return hit

    def range_query(self, low: int, high: int) -> np.ndarray:
        """All live keys in ``[low, high]`` across main + delta."""
        if high < low:
            return np.empty(0, dtype=np.int64)
        main_hits = self._main.range_query(float(low), float(high))
        if self._tombstones:
            keep = ~np.isin(
                main_hits, np.fromiter(self._tombstones, dtype=np.int64)
            )
            main_hits = main_hits[keep]
        lo = bisect.bisect_left(self._delta, int(low))
        hi = bisect.bisect_right(self._delta, int(high))
        delta_hits = np.array(self._delta[lo:hi], dtype=np.int64)
        if delta_hits.size == 0:
            return main_hits.astype(np.int64)
        return np.union1d(main_hits.astype(np.int64), delta_hits)

    def range_query_batch(self, lows, highs) -> RangeScanResult:
        """Batched :meth:`range_query`, merging main + delta + tombstones.

        The main index resolves every range through its vectorized
        ``range_query_batch``; the delta buffer is sliced with two
        ``searchsorted`` calls over the whole batch; tombstones mask the
        main hits.  Only the final per-range merge (two disjoint sorted
        runs) is a Python-level loop.  ``result[i]`` is bit-identical to
        ``range_query(lows[i], highs[i])``; ``starts``/``ends`` are
        ``None`` because delta-merged ranges are not contiguous slices
        of one array.
        """
        lows_f = np.asarray(lows, dtype=np.float64).ravel()
        highs_f = np.asarray(highs, dtype=np.float64).ravel()
        if lows_f.size != highs_f.size:
            raise ValueError("lows and highs must have the same length")
        m = lows_f.size
        offsets = np.zeros(m + 1, dtype=np.int64)
        if m == 0:
            return RangeScanResult(
                values=np.empty(0, dtype=np.int64), offsets=offsets
            )
        # Mirror the scalar path exactly: the main index resolves the
        # original (float) endpoints, the delta buffer the truncated
        # ints (``int(low)``/``int(high)``), and an inverted range is
        # decided on the original values.
        main = self._main.range_query_batch(lows_f, highs_f)
        inverted = highs_f < lows_f
        delta = np.asarray(self._delta, dtype=np.int64)
        d_lo = np.searchsorted(delta, lows_f.astype(np.int64), side="left")
        d_hi = np.searchsorted(delta, highs_f.astype(np.int64), side="right")
        dead = (
            np.fromiter(self._tombstones, dtype=np.int64)
            if self._tombstones
            else None
        )
        chunks: list[np.ndarray] = []
        for i in range(m):
            vals = np.asarray(main[i], dtype=np.int64)
            if dead is not None and vals.size:
                vals = vals[~np.isin(vals, dead)]
            if not inverted[i] and d_hi[i] > d_lo[i]:
                inserted = delta[d_lo[i]:d_hi[i]]
                vals = np.union1d(vals, inserted) if vals.size else inserted
            chunks.append(vals)
            offsets[i + 1] = offsets[i] + vals.size
        values = (
            np.concatenate(chunks)
            if offsets[-1]
            else np.empty(0, dtype=np.int64)
        )
        return RangeScanResult(values=values, offsets=offsets)

    def __len__(self) -> int:
        return (
            self._main.keys.size - len(self._tombstones) + len(self._delta)
        )

    @property
    def delta_size(self) -> int:
        return len(self._delta)

    def size_bytes(self) -> int:
        return self._main.size_bytes() + len(self._delta) * 8

    def __repr__(self) -> str:
        return (
            f"WritableLearnedIndex(n={len(self)}, delta={len(self._delta)}, "
            f"tombstones={len(self._tombstones)}, merges={self.merges}, "
            f"fast_appends={self.fast_appends})"
        )
