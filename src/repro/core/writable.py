"""Writable learned index — the Appendix D.1 delta-buffer design.

The paper on inserts: "there always exists a much simpler alternative
to handling inserts by building a delta-index [60].  All inserts are
kept in buffer and from time to time merged with a potential retraining
of the model.  This approach is already widely used, for example in
Bigtable."

:class:`WritableLearnedIndex` implements exactly that LSM-flavoured
design — one buffer in front of one immutable run, the *single-run
reference* that :class:`repro.lsm.store.LearnedLSMStore` generalizes to
tiered runs:

* reads consult the (immutable) learned main index and a small delta
  buffer (a :class:`repro.lsm.memtable.Memtable`, the same buffer an
  LSM seals into runs), merging their results;
* inserts go to the delta buffer (O(1) dict put; sorted views
  materialize lazily per read burst);
* deletes are tombstones in the same buffer;
* when the buffer exceeds ``merge_threshold`` (or on explicit
  :meth:`merge`), the buffer is merged into the main array and the RMI
  retrained — cheap, because linear leaves train in closed form
  (Section 3.6) and the rebuild takes the RMI's vectorized
  ``build_mode``: one ``np.union1d`` merge plus the segmented
  least-squares build, so a merge is memcpy-plus-array-math instead of
  ten thousand Python model fits;
* bulk loads go through :meth:`insert_batch`, which sorts and
  deduplicates the whole batch in one NumPy pass, drops keys already
  present in the main index with one ``lookup_batch``, lands the rest
  in the buffer with one dict update, and triggers at most one merge —
  no per-key scalar inserts;
* the full ordered-index surface (``lookup`` / ``upper_bound`` /
  ``contains`` / ``range_query`` and their batch forms) is delta-merge
  aware: positions are ranks in the *live* merged key set, computed
  from the main index's answer plus two ``searchsorted`` corrections
  (tombstones below, delta keys below) — no merged array is ever
  materialized;
* :meth:`range_query_batch` merges main and delta hits for the whole
  batch with one multi-source k-way merge
  (:func:`repro.range_scan.merge_scan_results`) instead of a per-range
  Python loop.

It also demonstrates the paper's append observation: "for an index over
the timestamps of web-logs ... most if not all inserts will be appends
with increasing timestamps ... updating the index structure becomes an
O(1) operation" — appends beyond the trained key range never invalidate
the stored error bounds of existing leaves, so merges of append-only
batches can skip full retraining (``append_fast_path=True`` keeps the
model and only extends the array, re-checking the last leaf's bound).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..lsm.memtable import Memtable
from ..models.base import Model
from ..range_scan import RangeScanResult, assemble_slices, merge_scan_results
from .rmi import RecursiveModelIndex

__all__ = ["WritableLearnedIndex"]


class WritableLearnedIndex:
    """RMI + sorted delta buffer with tombstone deletes."""

    def __init__(
        self,
        keys: np.ndarray | None = None,
        *,
        stage_sizes: Sequence[int] = (1, 100),
        model_factories: Sequence[Callable[[], Model]] | None = None,
        merge_threshold: int = 4_096,
        append_fast_path: bool = True,
        build_mode: str = "vectorized",
    ):
        if merge_threshold < 1:
            raise ValueError("merge_threshold must be >= 1")
        base = (
            np.asarray(keys, dtype=np.int64)
            if keys is not None
            else np.empty(0, dtype=np.int64)
        )
        if base.size and np.any(np.diff(base) <= 0):
            raise ValueError("initial keys must be sorted and unique")
        self._stage_sizes = tuple(stage_sizes)
        self._model_factories = model_factories
        self.build_mode = str(build_mode)
        self.merge_threshold = int(merge_threshold)
        self.append_fast_path = bool(append_fast_path)
        self.merges = 0
        self.retrains = 0
        self.fast_appends = 0
        self._mem = Memtable()  # delta puts + main-key tombstones
        self._rebuild(base)

    # -- construction helpers -----------------------------------------------

    def _rebuild(self, keys: np.ndarray) -> None:
        self._main = RecursiveModelIndex(
            keys,
            stage_sizes=self._stage_sizes,
            model_factories=self._model_factories,
            build_mode=self.build_mode,
        )
        self.retrains += 1

    # -- write path -----------------------------------------------------------

    def insert(self, key: int) -> None:
        """Insert ``key``; duplicate inserts are idempotent."""
        key = int(key)
        self._mem.discard_tombstone(key)
        main_pos = self._main.lookup(key)
        in_main = (
            main_pos < self._main.keys.size
            and int(self._main.keys[main_pos]) == key
        )
        if in_main or self._mem.has_put(key):
            return
        self._mem.put(key, key)
        if self._mem.num_puts >= self.merge_threshold:
            self.merge()

    def insert_batch(self, keys) -> None:
        """Bulk insert: one NumPy pass over the whole batch.

        Semantically a loop of :meth:`insert` — tombstoned keys are
        resurrected, keys already in the main index or the delta are
        no-ops — but executed as sort + dedup (``np.unique``), one
        ``lookup_batch`` membership probe against the main index, and
        one dict update into the delta buffer.  At most one merge
        fires, after the whole batch lands, so bulk loads pay one
        retrain instead of one per ``merge_threshold`` keys.
        """
        batch = np.unique(np.asarray(keys, dtype=np.int64).ravel())
        if batch.size == 0:
            return
        self._mem.discard_tombstones(batch)
        main_keys = self._main.keys
        if main_keys.size:
            pos = self._main.lookup_batch(batch)
            safe = np.minimum(pos, main_keys.size - 1)
            in_main = (pos < main_keys.size) & (main_keys[safe] == batch)
            batch = batch[~in_main]
        if batch.size:
            # Tombstones were swept above and only ever cover main
            # keys, which the membership probe just filtered out — the
            # remaining batch cannot resurrect anything.
            self._mem.put_batch(batch, batch, clear_tombstones=False)
        if self._mem.num_puts >= self.merge_threshold:
            self.merge()

    def delete(self, key: int) -> bool:
        """Delete ``key``; returns whether it was present."""
        key = int(key)
        if self._mem.remove_put(key):
            return True
        main_pos = self._main.lookup(key)
        if (
            main_pos < self._main.keys.size
            and int(self._main.keys[main_pos]) == key
            and not self._mem.is_tombstone(key)
        ):
            self._mem.add_tombstone(key)
            return True
        return False

    # -- merge ------------------------------------------------------------------

    def merge(self) -> None:
        """Fold the delta buffer and tombstones into the main index."""
        if len(self._mem) == 0:
            return
        self.merges += 1
        main_keys = self._main.keys
        tombs = self._mem.tombstone_keys()
        if tombs.size:
            main_keys = main_keys[~np.isin(main_keys, tombs)]
            tombstoned = True
        else:
            tombstoned = False
        delta = self._mem.put_keys()
        is_pure_append = (
            self.append_fast_path
            and not tombstoned
            and main_keys.size > 0
            and delta.size > 0
            and delta[0] > main_keys[-1]
        )
        merged = (
            np.concatenate([main_keys, delta])
            if is_pure_append
            else np.union1d(main_keys, delta)
        )
        self._mem.clear()
        if is_pure_append and self._try_fast_append(merged, delta.size):
            self.fast_appends += 1
            return
        self._rebuild(merged)

    def _try_fast_append(self, merged: np.ndarray, appended: int) -> bool:
        """O(appended) append path: keep the model, extend the array.

        Valid when the model generalizes to the appended range — i.e.
        the existing leaf routing still predicts the new keys within a
        tolerable error.  We verify by measuring the worst new-key
        error; if it exceeds the current max window we fall back to
        retraining (the paper's "can it be detected?" question,
        answered by measurement).
        """
        old = self._main
        candidate = object.__new__(RecursiveModelIndex)
        candidate.__dict__.update(old.__dict__)
        # Rebind data arrays; models and error stats are shared.
        from ..util import scalar_view

        candidate.keys = merged
        candidate._keys_view = scalar_view(merged)
        # The copied __dict__ still points the query core at the old
        # array; rebind it before _compile builds the new plan.
        from .engine import SortedKeyColumn

        candidate._column = SortedKeyColumn(merged)
        # Probe through the compiled arrays when available: touching
        # _leaf_for or max_error_window would materialize the lazily
        # deferred per-leaf objects, costing O(leaves) on an append
        # path that promises O(appended).
        if candidate._compiled:
            m = candidate.stage_sizes[1]
            n_merged = int(merged.size)
            slopes = candidate._leaf_slopes_list
            intercepts = candidate._leaf_intercepts_list
            root_predict = candidate._root_predict

            def predict_raw(key: float) -> float:
                j = int(root_predict(key) * m / n_merged)
                j = 0 if j < 0 else (m - 1 if j >= m else j)
                return slopes[j] * key + intercepts[j]

        else:
            def predict_raw(key: float) -> float:
                return candidate._leaf_for(key)[1]

        new_keys = merged[-appended:]
        worst = 0
        for key in new_keys[:: max(appended // 64, 1)]:
            true_pos = int(np.searchsorted(merged, key))
            raw = predict_raw(float(key))
            worst = max(worst, abs(int(raw) - true_pos))
        bound_arrays = old.__dict__.get("_leaf_bound_arrays")
        if bound_arrays is not None:
            # window = max_error - min_error = lo_offset - hi_offset.
            lo, hi = bound_arrays
            worst_window = int((lo - hi).max()) if lo.size else 0
        else:
            worst_window = old.max_error_window
        budget = max(worst_window, 64) * 4
        if worst > budget:
            self._rebuild(merged)
            return False
        # Widen every leaf's stored bounds by the observed append error
        # so the guarantee stays honest without retraining.
        slack = worst + 1
        stat_arrays = old.__dict__.get("_leaf_error_stat_arrays")
        if stat_arrays is not None:
            # Vectorized build: widen the flat stat arrays and drop any
            # materialized ErrorStats view copied from ``old`` — the
            # candidate stays lazy, keeping the append path O(appended).
            mn, mx, ma, sd, cnt = stat_arrays
            candidate.__dict__.pop("leaf_errors", None)
            candidate._leaf_error_stat_arrays = (
                mn - slack, mx + slack, ma, sd, cnt,
            )
        else:
            from ..models.cdf import ErrorStats

            candidate.leaf_errors = [
                ErrorStats(
                    stats.min_error - slack,
                    stats.max_error + slack,
                    stats.mean_absolute,
                    stats.std,
                    stats.count,
                )
                for stats in old.leaf_errors
            ]
        # The compiled window offsets (lo = max_error, hi = min_error)
        # widen by the same slack; recompute them so _compile's array
        # fast path doesn't reuse the stale cache shared with ``old``.
        if old._leaf_bound_arrays is not None:
            lo, hi = old._leaf_bound_arrays
            candidate._leaf_bound_arrays = (lo + slack, hi - slack)
        candidate._compile()
        self._main = candidate
        return True

    # -- read path ----------------------------------------------------------------

    def lookup(self, key) -> int:
        """Lower bound of ``key`` among the *live* merged keys.

        The rank in the (never materialized) sorted array of live keys:
        the main index's lower bound, minus the tombstoned main keys
        below ``key``, plus the delta keys below ``key`` — two
        ``searchsorted`` corrections around the learned lookup.
        Integer keys stay native Python ints end to end, so the
        corrections are exact beyond 2^53.
        """
        main_lb = self._main.lookup(key)
        tombs = self._mem.tombstone_keys()
        delta = self._mem.put_keys()
        return (
            main_lb
            - int(np.searchsorted(tombs, key, side="left"))
            + int(np.searchsorted(delta, key, side="left"))
        )

    def upper_bound(self, key) -> int:
        """Position one past the last live key <= ``key``."""
        main_ub = self._main.upper_bound(key)
        tombs = self._mem.tombstone_keys()
        delta = self._mem.put_keys()
        return (
            main_ub
            - int(np.searchsorted(tombs, key, side="right"))
            + int(np.searchsorted(delta, key, side="right"))
        )

    def _batch_corrections(self, queries, pos, side: str) -> np.ndarray:
        """Apply the delta/tombstone rank corrections to a whole batch.

        Routed through the main index's query core so the two
        ``searchsorted`` calls compare in the key dtype (exact int64),
        with the engine's float-query ceiling semantics.
        """
        tombs = self._mem.tombstone_keys()
        delta = self._mem.put_keys()
        if not tombs.size and not delta.size:
            return pos
        column = self._main._column
        qb = column.prepare(queries)
        if tombs.size:
            pos -= column.rank_in(tombs, qb, side=side)
        if delta.size:
            pos += column.rank_in(delta, qb, side=side)
        return pos

    def lookup_batch(self, queries, *, sort: bool | None = None) -> np.ndarray:
        """Batched :meth:`lookup`: live-rank lower bounds.

        The main index runs the shared vectorized engine (``sort``
        forwards to the sorted-batch fast path); the delta/tombstone
        corrections are two whole-batch ``searchsorted`` calls through
        the query core.
        """
        queries = np.asarray(queries).ravel()
        pos = self._main.lookup_batch(queries, sort=sort).astype(np.int64)
        return self._batch_corrections(queries, pos, "left")

    def upper_bound_batch(
        self, queries, *, sort: bool | None = None
    ) -> np.ndarray:
        """Batched :meth:`upper_bound` with the same corrections."""
        queries = np.asarray(queries).ravel()
        pos = self._main.upper_bound_batch(queries, sort=sort).astype(np.int64)
        return self._batch_corrections(queries, pos, "right")

    def contains(self, key: int) -> bool:
        key = int(key)
        if self._mem.is_tombstone(key):
            return False
        if self._mem.has_put(key):
            return True
        pos = self._main.lookup(key)
        return pos < self._main.keys.size and int(self._main.keys[pos]) == key

    def contains_batch(self, keys) -> np.ndarray:
        """Batched :meth:`contains`, merging main + delta + tombstones.

        The main index runs its vectorized ``lookup_batch``; the delta
        buffer is probed with one ``searchsorted`` over the batch; the
        tombstone set masks both — the delta-merge read path without a
        per-key Python loop.
        """
        queries = np.asarray(keys, dtype=np.int64).ravel()
        hit = np.zeros(queries.size, dtype=bool)
        delta = self._mem.put_keys()
        if delta.size:
            spot = np.searchsorted(delta, queries)
            safe = np.minimum(spot, delta.size - 1)
            hit |= (spot < delta.size) & (delta[safe] == queries)
        main_keys = self._main.keys
        if main_keys.size:
            hit |= self._main.contains_batch(queries)
        tombs = self._mem.tombstone_keys()
        if tombs.size:
            hit &= ~np.isin(queries, tombs)
        return hit

    def range_query(self, low: int, high: int) -> np.ndarray:
        """All live keys in ``[low, high]`` across main + delta."""
        if high < low:
            return np.empty(0, dtype=np.int64)
        main_hits = self._main.range_query(low, high)
        tombs = self._mem.tombstone_keys()
        if tombs.size:
            main_hits = main_hits[~np.isin(main_hits, tombs)]
        delta = self._mem.put_keys()
        lo = int(np.searchsorted(delta, int(low), side="left"))
        hi = int(np.searchsorted(delta, int(high), side="right"))
        delta_hits = delta[lo:hi]
        if delta_hits.size == 0:
            return main_hits.astype(np.int64)
        return np.union1d(main_hits.astype(np.int64), delta_hits)

    def range_query_batch(self, lows, highs) -> RangeScanResult:
        """Batched :meth:`range_query`, merging main + delta + tombstones.

        The main index resolves every range through its vectorized
        ``range_query_batch``; the delta buffer is sliced with two
        ``searchsorted`` calls over the whole batch; tombstones mask the
        main hits with one ``np.isin``.  The per-range merge of the two
        sorted sources is one multi-source k-way merge
        (:func:`repro.range_scan.merge_scan_results`: one ``np.lexsort``
        on (range id, key) interleaves all ``m`` merges at once, and its
        dedup mirrors the scalar path's ``np.union1d``).  ``result[i]``
        is bit-identical to ``range_query(lows[i], highs[i])``;
        ``starts``/``ends`` are ``None`` because delta-merged ranges are
        not contiguous slices of one array.
        """
        lows_f = np.asarray(lows).ravel()
        highs_f = np.asarray(highs).ravel()
        if lows_f.size != highs_f.size:
            raise ValueError("lows and highs must have the same length")
        m = lows_f.size
        if m == 0:
            return RangeScanResult(
                values=np.empty(0, dtype=np.int64),
                offsets=np.zeros(1, dtype=np.int64),
            )
        # Mirror the scalar path exactly: the main index resolves the
        # original endpoints (native dtype, exact through the query
        # core), the delta buffer the truncated ints
        # (``int(low)``/``int(high)``), and an inverted range is
        # decided on the original values.
        main = self._main.range_query_batch(lows_f, highs_f)
        values = np.asarray(main.values, dtype=np.int64)
        offsets = main.offsets
        tombs = self._mem.tombstone_keys()
        if tombs.size and values.size:
            keep = ~np.isin(values, tombs)
            ids = np.repeat(np.arange(m, dtype=np.int64), main.counts)[keep]
            values = values[keep]
            offsets = np.zeros(m + 1, dtype=np.int64)
            np.cumsum(np.bincount(ids, minlength=m), out=offsets[1:])
        main_live = RangeScanResult(values=values, offsets=offsets)
        delta = self._mem.put_keys()
        if not delta.size:
            return main_live
        d_lo = np.searchsorted(delta, lows_f.astype(np.int64), "left")
        d_hi = np.searchsorted(delta, highs_f.astype(np.int64), "right")
        d_hi = np.where(highs_f < lows_f, d_lo, d_hi)
        delta_vals, d_offsets = assemble_slices(delta, d_lo, d_hi)
        merged = merge_scan_results(
            [
                RangeScanResult(values=delta_vals, offsets=d_offsets),
                main_live,
            ]
        )
        return RangeScanResult(
            values=np.asarray(merged.values, dtype=np.int64),
            offsets=merged.offsets,
        )

    def __len__(self) -> int:
        return (
            self._main.keys.size
            - self._mem.num_tombstones
            + self._mem.num_puts
        )

    @property
    def delta_size(self) -> int:
        return self._mem.num_puts

    def size_bytes(self) -> int:
        return self._main.size_bytes() + self._mem.num_puts * 8

    def __repr__(self) -> str:
        return (
            f"WritableLearnedIndex(n={len(self)}, "
            f"delta={self._mem.num_puts}, "
            f"tombstones={self._mem.num_tombstones}, merges={self.merges}, "
            f"fast_appends={self.fast_appends})"
        )
