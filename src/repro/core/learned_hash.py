"""Learned hash functions — the Hash-Model Index (Section 4.1).

"we can scale the CDF by the targeted size M of the Hash-map and use
h(K) = F(K) * M, with key K as our hash-function.  If the model F
perfectly learned the empirical CDF of the keys, no conflicts would
exist.  Furthermore, the hash-function is orthogonal to the actual
Hash-map architecture."

:class:`LearnedHashFunction` wraps any CDF model — by default the same
2-stage RMI used for range indexes (Section 4.2 uses "the 2-stage RMI
models ... with 100k models on the 2nd stage and without any hidden
layers") — and exposes the plain ``hash(key) -> slot`` interface every
hash map in :mod:`repro.hashmap` accepts, making the orthogonality
claim directly testable.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..models.base import Model
from ..models.linear import LinearModel
from .rmi import RecursiveModelIndex

__all__ = [
    "LearnedHashFunction",
    "conflict_stats",
    "ConflictStats",
    "make_linear_cdf_hash",
]


class LearnedHashFunction:
    """CDF-scaled hash: ``slot = clamp(F(key) * num_slots)``."""

    def __init__(
        self,
        train_keys: np.ndarray,
        num_slots: int,
        *,
        stage_sizes: Sequence[int] = (1, 1000),
        model_factories: Sequence[Callable[[], Model]] | None = None,
    ):
        if num_slots < 1:
            raise ValueError("num_slots must be >= 1")
        keys = np.sort(np.asarray(train_keys))
        self.num_slots = int(num_slots)
        self._n = int(keys.size)
        # The RMI already predicts positions in [0, n); rescaling by
        # M/n turns position predictions into slot predictions.
        self._rmi = RecursiveModelIndex(
            keys,
            stage_sizes=stage_sizes,
            model_factories=model_factories,
        )
        self._scale = self.num_slots / max(self._n, 1)

    def __call__(self, key: float) -> int:
        leaf, raw = self._rmi._leaf_for(key)
        slot = int(raw * self._scale)
        if slot < 0:
            return 0
        if slot >= self.num_slots:
            return self.num_slots - 1
        return slot

    def hash_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized slot computation via the RMI's batch routing."""
        keys = np.asarray(keys, dtype=np.float64).ravel()
        rmi = self._rmi
        if rmi._compiled and self._n:
            _leaf, raw = rmi._route_batch(keys)
            slots = (raw * self._scale).astype(np.int64)
            return np.clip(slots, 0, self.num_slots - 1)
        out = np.empty(keys.size, dtype=np.int64)
        for i, key in enumerate(keys):
            out[i] = self(float(key))
        return out

    def size_bytes(self) -> int:
        return self._rmi.size_bytes()

    def model_op_count(self) -> int:
        return self._rmi.model_op_count() + 1

    def __repr__(self) -> str:
        return (
            f"LearnedHashFunction(slots={self.num_slots}, "
            f"stages={self._rmi.stage_sizes})"
        )


class ConflictStats:
    """Slot-occupancy summary for a hash function over a key set."""

    def __init__(self, slot_counts: np.ndarray, num_keys: int, num_slots: int):
        occupied = int((slot_counts > 0).sum())
        self.num_keys = int(num_keys)
        self.num_slots = int(num_slots)
        self.occupied_slots = occupied
        self.empty_slots = num_slots - occupied
        # A key "conflicts" if it lands in a slot some earlier key took:
        # total keys minus one per occupied slot.
        self.conflicting_keys = int(num_keys - occupied)
        self.max_chain = int(slot_counts.max()) if slot_counts.size else 0

    @property
    def conflict_rate(self) -> float:
        """Fraction of keys that collided — Figure 8's "% Conflicts"."""
        if self.num_keys == 0:
            return 0.0
        return self.conflicting_keys / self.num_keys

    @property
    def empty_fraction(self) -> float:
        if self.num_slots == 0:
            return 0.0
        return self.empty_slots / self.num_slots

    def __repr__(self) -> str:
        return (
            f"ConflictStats(keys={self.num_keys}, slots={self.num_slots}, "
            f"conflicts={self.conflict_rate:.1%}, empty={self.empty_fraction:.1%})"
        )


def conflict_stats(
    hash_fn: Callable[[float], int],
    keys: np.ndarray,
    num_slots: int,
) -> ConflictStats:
    """Evaluate a hash function's conflicts over ``keys`` (Figure 8).

    Accepts any callable, so learned and traditional hash functions are
    measured identically.
    """
    keys = np.asarray(keys)
    if hasattr(hash_fn, "hash_batch"):
        slots = hash_fn.hash_batch(keys)
    else:
        slots = np.fromiter(
            (hash_fn(float(k)) for k in keys), dtype=np.int64, count=keys.size
        )
    if slots.size and (slots.min() < 0 or slots.max() >= num_slots):
        raise ValueError("hash function produced out-of-range slots")
    counts = np.bincount(slots, minlength=num_slots)
    return ConflictStats(counts, keys.size, num_slots)


def make_linear_cdf_hash(
    train_keys: np.ndarray, num_slots: int
) -> LearnedHashFunction:
    """Single-linear-model CDF hash (the Section 4.1 minimal variant)."""
    return LearnedHashFunction(
        train_keys,
        num_slots,
        stage_sizes=(1, 1),
        model_factories=[LinearModel, LinearModel],
    )
