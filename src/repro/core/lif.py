"""The Learning Index Framework (LIF) — index synthesis (Section 3.1).

"The LIF can be regarded as an index synthesis system; given an index
specification, LIF generates different index configurations, optimizes
them, and tests them automatically."  And Section 3.3: "we tune the
various parameters of the model (i.e., number of stages, hidden layers
per model, etc.) with a simple grid-search".

:func:`synthesize` reproduces that loop:

1. enumerate an :class:`repro.core.config.RMIConfig` grid (by default
   the paper's: root in {linear, multivariate, NN 0-2 hidden layers of
   width 4..32}, linear leaves, a range of second-stage sizes);
2. train each candidate on the keys (optionally a sample for speed);
3. score each candidate by measured lookup latency over a query
   sample, with its size as tie-breaker, optionally under a size
   budget;
4. return the best built index plus the full scored grid, so callers
   can inspect the trade-off curve (the Figure 4 rows are exactly such
   a grid slice).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .config import RMIConfig
from .rmi import RecursiveModelIndex

__all__ = ["CandidateResult", "default_grid", "evaluate_config", "synthesize"]


@dataclass(frozen=True)
class CandidateResult:
    """A trained, measured grid point."""

    config: RMIConfig
    build_seconds: float
    lookup_ns: float
    size_bytes: int
    mean_window: float
    max_window: int

    def describe(self) -> str:
        return (
            f"{self.config.describe():40s} "
            f"lookup={self.lookup_ns:8.0f}ns size={self.size_bytes:>10d}B "
            f"window={self.mean_window:8.1f}"
        )


def default_grid(
    n_keys: int,
    *,
    leaf_counts: tuple[int, ...] | None = None,
    include_nn: bool = True,
) -> list[RMIConfig]:
    """The paper's Section 3.7.1 grid, scaled to the dataset size."""
    if leaf_counts is None:
        base = max(n_keys // 100, 16)
        leaf_counts = tuple(
            sorted({base // 2, base, base * 2})
        )
    grid: list[RMIConfig] = []
    for leaves in leaf_counts:
        grid.append(RMIConfig(root_kind="linear", num_leaves=leaves))
        grid.append(
            RMIConfig(
                root_kind="multivariate",
                root_features=("key", "log", "key^2"),
                num_leaves=leaves,
            )
        )
        if include_nn:
            for hidden in ((8,), (16,), (8, 8), (16, 16), (32, 32)):
                grid.append(
                    RMIConfig(
                        root_kind="nn", root_hidden=hidden, num_leaves=leaves
                    )
                )
    return grid


def evaluate_config(
    keys: np.ndarray,
    config: RMIConfig,
    *,
    query_sample: int = 2000,
    seed: int = 0,
) -> tuple[RecursiveModelIndex, CandidateResult]:
    """Train one candidate and measure its lookup latency."""
    start = time.perf_counter()
    index = RecursiveModelIndex(
        keys,
        stage_sizes=(1, config.num_leaves),
        model_factories=config.factories(),
        search_strategy=config.search_strategy,
    )
    build_seconds = time.perf_counter() - start
    rng = np.random.default_rng(seed)
    n = keys.size
    if n:
        sample = rng.choice(keys, size=min(query_sample, n))
        queries = [float(q) for q in sample]
        for q in queries[:64]:  # warm-up
            index.lookup(q)
        start = time.perf_counter()
        for q in queries:
            index.lookup(q)
        lookup_ns = (time.perf_counter() - start) / len(queries) * 1e9
    else:
        lookup_ns = 0.0
    result = CandidateResult(
        config=config,
        build_seconds=build_seconds,
        lookup_ns=lookup_ns,
        size_bytes=index.size_bytes(),
        mean_window=index.mean_error_window,
        max_window=index.max_error_window,
    )
    return index, result


def synthesize(
    keys: np.ndarray,
    *,
    grid: list[RMIConfig] | None = None,
    size_budget_bytes: int | None = None,
    query_sample: int = 2000,
    train_sample: int | None = None,
    seed: int = 0,
) -> tuple[RecursiveModelIndex, CandidateResult, list[CandidateResult]]:
    """Grid-search an RMI for ``keys``.

    Returns ``(best index, best result, all results)``.  When
    ``train_sample`` is given, candidates are trained and scored on a
    uniform subsample and only the winner is re-trained on the full
    keys (Section 3.6's sampling speed-up).
    """
    keys = np.asarray(keys)
    if grid is None:
        grid = default_grid(keys.size)
    if not grid:
        raise ValueError("empty configuration grid")

    search_keys = keys
    if train_sample is not None and keys.size > train_sample:
        picks = np.linspace(0, keys.size - 1, train_sample).round()
        search_keys = keys[picks.astype(np.int64)]

    results: list[CandidateResult] = []
    best: tuple[RecursiveModelIndex, CandidateResult] | None = None
    for config in grid:
        index, result = evaluate_config(
            search_keys, config, query_sample=query_sample, seed=seed
        )
        results.append(result)
        if size_budget_bytes is not None and result.size_bytes > size_budget_bytes:
            continue
        if best is None or (result.lookup_ns, result.size_bytes) < (
            best[1].lookup_ns,
            best[1].size_bytes,
        ):
            best = (index, result)
    if best is None:
        raise ValueError(
            "no configuration fits the size budget of "
            f"{size_budget_bytes} bytes"
        )
    best_index, best_result = best
    if search_keys is not keys:
        best_index, best_result = evaluate_config(
            keys, best_result.config, query_sample=query_sample, seed=seed
        )
    return best_index, best_result, results
