"""Index configuration dataclasses used by LIF (Section 3.1).

An index specification names the model hierarchy, the search strategy
and the dataset-independent hyper-parameters.  LIF enumerates these,
trains candidates, and measures them — "given an index specification,
LIF generates different index configurations, optimizes them, and
tests them automatically".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..models.linear import LinearModel
from ..models.multivariate import MultivariateLinearModel
from ..models.nn import NeuralRegressionModel

__all__ = ["RMIConfig", "root_factory", "ROOT_MODEL_KINDS"]

#: Root-model family names accepted by :func:`root_factory`.
ROOT_MODEL_KINDS = ("linear", "multivariate", "nn")


def root_factory(
    kind: str,
    *,
    hidden: tuple[int, ...] = (),
    features: tuple[str, ...] = ("key", "log", "key^2"),
    epochs: int = 20,
    seed: int = 0,
) -> Callable:
    """Zero-argument factory for a stage-1 model of the given family."""
    if kind == "linear":
        return LinearModel
    if kind == "multivariate":
        return lambda: MultivariateLinearModel(features=features)
    if kind == "nn":
        if not hidden:
            # A 0-hidden-layer NN is linear regression (Section 3.3).
            return LinearModel
        return lambda: NeuralRegressionModel(
            hidden=hidden, epochs=epochs, seed=seed
        )
    raise ValueError(f"unknown root model kind {kind!r}; known: {ROOT_MODEL_KINDS}")


@dataclass(frozen=True)
class RMIConfig:
    """One grid point of the Section 3.7.1 search space.

    The paper's grid: "neural nets with zero to two hidden layers and
    layer-width ranging from 4 to 32 nodes" at the root, linear leaves,
    second-stage sizes 10k-200k.
    """

    root_kind: str = "linear"
    root_hidden: tuple[int, ...] = ()
    root_features: tuple[str, ...] = ("key", "log", "key^2")
    num_leaves: int = 10_000
    search_strategy: str = "binary"
    epochs: int = 20
    extra: dict = field(default_factory=dict, compare=False, hash=False)

    def describe(self) -> str:
        if self.root_kind == "nn" and self.root_hidden:
            root = "nn" + "x".join(str(h) for h in self.root_hidden)
        elif self.root_kind == "multivariate":
            root = "mv(" + ",".join(self.root_features) + ")"
        else:
            root = "linear"
        return f"{root}/leaves={self.num_leaves}/{self.search_strategy}"

    def factories(self) -> list[Callable]:
        return [
            root_factory(
                self.root_kind,
                hidden=self.root_hidden,
                features=self.root_features,
                epochs=self.epochs,
            ),
            LinearModel,
        ]
