"""The Recursive Model Index (Section 3.2) — the paper's core system.

An RMI is a hierarchy of models: "at each stage the model takes the key
as an input and based on it picks another model, until the final stage
predicts the position".  Stage ℓ holds M_ℓ models; model selection is
``floor(M_ℓ * f_{ℓ-1}(x) / N)`` and each stage is trained on exactly
the keys the trained stages above route to it (stage-wise training,
Algorithm 1 lines 4-10).

Key properties reproduced here:

* **not a tree** — "it is possible that different models of one stage
  pick the same models at the stage below", and leaf models cover
  varying numbers of keys;
* **error bounds** — "we store the standard and min- and max-error for
  every model on the last stage", so each lookup searches only
  ``[pred - max_err, pred - min_err]`` (Section 3.4);
* **guaranteed correctness** — for stored keys the bounds are exact by
  construction; for absent keys under a non-monotonic model the bounded
  window can miss, in which case we "automatically adjust the search
  area" (Section 3.4) with an exponential-search fix-up — counted in
  :attr:`RecursiveModelIndex.stats` so benchmarks can report how rare
  it is;
* **scalar fast path** — leaf models are plain-float linear models by
  default; a lookup is a handful of Python float operations plus a
  bounded search, mirroring LIF's code-generated inference.

The public API is ``lookup`` / ``upper_bound`` / ``range_query`` /
``contains`` with lower-bound semantics identical to every baseline in
:mod:`repro.btree`, plus ``predict`` exposing (estimate, window) and
the batch variants ``lookup_batch`` / ``contains_batch``.

Throughput vs latency
---------------------
Two-stage RMIs with linear leaves compile to four flat NumPy arrays
(``slopes``, ``intercepts``, ``lo_offsets``, ``hi_offsets``), which
supports two distinct execution modes:

* ``lookup`` — the scalar *latency* path: one query at a time through
  plain Python floats (list mirrors of the compiled arrays), so
  measured ns/lookup and comparison counts reflect genuine per-query
  cost and stay comparable to the Section 2.1 cost model;
* ``lookup_batch`` — the vectorized *throughput* path: root
  ``predict_batch`` → vectorized leaf routing → gathered per-leaf
  affine predictions → clamped per-query windows → lock-step bounded
  binary search (:func:`repro.core.search.vectorized_bounded_search`)
  → vectorized lower-bound verification, with the rare Section 3.4
  misses fixed up by scalar exponential search.  Both paths return
  identical positions; the batch path just amortizes interpreter
  overhead across the whole query array, which is how SOSD-style
  benchmarks measure learned indexes.  ``lookup_batch_scalar`` keeps
  the per-query loop available so benchmarks can report both numbers.

``range_query_batch`` builds on the same engine (one concatenated
endpoint resolution + vectorized slice assembly, see
:mod:`repro.range_scan`), and ``lookup_batch(sort=...)`` adds the
sorted-batch fast path: sort + dedup once, search the unique queries,
scatter through the inverse map — a measured win on duplicate-heavy
(zipfian/hotspot) batches and bit-identical everywhere.

Construction (``build_mode``)
-----------------------------
Construction used to be the last interpreter-bound pass: stage-wise
training fit each of the (typically 10,000) leaf models in a Python
loop, then walked the leaves again for error bounds.  The default
``build_mode="vectorized"`` replaces both loops with single-pass array
math.  Keys route to leaves with one root ``predict_batch``; for a
linear stage, each leaf's least-squares line solves from per-leaf
sufficient statistics — within leaf ``j`` with members ``(x_i, y_i)``,
center on the leaf means and accumulate ``Σdx²`` and ``Σdx·dy`` with
``np.bincount(assignment, weights=...)``, giving

    ``slope_j = Σdx·dy / Σdx²``,  ``intercept_j = ȳ_j - slope_j·x̄_j``

for every leaf at once (:func:`repro.models.linear.segmented_linear_fit`;
empty and degenerate leaves fall back exactly as the scalar loop does).
Leaf error bounds likewise come from one vectorized pass over the
assignment-sorted signed errors (``np.minimum/maximum.reduceat`` +
``bincount`` moments).  ``build_mode="scalar"`` keeps the per-leaf
reference loop; the two modes are equivalence-pinned — same leaf
assignment, same models up to float tolerance, bit-identical lookups —
and the vectorized build is >10x faster at 1M keys / 10k leaves (see
the construction section of ``benchmarks/bench_throughput.py``), which
is what makes ``WritableLearnedIndex.merge`` retrains cheap.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..btree.search_baselines import exponential_search
from ..obs import MetricsRegistry
from ..models.base import ConstantModel, Model
from ..models.cdf import (
    ErrorStats,
    error_stats,
    error_stats_list_from_arrays,
    positions_for_keys,
    segmented_error_arrays,
)
from ..models.linear import (
    LinearModel,
    fit_linear_cdf_root,
    segmented_linear_fit,
)
from ..range_scan import RangeScanResult, batch_range_scan
from ..util import scalar_view
from .engine import (
    SORTED_BATCH_MIN_DUP_FRACTION,
    SORTED_BATCH_THRESHOLD,
    CompiledPlan,
    SortedKeyColumn,
    clamp_window,
    clamp_window_batch,
)
from .search import (
    Counter,
    bounded_search,
    verify_lower_bound,
)

__all__ = [
    "RecursiveModelIndex",
    "RMIStats",
    "BUILD_MODES",
    "DEFAULT_LEAF_ERROR",
    "SORTED_BATCH_THRESHOLD",
    "SORTED_BATCH_MIN_DUP_FRACTION",
    "clamp_window",
    "clamp_window_batch",
]

#: Accepted ``build_mode`` values: ``"vectorized"`` is the segmented
#: least-squares fast path (the default), ``"scalar"`` the per-leaf
#: reference loop it is equivalence-pinned against.
BUILD_MODES = ("vectorized", "scalar")

#: Error assigned to untrained (empty) leaves: one page worth of slack.
DEFAULT_LEAF_ERROR = 128


def _stat_field(slot: str):
    """Property mapping ``stats.<slot>`` (including ``+=``) onto the
    backing registry counter."""

    def _get(self):
        return self._counters[slot].value

    def _set(self, value):
        self._counters[slot].set(value)

    return property(_get, _set)


class RMIStats:
    """Lookup instrumentation for benchmarks and the cost model.

    A thin view over a per-index :class:`repro.obs.MetricsRegistry`:
    each field reads/writes a named ``rmi.*`` counter, so the same
    numbers surface through the obs exporters while the historical
    ``stats.lookups += 1`` idiom keeps working unchanged.
    """

    _FIELDS = ("lookups", "comparisons", "fixups", "window_total")

    lookups = _stat_field("lookups")
    comparisons = _stat_field("comparisons")
    fixups = _stat_field("fixups")
    window_total = _stat_field("window_total")

    def __init__(self, registry=None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            name: self.registry.counter("rmi." + name)
            for name in self._FIELDS
        }
        self.extra: dict = {}

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.set(0)
        self.extra.clear()

    @property
    def mean_window(self) -> float:
        return self.window_total / self.lookups if self.lookups else 0.0

    def __repr__(self) -> str:
        body = ", ".join(f"{n}={getattr(self, n)}" for n in self._FIELDS)
        return f"RMIStats({body})"


class RecursiveModelIndex:
    """A staged learned range index over a sorted key array.

    Parameters
    ----------
    keys:
        Sorted numpy array of keys (the data; not copied).
    stage_sizes:
        Models per stage, e.g. ``(1, 10_000)`` for the paper's standard
        two-stage RMI.  The first entry must be 1 (a single root).
    model_factories:
        One zero-argument :class:`repro.models.base.Model` factory per
        stage.  Defaults to linear regression everywhere — the paper's
        best second-stage choice and a solid root for smooth data; pass
        e.g. ``NeuralRegressionModel`` factories for the root to
        reproduce the grid-searched configurations.
    search_strategy:
        One of :data:`repro.core.search.SEARCH_STRATEGIES`.
    min_leaf_error:
        Lower clamp on the stored per-leaf error window; widening it
        trades comparisons for robustness on absent keys.
    build_mode:
        ``"vectorized"`` (default) fits every linear stage with the
        one-pass segmented least-squares engine
        (:func:`repro.models.linear.segmented_linear_fit`) and computes
        all leaf error bounds in one vectorized pass; ``"scalar"``
        keeps the per-leaf Python fit loop as the equivalence
        reference.  Both modes produce the same leaf assignment, the
        same models up to float tolerance, and bit-identical lookups.
    """

    def __init__(
        self,
        keys: np.ndarray,
        stage_sizes: Sequence[int] = (1, 100),
        model_factories: Sequence[Callable[[], Model]] | None = None,
        search_strategy: str = "binary",
        min_leaf_error: int = 0,
        build_mode: str = "vectorized",
    ):
        keys = np.asarray(keys)
        if keys.ndim != 1:
            raise ValueError("keys must be one-dimensional")
        # Comparison instead of np.diff: no int64 difference overflow
        # on huge key spans and no full-width temporary.
        if keys.size and np.any(keys[:-1] > keys[1:]):
            raise ValueError("keys must be sorted ascending")
        stage_sizes = tuple(int(m) for m in stage_sizes)
        if len(stage_sizes) < 1 or stage_sizes[0] != 1:
            raise ValueError("stage_sizes must start with a single root model")
        if any(m < 1 for m in stage_sizes):
            raise ValueError("every stage needs at least one model")
        if model_factories is None:
            model_factories = [LinearModel for _ in stage_sizes]
        if len(model_factories) != len(stage_sizes):
            raise ValueError("need one model factory per stage")
        if build_mode not in BUILD_MODES:
            raise ValueError(f"build_mode must be one of {BUILD_MODES}")
        self.build_mode = str(build_mode)
        self.keys = keys
        self._keys_view = scalar_view(keys)
        # The query core's view of the key column: dtype-preserving
        # exact comparisons for every batch path (ISSUE 5).
        self._column = SortedKeyColumn(keys)
        self.stage_sizes = stage_sizes
        self.search_strategy = str(search_strategy)
        self.min_leaf_error = int(min_leaf_error)
        self.stats = RMIStats()
        self._model_factories = list(model_factories)
        self._build()

    # -- training (Algorithm 1, lines 1-10) ----------------------------------

    def _build(self) -> None:
        n = self.keys.size
        keys_f = self.keys.astype(np.float64)
        positions = positions_for_keys(n)
        stages: list[list[Model]] = []
        # Parameter/bound arrays cached by the vectorized fit so
        # _compile can skip its per-leaf extraction loop; the scalar
        # build leaves them None and _compile reads the model objects.
        self._leaf_param_arrays: tuple[np.ndarray, np.ndarray] | None = None
        self._leaf_bound_arrays: tuple[np.ndarray, np.ndarray] | None = None
        # When the leaf stage is vectorized, the per-leaf Model objects
        # are materialized lazily from these parts (see __getattr__) —
        # a compiled index never needs them on the hot path.
        deferred_leaf_stage: tuple | None = None
        leaf_boundaries: np.ndarray | None = None
        # Which leaf-stage model each stored key routes to; needed for
        # both training subsets and error bookkeeping.
        assignment = np.zeros(n, dtype=np.int64)
        predictions = np.zeros(n, dtype=np.float64)
        last = len(self.stage_sizes) - 1

        for level, m_l in enumerate(self.stage_sizes):
            factory = self._model_factories[level]
            if level == 0:
                # Plain linear roots take the temp-free CDF fit; both
                # build modes share it, so leaf assignment stays equal.
                # The sniffed instance is reused for the fit when the
                # factory turns out non-linear — constructing an NN
                # root twice per (re)build would be real money.
                probe = None if factory is LinearModel else factory()
                if probe is None or type(probe) is LinearModel:
                    root: Model = fit_linear_cdf_root(keys_f, positions)
                else:
                    root = probe.fit(keys_f, positions)
                self._root_model = root
                predictions = np.asarray(
                    root.predict_batch(keys_f), dtype=np.float64
                )
                assignment[:] = 0
                stages.append([root])
                continue
            # Route every key by the stage above:
            # j = floor(M_l * f_prev(x) / N), clamped.  In-place ops
            # (same numerics as floor(predictions * m_l / n)); the
            # previous stage's predictions are dead after routing.
            if n:
                raw = predictions
                raw *= m_l
                raw /= max(n, 1)
                np.floor(raw, out=raw)
                np.clip(raw, 0, m_l - 1, out=raw)
                assignment = raw.astype(np.int64)
            if (
                self.build_mode == "vectorized"
                and self._stage_vectorizable(factory)
            ):
                # Compute the contiguity layout once; the error pass
                # below reuses the leaf stage's boundaries.
                if n and bool(np.all(assignment[1:] >= assignment[:-1])):
                    boundaries = np.searchsorted(
                        assignment, np.arange(m_l + 1), side="left"
                    )
                else:
                    boundaries = None
                slopes, intercepts, counts, predictions = (
                    segmented_linear_fit(
                        keys_f, positions, assignment, m_l,
                        return_predictions=True,
                        boundaries=boundaries,
                    )
                )
                empty = np.nonzero(counts == 0)[0].tolist()
                # Give empty slots their ConstantModel's value so the
                # cached arrays equal what _compile's extraction loop
                # would produce; no key routes to an empty leaf, so
                # predictions are unaffected.
                for j in empty:
                    intercepts[j] = self._empty_leaf_model(j, m_l, n).value
                self._leaf_param_arrays = (slopes, intercepts)
                parts = (slopes, intercepts, empty, m_l, n)
                if level == last:
                    deferred_leaf_stage = parts
                    leaf_boundaries = boundaries
                else:
                    stages.append(self._models_from_arrays(*parts))
            else:
                models, predictions = self._fit_stage_scalar(
                    keys_f, positions, assignment, m_l, factory
                )
                stages.append(models)

        self._leaf_assignment = assignment
        if deferred_leaf_stage is not None:
            self._deferred_leaf_stage = (stages, *deferred_leaf_stage)
        else:
            self._stages = stages
        if self.build_mode == "vectorized":
            self._compute_leaf_errors_vectorized(
                predictions, positions, boundaries=leaf_boundaries
            )
        else:
            self._compute_leaf_errors(predictions, positions)
        self._compile()

    def __getattr__(self, name: str):
        # Lazy views of the compiled arrays: a vectorized build defers
        # the per-leaf Model objects and ErrorStats rows (tens of
        # thousands of Python allocations) until something actually
        # introspects them.  __getattr__ only fires for attributes
        # missing from the instance, so once materialized — or on a
        # scalar build, which assigns both eagerly — access costs
        # nothing extra.
        if name == "_stages":
            parts = self.__dict__.get("_deferred_leaf_stage")
            if parts is not None:
                prefix, slopes, intercepts, empty, m_l, n = parts
                stages = [*prefix, self._models_from_arrays(
                    slopes, intercepts, empty, m_l, n
                )]
                self._stages = stages
                return stages
        elif name == "leaf_errors":
            parts = self.__dict__.get("_leaf_error_stat_arrays")
            if parts is not None:
                stats = error_stats_list_from_arrays(*parts)
                self.leaf_errors = stats
                return stats
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def _models_from_arrays(
        self,
        slopes: np.ndarray,
        intercepts: np.ndarray,
        empty: list[int],
        m_l: int,
        n: int,
    ) -> list[Model]:
        """Stage model objects from solved parameter arrays."""
        models: list[Model] = list(
            map(LinearModel, slopes.tolist(), intercepts.tolist())
        )
        for j in empty:
            models[j] = self._empty_leaf_model(j, m_l, n)
        return models

    @staticmethod
    def _stage_vectorizable(factory: Callable[[], Model]) -> bool:
        """Whether a stage's models can come from the segmented fit.

        The vectorized fit reproduces exactly plain
        :class:`~repro.models.linear.LinearModel` least squares, so
        anything else (NN leaves, subclasses overriding ``fit``) takes
        the per-model loop.  Factories are sniffed by instantiating one
        throwaway model, which also covers lambda factories.
        """
        if factory is LinearModel:
            return True
        try:
            probe = factory()
        except Exception:
            return False
        return type(probe) is LinearModel

    def _fit_stage_scalar(
        self,
        keys_f: np.ndarray,
        positions: np.ndarray,
        assignment: np.ndarray,
        m_l: int,
        factory: Callable[[], Model],
    ) -> tuple[list[Model], np.ndarray]:
        """Reference per-model fit loop (``build_mode="scalar"``)."""
        n = keys_f.size
        order = np.argsort(assignment, kind="stable")
        sorted_assign = assignment[order]
        boundaries = np.searchsorted(
            sorted_assign, np.arange(m_l + 1), side="left"
        )
        models: list[Model] = []
        new_predictions = np.zeros(n, dtype=np.float64)
        for j in range(m_l):
            members = order[boundaries[j]:boundaries[j + 1]]
            if members.size:
                model = factory().fit(keys_f[members], positions[members])
                new_predictions[members] = np.asarray(
                    model.predict_batch(keys_f[members]), dtype=np.float64
                )
            else:
                model = self._empty_leaf_model(j, m_l, n)
            models.append(model)
        return models, new_predictions

    def _empty_leaf_model(self, j: int, m_l: int, n: int) -> Model:
        """Model for a leaf that received no keys.

        Routing must stay total for absent keys, so empty leaves predict
        the position their slot would cover if the data were spread
        evenly — the neighbourhood interpolation keeps mispredictions
        within one slot of the truth.
        """
        if n == 0:
            return ConstantModel(0.0)
        return ConstantModel((j + 0.5) * n / m_l)

    def _default_leaf_error(self) -> ErrorStats:
        """Stats assigned to untrained leaves: one page of slack."""
        slack = min(DEFAULT_LEAF_ERROR, max(self.keys.size, 1))
        return ErrorStats(-slack, slack, 0.0, 0.0, 0)

    def _compute_leaf_errors_vectorized(
        self,
        predictions: np.ndarray,
        positions: np.ndarray,
        boundaries: np.ndarray | None = None,
    ) -> None:
        """All leaf error bounds in one vectorized pass.

        Same bounds as :meth:`_compute_leaf_errors` (min/max via
        ``np.minimum/maximum.reduceat`` over the assignment-ordered
        signed errors, moments via ``np.add.reduceat``) without the
        per-leaf Python scan.  Only the flat arrays are produced here:
        ``_compile`` consumes the window offsets directly, and the
        ``leaf_errors`` list of :class:`ErrorStats` materializes lazily
        on first access (``__getattr__``).
        """
        min_error, max_error, mean_abs, std, counts = (
            segmented_error_arrays(
                predictions,
                positions,
                self._leaf_assignment,
                self.stage_sizes[-1],
                default=self._default_leaf_error(),
                min_error_clamp=self.min_leaf_error,
                boundaries=boundaries,
            )
        )
        self.__dict__.pop("leaf_errors", None)
        self._leaf_error_stat_arrays = (
            min_error, max_error, mean_abs, std, counts,
        )
        self._leaf_bound_arrays = (
            max_error.astype(np.float64),
            min_error.astype(np.float64),
        )

    def _compute_leaf_errors(
        self, predictions: np.ndarray, positions: np.ndarray
    ) -> None:
        """Per-leaf signed min/max error over assigned keys (Section 3.4)."""
        leaves = self.stage_sizes[-1]
        self.leaf_errors: list[ErrorStats] = []
        n = self.keys.size
        default = self._default_leaf_error()
        if n == 0:
            self.leaf_errors = [default] * leaves
            return
        order = np.argsort(self._leaf_assignment, kind="stable")
        sorted_assign = self._leaf_assignment[order]
        boundaries = np.searchsorted(
            sorted_assign, np.arange(leaves + 1), side="left"
        )
        for j in range(leaves):
            members = order[boundaries[j]:boundaries[j + 1]]
            if members.size == 0:
                self.leaf_errors.append(default)
                continue
            stats = error_stats(predictions[members], positions[members])
            if self.min_leaf_error:
                stats = ErrorStats(
                    min(stats.min_error, -self.min_leaf_error),
                    max(stats.max_error, self.min_leaf_error),
                    stats.mean_absolute,
                    stats.std,
                    stats.count,
                )
            self.leaf_errors.append(stats)

    def _compile(self) -> None:
        """Extract linear-leaf parameters into flat NumPy arrays.

        The LIF analogue (Section 3.1): "given a trained Tensorflow
        model, LIF automatically extracts all weights from the model and
        generates efficient index structures".  With two stages and
        linear leaves the entire lookup becomes a handful of float
        operations over four flat arrays, with no per-model dispatch.

        The arrays are the canonical compiled form — ``lookup_batch``
        gathers from them directly.  The scalar latency path reads the
        ``*_list`` mirrors instead, because indexing a Python list
        returns a native float while indexing a numpy array boxes a
        ``np.float64`` per probe (see :mod:`repro.util`).

        ``_compiled`` means the arrays exist (batch engine usable);
        ``_fast`` additionally means scalar lookups may take the
        compiled path — hybrid indexes clear only ``_fast`` when B-Tree
        fallback leaves are installed.
        """
        self._fast = False
        self._compiled = False
        self._plan = None
        if len(self.stage_sizes) != 2:
            return
        m = self.stage_sizes[1]
        if (
            self._leaf_param_arrays is not None
            and self._leaf_bound_arrays is not None
        ):
            # The vectorized build already solved every leaf into flat
            # arrays (all leaves LinearModel/ConstantModel by
            # construction) — nothing to extract.
            slopes, intercepts = self._leaf_param_arrays
            lo_offsets, hi_offsets = self._leaf_bound_arrays
        else:
            slopes = np.zeros(m, dtype=np.float64)
            intercepts = np.zeros(m, dtype=np.float64)
            lo_offsets = np.zeros(m, dtype=np.float64)
            hi_offsets = np.zeros(m, dtype=np.float64)
            for j, (model, err) in enumerate(
                zip(self._stages[1], self.leaf_errors)
            ):
                if isinstance(model, LinearModel):
                    slopes[j] = model.slope
                    intercepts[j] = model.intercept
                elif isinstance(model, ConstantModel):
                    intercepts[j] = model.value
                else:
                    return
                lo_offsets[j] = float(err.max_error)
                hi_offsets[j] = float(err.min_error)
        self._leaf_slopes = slopes
        self._leaf_intercepts = intercepts
        self._leaf_lo_offsets = lo_offsets
        self._leaf_hi_offsets = hi_offsets
        self._leaf_slopes_list = slopes.tolist()
        self._leaf_intercepts_list = intercepts.tolist()
        self._leaf_lo_offsets_list = lo_offsets.tolist()
        self._leaf_hi_offsets_list = hi_offsets.tolist()
        # _root_model avoids touching _stages, which would materialize
        # the lazily deferred leaf-model objects.
        root = self._root_model
        self._root_predict = root.predict
        self._root_predict_batch = root.predict_batch
        # The whole batch surface is one shared-engine plan over the
        # compiled arrays; this class only adapts its public API to it.
        self._plan = CompiledPlan(
            self._column,
            root.predict_batch,
            m,
            slopes,
            intercepts,
            lo_offsets,
            hi_offsets,
        )
        self._compiled = True
        self._fast = True

    # -- serialization ---------------------------------------------------------

    def compiled_state(self) -> dict:
        """The compiled index as plain numbers + flat arrays.

        A compiled two-stage RMI with a :class:`LinearModel` root is
        fully determined by six values: the root's ``(slope,
        intercept)`` and the plan's four leaf tables — both the scalar
        fast path and the batch engine consume nothing else.  Returns
        ``{"root_slope", "root_intercept", "leaf_count"}`` plus the
        :meth:`CompiledPlan.export_arrays` entries; raises
        ``TypeError`` for indexes this flat form cannot represent
        (deeper hierarchies, non-linear roots, uncompiled leaves).
        """
        if not self._compiled or self._plan is None:
            raise TypeError(
                "only compiled two-stage indexes have a flat state"
            )
        root = self._root_model
        if type(root) is not LinearModel:
            raise TypeError(
                f"cannot serialize root model {type(root).__name__}; "
                "only LinearModel roots are supported"
            )
        state = {
            "root_slope": root.slope,
            "root_intercept": root.intercept,
            "leaf_count": self.stage_sizes[1],
        }
        state.update(self._plan.export_arrays())
        return state

    @classmethod
    def from_compiled_arrays(
        cls,
        keys: np.ndarray,
        *,
        root_slope: float,
        root_intercept: float,
        slopes: np.ndarray,
        intercepts: np.ndarray,
        lo_offsets: np.ndarray,
        hi_offsets: np.ndarray,
        search_strategy: str = "binary",
    ) -> "RecursiveModelIndex":
        """Rebuild a compiled index from :meth:`compiled_state` parts.

        The inverse of serialization, costing O(leaves) instead of a
        retrain: no fitting, no error pass, and no sortedness
        re-validation (the caller vouches for ``keys`` — the on-disk
        run format checksums them).  Lookups are bit-identical to the
        index that exported the state, because both paths read only
        the root parameters and the four arrays.  Diagnostic
        ``leaf_errors`` are approximated from the stored window
        offsets (zero mean/std, count 1) — bounds exact, moments not.
        """
        self = cls.__new__(cls)
        keys = np.asarray(keys)
        slopes = np.ascontiguousarray(slopes, dtype=np.float64)
        intercepts = np.ascontiguousarray(intercepts, dtype=np.float64)
        lo_offsets = np.ascontiguousarray(lo_offsets, dtype=np.float64)
        hi_offsets = np.ascontiguousarray(hi_offsets, dtype=np.float64)
        m = int(slopes.size)
        if not (
            intercepts.size == m
            and lo_offsets.size == m
            and hi_offsets.size == m
        ) or m < 1:
            raise ValueError("leaf arrays must share one nonzero length")
        self.build_mode = "vectorized"
        self.keys = keys
        self._keys_view = scalar_view(keys)
        self._column = SortedKeyColumn(keys)
        self.stage_sizes = (1, m)
        self.search_strategy = str(search_strategy)
        self.min_leaf_error = 0
        self.stats = RMIStats()
        self._model_factories = [LinearModel, LinearModel]
        root = LinearModel(root_slope, root_intercept)
        self._root_model = root
        self._leaf_param_arrays = (slopes, intercepts)
        self._leaf_bound_arrays = (lo_offsets, hi_offsets)
        # lo/hi offsets are the per-leaf max/min signed error; the
        # moments were not persisted, so the lazy ErrorStats rows carry
        # exact bounds with placeholder statistics.
        zeros = np.zeros(m, dtype=np.float64)
        self._leaf_error_stat_arrays = (
            hi_offsets, lo_offsets, zeros, zeros,
            np.ones(m, dtype=np.int64),
        )
        # Leaf Model objects materialize lazily via __getattr__ exactly
        # like a deferred vectorized build (empty-leaf slots were
        # folded into the intercepts at export; LinearModel(0, v)
        # predicts identically to ConstantModel(v)).
        self._deferred_leaf_stage = ([[root]], slopes, intercepts, [], m,
                                     keys.size)
        self._compile()
        return self

    # -- inference -------------------------------------------------------------

    def _leaf_for(self, key: float) -> tuple[int, float]:
        """Run all stages; return (leaf index, leaf prediction)."""
        n = self.keys.size
        prediction = self._stages[0][0].predict(key)
        leaf = 0
        for level in range(1, len(self.stage_sizes)):
            m_l = self.stage_sizes[level]
            j = int(prediction * m_l / n) if n else 0
            if j < 0:
                j = 0
            elif j >= m_l:
                j = m_l - 1
            prediction = self._stages[level][j].predict(key)
            leaf = j
        return leaf, prediction

    def predict(self, key: float) -> tuple[int, int, int]:
        """(position estimate, window lo, window hi) for ``key``.

        The true lower bound of a *stored* key always lies inside
        ``[lo, hi)``; hi is exclusive.
        """
        _leaf, est, lo, hi = self._predict_window(key)
        return est, lo, hi

    def _predict_window(self, key: float) -> tuple[int, int, int, int]:
        """(leaf, estimate, window lo, window hi) — the full hot path."""
        n = self.keys.size
        if n == 0:
            return 0, 0, 0, 0
        leaf, raw = self._leaf_for(key)
        est = int(raw)
        if est < 0:
            est = 0
        elif est >= n:
            est = n - 1
        stats = self.leaf_errors[leaf]
        # int() truncation + the conservative -1/+2 slack implements
        # floor/ceil for either sign without numpy scalar overhead.
        lo = int(raw - stats.max_error) - 1
        hi = int(raw - stats.min_error) + 2
        lo, hi = clamp_window(lo, hi, n)
        return leaf, est, lo, hi

    def lookup(self, key: float) -> int:
        """Position of the first stored key >= ``key`` (lower bound)."""
        n = self.keys.size
        if n == 0:
            return 0
        if self._fast and self.search_strategy in ("binary", "biased_binary"):
            return self._lookup_fast(key, n)
        self.stats.lookups += 1
        leaf, est, lo, hi = self._predict_window(key)
        self.stats.window_total += hi - lo
        counter = Counter()
        sigma = None
        if self.search_strategy == "biased_quaternary":
            # Paper: seed the three probes at pos +- sigma of the model.
            sigma = max(int(self.leaf_errors[leaf].std) or 1, 1)
        # hi is exclusive for the window, but the lower bound itself can
        # be == hi when every key in the window is < key.
        keys_view = self._keys_view
        pos = bounded_search(
            keys_view,
            key,
            lo,
            min(hi + 1, n),
            est,
            strategy=self.search_strategy,
            sigma=sigma,
            counter=counter,
        )
        self.stats.comparisons += counter.comparisons
        if not verify_lower_bound(keys_view, key, pos):
            # Section 3.4 fix-up for absent keys under non-monotonic
            # models: widen via exponential search from the bad position.
            self.stats.fixups += 1
            counter.reset()
            pos = exponential_search(keys_view, key, pos, counter)
            self.stats.comparisons += counter.comparisons
        return pos

    def _lookup_fast(self, key: float, n: int) -> int:
        """Compiled two-stage lookup: pure float math + bounded search."""
        stats = self.stats
        stats.lookups += 1
        m = self.stage_sizes[1]
        j = int(self._root_predict(key) * m / n)
        if j < 0:
            j = 0
        elif j >= m:
            j = m - 1
        raw = self._leaf_slopes_list[j] * key + self._leaf_intercepts_list[j]
        lo = int(raw - self._leaf_lo_offsets_list[j]) - 1
        hi = int(raw - self._leaf_hi_offsets_list[j]) + 2
        lo, hi = clamp_window(lo, hi, n)
        stats.window_total += hi - lo
        keys = self._keys_view
        comparisons = 0
        if self.search_strategy == "biased_binary":
            # First probe at the prediction instead of the window middle.
            est = int(raw)
            if est < lo:
                est = lo
            elif est >= hi:
                est = hi - 1
            comparisons += 1
            if keys[est] < key:
                lo = est + 1
            else:
                hi = est
        left, right = lo, hi
        while left < right:
            mid = (left + right) >> 1
            comparisons += 1
            if keys[mid] < key:
                left = mid + 1
            else:
                right = mid
        stats.comparisons += comparisons
        # Misprediction check (Section 3.4): widen if the window missed.
        if left < n and keys[left] < key:
            stats.fixups += 1
            return exponential_search(keys, key, left)
        if left > 0 and keys[left - 1] >= key:
            stats.fixups += 1
            return exponential_search(keys, key, left - 1)
        return left

    # -- range-index interface ---------------------------------------------------

    def upper_bound(self, key: float) -> int:
        """Position one past the last stored key <= ``key``.

        Duplicates are resolved by one ``searchsorted(side="right")``
        over the suffix starting at the lower bound — O(log d) for d
        duplicates instead of the naive O(d) scan.
        """
        pos = self.lookup(key)
        return pos + int(np.searchsorted(self.keys[pos:], key, side="right"))

    def contains(self, key: float) -> bool:
        pos = self.lookup(key)
        return pos < self.keys.size and self.keys[pos] == key

    def range_query(self, low: float, high: float) -> np.ndarray:
        """All stored keys in ``[low, high]``."""
        if high < low:
            return self.keys[0:0]
        start = self.lookup(low)
        end = self.lookup(high)
        end += int(np.searchsorted(self.keys[end:], high, side="right"))
        return self.keys[start:end]

    # -- batch interface ---------------------------------------------------------
    #
    # Every batch method below is a thin adapter over the shared query
    # core (repro.core.engine): queries are prepared once into the key
    # column's native dtype, the CompiledPlan runs route → window →
    # lock-step bounded search → verification → fix-up, and the column
    # primitives answer membership and duplicate widening.  No search
    # or comparison logic lives in this class.

    def _prepare_queries(self, queries) -> np.ndarray:
        """Normalize a raw query argument to a flat numpy array,
        keeping its native dtype (the engine compares int64/uint64
        queries exactly; float64 casts only happen for model
        inference)."""
        queries = np.asarray(queries)
        if queries.dtype == object:
            queries = queries.astype(np.float64)
        return queries.ravel()

    def _route_batch(
        self, queries: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(leaf indices, leaf raw predictions) for a query batch.

        Compatibility adapter over :meth:`CompiledPlan.route` for
        callers that reuse the routing alone (the learned hash
        function).  Requires a compiled two-stage index and a non-empty
        key array.
        """
        return self._plan.route(
            self._column.prepare(self._prepare_queries(queries))
        )

    def lookup_batch(
        self, queries: np.ndarray, *, sort: bool | None = None
    ) -> np.ndarray:
        """Lower-bound positions for a whole query batch.

        Compiled two-stage indexes run the shared vectorized engine;
        anything else (deeper hierarchies, non-linear leaves) falls
        back to the per-query loop.  Results are identical to calling
        :meth:`lookup` per query — the search strategy only changes the
        scalar probe schedule, never the returned position — and exact
        in the key dtype (int64 keys >= 2^53 included).

        ``sort`` controls the sorted-batch fast path (sort + dedup +
        engine over the sorted unique queries + inverse-map scatter):
        ``None`` (default) applies the size + duplicate-density
        heuristic, ``True``/``False`` force it on/off.  All three
        settings return bit-identical positions.
        """
        queries = self._prepare_queries(queries)
        if self.keys.size == 0:
            return np.zeros(queries.size, dtype=np.int64)
        if not self._compiled:
            return self.lookup_batch_scalar(queries)
        qb = self._column.prepare(queries)
        return self._plan.lookup_batch(qb, sort=sort, stats=self.stats)

    def lookup_batch_scalar(self, queries: np.ndarray) -> np.ndarray:
        """Per-query :meth:`lookup` loop — the interpreter-bound
        baseline that batch-throughput benchmarks compare against.
        ``tolist`` yields native Python scalars (ints for integer
        dtypes), so the loop compares exactly like the batch engine."""
        items = self._prepare_queries(queries).tolist()
        return np.array(
            [self.lookup(q) for q in items], dtype=np.int64
        )

    def _lower_bounds_with_batch(self, queries, sort=None):
        """(prepared batch, lower bounds) — one preparation, shared by
        the membership and widening surfaces below."""
        queries = self._prepare_queries(queries)
        if self.keys.size == 0:
            return None, np.zeros(queries.size, dtype=np.int64)
        qb = self._column.prepare(queries)
        if not self._compiled:
            return qb, self.lookup_batch_scalar(queries)
        return qb, self._plan.lookup_batch(qb, sort=sort, stats=self.stats)

    def contains_batch(self, queries: np.ndarray) -> np.ndarray:
        """Vectorized membership: one bool per query, dtype-exact."""
        qb, positions = self._lower_bounds_with_batch(queries)
        if qb is None:
            return np.zeros(positions.size, dtype=bool)
        return self._column.contains_at(qb, positions)

    def upper_bound_batch(
        self, queries: np.ndarray, *, sort: bool | None = None
    ) -> np.ndarray:
        """Vectorized :meth:`upper_bound`: one position per query.

        Lower bounds come from the batch engine; only queries that hit
        a stored key pay the duplicate-run widening (the column's one
        vectorized ``searchsorted(side="right")`` over the hits).
        """
        qb, positions = self._lower_bounds_with_batch(queries, sort=sort)
        if qb is None:
            return positions
        return self._column.upper_bounds(qb, positions)

    def range_query_batch(
        self, lows: np.ndarray, highs: np.ndarray, *, sort: bool | None = None
    ) -> RangeScanResult:
        """Batched :meth:`range_query`: all stored keys in each
        ``[lows[i], highs[i]]``.

        Both endpoint arrays resolve through :meth:`lookup_batch` in a
        single concatenated call (the sorted fast path applies to the
        combined batch), then one vectorized gather assembles every
        slice — see :mod:`repro.range_scan`.  ``result[i]`` is
        bit-identical to ``range_query(lows[i], highs[i])``.
        """
        return batch_range_scan(
            self.keys, lows, highs,
            lambda q: self.lookup_batch(q, sort=sort),
            column=self._column,
        )

    # -- accounting ----------------------------------------------------------------

    def size_bytes(self) -> int:
        """Model parameters plus per-leaf error bounds (2 x int32)."""
        total = 0
        for stage in self._stages:
            for model in stage:
                total += model.size_bytes()
        total += len(self.leaf_errors) * 8  # min/max error as 2x int32
        return total

    def model_op_count(self) -> int:
        """Multiply-adds for one full staged prediction (cost model)."""
        ops = self._stages[0][0].op_count()
        for level in range(1, len(self.stage_sizes)):
            # stage selection: one multiply + clamp, then the leaf model
            ops += 2 + self._stages[level][0].op_count()
        return ops

    @property
    def max_error_window(self) -> int:
        return max((s.window for s in self.leaf_errors), default=0)

    @property
    def mean_error_window(self) -> float:
        occupied = [s for s in self.leaf_errors if s.count]
        if not occupied:
            return 0.0
        return float(np.mean([s.window for s in occupied]))

    def leaf_model(self, j: int) -> Model:
        return self._stages[-1][j]

    def __repr__(self) -> str:
        return (
            f"RecursiveModelIndex(n={self.keys.size}, "
            f"stages={self.stage_sizes}, search={self.search_strategy!r}, "
            f"size={self.size_bytes()}B, "
            f"mean_window={self.mean_error_window:.1f})"
        )
