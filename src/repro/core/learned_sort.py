"""Learned sorting — the Section 7 "Beyond Indexing" sketch.

"the basic idea to speed-up sorting is to use an existing CDF model F
to put the records roughly in sorted order and then correct the nearly
perfectly sorted data, for example, with insertion sort."

:func:`learned_sort` implements that two-phase algorithm:

1. **model partition** — each element is placed into the output slot
   ``floor(F(x) * n)`` (counting-sort style, with per-slot overflow
   chains for collisions), which leaves the array *nearly* sorted when
   the model is good;
2. **correction** — a single adjacent-pass insertion sort fixes the
   local inversions; its cost is O(n + total displacement), so the
   better the CDF model, the closer the whole sort is to O(n).

The CDF model can be anything exposing ``predict_batch`` over keys and
trained on a *sample* of the data (a model trained on the full input
would be circular — it would already know the answer).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..models.linear import LinearModel, SplineSegmentModel

__all__ = ["learned_sort", "LearnedSortStats", "train_cdf_model_on_sample"]


@dataclass(frozen=True)
class LearnedSortStats:
    """Diagnostics of one learned-sort run."""

    n: int
    inversions_after_partition: int
    insertion_shifts: int

    @property
    def displacement_per_key(self) -> float:
        return self.insertion_shifts / self.n if self.n else 0.0


def train_cdf_model_on_sample(
    values: np.ndarray, sample_size: int = 1_024, seed: int = 0, knots: int = 64
):
    """Fit a monotone spline CDF model on a uniform random sample."""
    values = np.asarray(values, dtype=np.float64)
    rng = np.random.default_rng(seed)
    if values.size == 0:
        return LinearModel()
    size = min(sample_size, values.size)
    sample = np.sort(rng.choice(values, size=size, replace=False))
    positions = np.linspace(0.0, 1.0, size)
    if np.unique(sample).size < 2:
        return LinearModel().fit(sample, positions)
    model = SplineSegmentModel(knots=min(knots, size))
    return model.fit(sample, positions)


def learned_sort(
    values: np.ndarray,
    model=None,
    *,
    return_stats: bool = False,
):
    """Sort ``values`` using a learned CDF partition + insertion repair.

    Parameters
    ----------
    values:
        Unsorted numeric array (not modified).
    model:
        A CDF model mapping values to [0, 1] via ``predict_batch``;
        trained on a sample by default.
    return_stats:
        Also return :class:`LearnedSortStats`.
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.size
    if n <= 1:
        out = values.copy()
        return (out, LearnedSortStats(n, 0, 0)) if return_stats else out
    if model is None:
        model = train_cdf_model_on_sample(values)

    # Phase 1: model partition (counting-sort into predicted slots).
    predictions = np.asarray(model.predict_batch(values), dtype=np.float64)
    slots = np.clip((predictions * n).astype(np.int64), 0, n - 1)
    order = np.argsort(slots, kind="stable")
    nearly_sorted = values[order]

    inversions = int(np.sum(nearly_sorted[1:] < nearly_sorted[:-1]))

    # Phase 2: insertion-sort repair (cheap when nearly sorted).
    out = nearly_sorted.copy()
    shifts = 0
    for i in range(1, n):
        current = out[i]
        j = i - 1
        while j >= 0 and out[j] > current:
            out[j + 1] = out[j]
            j -= 1
            shifts += 1
        out[j + 1] = current

    if return_stats:
        return out, LearnedSortStats(n, inversions, shifts)
    return out
