"""Hybrid indexes — Algorithm 1's B-Tree fallback (Section 3.3).

"the index is optimized by replacing NN models with B-Trees if
absolute min-/max-error is above a predefined threshold ... hybrid
indexes allow us to bound the worst case performance of learned indexes
to the performance of B-Trees.  That is, in the case of an extremely
difficult to learn data distribution, all models would be automatically
replaced by B-Trees, making it virtually an entire B-Tree."

:class:`HybridIndex` extends the RMI: after stage-wise training, every
last-stage model whose ``max_abs_err`` exceeds ``threshold`` is swapped
for a dense B-Tree over the key range that model is responsible for.
Lookups route exactly like the RMI; keys landing on a replaced leaf
descend the per-leaf B-Tree instead of running the model.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..btree.btree import BTreeIndex
from ..btree.search_baselines import exponential_search
from ..models.base import Model
from .rmi import RecursiveModelIndex

__all__ = ["HybridIndex"]


class _LeafBTree:
    """A B-Tree fallback covering one leaf's position range."""

    __slots__ = ("base", "tree", "span")

    def __init__(self, keys: np.ndarray, base: int, end: int, page_size: int):
        self.base = int(base)
        self.span = int(end - base)
        self.tree = BTreeIndex(keys[base:end], page_size=page_size)

    def lookup(self, key: float) -> int:
        return self.base + self.tree.lookup(key)

    def size_bytes(self) -> int:
        return self.tree.size_bytes()


class HybridIndex(RecursiveModelIndex):
    """RMI whose inaccurate leaves are replaced by B-Trees.

    Parameters (beyond :class:`RecursiveModelIndex`)
    ----------
    threshold:
        Maximum tolerated absolute leaf error before replacement
        (Algorithm 1's ``threshold``; Figure 6 uses 64 and 128).
    btree_page_size:
        Page size of the fallback B-Trees.
    """

    def __init__(
        self,
        keys: np.ndarray,
        stage_sizes: Sequence[int] = (1, 100),
        model_factories: Sequence[Callable[[], Model]] | None = None,
        search_strategy: str = "binary",
        threshold: int = 128,
        btree_page_size: int = 128,
        build_mode: str = "vectorized",
    ):
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = int(threshold)
        self.btree_page_size = int(btree_page_size)
        self.leaf_btrees: dict[int, _LeafBTree] = {}
        super().__init__(
            keys,
            stage_sizes=stage_sizes,
            model_factories=model_factories,
            search_strategy=search_strategy,
            build_mode=build_mode,
        )
        self._replace_bad_leaves()

    # -- Algorithm 1, lines 11-14 ---------------------------------------------

    def _replace_bad_leaves(self) -> None:
        n = self.keys.size
        if n == 0:
            return
        assignment = self._leaf_assignment
        leaves = self.stage_sizes[-1]
        order = np.argsort(assignment, kind="stable")
        sorted_assign = assignment[order]
        boundaries = np.searchsorted(
            sorted_assign, np.arange(leaves + 1), side="left"
        )
        for j in range(leaves):
            stats = self.leaf_errors[j]
            if stats.count == 0 or stats.max_absolute <= self.threshold:
                continue
            members = order[boundaries[j]:boundaries[j + 1]]
            base = int(members.min())
            end = int(members.max()) + 1
            self.leaf_btrees[j] = _LeafBTree(
                self.keys, base, end, self.btree_page_size
            )
        # Leaves backed by B-Trees no longer satisfy the compiled
        # linear-leaf fast path assumptions.
        if self.leaf_btrees:
            self._fast = False

    # -- lookup -----------------------------------------------------------------

    def lookup(self, key: float) -> int:
        n = self.keys.size
        if n == 0:
            return 0
        if not self.leaf_btrees:
            return super().lookup(key)
        leaf, _raw = self._leaf_for(key)
        fallback = self.leaf_btrees.get(leaf)
        if fallback is None:
            return super().lookup(key)
        self.stats.lookups += 1
        pos = fallback.lookup(key)
        keys = self._keys_view
        # The per-leaf tree only sees its slice; absent keys outside the
        # slice boundaries need the usual widening fix-up.
        if (pos < n and keys[pos] < key) or (
            pos > 0 and keys[pos - 1] >= key
        ):
            self.stats.fixups += 1
            pos = exponential_search(keys, key, min(pos, n - 1))
        return pos

    def lookup_batch(
        self, queries: np.ndarray, *, sort: bool | None = None
    ) -> np.ndarray:
        """Batch lookups that respect the per-leaf B-Tree fallbacks.

        Queries routed to model-backed leaves run through the shared
        query core (one plan route, reused — including the sorted-batch
        fast path); queries landing on replaced leaves take the scalar
        fallback descent (they are the hard-to-learn minority by
        construction), comparing native Python scalars so integer keys
        beyond 2^53 stay exact.
        """
        queries = self._prepare_queries(queries)
        n = self.keys.size
        if n == 0:
            return np.zeros(queries.size, dtype=np.int64)
        if not self.leaf_btrees or not self._compiled:
            return super().lookup_batch(queries, sort=sort)
        qb = self._column.prepare(queries)
        leaf, raw = self._plan.route(qb)
        replaced_ids = np.fromiter(self.leaf_btrees, dtype=np.int64)
        replaced = np.isin(leaf, replaced_ids)
        out = np.empty(queries.size, dtype=np.int64)
        modeled = np.nonzero(~replaced)[0]
        if modeled.size:
            out[modeled] = self._plan.lookup_batch(
                qb.take(modeled),
                routed=(leaf[modeled], raw[modeled]),
                sort=sort,
                stats=self.stats,
            )
        keys = self._keys_view
        compare = qb.compare
        for i in np.nonzero(replaced)[0]:
            key = compare[i].item()
            self.stats.lookups += 1
            pos = self.leaf_btrees[int(leaf[i])].lookup(key)
            # Same slice-boundary fix-up as the scalar path.
            if (pos < n and keys[pos] < key) or (
                pos > 0 and keys[pos - 1] >= key
            ):
                self.stats.fixups += 1
                pos = exponential_search(keys, key, min(pos, n - 1))
            out[i] = pos
        if qb.oob_high is not None:
            # Queries above the key dtype's range: lower bound is n.
            out[qb.oob_high] = n
        return out

    # -- accounting ----------------------------------------------------------------

    def size_bytes(self) -> int:
        total = super().size_bytes()
        for fallback in self.leaf_btrees.values():
            total += fallback.size_bytes()
        return total

    @property
    def replaced_leaf_count(self) -> int:
        return len(self.leaf_btrees)

    @property
    def replaced_key_fraction(self) -> float:
        """Fraction of stored keys served by B-Tree leaves."""
        if self.keys.size == 0:
            return 0.0
        covered = sum(f.span for f in self.leaf_btrees.values())
        return min(covered / self.keys.size, 1.0)

    def __repr__(self) -> str:
        return (
            f"HybridIndex(n={self.keys.size}, stages={self.stage_sizes}, "
            f"threshold={self.threshold}, "
            f"replaced={self.replaced_leaf_count}/{self.stage_sizes[-1]}, "
            f"size={self.size_bytes()}B)"
        )
