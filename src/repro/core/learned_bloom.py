"""Learned Bloom filters (Section 5).

Two constructions from the paper, both preserving the zero-false-
negative guarantee of existence indexes:

* :class:`LearnedBloomFilter` (Section 5.1.1) — a binary classifier
  ``f`` with threshold tau plus an **overflow Bloom filter** over the
  classifier's false negatives ``K- = {x in K | f(x) < tau}``.  Query:
  if ``f(x) >= tau`` report present, else consult the overflow filter.
  Overall FPR is ``FPR_tau + (1 - FPR_tau) * FPR_B``; following the
  paper we set both budgets to ``p*/2`` and tune tau on a held-out
  non-key validation set.
* :class:`ModelHashBloomFilter` (Section 5.1.2 / Appendix E) — the
  classifier output is discretized into an ``m``-bit bitmap,
  ``M[floor(f(x) * m)] = 1`` for keys; a query must hit a set bitmap
  bit **and** pass an auxiliary standard Bloom filter sized for
  ``FPR_B = p* / FPR_m``.

The classifier is pluggable; the paper's GRU
(:class:`repro.models.gru.GRUClassifier`) is the default for URL keys.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bloom.standard import BloomFilter

__all__ = ["LearnedBloomFilter", "ModelHashBloomFilter", "ThresholdTuning"]


@dataclass(frozen=True)
class ThresholdTuning:
    """Record of how tau was chosen (reported by benchmarks)."""

    tau: float
    target_model_fpr: float
    validation_fpr: float
    false_negative_rate: float


def _tune_threshold(
    scores_nonkeys: np.ndarray, target_fpr: float
) -> float:
    """Smallest tau achieving ``FPR <= target`` on validation non-keys.

    FPR_tau = |{u : f(u) > tau}| / |U|; choosing tau as the
    (1 - target) quantile of non-key scores achieves it exactly up to
    ties.
    """
    if scores_nonkeys.size == 0:
        return 0.5
    if not 0.0 < target_fpr < 1.0:
        raise ValueError("target_fpr must be in (0, 1)")
    tau = float(np.quantile(scores_nonkeys, 1.0 - target_fpr))
    return min(max(tau, 0.0), 1.0)


class LearnedBloomFilter:
    """Classifier + overflow filter with zero false negatives.

    Parameters
    ----------
    model:
        Trained classifier exposing ``predict_proba(list[str]) ->
        array`` and ``predict_proba_one(str) -> float`` (and ideally
        ``size_bytes()``), e.g. :class:`repro.models.gru.GRUClassifier`.
    keys:
        The key set K; membership queries for these always return True.
    validation_nonkeys:
        Held-out non-keys used to tune tau (the paper's U~).
    target_fpr:
        Overall FPR budget p*; split per the paper as
        FPR_tau = FPR_B = p*/2 (overridable via ``model_fpr_share``).
    """

    def __init__(
        self,
        model,
        keys: list[str],
        validation_nonkeys: list[str],
        target_fpr: float = 0.01,
        *,
        model_fpr_share: float = 0.5,
    ):
        if not 0.0 < target_fpr < 1.0:
            raise ValueError("target_fpr must be in (0, 1)")
        if not 0.0 < model_fpr_share < 1.0:
            raise ValueError("model_fpr_share must be in (0, 1)")
        self.model = model
        self.target_fpr = float(target_fpr)
        model_budget = target_fpr * model_fpr_share
        overflow_budget = target_fpr * (1.0 - model_fpr_share)

        val_scores = np.asarray(model.predict_proba(validation_nonkeys))
        self.tau = _tune_threshold(val_scores, model_budget)
        validation_fpr = (
            float((val_scores > self.tau).mean()) if val_scores.size else 0.0
        )

        key_scores = np.asarray(model.predict_proba(keys))
        false_negatives = [
            key for key, score in zip(keys, key_scores) if score <= self.tau
        ]
        self.false_negative_rate = (
            len(false_negatives) / len(keys) if keys else 0.0
        )
        # Overflow filter sized for the spill-over keys only — this is
        # why the construction saves memory: it "scales with the FNR",
        # not with |K|.
        self.overflow = BloomFilter.for_capacity(
            max(len(false_negatives), 1), overflow_budget
        )
        self.overflow.add_batch(false_negatives)
        self.tuning = ThresholdTuning(
            tau=self.tau,
            target_model_fpr=model_budget,
            validation_fpr=validation_fpr,
            false_negative_rate=self.false_negative_rate,
        )

    def __contains__(self, key: str) -> bool:
        if self.model.predict_proba_one(key) > self.tau:
            return True
        return key in self.overflow

    def contains_batch(self, keys: list[str]) -> np.ndarray:
        """Vectorized membership: batched model scores, and only the
        sub-threshold minority consults the overflow filter (batched)."""
        keys = list(keys)
        scores = np.asarray(self.model.predict_proba(keys))
        out = scores > self.tau
        below = np.nonzero(~out)[0]
        if below.size:
            out[below] = self.overflow.contains_batch(
                [keys[i] for i in below]
            )
        return out

    def measured_fpr(self, test_nonkeys: list[str]) -> float:
        if not test_nonkeys:
            return 0.0
        return float(self.contains_batch(test_nonkeys).mean())

    def size_bytes(self) -> int:
        model_bytes = (
            self.model.size_bytes() if hasattr(self.model, "size_bytes") else 0
        )
        return model_bytes + self.overflow.size_bytes()

    def __repr__(self) -> str:
        return (
            f"LearnedBloomFilter(tau={self.tau:.4f}, "
            f"fnr={self.false_negative_rate:.1%}, "
            f"size={self.size_bytes()}B)"
        )


class ModelHashBloomFilter:
    """Appendix E: classifier output as a Bloom-filter hash function.

    The model maps keys toward high scores and non-keys toward low
    scores, so the discretized bitmap has "lots of collisions among
    keys and ... among non-keys, but few collisions of keys and
    non-keys" (Section 5.1.2).
    """

    def __init__(
        self,
        model,
        keys: list[str],
        validation_nonkeys: list[str],
        target_fpr: float = 0.01,
        *,
        bitmap_bits: int = 100_000,
    ):
        if not 0.0 < target_fpr < 1.0:
            raise ValueError("target_fpr must be in (0, 1)")
        if bitmap_bits < 8:
            raise ValueError("bitmap_bits must be >= 8")
        self.model = model
        self.target_fpr = float(target_fpr)
        self.bitmap_bits = int(bitmap_bits)
        self._bitmap = np.zeros((self.bitmap_bits + 7) // 8, dtype=np.uint8)

        key_scores = np.asarray(model.predict_proba(keys))
        positions = self._discretize(key_scores)
        for pos in positions:
            self._bitmap[pos >> 3] |= 1 << (pos & 7)

        # Measured bitmap FPR on validation non-keys:
        # FPR_m = sum(M[floor(f(x) m)]) / |U~|.
        val_scores = np.asarray(model.predict_proba(validation_nonkeys))
        if val_scores.size:
            val_positions = self._discretize(val_scores)
            hits = sum(
                (self._bitmap[p >> 3] >> (p & 7)) & 1 for p in val_positions
            )
            self.bitmap_fpr = float(hits / val_scores.size)
        else:
            self.bitmap_fpr = 1.0

        # Auxiliary filter at FPR_B = p* / FPR_m (Appendix E), over all
        # keys — both checks must pass, total FPR = FPR_m * FPR_B.
        aux_fpr = min(max(target_fpr / max(self.bitmap_fpr, 1e-9), 1e-6), 0.5)
        self.aux_fpr = aux_fpr
        self.aux = BloomFilter.for_capacity(max(len(keys), 1), aux_fpr)
        self.aux.add_batch(keys)

    def _discretize(self, scores: np.ndarray) -> np.ndarray:
        positions = (scores * self.bitmap_bits).astype(np.int64)
        return np.clip(positions, 0, self.bitmap_bits - 1)

    def _bitmap_hit(self, score: float) -> bool:
        pos = min(max(int(score * self.bitmap_bits), 0), self.bitmap_bits - 1)
        return bool((self._bitmap[pos >> 3] >> (pos & 7)) & 1)

    def __contains__(self, key: str) -> bool:
        if not self._bitmap_hit(self.model.predict_proba_one(key)):
            return False
        return key in self.aux

    def contains_batch(self, keys: list[str]) -> np.ndarray:
        """Batched membership: vectorized bitmap probe, then only the
        bitmap hits consult the auxiliary filter (batched)."""
        keys = list(keys)
        scores = np.asarray(self.model.predict_proba(keys))
        positions = self._discretize(scores)
        out = (
            (self._bitmap[positions >> 3] >> (positions & 7)) & 1
        ).astype(bool)
        hits = np.nonzero(out)[0]
        if hits.size:
            out[hits] = self.aux.contains_batch([keys[i] for i in hits])
        return out

    def measured_fpr(self, test_nonkeys: list[str]) -> float:
        if not test_nonkeys:
            return 0.0
        return float(self.contains_batch(test_nonkeys).mean())

    def size_bytes(self) -> int:
        model_bytes = (
            self.model.size_bytes() if hasattr(self.model, "size_bytes") else 0
        )
        return model_bytes + len(self._bitmap) + self.aux.size_bytes()

    def expected_total_fpr(self) -> float:
        return self.bitmap_fpr * self.aux_fpr

    def __repr__(self) -> str:
        return (
            f"ModelHashBloomFilter(m={self.bitmap_bits}, "
            f"bitmap_fpr={self.bitmap_fpr:.4f}, aux_fpr={self.aux_fpr:.4f}, "
            f"size={self.size_bytes()}B)"
        )
