"""Learned index over string keys (Sections 3.5 and 3.7.2).

Strings are tokenized into fixed-length ASCII vectors (Section 3.5).
The hierarchy mirrors the integer RMI:

* **stage 1** — a vector-input model: multivariate linear regression
  ``w . x + b`` over the token vector (the paper notes linear models
  scale O(N) in the input length) or a small MLP with one/two hidden
  layers (Figure 6's "1 hidden layer" / "2 hidden layers" rows);
* **stage 2** — thousands of cheap models.  Leaves operate on a
  *monotone scalar projection* of the string (base-257 prefix value,
  :func:`repro.models.tokenization.lexicographic_scalar`), which keeps
  them two-float-parameter linear models exactly like the integer RMI;
* per-leaf min/max error bounds and the same bounded last-mile search,
  over string comparisons this time (which is what makes search
  expensive and quaternary search worthwhile — Section 3.7.2);
* optional **hybrid fallback**: leaves worse than a threshold are
  replaced by :class:`repro.btree.GenericBTreeIndex` over their range
  (Figure 6's hybrid rows).

Lookups have lower-bound semantics over the lexicographically sorted
key list, for both present and absent query strings.
"""

from __future__ import annotations

import bisect

import numpy as np

from ..btree.btree import GenericBTreeIndex
from ..models.cdf import ErrorStats, segmented_error_stats
from ..range_scan import RangeScanResult, batch_range_scan_generic
from ..util import batch_contains_generic
from ..models.linear import LinearModel, segmented_linear_fit
from ..models.nn import MLP
from ..models.tokenization import (
    lexicographic_scalar,
    lexicographic_scalar_batch,
    tokenize,
    tokenize_batch,
)
from .engine import CompiledPlan, SortedKeyColumn, clamp_window
from .rmi import RMIStats

__all__ = ["StringRMI"]

_FLOAT_BYTES = 8


class _StringRootLinear:
    """Multivariate linear stage-1 model over token vectors."""

    def __init__(self, max_length: int):
        self.max_length = int(max_length)
        self.weights = np.zeros(self.max_length)
        self.bias = 0.0

    def fit(self, tokens: np.ndarray, positions: np.ndarray) -> None:
        design = np.column_stack([tokens, np.ones(tokens.shape[0])])
        solution, *_ = np.linalg.lstsq(design, positions, rcond=None)
        self.weights = solution[:-1]
        self.bias = float(solution[-1])
        self._weights_list = self.weights.tolist()

    def predict_one(self, vec: np.ndarray) -> float:
        return float(vec @ self.weights) + self.bias

    def predict_batch(self, tokens: np.ndarray) -> np.ndarray:
        return tokens @ self.weights + self.bias

    @property
    def param_count(self) -> int:
        return self.max_length + 1

    def op_count(self) -> int:
        return 2 * self.max_length + 1


class _StringRootMLP:
    """MLP stage-1 model over token vectors (Figure 6 hidden-layer rows)."""

    def __init__(
        self,
        max_length: int,
        hidden: tuple[int, ...],
        epochs: int = 40,
        seed: int = 0,
    ):
        self.max_length = int(max_length)
        self.net = MLP(self.max_length, hidden=hidden, seed=seed)
        self.epochs = int(epochs)

    def fit(self, tokens: np.ndarray, positions: np.ndarray) -> None:
        self.net.fit(
            tokens,
            positions,
            epochs=self.epochs,
            batch_size=min(512, max(len(positions), 1)),
            learning_rate=3e-3,
        )

    def predict_one(self, vec: np.ndarray) -> float:
        """Streamlined single-sample forward (no batch plumbing)."""
        net = self.net
        z = (vec - net.x_mean) / net.x_scale
        last = len(net.weights) - 1
        for i, (w, b) in enumerate(zip(net.weights, net.biases)):
            z = z @ w + b
            if i < last:
                np.maximum(z, 0.0, out=z)
        return float(z[0]) * net.y_scale + net.y_mean

    def predict_batch(self, tokens: np.ndarray) -> np.ndarray:
        return self.net.forward(tokens).ravel()

    @property
    def param_count(self) -> int:
        return self.net.param_count

    def op_count(self) -> int:
        return self.net.op_count()


class StringRMI:
    """Two-stage learned index over sorted string keys."""

    def __init__(
        self,
        keys: list[str],
        *,
        num_leaves: int = 1000,
        max_length: int = 24,
        hidden: tuple[int, ...] = (),
        search_strategy: str = "biased_binary",
        hybrid_threshold: int | None = None,
        btree_page_size: int = 128,
        epochs: int = 40,
        seed: int = 0,
    ):
        if any(keys[i] > keys[i + 1] for i in range(len(keys) - 1)):
            raise ValueError("keys must be sorted lexicographically")
        if num_leaves < 1:
            raise ValueError("num_leaves must be >= 1")
        self.keys = list(keys)
        self.num_leaves = int(num_leaves)
        self.max_length = int(max_length)
        self.search_strategy = str(search_strategy)
        self.hybrid_threshold = hybrid_threshold
        self.btree_page_size = int(btree_page_size)
        self.stats = RMIStats()
        self._build(hidden, epochs, seed)

    # -- training ---------------------------------------------------------------

    def _build(self, hidden: tuple[int, ...], epochs: int, seed: int) -> None:
        n = len(self.keys)
        tokens = tokenize_batch(self.keys, self.max_length)
        positions = np.arange(n, dtype=np.float64)
        if hidden:
            root = _StringRootMLP(self.max_length, hidden, epochs, seed)
        else:
            root = _StringRootLinear(self.max_length)
        if n:
            root.fit(tokens, positions)
            root_pred = root.predict_batch(tokens)
        else:
            root_pred = np.zeros(0)
        self.root = root

        m = self.num_leaves
        if n:
            assignment = np.clip(
                np.floor(root_pred * m / max(n, 1)), 0, m - 1
            ).astype(np.int64)
        else:
            assignment = np.zeros(0, dtype=np.int64)
        self._leaf_assignment = assignment

        scalars = lexicographic_scalar_batch(self.keys, self.max_length)
        self._scalars = scalars
        default = ErrorStats(-self.btree_page_size, self.btree_page_size, 0, 0, 0)
        # Leaves are always plain linear models over the lexicographic
        # scalar, so the whole stage fits in one segmented
        # least-squares pass — same math as the integer RMI's
        # vectorized build (see repro.core.rmi).
        slopes, intercepts, counts = segmented_linear_fit(
            scalars, positions, assignment, m
        )
        # Empty leaves predict their slot's midpoint, like the scalar
        # loop's ``(j + 0.5) * n / m`` fallback.
        empty = counts == 0
        if np.any(empty):
            slots = np.nonzero(empty)[0]
            intercepts[slots] = (slots + 0.5) * n / m
        if n:
            predictions = slopes[assignment] * scalars + intercepts[assignment]
        else:
            predictions = np.zeros(0)
        self._leaf_slopes = slopes.tolist()
        self._leaf_intercepts = intercepts.tolist()
        self.leaf_models = list(
            map(LinearModel, self._leaf_slopes, self._leaf_intercepts)
        )
        leaf_stats, lo_offsets, hi_offsets = segmented_error_stats(
            predictions, positions, assignment, m,
            default=default, with_bounds=True,
        )
        self.leaf_errors = leaf_stats
        # The batch path adapts over the shared query core through the
        # *encoded* key column (the lexicographic scalar projection is
        # monotone over the sorted strings): the plan owns the flat
        # leaf tables and the Section 3.4 window formula; only the
        # last-mile search stays a bounded ``bisect`` per query, since
        # numpy cannot compare Python strings.
        self._plan = CompiledPlan(
            SortedKeyColumn(scalars),
            None,  # the root consumes token matrices, routed explicitly
            m,
            slopes,
            intercepts,
            lo_offsets,
            hi_offsets,
        )

        # Hybrid replacement (Algorithm 1 lines 11-14) on string leaves.
        self.leaf_btrees: dict[int, tuple[int, GenericBTreeIndex]] = {}
        if self.hybrid_threshold is not None:
            order = np.argsort(assignment, kind="stable")
            boundaries = np.searchsorted(
                assignment[order], np.arange(m + 1), "left"
            )
            for j in range(m):
                stats = leaf_stats[j]
                if stats.count == 0 or stats.max_absolute <= self.hybrid_threshold:
                    continue
                members = order[boundaries[j]:boundaries[j + 1]]
                base = int(members.min())
                end = int(members.max()) + 1
                tree = GenericBTreeIndex(
                    self.keys[base:end], page_size=self.btree_page_size
                )
                self.leaf_btrees[j] = (base, tree)

    # -- inference ----------------------------------------------------------------

    def _featurize(self, key: str) -> tuple[np.ndarray, float]:
        """Token vector and lexicographic scalar in one pass."""
        max_length = self.max_length
        vec = np.zeros(max_length)
        scalar = 0.0
        scale = 1.0
        for i in range(max_length):
            scale /= 257.0
            if i < len(key):
                code = ord(key[i])
                if code > 255:
                    code = 255
                vec[i] = code
                scalar += (code + 1) * scale
        return vec, scalar

    def _route(self, key: str) -> tuple[int, float]:
        """(leaf index, leaf position prediction) for a query string."""
        n = len(self.keys)
        vec, scalar = self._featurize(key)
        root_pred = self.root.predict_one(vec)
        m = self.num_leaves
        j = int(root_pred * m / n) if n else 0
        if j < 0:
            j = 0
        elif j >= m:
            j = m - 1
        raw = self._leaf_slopes[j] * scalar + self._leaf_intercepts[j]
        return j, raw

    def predict(self, key: str) -> tuple[int, int, int]:
        """(estimate, window lo, window hi) like the integer RMI."""
        n = len(self.keys)
        if n == 0:
            return 0, 0, 0
        leaf, raw = self._route(key)
        est = min(max(int(raw), 0), n - 1)
        err = self.leaf_errors[leaf]
        lo, hi = clamp_window(
            int(raw - err.max_error) - 1, int(raw - err.min_error) + 2, n
        )
        return est, lo, hi

    def lookup(self, key: str) -> int:
        """Lower-bound position of ``key`` among the sorted strings."""
        n = len(self.keys)
        if n == 0:
            return 0
        self.stats.lookups += 1
        leaf, raw = self._route(key)
        fallback = self.leaf_btrees.get(leaf)
        if fallback is not None:
            base, tree = fallback
            pos = base + tree.lookup(key)
        else:
            est = min(max(int(raw), 0), n - 1)
            err = self.leaf_errors[leaf]
            lo, hi = clamp_window(
                int(raw - err.max_error) - 1, int(raw - err.min_error) + 2, n
            )
            self.stats.window_total += hi - lo
            pos = self._bounded_string_search(key, lo, hi, est, err)
        # Absent keys under a non-monotonic root can escape the window.
        keys = self.keys
        if (pos < n and keys[pos] < key) or (pos > 0 and keys[pos - 1] >= key):
            self.stats.fixups += 1
            pos = bisect.bisect_left(keys, key)
        return pos

    def _bounded_string_search(
        self, key: str, lo: int, hi: int, guess: int, err: ErrorStats
    ) -> int:
        keys = self.keys
        stats = self.stats
        strategy = self.search_strategy
        if strategy == "biased_quaternary":
            sigma = max(int(err.std) or 1, 1)
            center = min(max(guess, lo), hi - 1)
            p1 = min(max(center - sigma, lo), hi - 1)
            p2 = center
            p3 = min(max(center + sigma, lo), hi - 1)
            stats.comparisons += 3
            if keys[p1] >= key:
                hi = p1 + 1
            elif keys[p2] >= key:
                lo, hi = p1 + 1, p2 + 1
            elif keys[p3] >= key:
                lo, hi = p2 + 1, p3 + 1
            else:
                lo = p3 + 1
        elif strategy == "biased_binary":
            mid = min(max(guess, lo), hi - 1)
            stats.comparisons += 1
            if keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        left, right = lo, hi
        while left < right:
            mid = (left + right) >> 1
            stats.comparisons += 1
            if keys[mid] < key:
                left = mid + 1
            else:
                right = mid
        return left

    def lookup_batch(self, queries: list[str]) -> np.ndarray:
        """Batched lower-bound lookups.

        Featurization, root inference and leaf routing are fully
        vectorized (for MLP roots that is where nearly all the time
        goes); the last mile is a bounded ``bisect`` per query inside
        its model window, since numpy cannot compare Python strings.
        Results match :meth:`lookup` exactly.
        """
        queries = list(queries)
        n = len(self.keys)
        out = np.zeros(len(queries), dtype=np.int64)
        if n == 0 or not queries:
            return out
        tokens = tokenize_batch(queries, self.max_length)
        scalars = lexicographic_scalar_batch(queries, self.max_length)
        root_pred = np.asarray(
            self.root.predict_batch(tokens), dtype=np.float64
        )
        m = self.num_leaves
        leaf = (root_pred * m / n).astype(np.int64)
        np.clip(leaf, 0, m - 1, out=leaf)
        # Shared engine: gathered per-leaf affine predictions over the
        # encoded scalars, then the Section 3.4 window formula + clamp.
        raw = self._plan.leaf_predict(leaf, scalars)
        lo, hi = self._plan.windows_from_raw(leaf, raw)
        keys = self.keys
        self.stats.lookups += len(queries)
        self.stats.window_total += int((hi - lo).sum())
        for i, q in enumerate(queries):
            fallback = self.leaf_btrees.get(int(leaf[i]))
            if fallback is not None:
                base, tree = fallback
                pos = base + tree.lookup(q)
            else:
                # hi is exclusive for the window; the lower bound can
                # be == hi when every windowed key is < q.
                pos = bisect.bisect_left(
                    keys, q, int(lo[i]), min(int(hi[i]) + 1, n)
                )
            if (pos < n and keys[pos] < q) or (
                pos > 0 and keys[pos - 1] >= q
            ):
                self.stats.fixups += 1
                pos = bisect.bisect_left(keys, q)
            out[i] = pos
        return out

    def contains(self, key: str) -> bool:
        pos = self.lookup(key)
        return pos < len(self.keys) and self.keys[pos] == key

    def contains_batch(self, queries: list[str]) -> np.ndarray:
        """Batched membership over the sorted string keys."""
        queries = list(queries)
        return batch_contains_generic(
            self.keys, queries, self.lookup_batch(queries)
        )

    def upper_bound(self, key: str) -> int:
        """Position one past the last stored string <= ``key``."""
        return bisect.bisect_right(self.keys, key, self.lookup(key))

    def range_query(self, low: str, high: str) -> list[str]:
        """All stored strings in ``[low, high]``."""
        if high < low:
            return []
        return self.keys[self.lookup(low):self.upper_bound(high)]

    def range_query_batch(self, lows: list[str], highs: list[str]) -> RangeScanResult:
        """Batched :meth:`range_query` over parallel endpoint lists.

        Endpoint resolution runs through the vectorized
        :meth:`lookup_batch` (featurization + root inference + leaf
        routing amortize over ``2m`` strings); duplicate widening and
        slice assembly are ``bisect``/list operations, since numpy
        cannot compare Python strings.
        """
        return batch_range_scan_generic(
            self.keys, lows, highs, self.lookup_batch
        )

    # -- accounting ------------------------------------------------------------------

    def size_bytes(self) -> int:
        total = self.root.param_count * _FLOAT_BYTES
        total += len(self.leaf_models) * 2 * _FLOAT_BYTES
        total += len(self.leaf_errors) * 8  # packed min/max int32 errors
        for base, tree in self.leaf_btrees.values():
            total += tree.size_bytes()
        return total

    def model_op_count(self) -> int:
        # tokenization + root + route + leaf linear model
        return self.max_length + self.root.op_count() + 2 + 2

    @property
    def mean_error_window(self) -> float:
        occupied = [s for s in self.leaf_errors if s.count]
        if not occupied:
            return 0.0
        return float(np.mean([s.window for s in occupied]))

    @property
    def replaced_leaf_count(self) -> int:
        return len(self.leaf_btrees)

    def __repr__(self) -> str:
        return (
            f"StringRMI(n={len(self.keys)}, leaves={self.num_leaves}, "
            f"max_length={self.max_length}, "
            f"hybrid={self.hybrid_threshold}, size={self.size_bytes()}B)"
        )
