"""Learned index over paged (disk-style) storage — Appendix D.2.

The in-memory RMI assumes "the data ... stored in one continuous
block"; disk-resident data instead lives in fixed-size pages scattered
over arbitrary storage locations, which "violates pos = Pr(X < Key) * N".
Appendix D.2 outlines the fix implemented here: "another option is to
have an additional translation table in the form of <first_key,
disk-position>.  With the translation table the rest of the index
structure remains the same ... it is possible to use the predicted
position with the min- and max-error to reduce the number of bytes
which have to be read from a large page."

:class:`PagedLearnedIndex` composes:

* a :class:`PageStore` — a simulated block device holding fixed-size
  key pages at shuffled physical locations, counting page reads and
  bytes transferred (the metrics that matter on disk);
* the standard RMI trained over the *logical* key order;
* the translation table mapping logical page number -> physical page.

A lookup predicts a logical position, translates the (at most two,
when the error window straddles a boundary) candidate pages, reads
them, and finishes with in-page binary search — giving the B-Tree's
I/O profile with the RMI's memory footprint.  The error window also
bounds the *byte range* read inside a page, reproducing the appendix's
partial-read observation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .rmi import RecursiveModelIndex

__all__ = ["PageStore", "PagedLearnedIndex"]

_KEY_BYTES = 8


class PageStore:
    """A simulated block device of fixed-size key pages.

    Pages are stored at shuffled physical indexes (like extents on a
    fragmented disk); every read is accounted.  ``partial_reads=True``
    lets callers fetch a byte sub-range of a page (modern NVMe / object
    stores); otherwise whole pages transfer.
    """

    def __init__(
        self,
        sorted_keys: np.ndarray,
        page_size: int = 256,
        *,
        shuffle_seed: int = 0,
        partial_reads: bool = False,
        buffer_pages: int = 4,
    ):
        keys = np.asarray(sorted_keys, dtype=np.int64)
        if keys.size and np.any(np.diff(keys) < 0):
            raise ValueError("keys must be sorted ascending")
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        self.page_size = int(page_size)
        self.partial_reads = bool(partial_reads)
        # A tiny LRU buffer pool: repeated touches of a just-read page
        # within a lookup are buffer hits, not I/O (as on any real
        # storage engine).
        self.buffer_pages = int(buffer_pages)
        self._buffer: dict[int, np.ndarray] = {}
        self.num_pages = max((keys.size + page_size - 1) // page_size, 1)
        rng = np.random.default_rng(shuffle_seed)
        physical_of_logical = rng.permutation(self.num_pages)
        self._pages: list[np.ndarray] = [None] * self.num_pages  # type: ignore
        for logical in range(self.num_pages):
            chunk = keys[logical * page_size:(logical + 1) * page_size]
            self._pages[int(physical_of_logical[logical])] = chunk
        self.translation = physical_of_logical  # logical -> physical
        self.page_reads = 0
        self.bytes_read = 0

    def read_page(
        self, physical: int, first_slot: int = 0, last_slot: int | None = None
    ) -> np.ndarray:
        """Fetch (a slice of) a physical page, with I/O accounting."""
        if not 0 <= physical < self.num_pages:
            raise IndexError(f"physical page {physical} out of range")
        page = self._buffer.get(physical)
        buffered = page is not None
        if not buffered:
            page = self._pages[physical]
            self.page_reads += 1
            if self.buffer_pages:
                self._buffer[physical] = page
                while len(self._buffer) > self.buffer_pages:
                    self._buffer.pop(next(iter(self._buffer)))
        if self.partial_reads and last_slot is not None:
            first_slot = max(first_slot, 0)
            last_slot = min(last_slot, len(page))
            if not buffered:
                self.bytes_read += max(last_slot - first_slot, 0) * _KEY_BYTES
            return page[first_slot:last_slot]
        if not buffered:
            self.bytes_read += len(page) * _KEY_BYTES
        return page

    def reset_io(self) -> None:
        self.page_reads = 0
        self.bytes_read = 0
        self._buffer.clear()


class PagedLearnedIndex:
    """RMI + translation table over a :class:`PageStore`."""

    def __init__(
        self,
        keys: np.ndarray,
        *,
        page_size: int = 256,
        stage_sizes: Sequence[int] = (1, 100),
        shuffle_seed: int = 0,
        partial_reads: bool = False,
    ):
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size and np.any(np.diff(keys) <= 0):
            raise ValueError("keys must be sorted and unique")
        self.n = int(keys.size)
        self.page_size = int(page_size)
        self.store = PageStore(
            keys,
            page_size,
            shuffle_seed=shuffle_seed,
            partial_reads=partial_reads,
        )
        # The RMI is trained on the logical (sorted) order; only key
        # *values* and positions are needed, not the physical layout.
        self._rmi = RecursiveModelIndex(keys, stage_sizes=stage_sizes)
        # Keep no reference to the dense array: reads must go through
        # the page store, like a real disk-resident index.
        self._rmi_keys = None

    # -- lookup ---------------------------------------------------------------

    def lookup(self, key: float) -> tuple[int, int]:
        """(logical page, slot) of the lower bound of ``key``.

        Reads at most the pages the error window touches (one page in
        the common case), then binary-searches inside.
        """
        if self.n == 0:
            return 0, 0
        _leaf, est, lo, hi = self._rmi._predict_window(float(key))
        first_page = lo // self.page_size
        last_page = min(hi, self.n - 1) // self.page_size
        position = None
        for logical in range(first_page, last_page + 1):
            slot_lo = lo - logical * self.page_size
            slot_hi = hi - logical * self.page_size
            chunk = self.store.read_page(
                int(self.store.translation[logical]),
                max(slot_lo, 0),
                min(max(slot_hi, 0), self.page_size)
                if self.store.partial_reads
                else None,
            )
            base = (
                logical * self.page_size + max(slot_lo, 0)
                if self.store.partial_reads
                else logical * self.page_size
            )
            inside = int(np.searchsorted(chunk, key, side="left"))
            if inside < len(chunk):
                position = base + inside
                break
        if position is None:
            # key greater than everything in the window: next position
            position = min(
                (last_page * self.page_size)
                + len(self.store._pages[int(self.store.translation[last_page])]),
                self.n,
            )
            position = max(position, hi)
        # Window misses (non-monotonic roots on absent keys) fall back
        # to logical page walking.
        position = self._verify(key, position)
        return position // self.page_size, position % self.page_size

    def _verify(self, key: float, position: int) -> int:
        """Ensure lower-bound semantics, paging in neighbours if needed."""
        while True:
            current = self._key_at(position) if position < self.n else None
            previous = self._key_at(position - 1) if position > 0 else None
            if current is not None and current < key:
                position += 1
                continue
            if previous is not None and previous >= key:
                position -= 1
                continue
            return position

    def _key_at(self, position: int) -> int:
        logical = position // self.page_size
        slot = position % self.page_size
        chunk = self.store.read_page(
            int(self.store.translation[logical]), slot, slot + 1
        ) if self.store.partial_reads else self.store.read_page(
            int(self.store.translation[logical])
        )
        if self.store.partial_reads:
            return int(chunk[0])
        return int(chunk[slot])

    def contains(self, key: float) -> bool:
        if self.n == 0:
            return False
        page, slot = self.lookup(key)
        position = page * self.page_size + slot
        if position >= self.n:
            return False
        return self._key_at(position) == int(key)

    # -- accounting ---------------------------------------------------------------

    def size_bytes(self) -> int:
        """Index overhead: the RMI plus the translation table."""
        return self._rmi.size_bytes() + self.store.num_pages * 8

    def io_stats(self) -> tuple[int, int]:
        """(page reads, bytes read) since the last reset."""
        return self.store.page_reads, self.store.bytes_read

    def reset_io(self) -> None:
        self.store.reset_io()

    def __repr__(self) -> str:
        return (
            f"PagedLearnedIndex(n={self.n}, page_size={self.page_size}, "
            f"pages={self.store.num_pages}, size={self.size_bytes()}B)"
        )
