"""Learned index over paged (disk-style) storage — Appendix D.2.

The in-memory RMI assumes "the data ... stored in one continuous
block"; disk-resident data instead lives in fixed-size pages scattered
over arbitrary storage locations, which "violates pos = Pr(X < Key) * N".
Appendix D.2 outlines the fix implemented here: "another option is to
have an additional translation table in the form of <first_key,
disk-position>.  With the translation table the rest of the index
structure remains the same ... it is possible to use the predicted
position with the min- and max-error to reduce the number of bytes
which have to be read from a large page."

:class:`PagedLearnedIndex` composes:

* a :class:`PageStore` — a simulated block device holding fixed-size
  key pages at shuffled physical locations, counting page reads and
  bytes transferred (the metrics that matter on disk);
* the standard RMI trained over the *logical* key order;
* the translation table mapping logical page number -> physical page.

A lookup predicts a logical position, translates the (at most two,
when the error window straddles a boundary) candidate pages, reads
them, and finishes with in-page binary search — giving the B-Tree's
I/O profile with the RMI's memory footprint.  The error window also
bounds the *byte range* read inside a page, reproducing the appendix's
partial-read observation.

Batch reads (``lookup_batch`` / ``contains_batch`` /
``range_query_batch``) add the property that matters most on disk:
**per-batch IO accounting**.  All query windows are predicted
vectorized, the union of touched logical pages is computed up front,
and every page transfers *once per batch* no matter how many queries'
windows land on it — so a skewed 100k-query batch over a handful of
hot pages costs a handful of page reads, where the scalar loop pays
one or two reads per query.  The in-window search then runs the same
lock-step engine the in-memory RMI uses, over the concatenation of the
fetched pages.  Batch reads always transfer *whole* pages (many
queries' windows share each page, so there is no single byte range to
clip); ``partial_reads`` narrows transfers on the scalar path only.
"""

from __future__ import annotations

import os
from typing import Sequence

import numpy as np

from ..obs import MetricsRegistry
from ..range_scan import RangeScanResult, assemble_slices
from .rmi import RecursiveModelIndex
from .search import vectorized_bounded_search


def _io_counter(slot: str):
    """IO-accounting fields are views over the store's obs registry:
    ``store.page_reads += 1`` reads and writes the ``paged.io.*``
    counter, so exporters see the same numbers the tests pin."""

    def _get(self):
        return self._io_counters[slot].value

    def _set(self, value):
        self._io_counters[slot].set(value)

    return property(_get, _set)

__all__ = ["PageStore", "FilePageStore", "PagedLearnedIndex"]

_KEY_BYTES = 8


class PageStore:
    """A simulated block device of fixed-size key pages.

    Pages are stored at shuffled physical indexes (like extents on a
    fragmented disk); every read is accounted.  ``partial_reads=True``
    lets callers fetch a byte sub-range of a page (modern NVMe / object
    stores); otherwise whole pages transfer.
    """

    page_reads = _io_counter("page_reads")
    bytes_read = _io_counter("bytes_read")

    def __init__(
        self,
        sorted_keys: np.ndarray,
        page_size: int = 256,
        *,
        shuffle_seed: int = 0,
        partial_reads: bool = False,
        buffer_pages: int = 4,
    ):
        keys = np.asarray(sorted_keys, dtype=np.int64)
        if keys.size and np.any(np.diff(keys) < 0):
            raise ValueError("keys must be sorted ascending")
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        self.page_size = int(page_size)
        self.partial_reads = bool(partial_reads)
        # A tiny LRU buffer pool: repeated touches of a just-read page
        # within a lookup are buffer hits, not I/O (as on any real
        # storage engine).
        self.buffer_pages = int(buffer_pages)
        self._buffer: dict[int, np.ndarray] = {}
        self.num_pages = max((keys.size + page_size - 1) // page_size, 1)
        rng = np.random.default_rng(shuffle_seed)
        physical_of_logical = rng.permutation(self.num_pages)
        self._pages: list[np.ndarray] = [None] * self.num_pages  # type: ignore
        for logical in range(self.num_pages):
            chunk = keys[logical * page_size:(logical + 1) * page_size]
            self._pages[int(physical_of_logical[logical])] = chunk
        self.translation = physical_of_logical  # logical -> physical
        self.registry = MetricsRegistry()
        self._io_counters = {
            name: self.registry.counter("paged.io." + name)
            for name in ("page_reads", "bytes_read")
        }

    def read_page(
        self, physical: int, first_slot: int = 0, last_slot: int | None = None
    ) -> np.ndarray:
        """Fetch (a slice of) a physical page, with I/O accounting."""
        if not 0 <= physical < self.num_pages:
            raise IndexError(f"physical page {physical} out of range")
        page = self._buffer.get(physical)
        buffered = page is not None
        if not buffered:
            page = self._pages[physical]
            self.page_reads += 1
            if self.buffer_pages:
                self._buffer[physical] = page
                while len(self._buffer) > self.buffer_pages:
                    self._buffer.pop(next(iter(self._buffer)))
        if self.partial_reads and last_slot is not None:
            first_slot = max(first_slot, 0)
            last_slot = min(last_slot, len(page))
            if not buffered:
                self.bytes_read += max(last_slot - first_slot, 0) * _KEY_BYTES
            return page[first_slot:last_slot]
        if not buffered:
            self.bytes_read += len(page) * _KEY_BYTES
        return page

    def page_length(self, physical: int) -> int:
        """Entry count of a physical page (no I/O, no accounting)."""
        return len(self._pages[physical])

    def reset_io(self) -> None:
        self.page_reads = 0
        self.bytes_read = 0
        self._buffer.clear()


class FilePageStore:
    """Page store whose every page fetch is a real ``os.pread``.

    The simulated :class:`PageStore` *counts* page reads; this one
    *performs* them, against an int64 key region inside an on-disk file
    (``byte_offset`` / ``count`` locate it — e.g. a sealed run's
    ``keys`` section, see
    :func:`repro.lsm.paged_runs.paged_index_over_run`).  ``preads``
    counts actual syscalls issued, so the cold-vs-warm experiment the
    durability bench runs measures genuine I/O, not a model of it.

    The file region is one contiguous sorted array, so the translation
    table is the identity — the interesting part here is the real page
    cache underneath, which :meth:`drop_cache` evicts
    (``posix_fadvise(DONTNEED)``) to make a lookup cold again.

    Same interface contract as :class:`PageStore` (``read_page`` /
    ``translation`` / accounting); additionally a context manager, as
    it owns a file descriptor.
    """

    page_reads = _io_counter("page_reads")
    bytes_read = _io_counter("bytes_read")
    preads = _io_counter("preads")

    def __init__(
        self,
        path: str,
        *,
        byte_offset: int,
        count: int,
        page_size: int = 256,
        partial_reads: bool = False,
        buffer_pages: int = 4,
    ):
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        self.path = path
        self._fd = os.open(path, os.O_RDONLY)
        self._byte_offset = int(byte_offset)
        self._count = int(count)
        self.page_size = int(page_size)
        self.partial_reads = bool(partial_reads)
        self.buffer_pages = int(buffer_pages)
        self._buffer: dict[int, np.ndarray] = {}
        self.num_pages = max((self._count + page_size - 1) // page_size, 1)
        # Contiguous file region: logical page i *is* physical page i.
        self.translation = np.arange(self.num_pages, dtype=np.int64)
        self.registry = MetricsRegistry()
        self._io_counters = {
            name: self.registry.counter("paged.io." + name)
            for name in ("page_reads", "bytes_read", "preads")
        }

    def _pread(self, first: int, last: int) -> np.ndarray:
        """Elements [first, last) of the key region, one syscall."""
        if self._fd is None:
            raise ValueError("page store is closed")
        nbytes = (last - first) * _KEY_BYTES
        data = os.pread(
            self._fd, nbytes, self._byte_offset + first * _KEY_BYTES
        )
        if len(data) < nbytes:
            raise IOError(
                f"{self.path}: short pread ({len(data)}/{nbytes} bytes)"
            )
        self.preads += 1
        self.bytes_read += len(data)
        return np.frombuffer(data, dtype=np.int64)

    def page_length(self, physical: int) -> int:
        start = physical * self.page_size
        return max(min(self._count - start, self.page_size), 0)

    def read_page(
        self, physical: int, first_slot: int = 0, last_slot: int | None = None
    ) -> np.ndarray:
        if not 0 <= physical < self.num_pages:
            raise IndexError(f"physical page {physical} out of range")
        page = self._buffer.get(physical)
        if page is not None:
            if self.partial_reads and last_slot is not None:
                return page[max(first_slot, 0):min(last_slot, len(page))]
            return page
        start = physical * self.page_size
        stop = min(start + self.page_size, self._count)
        if self.partial_reads and last_slot is not None:
            # Clipped transfer: only the window's byte range moves, and
            # a sub-page fragment is not worth a buffer-pool slot.
            lo = start + max(first_slot, 0)
            hi = min(start + min(last_slot, self.page_size), stop)
            self.page_reads += 1
            return self._pread(lo, max(hi, lo))
        page = self._pread(start, stop)
        self.page_reads += 1
        if self.buffer_pages:
            self._buffer[physical] = page
            while len(self._buffer) > self.buffer_pages:
                self._buffer.pop(next(iter(self._buffer)))
        return page

    def drop_cache(self) -> None:
        """Evict this region from the OS page cache and the buffer
        pool, so the next lookup is genuinely cold."""
        self._buffer.clear()
        if hasattr(os, "posix_fadvise"):  # pragma: no branch - POSIX
            os.posix_fadvise(
                self._fd, 0, 0, os.POSIX_FADV_DONTNEED
            )

    def reset_io(self) -> None:
        self.page_reads = 0
        self.bytes_read = 0
        self.preads = 0
        self._buffer.clear()

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "FilePageStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass


class PagedLearnedIndex:
    """RMI + translation table over a :class:`PageStore`."""

    def __init__(
        self,
        keys: np.ndarray,
        *,
        page_size: int = 256,
        stage_sizes: Sequence[int] = (1, 100),
        shuffle_seed: int = 0,
        partial_reads: bool = False,
        store=None,
    ):
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size and np.any(np.diff(keys) <= 0):
            raise ValueError("keys must be sorted and unique")
        self.n = int(keys.size)
        if store is not None:
            # Caller-supplied page store (e.g. a FilePageStore over a
            # sealed run's key section): the index trains on ``keys``
            # but every read goes through the provided store, whose
            # page_size wins.
            self.store = store
            self.page_size = int(store.page_size)
        else:
            self.page_size = int(page_size)
            self.store = PageStore(
                keys,
                page_size,
                shuffle_seed=shuffle_seed,
                partial_reads=partial_reads,
            )
        # The RMI is trained on the logical (sorted) order; only key
        # *values* and positions are needed, not the physical layout.
        self._rmi = RecursiveModelIndex(keys, stage_sizes=stage_sizes)
        # Keep no reference to the dense array: reads must go through
        # the page store, like a real disk-resident index.
        self._rmi_keys = None

    # -- lookup ---------------------------------------------------------------

    def lookup(self, key: float) -> tuple[int, int]:
        """(logical page, slot) of the lower bound of ``key``.

        Reads at most the pages the error window touches (one page in
        the common case), then binary-searches inside.
        """
        if self.n == 0:
            return 0, 0
        _leaf, est, lo, hi = self._rmi._predict_window(key)
        first_page = lo // self.page_size
        last_page = min(hi, self.n - 1) // self.page_size
        position = None
        for logical in range(first_page, last_page + 1):
            slot_lo = lo - logical * self.page_size
            slot_hi = hi - logical * self.page_size
            chunk = self.store.read_page(
                int(self.store.translation[logical]),
                max(slot_lo, 0),
                min(max(slot_hi, 0), self.page_size)
                if self.store.partial_reads
                else None,
            )
            base = (
                logical * self.page_size + max(slot_lo, 0)
                if self.store.partial_reads
                else logical * self.page_size
            )
            inside = int(np.searchsorted(chunk, key, side="left"))
            if inside < len(chunk):
                position = base + inside
                break
        if position is None:
            # key greater than everything in the window: next position
            position = min(
                (last_page * self.page_size)
                + self.store.page_length(
                    int(self.store.translation[last_page])
                ),
                self.n,
            )
            position = max(position, hi)
        # Window misses (non-monotonic roots on absent keys) fall back
        # to logical page walking.
        position = self._verify(key, position)
        return position // self.page_size, position % self.page_size

    def _verify(self, key: float, position: int) -> int:
        """Ensure lower-bound semantics, paging in neighbours if needed."""
        while True:
            current = self._key_at(position) if position < self.n else None
            previous = self._key_at(position - 1) if position > 0 else None
            if current is not None and current < key:
                position += 1
                continue
            if previous is not None and previous >= key:
                position -= 1
                continue
            return position

    def _key_at(self, position: int) -> int:
        logical = position // self.page_size
        slot = position % self.page_size
        chunk = self.store.read_page(
            int(self.store.translation[logical]), slot, slot + 1
        ) if self.store.partial_reads else self.store.read_page(
            int(self.store.translation[logical])
        )
        if self.store.partial_reads:
            return int(chunk[0])
        return int(chunk[slot])

    def contains(self, key: float) -> bool:
        if self.n == 0:
            return False
        page, slot = self.lookup(key)
        position = page * self.page_size + slot
        if position >= self.n:
            return False
        return self._key_at(position) == int(key)

    # -- batch interface ----------------------------------------------------------

    def _read_pages_batch(
        self,
        logical_pages: np.ndarray,
        cache: tuple | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fetch sorted unique logical pages once each, concatenated.

        Returns ``(gathered, page_off)``: page ``logical_pages[r]``
        occupies ``gathered[page_off[r]:page_off[r + 1]]``.  Because the
        pages are chunks of one globally sorted array fetched in
        logical order, ``gathered`` is itself sorted — the property the
        lock-step window search relies on.

        ``cache`` is a ``(pages, gathered, page_off)`` triple from an
        earlier fetch in the *same* batched operation; pages found
        there are sliced back out instead of transferring again, which
        is what keeps the per-batch accounting at one read per touched
        page across a lookup + verify + gather pipeline.
        """
        def fetch(p: int) -> np.ndarray:
            if cache is not None:
                cached_pages, cached_data, cached_off = cache
                r = int(np.searchsorted(cached_pages, p))
                if r < cached_pages.size and cached_pages[r] == p:
                    return cached_data[
                        int(cached_off[r]):int(cached_off[r + 1])
                    ]
            return self.store.read_page(int(self.store.translation[p]))

        chunks = [fetch(int(p)) for p in logical_pages]
        page_off = np.zeros(len(chunks) + 1, dtype=np.int64)
        np.cumsum([len(c) for c in chunks], out=page_off[1:])
        gathered = (
            np.concatenate(chunks)
            if chunks
            else np.empty(0, dtype=np.int64)
        )
        return gathered, page_off

    def _locate(
        self,
        logical_pages: np.ndarray,
        page_off: np.ndarray,
        positions: np.ndarray,
    ) -> np.ndarray:
        """Map global positions (inside fetched pages) to ``gathered``."""
        pg = positions // self.page_size
        rank = np.searchsorted(logical_pages, pg)
        return page_off[rank] + positions - pg * self.page_size

    def _expand_page_ranges(
        self, first_page: np.ndarray, last_page: np.ndarray
    ) -> np.ndarray:
        """Sorted unique logical pages covering all [first, last] spans."""
        counts = last_page - first_page + 1
        offs = np.zeros(first_page.size + 1, dtype=np.int64)
        np.cumsum(counts, out=offs[1:])
        total = int(offs[-1])
        pages = (
            np.arange(total, dtype=np.int64)
            - np.repeat(offs[:-1], counts)
            + np.repeat(first_page, counts)
        )
        return np.unique(pages)

    def lookup_batch(self, queries: np.ndarray) -> np.ndarray:
        """Global lower-bound positions for a whole query batch.

        Positions are logical (``page * page_size + slot``), matching
        scalar :meth:`lookup`'s ``(page, slot)`` pairs exactly.  IO is
        batched: the union of all predicted windows' pages transfers
        once (whole pages — ``partial_reads`` clipping applies to the
        scalar path only), then every in-window search runs lock-step
        over the fetched data; only window-boundary results pay (at
        most one) extra key read to verify, and the rare Section 3.4
        misses fall back to the scalar page walk.
        """
        return self._lookup_batch_cached(queries)[0]

    def _lookup_batch_cached(
        self, queries: np.ndarray
    ) -> tuple[np.ndarray, tuple | None, object | None]:
        """:meth:`lookup_batch` plus the ``(pages, gathered, page_off)``
        fetch cache, so downstream gathers in the same batched op
        (membership checks, range widening/assembly) reuse the pages
        already transferred.

        Queries go through the RMI's query core, so the in-window
        lock-step search and the boundary verification compare the
        fetched int64 pages against int64 values — exact beyond 2^53.
        """
        queries = np.asarray(queries).ravel()
        if queries.size == 0 or self.n == 0:
            return np.zeros(queries.size, dtype=np.int64), None, None
        rmi = self._rmi
        if not rmi._compiled:
            # Deep/non-linear RMIs: per-query loop (scalar accounting).
            return np.array(
                [
                    page * self.page_size + slot
                    for page, slot in (
                        self.lookup(q) for q in queries.tolist()
                    )
                ],
                dtype=np.int64,
            ), None, rmi._column.prepare(queries)
        n = self.n
        qb = rmi._column.prepare(queries)
        compare = qb.compare
        lo, hi = rmi._plan.windows(qb)
        pages = self._expand_page_ranges(
            lo // self.page_size, (hi - 1) // self.page_size
        )
        gathered, page_off = self._read_pages_batch(pages)
        cache = (pages, gathered, page_off)
        lo_loc = self._locate(pages, page_off, lo)
        hi_loc = self._locate(pages, page_off, hi - 1) + 1
        pos_loc = vectorized_bounded_search(gathered, compare, lo_loc, hi_loc)
        # Map back to global positions.  Interior results sit inside a
        # fetched page; boundary results are pinned to lo/hi directly
        # (a chunk-boundary pos_loc would otherwise map into a touched
        # page that is not logically adjacent).
        rank = np.searchsorted(page_off, pos_loc, side="right") - 1
        np.clip(rank, 0, max(pages.size - 1, 0), out=rank)
        pos = pages[rank] * self.page_size + (pos_loc - page_off[rank])
        pos = np.where(pos_loc >= hi_loc, hi, pos)
        pos = np.where(pos_loc <= lo_loc, lo, pos)
        # Boundary verification (Section 3.4).  The lock-step search
        # already proved keys[lo] >= q for pos == lo and keys[hi-1] < q
        # for pos == hi, so each boundary needs exactly one neighbour
        # key — fetched in one more batched read — and only genuine
        # misses walk pages scalar.
        at_lo = (pos == lo) & (pos > 0)
        at_hi = (pos == hi) & (pos < n)
        suspects = np.nonzero(at_lo | at_hi)[0]
        if suspects.size:
            probe_pos = np.where(at_lo[suspects], pos[suspects] - 1,
                                 pos[suspects])
            neighbour = self._gather_keys_batch(probe_pos, cache)
            miss = np.where(
                at_lo[suspects],
                neighbour >= compare[suspects],  # keys[pos-1] >= q
                neighbour < compare[suspects],   # keys[pos] < q
            )
            for i in suspects[miss]:
                pos[i] = self._verify(compare[i].item(), int(pos[i]))
        if qb.oob_high is not None:
            # Above the key dtype's range: the lower bound is n.
            pos[qb.oob_high] = n
        return pos, cache, qb

    def _gather_keys_batch(
        self, positions: np.ndarray, cache: tuple | None = None
    ) -> np.ndarray:
        """Key values at global positions, one batched page fetch."""
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size == 0:
            return np.zeros(0, dtype=np.int64)
        pg = positions // self.page_size
        pages = np.unique(pg)
        gathered, page_off = self._read_pages_batch(pages, cache)
        return gathered[self._locate(pages, page_off, positions)]

    def contains_batch(self, queries: np.ndarray) -> np.ndarray:
        """Batched membership: one bool per query, batched IO."""
        queries = np.asarray(queries).ravel()
        out = np.zeros(queries.size, dtype=bool)
        if self.n == 0 or queries.size == 0:
            return out
        pos, cache, qb = self._lookup_batch_cached(queries)
        valid = pos < self.n
        if np.any(valid):
            hit = self._gather_keys_batch(pos[valid], cache) == qb.compare[valid]
            if qb.exactable is not None:
                hit &= qb.exactable[valid]
            out[valid] = hit
        return out

    def range_query_batch(self, lows, highs) -> RangeScanResult:
        """Batched range scans with per-batch IO accounting.

        Both endpoint arrays resolve through one concatenated
        :meth:`lookup_batch` call; every page covering any result slice
        transfers once; one vectorized gather assembles all slices.
        ``result[i]`` holds the stored keys in ``[lows[i], highs[i]]``
        (closed interval, inverted ranges empty), bit-identical to an
        in-memory index over the same keys.
        """
        lows = np.asarray(lows).ravel()
        highs = np.asarray(highs).ravel()
        if lows.size != highs.size:
            raise ValueError("lows and highs must have the same length")
        if lows.dtype != highs.dtype:
            common = np.result_type(lows, highs)
            lows = lows.astype(common)
            highs = highs.astype(common)
        m = lows.size
        if m == 0 or self.n == 0:
            empty = np.zeros(m, dtype=np.int64)
            return RangeScanResult(
                values=np.empty(0, dtype=np.int64),
                offsets=np.zeros(m + 1, dtype=np.int64),
                starts=empty,
                ends=empty.copy(),
            )
        pos, cache, qb = self._lookup_batch_cached(np.concatenate([lows, highs]))
        starts = pos[:m]
        ends = pos[m:].copy()
        # Keys are unique (enforced at construction), so widening a
        # high endpoint that hits a stored key is a single +1; the hit
        # test runs through the query core's exact equality — reusing
        # the already-prepared concatenated batch's high half.
        qb_high = qb.take(np.arange(m, 2 * m))
        valid = ends < self.n
        if np.any(valid):
            hit = (
                self._gather_keys_batch(ends[valid], cache)
                == qb_high.compare[valid]
            )
            if qb_high.exactable is not None:
                hit &= qb_high.exactable[valid]
            ends[valid] += hit
        inverted = highs < lows
        ends[inverted] = starts[inverted]
        starts_loc = np.zeros(m, dtype=np.int64)
        ends_loc = np.zeros(m, dtype=np.int64)
        nonempty = ends > starts
        if np.any(nonempty):
            pages = self._expand_page_ranges(
                starts[nonempty] // self.page_size,
                (ends[nonempty] - 1) // self.page_size,
            )
            gathered, page_off = self._read_pages_batch(pages, cache)
            starts_loc[nonempty] = self._locate(
                pages, page_off, starts[nonempty]
            )
            ends_loc[nonempty] = (
                self._locate(pages, page_off, ends[nonempty] - 1) + 1
            )
        else:
            gathered = np.empty(0, dtype=np.int64)
        values, offsets = assemble_slices(gathered, starts_loc, ends_loc)
        return RangeScanResult(
            values=values, offsets=offsets, starts=starts, ends=ends
        )

    def range_query(self, low: float, high: float) -> np.ndarray:
        """All stored keys in ``[low, high]`` (scalar, paged IO)."""
        return np.asarray(
            self.range_query_batch([low], [high])[0], dtype=np.int64
        )

    # -- accounting ---------------------------------------------------------------

    def size_bytes(self) -> int:
        """Index overhead: the RMI plus the translation table."""
        return self._rmi.size_bytes() + self.store.num_pages * 8

    def io_stats(self) -> tuple[int, int]:
        """(page reads, bytes read) since the last reset."""
        return self.store.page_reads, self.store.bytes_read

    def reset_io(self) -> None:
        self.store.reset_io()

    def __repr__(self) -> str:
        return (
            f"PagedLearnedIndex(n={self.n}, page_size={self.page_size}, "
            f"pages={self.store.num_pages}, size={self.size_bytes()}B)"
        )
