"""Unified dtype-aware batch query core (ISSUE 5).

Every ordered index in this repository ultimately answers queries
against one sorted key column, yet after PRs 1-4 the vectorized batch
engine was re-implemented (with small drifts) inside ~10 index types —
and all of them compared int64 keys in float64, so keys >= 2^53 could
round together where the scalar paths (exact Python comparisons) do
not.  SOSD (Kipf et al. 2019) and "Benchmarking Learned Indexes"
(Marcus et al. 2020) evaluate on real 64-bit domains (osm_cellids,
amzn) whose keys exceed 2^53, so the float64 batch paths could not
serve the standard benchmark datasets correctly.

This module is the single shared implementation both problems point
at:

* :class:`SortedKeyColumn` — a dtype-preserving sorted key column with
  exact search primitives.  Queries are *prepared* once into a
  :class:`QueryBatch` whose ``compare`` array is in the **key's native
  dtype** (exact int64/uint64 paths; float64 only for float keys);
  every comparison downstream — the lock-step bounded search, boundary
  verification, the scalar exponential fix-up, ``searchsorted``
  corrections, membership equality, duplicate-run widening — runs on
  that native array.  Model predictions stay float64 (they are
  approximate by construction), but window arithmetic is int64 and
  verification compares integers as integers.
* :class:`CompiledPlan` — the flat leaf tables every compiled learned
  index reduces to (slopes, intercepts, error-bound window offsets,
  window clamp) plus the batch point engine built on them: route →
  window → lock-step bounded search → boundary-only verification →
  scalar exponential fix-up, and the sorted-batch dedup fast path.

Dtype contract
--------------
* integer key columns (int64/uint64/int32/...): batch results are
  **exact** for integer query arrays of any integer dtype (cross-dtype
  bounds are clamped, out-of-range queries resolve to the correct
  boundary positions) and for float64 query arrays (a float query
  ``q`` is compared as ``ceil(q)`` — the lower bound of ``q`` among
  integers — with equality allowed only where ``q`` is integral and
  representable);
* float key columns: queries are compared in float64, which is the
  key's own precision — integer queries above 2^53 cannot be
  distinguished by float keys in the first place.

The float->integer preparation is what closes the 2^53 follow-up: the
query value that actually reaches a comparison is always a value of
the key's dtype, never an upcast of the keys to float64.
"""

from __future__ import annotations

import numpy as np

from ..btree.search_baselines import Counter, exponential_search
from ..obs import default_registry
from ..obs import state as obs_state
from ..util import scalar_view
from .search import vectorized_bounded_search, verify_lower_bound_batch

__all__ = [
    "QueryBatch",
    "SortedKeyColumn",
    "CompiledPlan",
    "SORTED_BATCH_THRESHOLD",
    "SORTED_BATCH_MIN_DUP_FRACTION",
    "batch_dup_fraction",
    "clamp_window",
    "clamp_window_batch",
    "upper_bounds_batch",
]

#: Minimum batch size before the engine even *considers* the sorted
#: fast path (sort + dedup + engine on unique queries + inverse
#: scatter).  Size alone is not sufficient: the argsort inside
#: ``np.unique`` costs ~40ns/query, about half of what the engine
#: spends per query, so sorting only pays when deduplication removes
#: at least ~half the batch.  Above this size the heuristic therefore
#: probes a fixed-seed random ~4k sample for duplicate density
#: (:data:`SORTED_BATCH_MIN_DUP_FRACTION`, estimation details in
#: :func:`batch_dup_fraction`) — skewed workloads (zipfian, hotspot)
#: qualify, uniform workloads don't.  The ``sorted_path`` section of
#: ``benchmarks/bench_throughput.py`` measures both forced paths and
#: records the crossover in BENCH_throughput.json.
SORTED_BATCH_THRESHOLD = 32_768

#: Estimated fraction of the batch that must be duplicates before the
#: sorted path is chosen automatically (see above).  The estimate is
#: noisy near the boundary, but so are the stakes: between ~30% and
#: ~60% duplicates the sorted and unsorted paths are within ~15% of
#: each other either way.
SORTED_BATCH_MIN_DUP_FRACTION = 0.5


def clamp_window(lo: int, hi: int, n: int) -> tuple[int, int]:
    """Clamp a raw search window to ``[0, n]`` with ``hi`` exclusive.

    The single source of truth for window semantics: degenerate windows
    (``hi <= lo`` after clamping) collapse to the one-element window at
    ``min(lo, max(hi - 1, 0))``, staying empty only when ``n == 0``.
    """
    if lo < 0:
        lo = 0
    elif lo > n:
        lo = n
    if hi > n:
        hi = n
    if hi <= lo:
        lo = min(lo, max(hi - 1, 0))
        hi = min(lo + 1, n)
    return lo, hi


def clamp_window_batch(
    lo: np.ndarray, hi: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`clamp_window` over parallel int64 arrays."""
    np.clip(lo, 0, n, out=lo)
    np.clip(hi, None, n, out=hi)
    degenerate = hi <= lo
    if np.any(degenerate):
        collapsed = np.minimum(
            lo[degenerate], np.maximum(hi[degenerate] - 1, 0)
        )
        lo[degenerate] = collapsed
        hi[degenerate] = np.minimum(collapsed + 1, n)
    return lo, hi


def batch_dup_fraction(queries: np.ndarray, sample: int = 4096) -> float:
    """Estimated duplicate fraction of the *whole* batch.

    The naive sample duplicate rate wildly underestimates batch
    duplication when the hot set is larger than the sample (a 1k probe
    of a hotspot workload drawing from 10k hot keys collides rarely,
    yet the 256k batch is >80% duplicates).  Instead, the within-sample
    collision count gives a birthday estimate of the batch's
    distinct-value count D — c collisions among s draws ⇒ D ≈ s²/2c —
    from which the batch is expected to contain about
    D·(1 - e^(-m/D)) distinct values.

    The probe positions are fixed-seed random, not strided: a stride
    sampling one element per duplicate run (e.g. a caller that
    pre-sorted a duplicate-heavy batch) would see zero collisions and
    skip the fast path exactly where dedup is cheapest.
    """
    m = queries.size
    if m <= sample:
        # The whole batch fits in the probe: the duplicate fraction
        # is exact, no extrapolation.
        return float(1.0 - np.unique(queries).size / max(m, 1))
    idx = np.random.default_rng(0x5EED).integers(0, m, sample)
    probe = queries[idx]
    # Sampling positions with replacement collides with itself (same
    # index drawn twice); subtract the expectation so only genuine
    # value collisions feed the estimate.
    self_collisions = sample * sample / (2.0 * m)
    s = probe.size
    c = s - np.unique(probe).size - self_collisions
    if c <= 0:
        return 0.0
    d = s * s / (2.0 * c)
    est_unique = min(d * -np.expm1(-m / d), m)
    return float(1.0 - est_unique / m)


def pack_requests(arrays: list) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate per-request query arrays into one flat batch.

    The gather half of the serving layer's coalescing contract (ISSUE
    8): many small per-request arrays become the single large batch the
    vectorized kernels were built for.  Returns ``(flat, offsets)``
    with ``offsets`` int64 of length ``len(arrays) + 1`` — request
    ``i`` owns ``flat[offsets[i]:offsets[i + 1]]``, which is exactly
    the slice :func:`unpack_results` hands back after the batch call.
    """
    if not arrays:
        return np.empty(0, dtype=np.int64), np.zeros(1, dtype=np.int64)
    offsets = np.zeros(len(arrays) + 1, dtype=np.int64)
    np.cumsum([a.size for a in arrays], out=offsets[1:])
    flat = (
        np.concatenate(arrays)
        if len(arrays) > 1
        else np.asarray(arrays[0]).ravel()
    )
    return flat, offsets


def unpack_results(flat: np.ndarray, offsets: np.ndarray) -> list:
    """Scatter a flat batch result back into per-request views.

    The inverse of :func:`pack_requests`: ``out[i]`` is the slice of
    ``flat`` belonging to request ``i`` (zero-copy views of the batch
    result — callers that outlive the batch should copy).
    """
    return [
        flat[int(offsets[i]):int(offsets[i + 1])]
        for i in range(offsets.size - 1)
    ]


class GroupScatter:
    """Stable group-by over parallel arrays with an exact inverse.

    Built once from an integer group id per element (e.g. the shard
    that owns each query key), it exposes the per-group slices for the
    fan-out and reassembles per-group results back into original order
    for the fan-in — the routing kernel under the sharded store's
    batch reads and writes.

    The sort is ``kind="stable"`` so elements within a group keep
    their batch order: duplicate keys routed to the same shard resolve
    last-wins exactly like the unsharded write path.
    """

    __slots__ = ("order", "offsets", "num_groups", "size")

    def __init__(self, group_ids: np.ndarray, num_groups: int):
        group_ids = np.asarray(group_ids, dtype=np.int64).ravel()
        self.num_groups = int(num_groups)
        self.size = int(group_ids.size)
        self.order = np.argsort(group_ids, kind="stable")
        counts = np.bincount(
            group_ids, minlength=self.num_groups
        ).astype(np.int64)
        self.offsets = np.zeros(self.num_groups + 1, dtype=np.int64)
        np.cumsum(counts, out=self.offsets[1:])

    def indices(self, group: int) -> np.ndarray:
        """Original positions of group ``group``'s elements."""
        return self.order[
            int(self.offsets[group]):int(self.offsets[group + 1])
        ]

    def take(self, arr: np.ndarray, group: int) -> np.ndarray:
        """``arr``'s elements belonging to ``group``, in batch order."""
        return arr[self.indices(group)]

    def count(self, group: int) -> int:
        return int(self.offsets[group + 1] - self.offsets[group])

    def scatter(self, per_group, out: np.ndarray) -> np.ndarray:
        """Write per-group result arrays back to original positions.

        ``per_group[g]`` must be aligned to :meth:`take`'s output for
        group ``g`` (or None to leave that group's slots untouched —
        the caller's fill value shows through, e.g. "not found").
        """
        for group, result in enumerate(per_group):
            if result is None:
                continue
            out[self.indices(group)] = result
        return out


class QueryBatch:
    """Queries prepared for exact comparison against one key column.

    * ``compare`` — the values every comparison uses, in the key
      column's native dtype.  For integer columns and float queries
      this is ``ceil(q)`` (the integer lower bound of ``q`` equals the
      lower bound of ``ceil(q)``), clamped into the dtype's range.
    * ``exactable`` — bool mask (or None ≡ all True): the query value
      is exactly representable as ``compare``, i.e. equality with a
      stored key is possible.  Non-integral floats and range-clamped
      queries are never equal to any stored key.
    * ``oob_high`` — bool mask (or None ≡ all False): the query lies
      strictly above the dtype's maximum, so its lower bound is ``n``
      regardless of what the clamped ``compare`` value finds.
      (Queries below the dtype minimum need no mask: their clamped
      ``compare`` already resolves to position 0.)
    * ``float64`` — lazily materialized float64 view for model
      inference only; for float query arrays it is the *original*
      values so batch predictions mirror the scalar path bit-for-bit.
    """

    __slots__ = ("compare", "exactable", "oob_high", "_float64")

    def __init__(
        self,
        compare: np.ndarray,
        exactable: np.ndarray | None = None,
        oob_high: np.ndarray | None = None,
        float64: np.ndarray | None = None,
    ):
        self.compare = compare
        self.exactable = exactable
        self.oob_high = oob_high
        self._float64 = float64

    @property
    def size(self) -> int:
        return int(self.compare.size)

    @property
    def float64(self) -> np.ndarray:
        f = self._float64
        if f is None:
            f = self.compare.astype(np.float64)
            self._float64 = f
        return f

    def take(self, idx: np.ndarray) -> "QueryBatch":
        """Sub-batch at ``idx`` (indices or bool mask), masks included."""
        return QueryBatch(
            self.compare[idx],
            None if self.exactable is None else self.exactable[idx],
            None if self.oob_high is None else self.oob_high[idx],
            None if self._float64 is None else self._float64[idx],
        )


class SortedKeyColumn:
    """A sorted key array plus the exact search primitives over it.

    The column does not copy or validate ``keys`` (owners already
    enforce sortedness); it contributes the *dtype discipline*: every
    query batch is normalized once by :meth:`prepare` and every
    comparison primitive consumes the prepared native-dtype values.
    """

    __slots__ = ("keys", "dtype", "_view")

    def __init__(self, keys: np.ndarray):
        self.keys = keys
        self.dtype = keys.dtype
        self._view = None

    @property
    def size(self) -> int:
        return int(self.keys.shape[0])

    @property
    def view(self):
        """Native-scalar random-access view for scalar fix-up probes."""
        v = self._view
        if v is None:
            v = scalar_view(self.keys)
            self._view = v
        return v

    # -- query preparation ---------------------------------------------------

    def prepare(self, queries) -> QueryBatch:
        """Normalize a query array into a :class:`QueryBatch`.

        Idempotent: an already-prepared batch passes through.  Object
        arrays (e.g. lists holding Python ints beyond int64) fall back
        to float64, the best numpy can do with them.
        """
        if isinstance(queries, QueryBatch):
            return queries
        q = np.asarray(queries)
        if q.ndim != 1:
            q = q.ravel()
        if q.dtype == object:
            q = q.astype(np.float64)
        if self.dtype.kind not in "iu":
            # Float (or other) columns: compare at the column's own
            # precision — it cannot distinguish finer values anyway.
            if q.dtype == self.dtype:
                return QueryBatch(q, float64=q if q.dtype == np.float64 else None)
            compare = q.astype(self.dtype)
            return QueryBatch(
                compare,
                float64=q.astype(np.float64) if q.dtype.kind == "f" else None,
            )
        if q.dtype == self.dtype:
            return QueryBatch(q)
        if q.dtype.kind in "iu":
            return self._prepare_int_queries(q)
        return self._prepare_float_queries(q.astype(np.float64, copy=False))

    def _prepare_int_queries(self, q: np.ndarray) -> QueryBatch:
        """Cross-dtype integer queries: clamp into the column's range."""
        if np.can_cast(q.dtype, self.dtype, "safe"):
            return QueryBatch(q.astype(self.dtype))
        info = np.iinfo(self.dtype)
        qi = np.iinfo(q.dtype)
        # Bounds representable in the query dtype by construction, so
        # the comparisons below are exact (no float promotion).
        lo_bound = max(int(info.min), int(qi.min))
        hi_bound = min(int(info.max), int(qi.max))
        oob_high = (q > hi_bound) if qi.max > info.max else None
        clipped = np.clip(q, lo_bound, hi_bound).astype(self.dtype)
        exactable = None
        if oob_high is not None and oob_high.any():
            exactable = ~oob_high
        else:
            oob_high = None
        if qi.min < info.min:
            low = q < lo_bound
            if low.any():
                exactable = ~low if exactable is None else exactable & ~low
        return QueryBatch(clipped, exactable, oob_high)

    def _prepare_float_queries(self, qf: np.ndarray) -> QueryBatch:
        """Float queries against an integer column, compared exactly.

        The lower bound of a real ``q`` among integers is the lower
        bound of ``ceil(q)``; equality is only possible where ``q`` is
        integral and inside the dtype's range.  NaN lanes prepare as
        never-equal, never-out-of-bounds probes (their position is
        unspecified, matching the scalar paths).
        """
        info = np.iinfo(self.dtype)
        ceil = np.ceil(qf)
        min_f = float(info.min)  # powers of two: always exact
        max_f = float(info.max)
        if int(max_f) == info.max:
            # max is exactly representable (e.g. int32).
            in_high = ceil <= max_f
            oob_high = ceil > max_f
        else:
            # max rounded up to the next power of two (int64/uint64):
            # any float >= max_f already exceeds the integer max.
            in_high = ceil < max_f
            oob_high = ceil >= max_f
        in_range = (ceil >= min_f) & in_high  # NaN fails both
        compare = np.full(qf.shape, info.min, dtype=self.dtype)
        compare[in_range] = ceil[in_range].astype(self.dtype)
        exactable = in_range & (qf == ceil)
        return QueryBatch(
            compare,
            exactable,
            oob_high if oob_high.any() else None,
            float64=qf,
        )

    # -- exact search primitives ----------------------------------------------

    def rank_in(
        self, sorted_values: np.ndarray, qb: QueryBatch, side: str = "left"
    ) -> np.ndarray:
        """Exact ``searchsorted`` of prepared queries into an auxiliary
        sorted array of the column's dtype (delta buffers, tombstone
        lists, ...), preserving bisect semantics for float queries:
        for a non-integral ``q``, ``bisect_right == bisect_left`` at
        ``ceil(q)``."""
        if side == "right" and qb.exactable is not None:
            left = np.searchsorted(
                sorted_values, qb.compare, side="left"
            ).astype(np.int64)
            right = np.searchsorted(
                sorted_values, qb.compare, side="right"
            ).astype(np.int64)
            pos = np.where(qb.exactable, right, left)
        else:
            pos = np.searchsorted(sorted_values, qb.compare, side=side).astype(
                np.int64
            )
        if qb.oob_high is not None:
            pos[qb.oob_high] = len(sorted_values)
        return pos

    def lower_bounds(self, queries) -> np.ndarray:
        """Whole-column exact lower bounds (the model-free batch path
        every dense tree baseline answers batches with)."""
        return self.rank_in(self.keys, self.prepare(queries), side="left")

    def bounded_lower_bounds(
        self,
        qb: QueryBatch,
        lo: np.ndarray,
        hi: np.ndarray,
        *,
        counter: Counter | None = None,
    ) -> tuple[np.ndarray, int]:
        """The batch point engine's last mile, hosted exactly once.

        Lock-step bounded binary search inside the per-query windows,
        boundary-only verification (interior results are proven by the
        search's own probes — see
        :func:`repro.core.search.vectorized_bounded_search`), scalar
        exponential fix-up for the rare Section 3.4 misses, and the
        out-of-dtype-range clamp resolution.  Returns ``(positions,
        number of fix-ups)``.
        """
        keys = self.keys
        compare = qb.compare
        pos = vectorized_bounded_search(keys, compare, lo, hi, counter=counter)
        fixups = 0
        suspects = np.nonzero((pos == lo) | (pos == hi))[0]
        if suspects.size:
            ok = verify_lower_bound_batch(
                keys, compare[suspects], pos[suspects]
            )
            misses = suspects[~ok]
            if misses.size:
                fixups = int(misses.size)
                view = self.view
                for i in misses:
                    # .item() yields a native Python scalar (int for
                    # integer columns), so the fix-up compares exactly.
                    pos[i] = exponential_search(
                        view, compare[i].item(), int(pos[i])
                    )
        if qb.oob_high is not None:
            pos[qb.oob_high] = keys.shape[0]
        return pos, fixups

    def contains_at(self, qb: QueryBatch, positions: np.ndarray) -> np.ndarray:
        """Membership mask from lower-bound positions, dtype-exact.

        ``positions[i]`` must be the lower bound of query ``i``; the
        query is present iff the position is in range, the key there
        equals the prepared compare value, and the query was exactly
        representable in the first place.
        """
        n = self.size
        positions = np.asarray(positions, dtype=np.int64)
        if n == 0:
            return np.zeros(positions.shape, dtype=bool)
        safe = np.minimum(positions, n - 1)
        hit = (positions < n) & (self.keys[safe] == qb.compare)
        if qb.exactable is not None:
            hit &= qb.exactable
        return hit

    def upper_bounds(
        self, qb: QueryBatch, lower_bounds: np.ndarray
    ) -> np.ndarray:
        """Upper-bound positions from already-resolved lower bounds.

        The single implementation of duplicate-run widening: the upper
        bound differs from the lower bound only when the query hits a
        stored key (the lower bound then sits at the *first*
        duplicate); those hits widen with one vectorized
        ``searchsorted(side="right")`` — absent keys pay nothing.
        """
        n = self.size
        ub = np.asarray(lower_bounds, dtype=np.int64).copy()
        if n == 0 or ub.size == 0:
            return ub
        hit = self.contains_at(qb, ub)
        if np.any(hit):
            ub[hit] = np.searchsorted(
                self.keys, qb.compare[hit], side="right"
            )
        return ub


def upper_bounds_batch(
    keys: np.ndarray, highs: np.ndarray, lower_bounds: np.ndarray
) -> np.ndarray:
    """Functional form of :meth:`SortedKeyColumn.upper_bounds` for
    callers holding a bare key array."""
    column = SortedKeyColumn(np.asarray(keys))
    return column.upper_bounds(column.prepare(highs), lower_bounds)


class CompiledPlan:
    """Flat leaf tables + the batch point engine over one key column.

    The LIF analogue (Section 3.1) taken to its conclusion: a compiled
    two-stage learned index *is* four flat arrays — per-leaf
    ``slopes``/``intercepts`` and the Section 3.4 error-bound window
    offsets — plus a root predictor.  Every consumer
    (:class:`~repro.core.rmi.RecursiveModelIndex`, the hybrid index's
    modeled leaves, the paged index's page planner, every LSM run)
    adapts over one of these instead of carrying its own copy of the
    routing/window/search pipeline.

    ``lo_offsets``/``hi_offsets`` are the per-leaf ``max_error`` /
    ``min_error`` (the window is ``[raw - lo_offset - 1,
    raw - hi_offset + 2)`` clamped — the conservative floor/ceil slack
    of the scalar path, preserved bit-for-bit).
    """

    __slots__ = (
        "column",
        "root_predict_batch",
        "leaf_count",
        "slopes",
        "intercepts",
        "lo_offsets",
        "hi_offsets",
    )

    def __init__(
        self,
        column: SortedKeyColumn,
        root_predict_batch,
        leaf_count: int,
        slopes: np.ndarray,
        intercepts: np.ndarray,
        lo_offsets: np.ndarray,
        hi_offsets: np.ndarray,
    ):
        self.column = column
        self.root_predict_batch = root_predict_batch
        self.leaf_count = int(leaf_count)
        self.slopes = slopes
        self.intercepts = intercepts
        self.lo_offsets = lo_offsets
        self.hi_offsets = hi_offsets

    # -- serialization ---------------------------------------------------------

    #: The flat-array fields that fully determine the plan's behavior
    #: (together with the root model's parameters); the on-disk run
    #: format persists exactly these, in this order.
    ARRAY_FIELDS = ("slopes", "intercepts", "lo_offsets", "hi_offsets")

    def export_arrays(self) -> dict[str, np.ndarray]:
        """The plan's leaf tables as float64 arrays, keyed by
        :data:`ARRAY_FIELDS` — the serializable half of a compiled
        index (the other half is the root model's two parameters).
        Reconstructing a plan from these arrays over the same key
        column reproduces every lookup bit-for-bit, because routing,
        windows, and search consume nothing else."""
        return {
            name: np.ascontiguousarray(
                getattr(self, name), dtype=np.float64
            )
            for name in self.ARRAY_FIELDS
        }

    # -- routing & windows -----------------------------------------------------

    def route(self, qb: QueryBatch) -> tuple[np.ndarray, np.ndarray]:
        """(leaf indices, leaf raw predictions) for a prepared batch.

        Mirrors the scalar routing exactly: truncated ``pred * m / n``
        clamped to ``[0, m)``, then the gathered per-leaf affine model.
        Predictions are float64 by contract — only comparisons are
        dtype-native.
        """
        n = self.column.size
        m = self.leaf_count
        qf = qb.float64
        root = np.asarray(self.root_predict_batch(qf), dtype=np.float64)
        leaf = (root * m / n).astype(np.int64)
        np.clip(leaf, 0, m - 1, out=leaf)
        return leaf, self.leaf_predict(leaf, qf)

    def leaf_predict(
        self, leaf: np.ndarray, encoded: np.ndarray
    ) -> np.ndarray:
        """Gathered per-leaf affine predictions over any float64
        encoding of the queries (identity for numeric keys; e.g. the
        lexicographic scalar for string keys)."""
        return self.slopes[leaf] * encoded + self.intercepts[leaf]

    def windows_from_raw(
        self, leaf: np.ndarray, raw: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Clamped per-query search windows from raw leaf predictions.

        The single batch-path source of the Section 3.4 window formula
        (leaf-relative error offsets with the conservative -1/+2
        floor/ceil slack); the paged index builds its page fetch plans
        from the same windows.
        """
        lo = (raw - self.lo_offsets[leaf]).astype(np.int64) - 1
        hi = (raw - self.hi_offsets[leaf]).astype(np.int64) + 2
        return clamp_window_batch(lo, hi, self.column.size)

    def windows(
        self,
        qb: QueryBatch,
        routed: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        leaf, raw = routed if routed is not None else self.route(qb)
        return self.windows_from_raw(leaf, raw)

    # -- the batch point engine ------------------------------------------------

    def _engine(
        self,
        qb: QueryBatch,
        routed: tuple[np.ndarray, np.ndarray] | None,
        stats,
    ) -> np.ndarray:
        """Route → window → lock-step bounded search → verify → fix up."""
        lo, hi = self.windows(qb, routed)
        counter = None
        if stats is not None:
            stats.lookups += qb.size
            stats.window_total += int((hi - lo).sum())
            counter = Counter()
        # Unlike the scalar path, no +1 window extension: a result at
        # the exclusive end is caught by the boundary verification
        # inside bounded_lower_bounds, and the narrower window saves a
        # lock-step round.
        pos, fixups = self.column.bounded_lower_bounds(
            qb, lo, hi, counter=counter
        )
        if stats is not None:
            stats.comparisons += counter.comparisons
            stats.fixups += fixups
        return pos

    def lookup_batch(
        self,
        qb: QueryBatch,
        *,
        sort: bool | None = None,
        routed: tuple[np.ndarray, np.ndarray] | None = None,
        stats=None,
    ) -> np.ndarray:
        """Lower-bound positions for a prepared batch.

        ``sort`` controls the sorted-batch fast path: sort + dedup the
        compare values in one ``np.unique(return_inverse=True)`` pass,
        run the engine on the sorted unique queries — sequential
        gathers, and under the skewed workloads where batching matters
        far fewer of them — then scatter positions back through the
        inverse map.  A query's position depends only on its compare
        value (the engine verifies every boundary), so the output is
        bit-identical to the unsorted engine; instrumentation counts
        the deduplicated engine work.  ``sort=None`` applies the size +
        duplicate-density heuristic (:data:`SORTED_BATCH_THRESHOLD`,
        :data:`SORTED_BATCH_MIN_DUP_FRACTION`); ``True``/``False``
        force the choice (benchmarks measure both).

        ``routed`` lets callers that already ran :meth:`route` (e.g.
        the hybrid index) pass (leaf, raw) instead of paying the root
        inference twice.
        """
        compare = qb.compare
        if obs_state.enabled:
            # One branch on the hot path when disabled; the batch
            # counters feed the obs exporters and the auto-tuning arc.
            reg = default_registry()
            reg.counter("engine.lookup_batch.calls").inc()
            reg.counter("engine.lookup_batch.keys").inc(int(compare.size))
        if sort is None:
            sort = compare.size >= SORTED_BATCH_THRESHOLD and (
                batch_dup_fraction(compare) >= SORTED_BATCH_MIN_DUP_FRACTION
            )
        if not sort or compare.size <= 1:
            return self._engine(qb, routed, stats)
        uniq, inverse = np.unique(compare, return_inverse=True)
        # The engine re-routes the unique queries itself — cheaper than
        # permuting a caller's ``routed`` arrays through the sort.  The
        # unique sub-batch needs no masks: clamped compare values
        # search fine, and the original batch's oob mask re-applies
        # after the inverse scatter.
        pos = self._engine(QueryBatch(uniq), None, stats)[inverse]
        if qb.oob_high is not None:
            pos[qb.oob_high] = self.column.size
        return pos
