"""Last-mile search strategies (Section 3.4).

A learned range index predicts a *position*, not just a page, so the
final search can start from that prediction instead of the middle of a
window.  The paper evaluates:

* **Model Biased Search** — "only varies from traditional binary search
  in that the first middle point is set to the value predicted by the
  model";
* **Biased Quaternary Search** — "the initial three middle points of
  quaternary search as pos - sigma, pos, pos + sigma", continuing with
  traditional quaternary search so the hardware can prefetch all split
  points at once;
* plain binary search within the error bounds (the Figure 4 default);
* exponential search from the prediction, needing no stored bounds.

All strategies return lower-bound positions (first index whose key is
>= the lookup key) and optionally count comparisons for the cost model.

Scalar vs batch
---------------
The scalar strategies above are the *latency* path: one Python-level
probe sequence per query, mirroring what a code-generated C++ lookup
would execute, so per-query comparison counts feed the Section 2.1 cost
model honestly.  :func:`vectorized_bounded_search` is the *throughput*
path: it runs the plain binary-search strategy for a whole query batch
in lock-step (`while np.any(left < right)`), one numpy gather +
compare per round over every still-active query.  Both return the same
lower-bound positions; only the probe schedule differs, which is why
benchmarks report scalar latency and batch throughput separately.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..btree.search_baselines import (
    Counter,
    binary_search,
    exponential_search,
)

__all__ = [
    "biased_binary_search",
    "biased_quaternary_search",
    "bounded_search",
    "vectorized_bounded_search",
    "verify_lower_bound",
    "verify_lower_bound_batch",
    "SEARCH_STRATEGIES",
    "Counter",
]


def biased_binary_search(
    keys,
    key: float,
    lo: int,
    hi: int,
    guess: int,
    counter: Counter | None = None,
) -> int:
    """Binary search whose first probe is the model's prediction."""
    n = len(keys)
    lo = max(0, min(lo, n))
    hi = max(lo, min(hi, n))
    first = True
    while lo < hi:
        if first:
            mid = max(lo, min(guess, hi - 1))
            first = False
        else:
            mid = (lo + hi) >> 1
        if counter is not None:
            counter.comparisons += 1
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def biased_quaternary_search(
    keys,
    key: float,
    lo: int,
    hi: int,
    guess: int,
    sigma: int = 1,
    counter: Counter | None = None,
) -> int:
    """Quaternary search seeded at ``guess - sigma, guess, guess + sigma``.

    Each round probes three split points (which real hardware prefetches
    together); the first round's points bracket the prediction with the
    model's error std so most lookups finish after one round.
    """
    n = len(keys)
    lo = max(0, min(lo, n))
    hi = max(lo, min(hi, n))
    sigma = max(int(sigma), 1)
    first = True
    while hi - lo > 3:
        if first:
            center = max(lo, min(guess, hi - 1))
            p1 = max(lo, center - sigma)
            p2 = center
            p3 = min(hi - 1, center + sigma)
            first = False
        else:
            quarter = (hi - lo) >> 2
            p1 = lo + quarter
            p2 = lo + 2 * quarter
            p3 = lo + 3 * quarter
        if counter is not None:
            counter.comparisons += 3
        # Narrow to the sub-range that preserves the lower-bound
        # invariant: the answer stays inside [lo, hi).
        if keys[p1] >= key:
            hi = p1 + 1
        elif keys[p2] >= key:
            lo, hi = p1 + 1, p2 + 1
        elif keys[p3] >= key:
            lo, hi = p2 + 1, p3 + 1
        else:
            lo = p3 + 1
    return binary_search(keys, key, lo, hi, counter)


def _plain_binary(keys, key, lo, hi, guess, counter=None):
    return binary_search(keys, key, lo, hi, counter)


def _exponential(keys, key, lo, hi, guess, counter=None):
    # Bound-free: expands from the guess over the whole array.
    return exponential_search(keys, key, guess, counter)


def _biased_quaternary_default(keys, key, lo, hi, guess, counter=None):
    # sigma defaults to a quarter of the window, >= 1
    sigma = max((hi - lo) // 4, 1)
    return biased_quaternary_search(keys, key, lo, hi, guess, sigma, counter)


#: name -> callable(keys, key, lo, hi, guess, counter) -> lower-bound pos
SEARCH_STRATEGIES: dict[str, Callable] = {
    "binary": _plain_binary,
    "biased_binary": biased_binary_search,
    "biased_quaternary": _biased_quaternary_default,
    "exponential": _exponential,
}


def bounded_search(
    keys,
    key: float,
    lo: int,
    hi: int,
    guess: int,
    strategy: str = "binary",
    sigma: int | None = None,
    counter: Counter | None = None,
) -> int:
    """Dispatch to a named strategy; see :data:`SEARCH_STRATEGIES`."""
    if strategy == "biased_quaternary" and sigma is not None:
        return biased_quaternary_search(keys, key, lo, hi, guess, sigma, counter)
    try:
        fn = SEARCH_STRATEGIES[strategy]
    except KeyError:
        known = ", ".join(sorted(SEARCH_STRATEGIES))
        raise KeyError(f"unknown strategy {strategy!r}; known: {known}") from None
    return fn(keys, key, lo, hi, guess, counter)


def vectorized_bounded_search(
    keys: np.ndarray,
    queries: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    counter: Counter | None = None,
) -> np.ndarray:
    """Lock-step lower-bound binary search over per-query windows.

    Runs one binary-search round per iteration for *every* query whose
    window ``[lo, hi)`` is still open: a single fancy-indexed gather of
    ``keys`` at the midpoints plus one vectorized compare, i.e. the
    data-parallel analogue of issuing a batch of independent binary
    searches.  Queries whose windows close simply stop participating;
    the loop ends after ``ceil(log2(max window))`` rounds.

    ``keys`` must be non-empty and sorted; ``lo``/``hi`` are int arrays
    already clamped to ``[0, n]``.  Returns the per-query lower bound
    *within its window* (callers verify against the full array and fix
    up misses, exactly like the scalar path).

    Verification shortcut for callers: a returned position strictly
    inside its window has had both neighbours probed (the final probes
    that pinned ``left`` and ``right`` established ``keys[pos-1] <
    query <= keys[pos]``), so it is already a *globally* correct lower
    bound.  Only boundary results (``pos == lo`` or ``pos == hi``) can
    be Section 3.4 mispredictions and need the verification pass.
    """
    left = np.asarray(lo, dtype=np.int64).copy()
    right = np.asarray(hi, dtype=np.int64).copy()
    batch = left.size
    # Phase 1 — full-width lock-step rounds while most lanes are open:
    # every array op streams over the whole batch, so masking beats
    # compaction until the open fraction drops.
    while True:
        active = left < right
        open_lanes = int(np.count_nonzero(active))
        if open_lanes == 0:
            return left
        if open_lanes * 4 < batch:
            break
        if counter is not None:
            counter.comparisons += open_lanes
        mid = (left + right) >> 1
        # Closed lanes have left == right (possibly == n); 'clip' keeps
        # their gather in range — the lanes are masked below anyway.
        gathered = keys.take(mid, mode="clip")
        less = gathered < queries
        less &= active  # lanes moving right this round
        active ^= less  # lanes moving left this round
        left = np.where(less, mid + 1, left)
        right = np.where(active, mid, right)
    # Phase 2 — compact the straggler lanes (wide-window outliers) so
    # the remaining rounds no longer pay full-batch passes.
    idx = np.nonzero(active)[0]
    l, r, q = left[idx], right[idx], queries[idx]
    while l.size:
        if counter is not None:
            counter.comparisons += int(l.size)
        mid = (l + r) >> 1  # all lanes open: mid < r <= n, gather safe
        less = keys[mid] < q
        l = np.where(less, mid + 1, l)
        r = np.where(less, r, mid)
        closed = l >= r
        if closed.any():
            left[idx[closed]] = l[closed]
            still = ~closed
            idx, l, r, q = idx[still], l[still], r[still], q[still]
    return left


def verify_lower_bound_batch(
    keys: np.ndarray, queries: np.ndarray, positions: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`verify_lower_bound`: one bool per query.

    ``positions`` must already lie in ``[0, n]``; entries fail when the
    key at the position is still < query or the key before it is >=
    query — the Section 3.4 misprediction cases the scalar fix-up
    widens.
    """
    n = keys.shape[0]
    positions = np.asarray(positions, dtype=np.int64)
    safe = np.minimum(positions, n - 1)
    bad = (positions < n) & (keys[safe] < queries)
    prev = np.maximum(positions - 1, 0)
    bad |= (positions > 0) & (keys[prev] >= queries)
    return ~bad


def verify_lower_bound(keys, key: float, pos: int) -> bool:
    """True iff ``pos`` is the correct lower bound of ``key`` in ``keys``.

    The Section 3.4 misprediction check: for non-monotonic models the
    error window can miss for *absent* keys; callers widen the search
    when this returns False.
    """
    n = len(keys)
    if pos < 0 or pos > n:
        return False
    if pos < n and keys[pos] < key:
        return False
    if pos > 0 and keys[pos - 1] >= key:
        return False
    return True
