"""Last-mile search strategies (Section 3.4).

A learned range index predicts a *position*, not just a page, so the
final search can start from that prediction instead of the middle of a
window.  The paper evaluates:

* **Model Biased Search** — "only varies from traditional binary search
  in that the first middle point is set to the value predicted by the
  model";
* **Biased Quaternary Search** — "the initial three middle points of
  quaternary search as pos - sigma, pos, pos + sigma", continuing with
  traditional quaternary search so the hardware can prefetch all split
  points at once;
* plain binary search within the error bounds (the Figure 4 default);
* exponential search from the prediction, needing no stored bounds.

All strategies return lower-bound positions (first index whose key is
>= the lookup key) and optionally count comparisons for the cost model.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..btree.search_baselines import (
    Counter,
    binary_search,
    exponential_search,
)

__all__ = [
    "biased_binary_search",
    "biased_quaternary_search",
    "bounded_search",
    "SEARCH_STRATEGIES",
    "Counter",
]


def biased_binary_search(
    keys,
    key: float,
    lo: int,
    hi: int,
    guess: int,
    counter: Counter | None = None,
) -> int:
    """Binary search whose first probe is the model's prediction."""
    n = len(keys)
    lo = max(0, min(lo, n))
    hi = max(lo, min(hi, n))
    first = True
    while lo < hi:
        if first:
            mid = max(lo, min(guess, hi - 1))
            first = False
        else:
            mid = (lo + hi) >> 1
        if counter is not None:
            counter.comparisons += 1
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def biased_quaternary_search(
    keys,
    key: float,
    lo: int,
    hi: int,
    guess: int,
    sigma: int = 1,
    counter: Counter | None = None,
) -> int:
    """Quaternary search seeded at ``guess - sigma, guess, guess + sigma``.

    Each round probes three split points (which real hardware prefetches
    together); the first round's points bracket the prediction with the
    model's error std so most lookups finish after one round.
    """
    n = len(keys)
    lo = max(0, min(lo, n))
    hi = max(lo, min(hi, n))
    sigma = max(int(sigma), 1)
    first = True
    while hi - lo > 3:
        if first:
            center = max(lo, min(guess, hi - 1))
            p1 = max(lo, center - sigma)
            p2 = center
            p3 = min(hi - 1, center + sigma)
            first = False
        else:
            quarter = (hi - lo) >> 2
            p1 = lo + quarter
            p2 = lo + 2 * quarter
            p3 = lo + 3 * quarter
        if counter is not None:
            counter.comparisons += 3
        # Narrow to the sub-range that preserves the lower-bound
        # invariant: the answer stays inside [lo, hi).
        if keys[p1] >= key:
            hi = p1 + 1
        elif keys[p2] >= key:
            lo, hi = p1 + 1, p2 + 1
        elif keys[p3] >= key:
            lo, hi = p2 + 1, p3 + 1
        else:
            lo = p3 + 1
    return binary_search(keys, key, lo, hi, counter)


def _plain_binary(keys, key, lo, hi, guess, counter=None):
    return binary_search(keys, key, lo, hi, counter)


def _exponential(keys, key, lo, hi, guess, counter=None):
    # Bound-free: expands from the guess over the whole array.
    return exponential_search(keys, key, guess, counter)


def _biased_quaternary_default(keys, key, lo, hi, guess, counter=None):
    # sigma defaults to a quarter of the window, >= 1
    sigma = max((hi - lo) // 4, 1)
    return biased_quaternary_search(keys, key, lo, hi, guess, sigma, counter)


#: name -> callable(keys, key, lo, hi, guess, counter) -> lower-bound pos
SEARCH_STRATEGIES: dict[str, Callable] = {
    "binary": _plain_binary,
    "biased_binary": biased_binary_search,
    "biased_quaternary": _biased_quaternary_default,
    "exponential": _exponential,
}


def bounded_search(
    keys,
    key: float,
    lo: int,
    hi: int,
    guess: int,
    strategy: str = "binary",
    sigma: int | None = None,
    counter: Counter | None = None,
) -> int:
    """Dispatch to a named strategy; see :data:`SEARCH_STRATEGIES`."""
    if strategy == "biased_quaternary" and sigma is not None:
        return biased_quaternary_search(keys, key, lo, hi, guess, sigma, counter)
    try:
        fn = SEARCH_STRATEGIES[strategy]
    except KeyError:
        known = ", ".join(sorted(SEARCH_STRATEGIES))
        raise KeyError(f"unknown strategy {strategy!r}; known: {known}") from None
    return fn(keys, key, lo, hi, guess, counter)


def verify_lower_bound(keys, key: float, pos: int) -> bool:
    """True iff ``pos`` is the correct lower bound of ``key`` in ``keys``.

    The Section 3.4 misprediction check: for non-monotonic models the
    error window can miss for *absent* keys; callers widen the search
    when this returns False.
    """
    n = len(keys)
    if pos < 0 or pos > n:
        return False
    if pos < n and keys[pos] < key:
        return False
    if pos > 0 and keys[pos - 1] >= key:
        return False
    return True
