"""Model interface shared by every regression model in the RMI.

The paper treats an index as "a model which takes a key as an input and
predicts the position of a data record" (Section 2).  Everything the
recursive model index composes — linear regression, multivariate
regression, small neural nets, even the B-Tree fallback of hybrid
indexes — satisfies the small contract defined here:

* ``fit(keys, positions)`` — train on float key/position pairs;
* ``predict(key)`` — scalar prediction (the hot path; implementations
  avoid numpy here, mirroring LIF's code-generated models);
* ``predict_batch(keys)`` — vectorized prediction for training, error
  calculation and bulk evaluation;
* ``param_count`` / ``size_bytes()`` — storage accounting for the
  paper's size columns;
* ``op_count()`` — multiply-add count per inference for the Section 2.1
  cost model.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["Model", "ConstantModel"]

_FLOAT_BYTES = 8


class Model(abc.ABC):
    """Abstract regression model mapping a scalar key to a position."""

    @abc.abstractmethod
    def fit(self, keys: np.ndarray, positions: np.ndarray) -> "Model":
        """Train on parallel arrays of keys and target positions.

        Returns ``self`` so construction and training can be chained.
        """

    @abc.abstractmethod
    def predict(self, key: float) -> float:
        """Predict the position for a single key (scalar fast path)."""

    def predict_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized prediction; default loops over :meth:`predict`."""
        keys = np.asarray(keys, dtype=np.float64)
        return np.array([self.predict(float(k)) for k in keys])

    @property
    @abc.abstractmethod
    def param_count(self) -> int:
        """Number of learned scalar parameters."""

    def size_bytes(self) -> int:
        """Bytes needed to store the parameters (8 bytes per float)."""
        return self.param_count * _FLOAT_BYTES

    @abc.abstractmethod
    def op_count(self) -> int:
        """Arithmetic operations (multiply-adds) per scalar inference."""

    def is_monotonic(self) -> bool:
        """Whether the model is monotonically non-decreasing in the key.

        Monotonic models guarantee min/max error bounds hold for absent
        look-up keys too (Section 3.4); non-monotonic models require the
        widening-search fallback.
        """
        return False


class ConstantModel(Model):
    """Predicts the mean position regardless of key.

    The degenerate fallback for leaf models trained on zero or one key,
    or on duplicated keys where no slope is identifiable.
    """

    def __init__(self, value: float = 0.0):
        self.value = float(value)

    def fit(self, keys: np.ndarray, positions: np.ndarray) -> "ConstantModel":
        positions = np.asarray(positions, dtype=np.float64)
        if positions.size:
            self.value = float(positions.mean())
        return self

    def predict(self, key: float) -> float:
        return self.value

    def predict_batch(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.float64)
        return np.full(keys.shape, self.value)

    @property
    def param_count(self) -> int:
        return 1

    def op_count(self) -> int:
        return 0

    def is_monotonic(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"ConstantModel(value={self.value:.3f})"
