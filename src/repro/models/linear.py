"""Closed-form linear regression — the RMI's workhorse leaf model.

Section 3.6 of the paper: "a closed form solution exists for linear
multi-variate models (e.g., also 0-layer NN) and they can be trained in
a single pass over the sorted data" and Section 3.7.1: "For the second
stage, simple, linear models, had the best performance ... linear
models can be learned optimally."

``LinearModel`` is ordinary least squares ``y = slope * x + intercept``
fit in one pass.  The scalar ``predict`` path is two Python float
operations — the analogue of LIF's ~30ns code-generated models — which
is what makes measured lookup-time ratios against tree traversal
meaningful in this reproduction.
"""

from __future__ import annotations

import numpy as np

from .base import Model
from .cdf import segment_reducer

__all__ = [
    "LinearModel",
    "SplineSegmentModel",
    "fit_linear_cdf_root",
    "segmented_linear_fit",
]


def fit_linear_cdf_root(
    keys: np.ndarray, positions: np.ndarray
) -> "LinearModel":
    """Least-squares :class:`LinearModel` against CDF positions 0..n-1.

    Same closed form as ``LinearModel().fit(keys, positions)`` for the
    root-model case where ``positions`` is ``arange(n)``, with fewer
    array temporaries: the position mean is ``(n - 1) / 2`` in closed
    form (exact — the arange sum and its division are both
    representable) and the covariance folds the mean out of the dot
    product, ``Σdx·y − ȳ·Σdx``.  Results differ from the generic fit
    only by float rounding; worth ~2ms of every million-key build once
    the rest of construction is vectorized.
    """
    n = keys.size
    if n < 2:
        return LinearModel().fit(keys, positions)
    mean_x = float(keys.mean())
    mean_y = (n - 1) / 2.0
    dx = keys - mean_x
    var_x = float(np.dot(dx, dx))
    if var_x == 0.0:
        return LinearModel(0.0, mean_y)
    cov_xy = float(np.dot(dx, positions)) - mean_y * float(dx.sum())
    slope = cov_xy / var_x
    return LinearModel(slope, mean_y - slope * mean_x)


def segmented_linear_fit(
    keys: np.ndarray,
    positions: np.ndarray,
    assignment: np.ndarray,
    num_segments: int,
    *,
    return_predictions: bool = False,
    boundaries: np.ndarray | None = None,
):
    """Fit every segment's least-squares line in one vectorized pass.

    The array-native form of calling :meth:`LinearModel.fit` once per
    segment: ``assignment[i]`` names the segment key ``i`` belongs to,
    and per-segment sufficient statistics (``n``, ``Σx``, ``Σy``, and
    the *centered* ``Σdx²`` / ``Σdx·dy`` — centering matches the scalar
    fit's conditioning, so slopes agree to float tolerance instead of
    drifting on large key magnitudes) accumulate per segment.  When
    ``assignment`` is non-decreasing — always true under a monotonic
    routing model — segments are contiguous slices, so the boundaries
    come from one ``searchsorted`` and every sum is a single
    ``np.add.reduceat``; otherwise sums fall back to weighted
    ``np.bincount``.  Every slope/intercept then solves in one
    closed-form array expression.

    Degenerate segments reproduce the scalar fit's branches exactly:
    one member or zero key variance → slope 0, intercept = mean
    position; zero members → slope 0, intercept 0 (callers install
    their own empty-segment model).

    Returns ``(slopes, intercepts, counts)``, each of length
    ``num_segments``; with ``return_predictions=True`` a fourth element
    carries each key's fitted position as ``slope·dx + ȳ`` — the
    centered form of ``slope·x + intercept``, reusing the residual
    basis already in hand (equal up to float rounding).

    ``boundaries`` (length ``num_segments + 1``) asserts that
    ``assignment`` is non-decreasing with these contiguous segment
    boundaries, skipping the monotonicity check and ``searchsorted`` —
    callers that run both this fit and
    :func:`repro.models.cdf.segmented_error_arrays` over one
    assignment compute the layout once.
    """
    keys = np.asarray(keys, dtype=np.float64)
    positions = np.asarray(positions, dtype=np.float64)
    m = int(num_segments)
    n = keys.size
    slopes = np.zeros(m, dtype=np.float64)
    intercepts = np.zeros(m, dtype=np.float64)
    if n == 0:
        counts = np.zeros(m, dtype=np.int64)
        if return_predictions:
            return slopes, intercepts, counts, np.zeros(0, dtype=np.float64)
        return slopes, intercepts, counts
    if boundaries is None and bool(
        np.all(assignment[1:] >= assignment[:-1])
    ):
        boundaries = np.searchsorted(
            assignment, np.arange(m + 1), side="left"
        )
    if boundaries is not None:
        # Contiguous segments (always true under a monotonic root):
        # every per-segment sum is a single ``np.add.reduceat``
        # (empty-segment handling lives in segment_reducer) — several
        # times cheaper than the hashing ``bincount`` path below.
        counts, _empty, reduce = segment_reducer(boundaries, n)

        def seg_sum(values: np.ndarray) -> np.ndarray:
            return reduce(np.add, values)

        def expand(per_segment: np.ndarray) -> np.ndarray:
            return np.repeat(per_segment, counts)

    else:
        counts = np.bincount(assignment, minlength=m).astype(np.int64)

        def seg_sum(values: np.ndarray) -> np.ndarray:
            return np.bincount(assignment, weights=values, minlength=m)

        def expand(per_segment: np.ndarray) -> np.ndarray:
            return per_segment[assignment]

    safe = np.maximum(counts, 1).astype(np.float64)
    mean_x = seg_sum(keys) / safe
    mean_y = seg_sum(positions) / safe
    mean_y_keys = expand(mean_y)
    dx = keys - expand(mean_x)
    dy = positions - mean_y_keys
    var_x = seg_sum(dx * dx)
    cov_xy = seg_sum(dx * dy)
    identifiable = var_x > 0.0
    np.divide(cov_xy, var_x, out=slopes, where=identifiable)
    occupied = counts > 0
    intercepts[occupied] = (mean_y - slopes * mean_x)[occupied]
    if not return_predictions:
        return slopes, intercepts, counts
    predictions = expand(slopes)
    predictions *= dx
    predictions += mean_y_keys
    return slopes, intercepts, counts, predictions


class LinearModel(Model):
    """Least-squares line ``position = slope * key + intercept``."""

    __slots__ = ("slope", "intercept")

    def __init__(self, slope: float = 0.0, intercept: float = 0.0):
        self.slope = float(slope)
        self.intercept = float(intercept)

    def fit(self, keys: np.ndarray, positions: np.ndarray) -> "LinearModel":
        keys = np.asarray(keys, dtype=np.float64)
        positions = np.asarray(positions, dtype=np.float64)
        n = keys.size
        if n == 0:
            self.slope, self.intercept = 0.0, 0.0
            return self
        if n == 1:
            self.slope, self.intercept = 0.0, float(positions[0])
            return self
        mean_x = float(keys.mean())
        mean_y = float(positions.mean())
        dx = keys - mean_x
        var_x = float(np.dot(dx, dx))
        if var_x == 0.0:
            # All keys identical: only the mean position is identifiable.
            self.slope, self.intercept = 0.0, mean_y
            return self
        cov_xy = float(np.dot(dx, positions - mean_y))
        self.slope = cov_xy / var_x
        self.intercept = mean_y - self.slope * mean_x
        return self

    def fit_endpoints(
        self, keys: np.ndarray, positions: np.ndarray
    ) -> "LinearModel":
        """Interpolate the first and last point instead of least squares.

        Useful for strictly bounding segments (spline-style fitting);
        guarantees zero error at both endpoints.
        """
        keys = np.asarray(keys, dtype=np.float64)
        positions = np.asarray(positions, dtype=np.float64)
        if keys.size < 2 or keys[-1] == keys[0]:
            return self.fit(keys, positions)
        self.slope = float(
            (positions[-1] - positions[0]) / (keys[-1] - keys[0])
        )
        self.intercept = float(positions[0] - self.slope * keys[0])
        return self

    def predict(self, key: float) -> float:
        return self.slope * key + self.intercept

    def predict_batch(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.float64)
        return self.slope * keys + self.intercept

    @property
    def param_count(self) -> int:
        return 2

    def op_count(self) -> int:
        return 2  # one multiply, one add

    def is_monotonic(self) -> bool:
        return self.slope >= 0.0

    def __repr__(self) -> str:
        return f"LinearModel(slope={self.slope:.6g}, intercept={self.intercept:.6g})"


class SplineSegmentModel(Model):
    """Monotone piecewise-linear interpolation over ``k`` knots.

    A middle ground between one line and a full second stage: knots are
    taken at evenly spaced key quantiles, and prediction interpolates
    between the surrounding knots.  Because the knot positions are
    non-decreasing the model is monotonic by construction, so the
    Section 3.4 bound guarantees hold even for absent keys.
    """

    def __init__(self, knots: int = 16):
        if knots < 2:
            raise ValueError("need at least 2 knots")
        self.requested_knots = int(knots)
        self.knot_keys = np.zeros(2)
        self.knot_positions = np.zeros(2)

    def fit(
        self, keys: np.ndarray, positions: np.ndarray
    ) -> "SplineSegmentModel":
        keys = np.asarray(keys, dtype=np.float64)
        positions = np.asarray(positions, dtype=np.float64)
        if keys.size == 0:
            self.knot_keys = np.array([0.0, 1.0])
            self.knot_positions = np.array([0.0, 0.0])
            return self
        if keys.size == 1:
            k = float(keys[0])
            self.knot_keys = np.array([k, k + 1.0])
            self.knot_positions = np.array([positions[0], positions[0]])
            return self
        k = min(self.requested_knots, keys.size)
        picks = np.linspace(0, keys.size - 1, k).round().astype(np.int64)
        knot_keys = keys[picks]
        knot_positions = positions[picks]
        # Collapse duplicate knot keys (possible with heavy clustering).
        unique_keys, first = np.unique(knot_keys, return_index=True)
        if unique_keys.size < 2:
            k0 = float(unique_keys[0])
            self.knot_keys = np.array([k0, k0 + 1.0])
            mean = float(positions.mean())
            self.knot_positions = np.array([mean, mean])
            return self
        self.knot_keys = unique_keys
        self.knot_positions = np.maximum.accumulate(knot_positions[first])
        return self

    def predict(self, key: float) -> float:
        kk = self.knot_keys
        kp = self.knot_positions
        if key <= kk[0]:
            return float(kp[0])
        if key >= kk[-1]:
            return float(kp[-1])
        hi = int(np.searchsorted(kk, key, side="right"))
        lo = hi - 1
        span = kk[hi] - kk[lo]
        frac = (key - kk[lo]) / span
        return float(kp[lo] + frac * (kp[hi] - kp[lo]))

    def predict_batch(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.float64)
        return np.interp(keys, self.knot_keys, self.knot_positions)

    @property
    def param_count(self) -> int:
        return 2 * int(self.knot_keys.size)

    def op_count(self) -> int:
        # binary search over knots + one interpolation
        return int(np.ceil(np.log2(max(self.knot_keys.size, 2)))) + 4

    def is_monotonic(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"SplineSegmentModel(knots={self.knot_keys.size})"
