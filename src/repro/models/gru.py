"""Character-level GRU classifier (numpy, trained with BPTT).

The paper's learned Bloom filter (Section 5.2) uses "a character-level
RNN (GRU, in particular) to predict which set a URL belongs to", with a
"W-dimensional GRU with an E-dimensional embedding for each character"
— Figure 10 sweeps W in {16, 32, 128} at E = 32.

This module implements that model from scratch:

* character vocabulary over printable ASCII + out-of-vocabulary bucket,
* learned embedding matrix (V x E),
* single GRU layer (update gate z, reset gate r, candidate h~),
* final hidden state -> dense -> sigmoid probability,
* full backpropagation through time, mini-batch Adam,
* model size accounting for the Figure 10 memory-footprint axis
  (float32 storage, matching deployable model formats).

Sequences in a batch are right-padded; padded steps are masked out of
both the forward recurrence and the gradients.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CharVocabulary", "GRUClassifier"]


class CharVocabulary:
    """Maps characters to dense ids: printable ASCII + <pad> + <oov>."""

    PAD = 0
    OOV = 1

    def __init__(self):
        chars = [chr(c) for c in range(32, 127)]
        self._to_id = {ch: i + 2 for i, ch in enumerate(chars)}
        self.size = len(chars) + 2

    def encode(self, text: str, max_length: int) -> np.ndarray:
        ids = np.full(max_length, self.PAD, dtype=np.int64)
        for i, ch in enumerate(text[:max_length]):
            ids[i] = self._to_id.get(ch, self.OOV)
        return ids

    def encode_batch(self, texts: list[str], max_length: int) -> np.ndarray:
        out = np.full((len(texts), max_length), self.PAD, dtype=np.int64)
        for row, text in enumerate(texts):
            for i, ch in enumerate(text[:max_length]):
                out[row, i] = self._to_id.get(ch, self.OOV)
        return out


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60, 60)))


class GRUClassifier:
    """Embedding -> GRU -> sigmoid binary classifier over strings."""

    def __init__(
        self,
        width: int = 16,
        embedding_dim: int = 32,
        max_length: int = 64,
        seed: int = 0,
    ):
        if width < 1 or embedding_dim < 1 or max_length < 1:
            raise ValueError("width, embedding_dim, max_length must be >= 1")
        self.width = int(width)
        self.embedding_dim = int(embedding_dim)
        self.max_length = int(max_length)
        self.vocab = CharVocabulary()
        rng = np.random.default_rng(seed)
        v, e, h = self.vocab.size, self.embedding_dim, self.width

        def glorot(fan_in: int, fan_out: int) -> np.ndarray:
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            return rng.uniform(-limit, limit, size=(fan_in, fan_out))

        self.embedding = rng.normal(0.0, 0.1, size=(v, e))
        # Gates stacked as [z | r | c] along the output axis (3h wide).
        self.w_x = glorot(e, 3 * h)
        self.w_h = glorot(h, 3 * h)
        self.b = np.zeros(3 * h)
        self.w_out = glorot(h, 1)
        self.b_out = np.zeros(1)
        self._adam: dict | None = None

    # -- parameter plumbing --------------------------------------------------

    def _params(self) -> list[np.ndarray]:
        return [
            self.embedding,
            self.w_x,
            self.w_h,
            self.b,
            self.w_out,
            self.b_out,
        ]

    @property
    def param_count(self) -> int:
        return int(sum(p.size for p in self._params()))

    def size_bytes(self, *, float_bytes: int = 4) -> int:
        """Model footprint; float32 by default like a deployed model."""
        return self.param_count * float_bytes

    # -- forward -------------------------------------------------------------

    def _forward(
        self, ids: np.ndarray
    ) -> tuple[np.ndarray, dict]:
        """Run the recurrence; returns (probabilities, cache for BPTT)."""
        batch, steps = ids.shape
        h_dim = self.width
        mask = (ids != CharVocabulary.PAD).astype(np.float64)
        x = self.embedding[ids]  # (batch, steps, E)
        h = np.zeros((batch, h_dim))
        cache = {
            "ids": ids,
            "mask": mask,
            "x": x,
            "h_prev": [],
            "z": [],
            "r": [],
            "c": [],
            "h": [],
        }
        for t in range(steps):
            gates = x[:, t, :] @ self.w_x + self.b
            z = _sigmoid(gates[:, :h_dim] + h @ self.w_h[:, :h_dim])
            r = _sigmoid(
                gates[:, h_dim:2 * h_dim] + h @ self.w_h[:, h_dim:2 * h_dim]
            )
            c = np.tanh(
                gates[:, 2 * h_dim:] + (r * h) @ self.w_h[:, 2 * h_dim:]
            )
            h_new = (1.0 - z) * h + z * c
            m = mask[:, t:t + 1]
            cache["h_prev"].append(h)
            h = m * h_new + (1.0 - m) * h
            cache["z"].append(z)
            cache["r"].append(r)
            cache["c"].append(c)
            cache["h"].append(h)
        logits = h @ self.w_out + self.b_out
        prob = _sigmoid(logits)
        cache["final_h"] = h
        cache["prob"] = prob
        return prob.ravel(), cache

    def predict_proba(self, texts: list[str], batch_size: int = 512) -> np.ndarray:
        """P(key) for each string."""
        out = np.empty(len(texts))
        for start in range(0, len(texts), batch_size):
            chunk = texts[start:start + batch_size]
            ids = self.vocab.encode_batch(chunk, self.max_length)
            prob, _ = self._forward(ids)
            out[start:start + len(chunk)] = prob
        return out

    def predict_proba_one(self, text: str) -> float:
        ids = self.vocab.encode(text, self.max_length).reshape(1, -1)
        prob, _ = self._forward(ids)
        return float(prob[0])

    # -- backward ------------------------------------------------------------

    def _backward(
        self, cache: dict, y: np.ndarray
    ) -> list[np.ndarray]:
        """Full BPTT for mean log-loss; returns grads aligned to _params()."""
        ids = cache["ids"]
        mask = cache["mask"]
        x = cache["x"]
        prob = cache["prob"].ravel()
        batch, steps = ids.shape
        h_dim = self.width

        g_embedding = np.zeros_like(self.embedding)
        g_wx = np.zeros_like(self.w_x)
        g_wh = np.zeros_like(self.w_h)
        g_b = np.zeros_like(self.b)

        # dLoss/dlogit for mean log loss = (p - y) / batch
        dlogit = ((prob - y) / batch).reshape(-1, 1)
        g_wout = cache["final_h"].T @ dlogit
        g_bout = dlogit.sum(axis=0)
        dh = dlogit @ self.w_out.T

        for t in range(steps - 1, -1, -1):
            m = mask[:, t:t + 1]
            z = cache["z"][t]
            r = cache["r"][t]
            c = cache["c"][t]
            h_prev = cache["h_prev"][t]
            # h_t = m*(1-z)*h_prev + m*z*c + (1-m)*h_prev
            dh_new = dh * m
            dh_passthrough = dh * (1.0 - m)
            dz = dh_new * (c - h_prev)
            dc = dh_new * z
            dh_prev = dh_new * (1.0 - z) + dh_passthrough

            dc_raw = dc * (1.0 - c * c)
            dz_raw = dz * z * (1.0 - z)
            dr = (dc_raw @ self.w_h[:, 2 * h_dim:].T) * h_prev
            dh_prev += (dc_raw @ self.w_h[:, 2 * h_dim:].T) * r
            dr_raw = dr * r * (1.0 - r)

            dgates = np.concatenate([dz_raw, dr_raw, dc_raw], axis=1)
            xt = x[:, t, :]
            g_wx += xt.T @ dgates
            g_b += dgates.sum(axis=0)
            g_wh[:, :h_dim] += h_prev.T @ dz_raw
            g_wh[:, h_dim:2 * h_dim] += h_prev.T @ dr_raw
            g_wh[:, 2 * h_dim:] += (r * h_prev).T @ dc_raw

            dxt = dgates @ self.w_x.T
            np.add.at(g_embedding, ids[:, t], dxt)

            dh_prev += dz_raw @ self.w_h[:, :h_dim].T
            dh_prev += dr_raw @ self.w_h[:, h_dim:2 * h_dim].T
            dh = dh_prev

        return [g_embedding, g_wx, g_wh, g_b, g_wout, g_bout]

    # -- training ------------------------------------------------------------

    def fit(
        self,
        texts: list[str],
        labels: np.ndarray,
        *,
        epochs: int = 3,
        batch_size: int = 128,
        learning_rate: float = 3e-3,
        clip: float = 5.0,
        seed: int = 1,
        verbose: bool = False,
    ) -> list[float]:
        """Mini-batch Adam over (texts, binary labels); returns loss history."""
        labels = np.asarray(labels, dtype=np.float64).ravel()
        if len(texts) != labels.size:
            raise ValueError("texts and labels length mismatch")
        ids_all = self.vocab.encode_batch(texts, self.max_length)
        rng = np.random.default_rng(seed)
        n = len(texts)
        params = self._params()
        self._adam = {
            "m": [np.zeros_like(p) for p in params],
            "v": [np.zeros_like(p) for p in params],
            "t": 0,
        }
        history: list[float] = []
        for epoch in range(epochs):
            order = rng.permutation(n)
            total_loss = 0.0
            batches = 0
            for start in range(0, n, batch_size):
                idx = order[start:start + batch_size]
                ids = ids_all[idx]
                y = labels[idx]
                prob, cache = self._forward(ids)
                eps = 1e-12
                loss = float(
                    -np.mean(
                        y * np.log(prob + eps)
                        + (1 - y) * np.log(1 - prob + eps)
                    )
                )
                grads = self._backward(cache, y)
                self._adam_step(grads, learning_rate, clip)
                total_loss += loss
                batches += 1
            history.append(total_loss / max(batches, 1))
            if verbose:
                print(f"epoch {epoch}: loss {history[-1]:.4f}")
        return history

    def _adam_step(
        self, grads: list[np.ndarray], lr: float, clip: float
    ) -> None:
        norm = np.sqrt(sum(float((g * g).sum()) for g in grads))
        if clip and norm > clip:
            grads = [g * (clip / norm) for g in grads]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        self._adam["t"] += 1
        t = self._adam["t"]
        for i, (param, grad) in enumerate(zip(self._params(), grads)):
            m = self._adam["m"][i]
            v = self._adam["v"][i]
            m *= beta1
            m += (1 - beta1) * grad
            v *= beta2
            v += (1 - beta2) * grad * grad
            m_hat = m / (1 - beta1**t)
            v_hat = v / (1 - beta2**t)
            param -= lr * m_hat / (np.sqrt(v_hat) + eps)

    def finite_difference_gradients(
        self, texts: list[str], labels: np.ndarray, epsilon: float = 1e-5
    ) -> list[np.ndarray]:
        """Numerical log-loss gradients for gradient-check tests.

        Only feasible for tiny models; tests use width=3, E=4.
        """
        ids = self.vocab.encode_batch(texts, self.max_length)
        y = np.asarray(labels, dtype=np.float64).ravel()

        def loss() -> float:
            prob, _ = self._forward(ids)
            eps2 = 1e-12
            return float(
                -np.mean(
                    y * np.log(prob + eps2) + (1 - y) * np.log(1 - prob + eps2)
                )
            )

        grads = []
        for p in self._params():
            grad = np.zeros_like(p)
            flat = p.reshape(-1)
            gflat = grad.reshape(-1)
            for i in range(flat.size):
                orig = flat[i]
                flat[i] = orig + epsilon
                up = loss()
                flat[i] = orig - epsilon
                down = loss()
                flat[i] = orig
                gflat[i] = (up - down) / (2 * epsilon)
            grads.append(grad)
        return grads
