"""Machine-learning substrate: every model the paper's indexes compose.

Implemented from scratch on numpy — no ML framework is used at either
training or inference time (Section 3.1: LIF "never uses Tensorflow at
inference").
"""

from .base import ConstantModel, Model
from .cdf import (
    EmpiricalCDF,
    ErrorStats,
    empirical_cdf,
    error_stats,
    error_stats_list_from_arrays,
    positions_for_keys,
    segmented_error_arrays,
    segmented_error_stats,
)
from .gru import CharVocabulary, GRUClassifier
from .linear import (
    LinearModel,
    SplineSegmentModel,
    fit_linear_cdf_root,
    segmented_linear_fit,
)
from .multivariate import FEATURE_LIBRARY, MultivariateLinearModel
from .nn import MLP, FrameworkModel, NeuralRegressionModel
from .tokenization import (
    lexicographic_scalar,
    lexicographic_scalar_batch,
    tokenize,
    tokenize_batch,
)

__all__ = [
    "FEATURE_LIBRARY",
    "MLP",
    "CharVocabulary",
    "ConstantModel",
    "EmpiricalCDF",
    "ErrorStats",
    "FrameworkModel",
    "GRUClassifier",
    "LinearModel",
    "Model",
    "MultivariateLinearModel",
    "NeuralRegressionModel",
    "SplineSegmentModel",
    "empirical_cdf",
    "error_stats",
    "error_stats_list_from_arrays",
    "fit_linear_cdf_root",
    "lexicographic_scalar",
    "lexicographic_scalar_batch",
    "positions_for_keys",
    "segmented_error_arrays",
    "segmented_error_stats",
    "segmented_linear_fit",
    "tokenize",
    "tokenize_batch",
]
