"""Multivariate linear regression with automatic feature engineering.

Figure 5's best learned index uses "a multi-variate linear regression
model at the top ... We used simple automatic feature engineering for
the top model by automatically creating and selecting features in the
form of key, log(key), key^2, etc.  Multivariate linear regression is an
interesting alternative to NN as it is particularly well suited to fit
nonlinear patterns with only a few operations."

``MultivariateLinearModel`` reproduces that: it expands the key into a
configurable feature vector, solves least squares in closed form (with
feature standardization for conditioning), and optionally *selects* the
feature subset with the lowest validation error, exactly in the spirit
of the paper's automatic creation-and-selection.
"""

from __future__ import annotations

import itertools

import numpy as np

from .base import Model

__all__ = ["MultivariateLinearModel", "FEATURE_LIBRARY"]


def _safe_log(x: np.ndarray) -> np.ndarray:
    return np.log1p(np.abs(x))


def _safe_sqrt(x: np.ndarray) -> np.ndarray:
    return np.sqrt(np.abs(x))


#: name -> (vectorized transform, multiply-add cost of the transform)
FEATURE_LIBRARY: dict = {
    "key": (lambda x: x, 0),
    "key^2": (lambda x: x * x, 1),
    "key^3": (lambda x: x * x * x, 2),
    "log": (_safe_log, 4),  # log ~ a few fused ops on modern CPUs
    "sqrt": (_safe_sqrt, 4),
    "loglog": (lambda x: _safe_log(_safe_log(x)), 8),
}


class MultivariateLinearModel(Model):
    """Least squares over an engineered feature expansion of the key."""

    def __init__(
        self,
        features: tuple[str, ...] = ("key", "log", "key^2"),
        auto_select: bool = False,
        validation_fraction: float = 0.1,
    ):
        unknown = [f for f in features if f not in FEATURE_LIBRARY]
        if unknown:
            raise ValueError(
                f"unknown features {unknown}; known: {sorted(FEATURE_LIBRARY)}"
            )
        if not features:
            raise ValueError("need at least one feature")
        self.features = tuple(features)
        self.auto_select = bool(auto_select)
        self.validation_fraction = float(validation_fraction)
        self.weights = np.zeros(len(self.features))
        self.bias = 0.0
        self._mean = np.zeros(len(self.features))
        self._scale = np.ones(len(self.features))

    # -- feature plumbing ---------------------------------------------------

    def _raw_features(
        self, keys: np.ndarray, names: tuple[str, ...]
    ) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.float64)
        columns = [FEATURE_LIBRARY[name][0](keys) for name in names]
        return np.stack(columns, axis=1)

    def _fit_names(
        self, keys: np.ndarray, positions: np.ndarray, names: tuple[str, ...]
    ) -> tuple[np.ndarray, float, np.ndarray, np.ndarray]:
        """Solve standardized least squares for one feature subset."""
        x = self._raw_features(keys, names)
        mean = x.mean(axis=0)
        scale = x.std(axis=0)
        scale[scale == 0.0] = 1.0
        z = (x - mean) / scale
        design = np.column_stack([z, np.ones(z.shape[0])])
        solution, *_ = np.linalg.lstsq(design, positions, rcond=None)
        return solution[:-1], float(solution[-1]), mean, scale

    # -- Model API ----------------------------------------------------------

    def fit(
        self, keys: np.ndarray, positions: np.ndarray
    ) -> "MultivariateLinearModel":
        keys = np.asarray(keys, dtype=np.float64)
        positions = np.asarray(positions, dtype=np.float64)
        if keys.size == 0:
            self.weights = np.zeros(len(self.features))
            self.bias = 0.0
            return self
        if not self.auto_select or keys.size < 16:
            w, b, mean, scale = self._fit_names(keys, positions, self.features)
            self.weights, self.bias = w, b
            self._mean, self._scale = mean, scale
            return self

        # Automatic selection: hold out a slice, score each non-empty
        # subset of the configured features, keep the best.
        holdout = max(1, int(keys.size * self.validation_fraction))
        stride = max(1, keys.size // holdout)
        val_mask = np.zeros(keys.size, dtype=bool)
        val_mask[::stride] = True
        train_k, train_p = keys[~val_mask], positions[~val_mask]
        val_k, val_p = keys[val_mask], positions[val_mask]
        if train_k.size < 2:
            train_k, train_p = keys, positions
            val_k, val_p = keys, positions

        best = None
        for r in range(1, len(self.features) + 1):
            for subset in itertools.combinations(self.features, r):
                w, b, mean, scale = self._fit_names(train_k, train_p, subset)
                z = (self._raw_features(val_k, subset) - mean) / scale
                err = float(np.abs(z @ w + b - val_p).max())
                if best is None or err < best[0]:
                    best = (err, subset, None)
        _, subset, _ = best
        self.features = subset
        w, b, mean, scale = self._fit_names(keys, positions, subset)
        self.weights, self.bias = w, b
        self._mean, self._scale = mean, scale
        return self

    def predict(self, key: float) -> float:
        total = self.bias
        for i, name in enumerate(self.features):
            transform, _cost = FEATURE_LIBRARY[name]
            raw = float(transform(np.float64(key)))
            total += self.weights[i] * (raw - self._mean[i]) / self._scale[i]
        return float(total)

    def predict_batch(self, keys: np.ndarray) -> np.ndarray:
        z = (self._raw_features(keys, self.features) - self._mean) / self._scale
        return z @ self.weights + self.bias

    @property
    def param_count(self) -> int:
        # weights + bias + per-feature standardization constants
        return len(self.features) * 3 + 1

    def op_count(self) -> int:
        ops = 1  # bias add
        for name in self.features:
            _transform, cost = FEATURE_LIBRARY[name]
            ops += cost + 3  # transform + standardize (sub, mul) + fma
        return ops

    def __repr__(self) -> str:
        return f"MultivariateLinearModel(features={self.features})"
