"""A tiny fully-connected neural-network framework (numpy only).

The paper's range-index models are "simple neural nets with zero to two
fully-connected hidden layers and ReLU activation functions and a layer
width of up to 32 neurons" (Section 3.3), trained with stochastic
gradient descent (Section 3.6).  Tensorflow is unavailable offline and
would defeat the point anyway — Section 2.3 shows framework invocation
overhead is the first thing a learned index must eliminate — so this
module implements the substrate from scratch:

* :class:`MLP` — dense ReLU network with manual backprop, trained by
  mini-batch Adam or SGD, for either regression (MSE) or binary
  classification (log loss);
* :class:`NeuralRegressionModel` — adapts an MLP to the
  :class:`repro.models.base.Model` interface for use inside an RMI,
  including a scalar fast path that runs the forward pass with plain
  Python floats for 0/1-hidden-layer nets;
* :class:`FrameworkModel` — a deliberately generic, batch-shaped
  invocation wrapper reproducing the Section 2.3 "naive learned index"
  overhead for the E9 benchmark.
"""

from __future__ import annotations

import time

import numpy as np

__all__ = ["MLP", "NeuralRegressionModel", "FrameworkModel"]

from ..obs import default_registry
from ..obs import span as obs_span
from ..obs import state as obs_state
from .base import Model


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


class MLP:
    """Fully-connected network: input -> [hidden ReLU]* -> linear output.

    Parameters
    ----------
    input_dim:
        Width of the input vector (1 for scalar keys).
    hidden:
        Tuple of hidden-layer widths; empty tuple = linear model.
    output_dim:
        Output width (1 everywhere in this repo).
    task:
        ``"regression"`` (MSE loss, identity output) or
        ``"classification"`` (log loss, sigmoid output).
    seed:
        Weight-initialization seed (He initialization).
    """

    def __init__(
        self,
        input_dim: int,
        hidden: tuple[int, ...] = (),
        output_dim: int = 1,
        task: str = "regression",
        seed: int = 0,
    ):
        if task not in ("regression", "classification"):
            raise ValueError("task must be 'regression' or 'classification'")
        if input_dim < 1 or output_dim < 1:
            raise ValueError("input_dim and output_dim must be >= 1")
        if any(h < 1 for h in hidden):
            raise ValueError("hidden widths must be >= 1")
        self.input_dim = int(input_dim)
        self.hidden = tuple(int(h) for h in hidden)
        self.output_dim = int(output_dim)
        self.task = task
        rng = np.random.default_rng(seed)
        dims = [self.input_dim, *self.hidden, self.output_dim]
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(dims[:-1], dims[1:]):
            std = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0.0, std, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))
        # Input/target standardization folded in at fit time.
        self.x_mean = np.zeros(self.input_dim)
        self.x_scale = np.ones(self.input_dim)
        self.y_mean = 0.0
        self.y_scale = 1.0
        self._adam_state: list | None = None

    # -- forward / backward -------------------------------------------------

    def _forward(self, x: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """Return (raw output, per-layer post-activation cache)."""
        activations = [x]
        out = x
        last = len(self.weights) - 1
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            out = out @ w + b
            if i < last:
                out = _relu(out)
            activations.append(out)
        return out, activations

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Standardized forward pass on raw inputs; returns raw targets."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        z = (x - self.x_mean) / self.x_scale
        out, _ = self._forward(z)
        if self.task == "classification":
            return 1.0 / (1.0 + np.exp(-out))
        return out * self.y_scale + self.y_mean

    def _backward(
        self, activations: list[np.ndarray], delta: np.ndarray
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Backprop given output-layer error ``delta`` (dLoss/dRawOut)."""
        grads_w = [np.zeros_like(w) for w in self.weights]
        grads_b = [np.zeros_like(b) for b in self.biases]
        for i in range(len(self.weights) - 1, -1, -1):
            grads_w[i] = activations[i].T @ delta
            grads_b[i] = delta.sum(axis=0)
            if i > 0:
                delta = delta @ self.weights[i].T
                delta = delta * (activations[i] > 0)
        return grads_w, grads_b

    # -- training -----------------------------------------------------------

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        epochs: int = 50,
        batch_size: int = 256,
        learning_rate: float = 1e-3,
        optimizer: str = "adam",
        shuffle: bool = True,
        seed: int = 1,
        verbose: bool = False,
    ) -> list[float]:
        """Mini-batch training; returns the per-epoch mean loss history."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[0] == 1 and x.shape[1] != self.input_dim:
            x = x.T
        y = np.asarray(y, dtype=np.float64).reshape(-1, self.output_dim)
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y row counts differ")

        self.x_mean = x.mean(axis=0)
        scale = x.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.x_scale = scale
        if self.task == "regression":
            self.y_mean = float(y.mean())
            self.y_scale = float(y.std()) or 1.0
            targets = (y - self.y_mean) / self.y_scale
        else:
            targets = y
        z = (x - self.x_mean) / self.x_scale

        rng = np.random.default_rng(seed)
        n = z.shape[0]
        history: list[float] = []
        self._init_adam()
        step = 0
        for epoch in range(epochs):
            order = rng.permutation(n) if shuffle else np.arange(n)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, batch_size):
                idx = order[start:start + batch_size]
                xb, yb = z[idx], targets[idx]
                out, activations = self._forward(xb)
                if self.task == "classification":
                    prob = 1.0 / (1.0 + np.exp(-out))
                    eps = 1e-12
                    loss = float(
                        -np.mean(
                            yb * np.log(prob + eps)
                            + (1 - yb) * np.log(1 - prob + eps)
                        )
                    )
                    delta = (prob - yb) / xb.shape[0]
                else:
                    diff = out - yb
                    loss = float(np.mean(diff**2))
                    delta = 2.0 * diff / xb.shape[0]
                grads_w, grads_b = self._backward(activations, delta)
                step += 1
                self._apply_gradients(
                    grads_w, grads_b, learning_rate, optimizer, step
                )
                epoch_loss += loss
                batches += 1
            history.append(epoch_loss / max(batches, 1))
            if verbose:
                print(f"epoch {epoch}: loss {history[-1]:.6f}")
        return history

    def _init_adam(self) -> None:
        self._adam_state = [
            (np.zeros_like(w), np.zeros_like(w)) for w in self.weights
        ] + [(np.zeros_like(b), np.zeros_like(b)) for b in self.biases]

    def _apply_gradients(
        self,
        grads_w: list[np.ndarray],
        grads_b: list[np.ndarray],
        lr: float,
        optimizer: str,
        step: int,
    ) -> None:
        if optimizer == "sgd":
            for w, gw in zip(self.weights, grads_w):
                w -= lr * gw
            for b, gb in zip(self.biases, grads_b):
                b -= lr * gb
            return
        if optimizer != "adam":
            raise ValueError("optimizer must be 'adam' or 'sgd'")
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        params = self.weights + self.biases
        grads = grads_w + grads_b
        for i, (param, grad) in enumerate(zip(params, grads)):
            m, v = self._adam_state[i]
            m *= beta1
            m += (1 - beta1) * grad
            v *= beta2
            v += (1 - beta2) * grad * grad
            m_hat = m / (1 - beta1**step)
            v_hat = v / (1 - beta2**step)
            param -= lr * m_hat / (np.sqrt(v_hat) + eps)

    # -- accounting ----------------------------------------------------------

    @property
    def param_count(self) -> int:
        return int(
            sum(w.size for w in self.weights) + sum(b.size for b in self.biases)
        )

    def op_count(self) -> int:
        """Multiply-adds per single forward pass."""
        ops = 0
        for w in self.weights:
            ops += 2 * w.size  # multiply + add per weight
        return ops

    def finite_difference_gradients(
        self, x: np.ndarray, y: np.ndarray, epsilon: float = 1e-6
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Numerical gradients of the loss — used by gradient-check tests."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).reshape(-1, self.output_dim)

        def loss() -> float:
            out, _ = self._forward(x)
            if self.task == "classification":
                prob = 1.0 / (1.0 + np.exp(-out))
                eps2 = 1e-12
                return float(
                    -np.mean(
                        y * np.log(prob + eps2)
                        + (1 - y) * np.log(1 - prob + eps2)
                    )
                )
            return float(np.mean((out - y) ** 2))

        grads_w = []
        for w in self.weights:
            grad = np.zeros_like(w)
            it = np.nditer(w, flags=["multi_index"])
            while not it.finished:
                idx = it.multi_index
                orig = w[idx]
                w[idx] = orig + epsilon
                up = loss()
                w[idx] = orig - epsilon
                down = loss()
                w[idx] = orig
                grad[idx] = (up - down) / (2 * epsilon)
                it.iternext()
            grads_w.append(grad)
        grads_b = []
        for b in self.biases:
            grad = np.zeros_like(b)
            for i in range(b.size):
                orig = b[i]
                b[i] = orig + epsilon
                up = loss()
                b[i] = orig - epsilon
                down = loss()
                b[i] = orig
                grad[i] = (up - down) / (2 * epsilon)
            grads_b.append(grad)
        return grads_w, grads_b


class NeuralRegressionModel(Model):
    """Adapts :class:`MLP` to the RMI model interface for scalar keys."""

    def __init__(
        self,
        hidden: tuple[int, ...] = (16,),
        epochs: int = 30,
        batch_size: int = 512,
        learning_rate: float = 1e-3,
        seed: int = 0,
        max_train_samples: int = 50_000,
    ):
        self.net = MLP(1, hidden=hidden, task="regression", seed=seed)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        self.max_train_samples = int(max_train_samples)
        self._scalar_weights: list | None = None

    def fit(
        self, keys: np.ndarray, positions: np.ndarray
    ) -> "NeuralRegressionModel":
        keys = np.asarray(keys, dtype=np.float64)
        positions = np.asarray(positions, dtype=np.float64)
        if keys.size == 0:
            self._scalar_weights = None
            return self
        if keys.size > self.max_train_samples:
            # Section 3.6: "training the top model over the entire data is
            # usually not necessary" — an evenly spaced sample preserves
            # the empirical CDF shape.
            pick = np.linspace(0, keys.size - 1, self.max_train_samples)
            pick = pick.round().astype(np.int64)
            keys, positions = keys[pick], positions[pick]
        self.net.fit(
            keys.reshape(-1, 1),
            positions,
            epochs=self.epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
        )
        self._cache_scalar_weights()
        return self

    def _cache_scalar_weights(self) -> None:
        """Extract weights into nested Python lists for the scalar path.

        This mirrors LIF: "given a trained Tensorflow model, LIF
        automatically extracts all weights from the model and generates
        efficient index structures" (Section 3.1).
        """
        self._scalar_weights = [
            (w.tolist(), b.tolist())
            for w, b in zip(self.net.weights, self.net.biases)
        ]
        self._sx_mean = float(self.net.x_mean[0])
        self._sx_scale = float(self.net.x_scale[0])
        self._sy_mean = self.net.y_mean
        self._sy_scale = self.net.y_scale

    def predict(self, key: float) -> float:
        if self._scalar_weights is None:
            return 0.0
        value = [(key - self._sx_mean) / self._sx_scale]
        last = len(self._scalar_weights) - 1
        for layer, (w, b) in enumerate(self._scalar_weights):
            out = []
            for j in range(len(b)):
                total = b[j]
                for i, v in enumerate(value):
                    total += v * w[i][j]
                if layer < last and total < 0.0:
                    total = 0.0
                out.append(total)
            value = out
        return value[0] * self._sy_scale + self._sy_mean

    def predict_batch(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.float64)
        if self._scalar_weights is None:
            return np.zeros(keys.shape)
        return self.net.forward(keys.reshape(-1, 1)).ravel()

    @property
    def param_count(self) -> int:
        return self.net.param_count

    def op_count(self) -> int:
        return self.net.op_count()

    def __repr__(self) -> str:
        return f"NeuralRegressionModel(hidden={self.net.hidden})"


class FrameworkModel:
    """Reproduces the Section 2.3 naive-index invocation overhead.

    Wraps a trained :class:`MLP` behind a deliberately generic,
    framework-shaped call path: every prediction builds a feed dict,
    validates the graph signature, and executes the network through a
    per-op graph interpreter (shape inference, output allocation and
    kernel dispatch per node — the machinery a real session run pays
    for, scaled down).  The contrast between this and
    :class:`NeuralRegressionModel.predict` is the paper's contrast
    between Tensorflow-invoked models (~80,000 ns) and LIF
    code-generated models (~30 ns).
    """

    def __init__(self, net: MLP):
        self.net = net
        self._signature = {
            "inputs": {"key": {"dtype": "float64", "shape": (None, 1)}},
            "outputs": {"position": {"dtype": "float64", "shape": (None, 1)}},
        }
        self._graph = self._build_graph()
        self._kernels = {
            "standardize": self._kernel_standardize,
            "matmul": self._kernel_matmul,
            "bias_add": self._kernel_bias_add,
            "relu": self._kernel_relu,
            "destandardize": self._kernel_destandardize,
            "sigmoid": self._kernel_sigmoid,
            "identity": self._kernel_identity,
        }

    # -- graph construction ----------------------------------------------------

    def _build_graph(self) -> list[dict]:
        """Unroll the MLP into a flat op list, Tensorflow-graph style."""
        ops: list[dict] = [
            {"op": "standardize", "name": "input/standardize", "attrs": {}}
        ]
        last = len(self.net.weights) - 1
        for i in range(len(self.net.weights)):
            ops.append(
                {
                    "op": "matmul",
                    "name": f"dense_{i}/matmul",
                    "attrs": {"layer": i},
                }
            )
            ops.append(
                {
                    "op": "bias_add",
                    "name": f"dense_{i}/bias",
                    "attrs": {"layer": i},
                }
            )
            if i < last:
                ops.append(
                    {"op": "relu", "name": f"dense_{i}/relu", "attrs": {}}
                )
        if self.net.task == "regression":
            ops.append(
                {
                    "op": "destandardize",
                    "name": "output/destandardize",
                    "attrs": {},
                }
            )
        else:
            ops.append({"op": "sigmoid", "name": "output/sigmoid", "attrs": {}})
        ops.append({"op": "identity", "name": "output/position", "attrs": {}})
        return ops

    # -- kernels (each allocates its output, like a framework would) ------------

    def _kernel_standardize(self, tensor, attrs):
        return (tensor - self.net.x_mean) / self.net.x_scale

    def _kernel_matmul(self, tensor, attrs):
        return tensor @ self.net.weights[attrs["layer"]]

    def _kernel_bias_add(self, tensor, attrs):
        return tensor + self.net.biases[attrs["layer"]]

    def _kernel_relu(self, tensor, attrs):
        return np.maximum(tensor, 0.0)

    def _kernel_destandardize(self, tensor, attrs):
        return tensor * self.net.y_scale + self.net.y_mean

    def _kernel_sigmoid(self, tensor, attrs):
        return 1.0 / (1.0 + np.exp(-tensor))

    def _kernel_identity(self, tensor, attrs):
        return np.array(tensor, copy=True)

    # -- session-style execution -------------------------------------------------

    def _validate_feed(self, feed: dict) -> None:
        for name, spec in self._signature["inputs"].items():
            if name not in feed:
                raise KeyError(f"missing graph input {name!r}")
            tensor = feed[name]
            if tensor.dtype.name != spec["dtype"]:
                raise TypeError(
                    f"input {name!r} dtype {tensor.dtype.name} != {spec['dtype']}"
                )
            if tensor.ndim != len(spec["shape"]):
                raise ValueError(f"input {name!r} rank mismatch")

    def run(self, feed: dict) -> dict:
        """Session run: validate, copy, interpret the graph, wrap output.

        With obs enabled, the per-node layer trace ships to the
        profiler as an ``nn.session.run`` span (one timed entry per
        node) and each kernel's wall time lands in the default-registry
        histogram ``nn.op.<op>`` — the real-session behaviour the old
        build-then-discard trace stood in for.  Disabled, no trace is
        built at all.
        """
        self._validate_feed(feed)
        tensor = np.array(feed["key"], dtype=np.float64, copy=True)
        profiling = obs_state.enabled
        trace = [] if profiling else None
        with obs_span("nn.session.run", nodes=len(self._graph)) as attrs:
            op_hist = default_registry().histogram if profiling else None
            for node in self._graph:
                kernel = self._kernels.get(node["op"])
                if kernel is None:
                    raise RuntimeError(f"no kernel for op {node['op']!r}")
                t0 = time.perf_counter() if profiling else 0.0
                tensor = kernel(tensor, node["attrs"])
                if not isinstance(tensor, np.ndarray):
                    raise RuntimeError(
                        f"kernel {node['name']} returned non-tensor"
                    )
                if profiling:
                    elapsed = time.perf_counter() - t0
                    op_hist("nn.op." + node["op"]).observe(elapsed)
                    trace.append(
                        (
                            node["name"],
                            tensor.shape,
                            tensor.dtype.name,
                            elapsed,
                        )
                    )
            if attrs is not None:
                attrs["layers"] = [
                    {
                        "name": name,
                        "shape": list(shape),
                        "dtype": dtype,
                        "seconds": elapsed,
                    }
                    for name, shape, dtype, elapsed in trace
                ]
        return {"position": tensor}

    def predict(self, key: float) -> float:
        feed = {"key": np.array([[key]], dtype=np.float64)}
        return float(self.run(feed)["position"][0, 0])
