"""Empirical CDF utilities (Section 2.2).

"a model that predicts the position given a key inside a sorted array
effectively approximates the cumulative distribution function (CDF).
We can model the CDF of the data to predict the position as
p = F(Key) * N."

These helpers convert between the position view (what indexes store)
and the probability view (what models learn), and compute the error
statistics the RMI's bound bookkeeping and Appendix A analysis need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "empirical_cdf",
    "positions_for_keys",
    "ErrorStats",
    "error_stats",
    "EmpiricalCDF",
]


def positions_for_keys(n: int) -> np.ndarray:
    """Target positions 0..n-1 for a sorted key array of size ``n``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return np.arange(n, dtype=np.float64)


def empirical_cdf(sorted_keys: np.ndarray, query: np.ndarray) -> np.ndarray:
    """F_hat(q) = |{k <= q}| / N for each query value.

    Matches Appendix A's definition of the empirical CDF over the stored
    keys; assumes ``sorted_keys`` is sorted ascending.
    """
    sorted_keys = np.asarray(sorted_keys)
    query = np.asarray(query)
    if sorted_keys.size == 0:
        return np.zeros(query.shape, dtype=np.float64)
    counts = np.searchsorted(sorted_keys, query, side="right")
    return counts / float(sorted_keys.size)


@dataclass(frozen=True)
class ErrorStats:
    """Prediction-error summary for a model over its assigned keys.

    ``min_error``/``max_error`` are the signed worst under/over
    predictions (prediction - truth), i.e. the Section 3.4 search bounds:
    the true position of key ``k`` lies in
    ``[pred(k) - max_error, pred(k) - min_error]``.
    """

    min_error: int
    max_error: int
    mean_absolute: float
    std: float
    count: int

    @property
    def max_absolute(self) -> int:
        """Algorithm 1's ``max_abs_err`` hybrid-replacement criterion."""
        return max(abs(self.min_error), abs(self.max_error))

    @property
    def window(self) -> int:
        """Width of the guaranteed search window."""
        return self.max_error - self.min_error


def error_stats(predictions: np.ndarray, truths: np.ndarray) -> ErrorStats:
    """Compute :class:`ErrorStats` from parallel prediction/truth arrays."""
    predictions = np.asarray(predictions, dtype=np.float64)
    truths = np.asarray(truths, dtype=np.float64)
    if predictions.shape != truths.shape:
        raise ValueError("prediction/truth shape mismatch")
    if predictions.size == 0:
        return ErrorStats(0, 0, 0.0, 0.0, 0)
    signed = predictions - truths
    return ErrorStats(
        min_error=int(np.floor(signed.min())),
        max_error=int(np.ceil(signed.max())),
        mean_absolute=float(np.abs(signed).mean()),
        std=float(signed.std()),
        count=int(signed.size),
    )


class EmpiricalCDF:
    """A queryable empirical CDF over a fixed sorted key set.

    The "perfect model" reference point: an index using this as its
    model has zero error on stored keys (it *is* a lookup), so it marks
    the accuracy frontier other models are compared against in tests.
    """

    def __init__(self, sorted_keys: np.ndarray):
        keys = np.asarray(sorted_keys)
        if keys.size and np.any(np.diff(keys) < 0):
            raise ValueError("keys must be sorted ascending")
        self._keys = keys

    @property
    def n(self) -> int:
        return int(self._keys.size)

    def __call__(self, query) -> np.ndarray:
        return empirical_cdf(self._keys, np.asarray(query))

    def position(self, query) -> np.ndarray:
        """Predicted positions N * F(q), the Section 2.2 estimator."""
        return self(query) * self.n
