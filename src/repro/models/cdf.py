"""Empirical CDF utilities (Section 2.2).

"a model that predicts the position given a key inside a sorted array
effectively approximates the cumulative distribution function (CDF).
We can model the CDF of the data to predict the position as
p = F(Key) * N."

These helpers convert between the position view (what indexes store)
and the probability view (what models learn), and compute the error
statistics the RMI's bound bookkeeping and Appendix A analysis need.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

__all__ = [
    "empirical_cdf",
    "positions_for_keys",
    "ErrorStats",
    "error_stats",
    "segmented_error_arrays",
    "segmented_error_stats",
    "EmpiricalCDF",
]


def positions_for_keys(n: int) -> np.ndarray:
    """Target positions 0..n-1 for a sorted key array of size ``n``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return np.arange(n, dtype=np.float64)


def empirical_cdf(sorted_keys: np.ndarray, query: np.ndarray) -> np.ndarray:
    """F_hat(q) = |{k <= q}| / N for each query value.

    Matches Appendix A's definition of the empirical CDF over the stored
    keys; assumes ``sorted_keys`` is sorted ascending.
    """
    sorted_keys = np.asarray(sorted_keys)
    query = np.asarray(query)
    if sorted_keys.size == 0:
        return np.zeros(query.shape, dtype=np.float64)
    counts = np.searchsorted(sorted_keys, query, side="right")
    return counts / float(sorted_keys.size)


class ErrorStats(NamedTuple):
    """Prediction-error summary for a model over its assigned keys.

    ``min_error``/``max_error`` are the signed worst under/over
    predictions (prediction - truth), i.e. the Section 3.4 search bounds:
    the true position of key ``k`` lies in
    ``[pred(k) - max_error, pred(k) - min_error]``.

    A ``NamedTuple`` rather than a dataclass because the vectorized RMI
    build materializes one per leaf — tens of thousands per
    construction — and tuple allocation is measurably cheaper.
    """

    min_error: int
    max_error: int
    mean_absolute: float
    std: float
    count: int

    @property
    def max_absolute(self) -> int:
        """Algorithm 1's ``max_abs_err`` hybrid-replacement criterion."""
        return max(abs(self.min_error), abs(self.max_error))

    @property
    def window(self) -> int:
        """Width of the guaranteed search window."""
        return self.max_error - self.min_error


def error_stats(predictions: np.ndarray, truths: np.ndarray) -> ErrorStats:
    """Compute :class:`ErrorStats` from parallel prediction/truth arrays."""
    predictions = np.asarray(predictions, dtype=np.float64)
    truths = np.asarray(truths, dtype=np.float64)
    if predictions.shape != truths.shape:
        raise ValueError("prediction/truth shape mismatch")
    if predictions.size == 0:
        return ErrorStats(0, 0, 0.0, 0.0, 0)
    signed = predictions - truths
    return ErrorStats(
        min_error=int(np.floor(signed.min())),
        max_error=int(np.ceil(signed.max())),
        mean_absolute=float(np.abs(signed).mean()),
        std=float(signed.std()),
        count=int(signed.size),
    )


def segment_reducer(boundaries: np.ndarray, n: int):
    """Per-segment ``reduceat`` machinery for contiguous segments.

    ``boundaries`` (length ``m + 1``, non-decreasing, ending at ``n``)
    delimits ``m`` segments of an ``n``-element array.  Returns
    ``(counts, empty, reduce)`` where ``reduce(ufunc, values, fill)``
    applies ``ufunc.reduceat`` per segment and writes ``fill`` into
    every empty segment's row.

    reduceat quirks handled here (and only here): an empty segment
    returns the element *at* its start (garbage — overwritten via the
    empty mask) and a start of ``n`` is out of range, so trailing
    empty segments are excluded from the call entirely; clamping their
    starts instead would shrink the preceding segment's range.
    """
    counts = boundaries[1:] - boundaries[:-1]
    starts = boundaries[:-1]
    empty = counts == 0
    cut = int(np.searchsorted(starts, n, side="left"))
    live = starts[:cut]

    def reduce(ufunc, values: np.ndarray, fill: float = 0.0) -> np.ndarray:
        out = np.full(counts.size, fill, dtype=np.float64)
        if cut:
            out[:cut] = ufunc.reduceat(values, live)
        out[empty] = fill
        return out

    return counts, empty, reduce


def segmented_error_arrays(
    predictions: np.ndarray,
    positions: np.ndarray,
    assignment: np.ndarray,
    num_segments: int,
    *,
    default: ErrorStats,
    min_error_clamp: int = 0,
    boundaries: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Array form of per-segment :func:`error_stats` in one pass.

    Returns ``(min_error, max_error, mean_absolute, std, counts)``, the
    j-th entries being :func:`error_stats` of segment ``j``'s signed
    errors: min/max from ``np.minimum/maximum.reduceat`` over the
    segment boundaries, moments from ``np.add.reduceat`` sums.  When
    ``assignment`` is non-decreasing — always true under a monotonic
    root model — segments are contiguous slices and the boundaries come
    from one ``searchsorted``; otherwise a stable argsort reorders the
    errors segment-major first.

    Segments with no members carry ``default``'s bounds and zero
    moments; ``min_error_clamp`` widens every occupied segment's bounds
    to at least ``[-clamp, clamp]`` (the RMI's ``min_leaf_error``).
    ``boundaries`` asserts a known-contiguous assignment layout
    (see :func:`repro.models.linear.segmented_linear_fit`), skipping
    the monotonicity check and ``searchsorted``.
    """
    m = int(num_segments)
    predictions = np.asarray(predictions, dtype=np.float64)
    n = int(predictions.size)
    if n == 0:
        return (
            np.full(m, int(default.min_error), dtype=np.int64),
            np.full(m, int(default.max_error), dtype=np.int64),
            np.zeros(m, dtype=np.float64),
            np.zeros(m, dtype=np.float64),
            np.zeros(m, dtype=np.int64),
        )
    signed = predictions - np.asarray(positions, dtype=np.float64)
    if boundaries is None and bool(
        np.all(assignment[1:] >= assignment[:-1])
    ):
        boundaries = np.searchsorted(
            assignment, np.arange(m + 1), side="left"
        )
    if boundaries is not None:
        ordered = signed
    else:
        per_segment = np.bincount(assignment, minlength=m).astype(np.int64)
        boundaries = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(per_segment, out=boundaries[1:])
        ordered = signed[np.argsort(assignment, kind="stable")]
    counts, empty, reduce = segment_reducer(boundaries, n)
    min_error = np.floor(reduce(np.minimum, ordered)).astype(np.int64)
    max_error = np.ceil(reduce(np.maximum, ordered)).astype(np.int64)
    if min_error_clamp:
        np.minimum(min_error, -int(min_error_clamp), out=min_error)
        np.maximum(max_error, int(min_error_clamp), out=max_error)
    min_error[empty] = default.min_error
    max_error[empty] = default.max_error
    safe = np.maximum(counts, 1).astype(np.float64)
    mean_abs = reduce(np.add, np.abs(ordered)) / safe
    mean = reduce(np.add, ordered) / safe
    mean_sq = reduce(np.add, ordered * ordered) / safe
    std = np.sqrt(np.maximum(mean_sq - mean * mean, 0.0))
    return min_error, max_error, mean_abs, std, counts


def error_stats_list_from_arrays(
    min_error: np.ndarray,
    max_error: np.ndarray,
    mean_absolute: np.ndarray,
    std: np.ndarray,
    counts: np.ndarray,
) -> list[ErrorStats]:
    """Materialize parallel stat arrays into ``ErrorStats`` rows.

    ``ErrorStats._make`` over one ``zip`` is the cheapest mass
    construction CPython offers — the vectorized RMI build defers this
    call until something introspects per-leaf stats.
    """
    return list(
        map(
            ErrorStats._make,
            zip(
                min_error.tolist(),
                max_error.tolist(),
                mean_absolute.tolist(),
                std.tolist(),
                counts.tolist(),
            ),
        )
    )


def segmented_error_stats(
    predictions: np.ndarray,
    positions: np.ndarray,
    assignment: np.ndarray,
    num_segments: int,
    *,
    default: ErrorStats,
    min_error_clamp: int = 0,
    with_bounds: bool = False,
):
    """Per-segment :func:`error_stats` in one vectorized pass.

    Equivalent to grouping ``predictions``/``positions`` by
    ``assignment`` and calling :func:`error_stats` on each group (see
    :func:`segmented_error_arrays` for the mechanics).  Segments with
    no members carry ``default``'s bounds and zero moments/count —
    value-equal to the RMI's lazily materialized view, which reads the
    same arrays.

    Returns the ``list[ErrorStats]``, or with ``with_bounds=True`` the
    tuple ``(stats, lo_offsets, hi_offsets)`` where the float64 offset
    arrays are the compiled search-window form (``lo = max_error``,
    ``hi = min_error`` per segment, ``default``'s bounds for empty
    segments) — what the RMI's ``_compile`` stores.
    """
    min_error, max_error, mean_abs, std, counts = segmented_error_arrays(
        predictions,
        positions,
        assignment,
        num_segments,
        default=default,
        min_error_clamp=min_error_clamp,
    )
    stats = error_stats_list_from_arrays(
        min_error, max_error, mean_abs, std, counts
    )
    if with_bounds:
        return (
            stats,
            max_error.astype(np.float64),
            min_error.astype(np.float64),
        )
    return stats


class EmpiricalCDF:
    """A queryable empirical CDF over a fixed sorted key set.

    The "perfect model" reference point: an index using this as its
    model has zero error on stored keys (it *is* a lookup), so it marks
    the accuracy frontier other models are compared against in tests.
    """

    def __init__(self, sorted_keys: np.ndarray):
        keys = np.asarray(sorted_keys)
        if keys.size and np.any(np.diff(keys) < 0):
            raise ValueError("keys must be sorted ascending")
        self._keys = keys

    @property
    def n(self) -> int:
        return int(self._keys.size)

    def __call__(self, query) -> np.ndarray:
        return empirical_cdf(self._keys, np.asarray(query))

    def position(self, query) -> np.ndarray:
        """Predicted positions N * F(q), the Section 2.2 estimator."""
        return self(query) * self.n
