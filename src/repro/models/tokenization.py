"""String tokenization for learned string indexes (Section 3.5).

The paper: "we consider an n-length string to be a feature vector
x in R^n where x_i is the ASCII decimal value ... we will set a maximum
input length N.  Because the data is sorted lexicographically, we will
truncate the keys to length N before tokenization.  For strings with
length n < N, we set x_i = 0 for i > n."

This module implements exactly that, plus a *weighted* variant that
multiplies position ``i`` by ``256^-i`` so the tokenized value order
agrees with lexicographic string order — handy for models that want a
single monotone scalar summary of a string.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "tokenize",
    "tokenize_batch",
    "lexicographic_scalar",
    "lexicographic_scalar_batch",
]


def tokenize(key: str, max_length: int) -> np.ndarray:
    """Turn a string into the paper's fixed-length ASCII feature vector."""
    if max_length < 1:
        raise ValueError("max_length must be >= 1")
    vec = np.zeros(max_length, dtype=np.float64)
    for i, ch in enumerate(key[:max_length]):
        vec[i] = min(ord(ch), 255)
    return vec


def tokenize_batch(keys: list[str], max_length: int) -> np.ndarray:
    """Vectorize a list of strings into an (n, max_length) matrix."""
    if max_length < 1:
        raise ValueError("max_length must be >= 1")
    out = np.zeros((len(keys), max_length), dtype=np.float64)
    for row, key in enumerate(keys):
        for i, ch in enumerate(key[:max_length]):
            out[row, i] = min(ord(ch), 255)
    return out


def lexicographic_scalar(key: str, max_length: int) -> float:
    """Map a string to a float that preserves lexicographic order.

    Interprets the first ``max_length`` bytes as base-257 digits (257 so
    that "a" < "aa": an absent character, encoded 0, sorts before every
    real character encoded 1..256).  Distinct strings sharing a
    ``max_length`` prefix collapse to the same scalar, which is fine for
    CDF-style models — ties are resolved by the bounded local search.
    """
    total = 0.0
    scale = 1.0
    for i in range(max_length):
        scale /= 257.0
        if i < len(key):
            total += (min(ord(key[i]), 255) + 1) * scale
    return total


def lexicographic_scalar_batch(keys: list[str], max_length: int) -> np.ndarray:
    """Vectorized :func:`lexicographic_scalar`."""
    tokens = tokenize_batch(keys, max_length)
    lengths = np.array([min(len(k), max_length) for k in keys])
    # ord+1 for present positions, 0 for padding
    digits = np.where(
        np.arange(max_length) < lengths[:, None], tokens + 1.0, 0.0
    )
    weights = 257.0 ** -(np.arange(1, max_length + 1, dtype=np.float64))
    return digits @ weights
