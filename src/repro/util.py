"""Small shared utilities.

``scalar_view`` exists because this reproduction measures *relative*
lookup cost in pure Python: indexing a numpy array one element at a
time pays ~1µs of ufunc/boxing overhead per probe, which would drown
the algorithmic differences between index structures.  A memoryview
over the same buffer returns native Python scalars in ~150ns, so every
index's scalar hot path reads keys through this view while vectorized
code keeps using the numpy array.  (In the paper's C++ setting this
distinction does not exist; both are a single load.)
"""

from __future__ import annotations

import numpy as np

__all__ = ["scalar_view", "batch_contains_generic"]

_VIEWABLE = {
    np.dtype(np.int64),
    np.dtype(np.int32),
    np.dtype(np.uint64),
    np.dtype(np.uint32),
    np.dtype(np.float64),
    np.dtype(np.float32),
}


def scalar_view(keys):
    """A fast random-access scalar view of a key container.

    numpy arrays of common dtypes become memoryviews (zero copy);
    anything else (lists of strings, object arrays) is returned as-is
    if already indexable, or materialized to a list.
    """
    if isinstance(keys, np.ndarray):
        if keys.dtype in _VIEWABLE and keys.flags["C_CONTIGUOUS"]:
            view = memoryview(keys)
            # An unaligned buffer (e.g. a memmap into an unpadded file)
            # exports a standard-size format ("=q") that memoryview
            # cannot index; fall back to list materialization.
            if not view.format.startswith(("=", "<", ">")):
                return view
        return keys.tolist()
    if isinstance(keys, (list, tuple, memoryview)):
        return keys
    return list(keys)


def batch_contains_generic(keys: list, queries, positions) -> np.ndarray:
    """Membership mask from lower-bound positions for Python-comparable
    keys (e.g. strings).

    ``positions[i]`` must be the lower bound of ``queries[i]`` in the
    sorted ``keys``; the query is present iff the position is in range
    and the key there equals the query.  Numeric key columns use the
    dtype-exact :meth:`repro.core.engine.SortedKeyColumn.contains_at`
    instead; this is the list-indexing fallback numpy cannot vectorize.
    """
    n = len(keys)
    return np.array(
        [
            pos < n and keys[pos] == q
            for pos, q in zip(positions, queries)
        ],
        dtype=bool,
    )
