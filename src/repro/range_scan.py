"""Vectorized batch range-scan engine (ISSUE 2 + ISSUE 5).

The paper frames a range index as a CDF model precisely because real
workloads mix point lookups with range scans (Section 3); SOSD and
"Benchmarking Learned Indexes" both report *batched* scan throughput.
This module is the shared engine behind every index's
``range_query_batch``:

* **bound resolution** — both endpoints of every range go through the
  index's own ``lookup_batch`` (one concatenated call, so the model,
  leaf routing and lock-step search amortize across ``2m`` queries);
  the high endpoints are then widened from lower bound to upper bound
  with one vectorized ``searchsorted(side="right")`` over just the
  queries that hit a stored key
  (:meth:`repro.core.engine.SortedKeyColumn.upper_bounds` — the single
  widening implementation, re-exported here as
  :func:`upper_bounds_batch`);
* **slice assembly** — the per-range ``[start, end)`` position pairs
  become one concatenated value array + CSR-style offsets without a
  Python loop (:func:`assemble_slices`), so a batch of scans costs a
  single gather regardless of how many ranges it contains.

Semantics are pinned to the scalar ``range_query``: ranges are closed
(``[low, high]``), inverted ranges (``high < low``) are empty, and the
i-th entry of the result is bit-identical to ``range_query(lows[i],
highs[i])``.

Indexes over Python-comparable keys (strings) use the ``bisect``-based
:func:`batch_range_scan_generic`, which keeps the same result shape
with list-backed storage.

Precision envelope (ISSUE 5): endpoint arrays keep their native dtype
end to end — integer endpoints against integer key columns resolve
through the exact dtype-aware query core
(:mod:`repro.core.engine`), so 64-bit keys at or beyond 2^53 no longer
round together in the batch paths.  float64 endpoints against integer
keys compare as exact integer ceilings (see the engine's dtype
contract).

The :mod:`repro.core.engine` imports below are function-local: the
tree baselines import this module at class-definition time, while the
engine lives inside :mod:`repro.core`, whose package import pulls the
tree baselines back in — deferring to first use breaks the cycle.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

__all__ = [
    "RangeScanIndexMixin",
    "RangeScanResult",
    "assemble_slices",
    "batch_range_scan",
    "batch_range_scan_generic",
    "merge_scan_results",
    "upper_bounds_batch",
]


def upper_bounds_batch(
    keys: np.ndarray, highs: np.ndarray, lower_bounds: np.ndarray
) -> np.ndarray:
    """Upper-bound positions from already-resolved lower bounds.

    Thin functional wrapper over the engine's
    :meth:`~repro.core.engine.SortedKeyColumn.upper_bounds` (the single
    widening implementation), kept here for the callers that hold a
    bare key array.
    """
    from .core.engine import upper_bounds_batch as _engine_upper_bounds

    return _engine_upper_bounds(keys, highs, lower_bounds)


@dataclass
class RangeScanResult:
    """Concatenated values + CSR offsets for a batch of range scans.

    ``values[offsets[i]:offsets[i+1]]`` (== ``result[i]``) holds the
    keys of the i-th range.  ``starts``/``ends`` are the resolved
    ``[start, end)`` positions into the index's key array when the
    ranges are contiguous slices of it (``None`` for delta-merged
    results, where a range's values interleave two storages).
    """

    values: np.ndarray | list
    offsets: np.ndarray
    starts: np.ndarray | None = None
    ends: np.ndarray | None = None

    def __len__(self) -> int:
        return int(self.offsets.size - 1)

    def __getitem__(self, i: int):
        if not -len(self) <= i < len(self):
            raise IndexError(i)
        if i < 0:
            i += len(self)
        return self.values[int(self.offsets[i]):int(self.offsets[i + 1])]

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]

    @property
    def counts(self) -> np.ndarray:
        """Number of keys in each range."""
        return self.offsets[1:] - self.offsets[:-1]

    @property
    def total(self) -> int:
        """Total keys across all ranges."""
        return int(self.offsets[-1])

    def __repr__(self) -> str:
        return (
            f"RangeScanResult(ranges={len(self)}, total={self.total})"
        )


def assemble_slices(
    values: np.ndarray, starts: np.ndarray, ends: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Gather ``values[starts[i]:ends[i]]`` for all i in one pass.

    Returns ``(gathered, offsets)`` where ``gathered`` concatenates all
    slices and ``offsets`` (length ``m + 1``) delimits them.  The index
    expression builds every slice's positions at once:
    ``arange(total) - repeat(offsets, lengths) + repeat(starts,
    lengths)`` — each output element knows which slice it belongs to
    and its rank inside it.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.maximum(np.asarray(ends, dtype=np.int64) - starts, 0)
    offsets = np.zeros(starts.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    total = int(offsets[-1])
    if total == 0:
        return values[0:0], offsets
    idx = (
        np.arange(total, dtype=np.int64)
        - np.repeat(offsets[:-1], lengths)
        + np.repeat(starts, lengths)
    )
    return values[idx], offsets


def merge_scan_results(
    results,
    *,
    drop_masks=None,
    dedup: bool = True,
    payloads=None,
):
    """K-way merge of per-range results from priority-ordered sources.

    Every ``results[s]`` must cover the same ``m`` ranges (numeric
    values).  One ``np.lexsort`` on (range id, key, source rank)
    interleaves all sources' hits for all ranges at once — the
    multi-source analogue of the writable index's delta merge, and the
    engine behind LSM reads that must merge a memtable and many runs.

    Sources are ordered newest-first: with ``dedup=True`` (the
    default), equal keys within a range collapse to the entry from the
    lowest-indexed source that holds them — LSM "newest version wins"
    semantics, and a superset of ``np.union1d`` deduplication for
    disjoint sources.  ``drop_masks[s]`` (optional, aligned to
    ``results[s].values``) flags entries such as tombstones: when a
    flagged entry wins its key, the key is suppressed from the merged
    output entirely, shadowing every older source.

    ``payloads[s]`` (optional, aligned to ``results[s].values``)
    carries per-entry values through the merge; when given, the return
    becomes ``(merged_result, merged_payloads)`` with
    ``merged_payloads`` parallel to ``merged_result.values`` — the
    value gather behind ``LearnedLSMStore.range_items_batch``.
    """
    if not results:
        empty = RangeScanResult(
            values=np.empty(0, dtype=np.int64),
            offsets=np.zeros(1, dtype=np.int64),
        )
        if payloads is not None:
            return empty, np.empty(0, dtype=np.int64)
        return empty
    m = len(results[0])
    if any(len(r) != m for r in results):
        raise ValueError("all sources must cover the same ranges")
    range_ids = np.arange(m, dtype=np.int64)
    ids_parts, key_parts, rank_parts, dead_parts = [], [], [], []
    pay_parts = [] if payloads is not None else None
    for s, result in enumerate(results):
        values = np.asarray(result.values)
        ids_parts.append(np.repeat(range_ids, result.counts))
        key_parts.append(values)
        rank_parts.append(np.full(values.size, s, dtype=np.int64))
        if drop_masks is not None and drop_masks[s] is not None:
            dead_parts.append(np.asarray(drop_masks[s], dtype=bool))
        else:
            dead_parts.append(np.zeros(values.size, dtype=bool))
        if pay_parts is not None:
            part = np.asarray(payloads[s])
            if part.size != values.size:
                raise ValueError("payloads must parallel source values")
            pay_parts.append(part)
    ids = np.concatenate(ids_parts)
    keys = np.concatenate(key_parts)
    rank = np.concatenate(rank_parts)
    dead = np.concatenate(dead_parts)
    order = np.lexsort((rank, keys, ids))
    ids, keys, dead = ids[order], keys[order], dead[order]
    if dedup:
        first = np.ones(keys.size, dtype=bool)
        first[1:] = (keys[1:] != keys[:-1]) | (ids[1:] != ids[:-1])
        keep = first & ~dead
    else:
        keep = ~dead
    ids, keys = ids[keep], keys[keep]
    offsets = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(np.bincount(ids, minlength=m), out=offsets[1:])
    merged = RangeScanResult(values=keys, offsets=offsets)
    if pay_parts is not None:
        pay = np.concatenate(pay_parts) if pay_parts else np.empty(0)
        return merged, pay[order][keep]
    return merged


def batch_range_scan(
    keys: np.ndarray,
    lows: np.ndarray,
    highs: np.ndarray,
    lookup_batch,
    *,
    column=None,
) -> RangeScanResult:
    """The numeric engine: two lock-step bound resolutions + assembly.

    ``lookup_batch`` is the owning index's batch lower-bound method;
    both endpoint arrays are resolved in a single concatenated call so
    model inference and the lock-step search amortize over ``2m``
    queries.  Endpoints keep their native dtype — the owning index's
    ``lookup_batch`` and the widening below compare them exactly
    through the query core.  ``column`` optionally passes the owner's
    :class:`~repro.core.engine.SortedKeyColumn` (constructed fresh over
    ``keys`` otherwise — columns are views, not copies).
    """
    lows = np.asarray(lows).ravel()
    highs = np.asarray(highs).ravel()
    if lows.size != highs.size:
        raise ValueError("lows and highs must have the same length")
    if lows.dtype != highs.dtype:
        common = np.result_type(lows, highs)
        lows = lows.astype(common)
        highs = highs.astype(common)
    m = lows.size
    if m == 0 or keys.shape[0] == 0:
        empty = np.zeros(m, dtype=np.int64)
        return RangeScanResult(
            values=keys[0:0],
            offsets=np.zeros(m + 1, dtype=np.int64),
            starts=empty,
            ends=empty.copy(),
        )
    pos = np.asarray(lookup_batch(np.concatenate([lows, highs])))
    starts = pos[:m].astype(np.int64)
    if column is None:
        from .core.engine import SortedKeyColumn

        column = SortedKeyColumn(np.asarray(keys))
    ends = column.upper_bounds(column.prepare(highs), pos[m:])
    # Closed-interval semantics: an inverted range is empty, pinned at
    # the low endpoint's position like the scalar path's early return.
    inverted = highs < lows
    if np.any(inverted):
        ends[inverted] = starts[inverted]
    values, offsets = assemble_slices(keys, starts, ends)
    return RangeScanResult(
        values=values, offsets=offsets, starts=starts, ends=ends
    )


class RangeScanIndexMixin:
    """The full batch + range API for numeric sorted-array indexes.

    Mixed into every tree/table baseline so the semantics live in one
    place: hosts must expose sorted ``keys`` (numpy) and scalar
    ``lookup`` (lower bound).  The default ``lookup_batch`` answers
    batches straight off the host's
    :class:`~repro.core.engine.SortedKeyColumn` — these structures only
    accelerate scalar descents, and over a dense sorted array the
    vectorized page + in-page search is one exact ``searchsorted`` in
    the key's native dtype; hosts with a real batch engine (the RMI's,
    with its ``sort=`` fast path) or non-numpy keys (the
    generic/string indexes) override the surface themselves.
    """

    def _key_column(self):
        """The host's cached query-core column (rebuilt if ``keys``
        was rebound, e.g. by a bulk reload)."""
        column = self.__dict__.get("_column")
        if column is None or column.keys is not self.keys:
            from .core.engine import SortedKeyColumn

            column = SortedKeyColumn(self.keys)
            self._column = column
        return column

    def lookup_batch(self, queries: np.ndarray) -> np.ndarray:
        """Batched lower-bound lookups, exact in the key dtype; results
        match per-query :meth:`lookup` exactly."""
        return self._key_column().lower_bounds(queries)

    def contains_batch(self, queries: np.ndarray) -> np.ndarray:
        """Batched membership: one bool per query."""
        column = self._key_column()
        qb = column.prepare(queries)
        return column.contains_at(qb, column.lower_bounds(qb))

    def upper_bound(self, key: float) -> int:
        """Position one past the last stored key <= ``key``.

        One lower-bound descent plus a ``searchsorted(side="right")``
        over the duplicate run — O(log d) for d duplicates.
        """
        pos = self.lookup(key)
        return pos + int(np.searchsorted(self.keys[pos:], key, side="right"))

    def range_query(self, low: float, high: float) -> np.ndarray:
        """All stored keys in ``[low, high]`` (closed interval)."""
        if high < low:
            return self.keys[0:0]
        return self.keys[self.lookup(low):self.upper_bound(high)]

    def upper_bound_batch(self, queries: np.ndarray) -> np.ndarray:
        """Batched :meth:`upper_bound` through the query core."""
        column = self._key_column()
        qb = column.prepare(queries)
        return column.upper_bounds(qb, column.lower_bounds(qb))

    def range_query_batch(self, lows, highs) -> RangeScanResult:
        """Batched :meth:`range_query` over parallel endpoint arrays."""
        return batch_range_scan(
            self.keys, lows, highs, self.lookup_batch,
            column=self._key_column(),
        )


def batch_range_scan_generic(
    keys: list,
    lows,
    highs,
    lookup_batch,
) -> RangeScanResult:
    """:func:`batch_range_scan` over Python-comparable keys.

    Bound resolution still goes through the index's ``lookup_batch``
    (model-accelerated for :class:`~repro.core.string_index.StringRMI`);
    duplicate widening and slice assembly fall back to ``bisect`` and
    list slicing, since numpy cannot compare arbitrary objects.
    """
    lows = list(lows)
    highs = list(highs)
    if len(lows) != len(highs):
        raise ValueError("lows and highs must have the same length")
    m = len(lows)
    n = len(keys)
    offsets = np.zeros(m + 1, dtype=np.int64)
    if m == 0 or n == 0:
        empty = np.zeros(m, dtype=np.int64)
        return RangeScanResult(
            values=[], offsets=offsets, starts=empty, ends=empty.copy()
        )
    pos = np.asarray(lookup_batch(lows + highs), dtype=np.int64)
    starts = pos[:m]
    ends = pos[m:].copy()
    values: list = []
    for i in range(m):
        if highs[i] < lows[i]:
            ends[i] = starts[i]
        else:
            end = int(ends[i])
            if end < n and keys[end] == highs[i]:
                end = bisect.bisect_right(keys, highs[i], end)
            ends[i] = end
            if end > starts[i]:
                values.extend(keys[int(starts[i]):end])
        offsets[i + 1] = len(values)
    return RangeScanResult(
        values=values, offsets=offsets, starts=starts, ends=ends
    )
