"""Legacy setup shim.

The execution environment has no network access and no ``wheel``
package, so PEP 660 editable installs (which build an editable wheel)
cannot run.  This shim lets ``pip install -e . --no-build-isolation
--no-use-pep517`` fall back to the classic ``setup.py develop`` path,
which only needs setuptools.
"""

from setuptools import setup

setup()
