"""Differential crash-recovery fuzz (ISSUE 6 tentpole).

The harness runs a deterministic write workload against a durable
:class:`LearnedLSMStore` whose filesystem is a
:class:`FaultInjectingFilesystem`, kills the process at *every*
injection site (each write / fsync / rename / remove / truncate /
open), recovers the directory with the real filesystem, and checks the
reopened store against a dict oracle:

* every **acknowledged** batch (the call returned before the crash)
  must be present in full;
* the single **in-flight** batch may be present in full or absent in
  full — one WAL record per batch makes that the only legal pair of
  outcomes — never half-applied;
* point lookups, the full-range scan, and ``live_keys`` must all agree
  with the matching oracle state (mid-compaction kills can neither
  lose keys nor resurrect tombstoned ones).

Each site is exercised under two loss models: ``lose`` (unsynced bytes
evaporate) and ``keep`` with a torn final write (everything issued
persists, the crashed write lands a prefix) — real crashes sit between
the two.  ``REPRO_CRASH_FUZZ_STRIDE`` subsamples the site sweep for
quick CI lanes (stride 1 = every site).
"""

import os
import shutil

import numpy as np
import pytest

from repro.lsm import (
    FaultInjectingFilesystem,
    LearnedLSMStore,
    SimulatedCrash,
    SizeTieredCompaction,
)

#: Key universe kept small so delete/overwrite collisions are dense.
DOMAIN = np.arange(0, 600, dtype=np.int64)

STRIDE = max(1, int(os.environ.get("REPRO_CRASH_FUZZ_STRIDE", "1")))


def make_ops(seed=7, n_ops=24, batch=48):
    """Deterministic mixed workload: 3 put batches : 1 delete batch."""
    rng = np.random.default_rng(seed)
    ops = []
    for i in range(n_ops):
        keys = rng.choice(DOMAIN, size=batch, replace=False).astype(np.int64)
        if i % 4 == 3:
            ops.append(("del", keys, None))
        else:
            vals = rng.integers(1, 1 << 50, size=batch, dtype=np.int64)
            ops.append(("put", keys, vals))
    return ops


def oracle_state(ops, n):
    """Dict after applying the first ``n`` ops."""
    state = {}
    for kind, keys, vals in ops[:n]:
        if kind == "put":
            state.update(zip(keys.tolist(), vals.tolist()))
        else:
            for key in keys.tolist():
                state.pop(key, None)
    return state


def _store(directory, fs=None):
    return LearnedLSMStore(
        path=directory,
        filesystem=fs,
        memtable_capacity=96,
        compaction=SizeTieredCompaction(min_runs=2),
        # The sweep's determinism contract (dry-run site counts match
        # crashing runs op for op) requires single-threaded compaction
        # regardless of the REPRO_LSM_BACKGROUND stress-lane env var;
        # threaded kills get their own tolerant fuzz in
        # test_lsm_concurrency.py.
        background=False,
    )


def run_workload(fs, directory, ops):
    """Drive ``ops`` then a full compact + close; returns the number of
    batches acknowledged before a crash (all of them if none)."""
    committed = 0
    store = None
    try:
        store = _store(directory, fs)
        for kind, keys, vals in ops:
            if kind == "put":
                store.insert_batch(keys, vals)
            else:
                store.delete_batch(keys)
            committed += 1
        store.compact()
        store.close()
    except SimulatedCrash:
        # Release the crashed store's descriptors (the kernel would on
        # a real kill); durability-wise the crash already happened.
        if store is not None:
            try:
                store.close()
            except SimulatedCrash:
                pass
    return committed


def matches(store, state):
    """Does the reopened store equal the oracle dict on every read
    surface?"""
    values, found = store.lookup_batch(DOMAIN)
    expect_found = np.array([int(k) in state for k in DOMAIN], dtype=bool)
    if not np.array_equal(found, expect_found):
        return False
    expect_values = np.array(
        [state.get(int(k), 0) for k in DOMAIN], dtype=np.int64
    )
    if not np.array_equal(values[found], expect_values[expect_found]):
        return False
    live = np.array(sorted(state), dtype=np.int64)
    if not np.array_equal(store.live_keys(), live):
        return False
    return np.array_equal(
        store.range_query(int(DOMAIN[0]), int(DOMAIN[-1])), live
    )


def assert_consistent_cut(directory, ops, committed):
    """Recover for real and demand the committed state, optionally plus
    the whole in-flight batch."""
    with _store(directory) as store:
        candidates = [
            oracle_state(ops, committed),
            oracle_state(ops, min(committed + 1, len(ops))),
        ]
        ok = any(matches(store, state) for state in candidates)
        assert ok, (
            f"recovered store matches neither the {committed} committed "
            f"batches nor committed+in-flight"
        )
        # The survivor must still accept writes.
        store.insert(10_000, 42)
        assert store.lookup(10_000) == 42


def count_sites(tmp_path, ops):
    """Dry run: total mutating-primitive calls in the full workload."""
    dry = FaultInjectingFilesystem()
    d = str(tmp_path / "dry")
    store = _store(d, dry)
    for kind, keys, vals in ops:
        if kind == "put":
            store.insert_batch(keys, vals)
        else:
            store.delete_batch(keys)
    # Prove the workload actually exercises the paths the sweep is
    # meant to kill: seals and compaction merges.
    assert store.write_stats.seals >= 5
    assert store.write_stats.compactions >= 3
    store.compact()
    store.close()
    return dry.ops


OPS = make_ops()


@pytest.fixture(scope="module")
def total_sites(tmp_path_factory):
    return count_sites(tmp_path_factory.mktemp("sites"), OPS)


@pytest.mark.parametrize(
    "mode,torn", [("lose", 0.0), ("keep", 0.5)], ids=["lose", "keep-torn"]
)
def test_crash_at_every_injection_site(tmp_path, total_sites, mode, torn):
    tested = 0
    for site in range(1, total_sites + 1, STRIDE):
        d = str(tmp_path / f"db-{mode}-{site}")
        fs = FaultInjectingFilesystem(
            crash_at=site, mode=mode, torn_fraction=torn
        )
        committed = run_workload(fs, d, OPS)
        assert fs.crashed, f"site {site} never fired (bound {total_sites})"
        assert committed < len(OPS) or site > 0
        assert_consistent_cut(d, OPS, committed)
        tested += 1
    assert tested == len(range(1, total_sites + 1, STRIDE))


def test_crash_during_recovery_is_idempotent(tmp_path, total_sites):
    """Kill the store mid-workload, then kill *recovery itself* at every
    one of its own injection sites; a final clean recovery must still
    reach a consistent cut."""
    for frac, label in ((1, "early"), (2, "mid"), (3, "late")):
        site = max(1, frac * total_sites // 4)
        crashed = str(tmp_path / f"crashed-{label}")
        fs = FaultInjectingFilesystem(crash_at=site, mode="lose")
        committed = run_workload(fs, crashed, OPS)
        assert fs.crashed
        # Recovery's own site count (dry run against a copy).
        probe = str(tmp_path / f"probe-{label}")
        shutil.copytree(crashed, probe)
        dry = FaultInjectingFilesystem()
        _store(probe, dry).close()
        for rec_site in range(1, dry.ops + 1, STRIDE):
            work = str(tmp_path / f"work-{label}-{rec_site}")
            shutil.copytree(crashed, work)
            faulty = FaultInjectingFilesystem(crash_at=rec_site, mode="lose")
            try:
                _store(work, faulty).close()
            except SimulatedCrash:
                pass
            assert_consistent_cut(work, OPS, committed)
            shutil.rmtree(work)


def test_dry_run_counts_sites(total_sites):
    """The workload must present a meaningful sweep surface."""
    assert total_sites > 100
