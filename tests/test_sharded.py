"""Sharded-store integration tests: worker processes, shared-memory
epochs, differential correctness against a single-store oracle
(ISSUE 8).

Workers are real spawned processes, so each store here costs ~a second
of interpreter startup; tests share fixtures where isolation allows
and keep datasets small.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.lsm.store import LearnedLSMStore
from repro.serving import (
    CDFSplitter,
    CoalescingIndexServer,
    ShardedLSMStore,
)

def _dataset(seed: int = 7, n: int = 20_000):
    rng = np.random.default_rng(seed)
    keys = np.unique(rng.integers(0, 10**9, n).astype(np.int64))
    return keys, keys * 7


@pytest.fixture(scope="module")
def bulk():
    """One bulk-loaded 2-shard store + its oracle, shared by the
    read-only tests."""
    keys, values = _dataset()
    oracle = LearnedLSMStore(keys, values, background=False)
    store = ShardedLSMStore(2, keys, values)
    yield keys, values, store, oracle
    store.close()
    oracle.close()


class TestShardedReads:
    def test_local_and_worker_match_oracle(self, bulk, rng):
        keys, _values, store, oracle = bulk
        queries = np.concatenate([
            rng.choice(keys, 800),
            rng.integers(0, 10**9, 200).astype(np.int64),
        ])
        expect_v, expect_f = oracle.lookup_batch(queries)
        for via in ("local", "worker"):
            values, found = store.lookup_batch(queries, via=via)
            assert np.array_equal(found, expect_f), via
            assert np.array_equal(
                values[found], expect_v[expect_f]
            ), via

    def test_ranges_stitch_across_shards(self, bulk, rng):
        keys, _values, store, oracle = bulk
        # Ranges straddling the shard boundary, fully inside one
        # shard, empty, and inverted.
        mid = int(store.splitter.boundaries[0])
        lows = np.array(
            [keys[0], mid - 10**6, mid, 10**9 + 5, 500, keys[100]],
            dtype=np.int64,
        )
        highs = np.array(
            [keys[-1], mid + 10**6, mid, 10**9 + 50, 400, keys[120]],
            dtype=np.int64,
        )
        expect = oracle.range_query_batch(lows, highs)
        for via in ("local", "worker"):
            got = store.range_query_batch(lows, highs, via=via)
            assert np.array_equal(
                np.asarray(got.values), np.asarray(expect.values)
            ), via
            assert np.array_equal(
                np.asarray(got.offsets), np.asarray(expect.offsets)
            ), via

    def test_range_items_carry_payloads(self, bulk):
        keys, _values, store, oracle = bulk
        lows = np.array([keys[10], keys[5000]], dtype=np.int64)
        highs = np.array([keys[40], keys[5030]], dtype=np.int64)
        got, payloads = store.range_items_batch(lows, highs)
        expect, expect_payloads = oracle.range_items_batch(lows, highs)
        assert np.array_equal(
            np.asarray(got.values), np.asarray(expect.values)
        )
        assert np.array_equal(payloads, expect_payloads)

    def test_scalar_helpers(self, bulk):
        keys, _values, store, _oracle = bulk
        k = int(keys[123])
        assert store.lookup(k) == k * 7
        assert store.contains(k)
        assert store.lookup(k + 1) is None or keys[124] == k + 1
        span = store.range_query(int(keys[10]), int(keys[15]))
        assert np.array_equal(span, keys[10:16])

    def test_auto_routes_small_batches_locally(self, bulk):
        keys, _values, store, _oracle = bulk
        assert not store._use_workers(100, "auto")
        assert store._use_workers(10**6, "auto")
        with pytest.raises(ValueError):
            store.lookup_batch(keys[:4], via="bogus")

    def test_shared_memory_views_are_readonly_aliases(self, bulk):
        _keys, _values, store, _oracle = bulk
        runs = store._epochs[0].runs
        assert runs, "bulk shard published no runs"
        for run in runs:
            assert not run.keys.flags.writeable
            assert not run.keys.flags.owndata, "copied, not aliased"

    def test_splitter_balances_bulk_load(self, bulk):
        _keys, _values, store, _oracle = bulk
        sizes = [s["live_keys"] for s in store.shard_stats()]
        assert min(sizes) > 0.8 * max(sizes)

    def test_coalescer_over_sharded_store(self, bulk):
        keys, _values, store, _oracle = bulk

        async def main():
            srv = CoalescingIndexServer(store)
            sample = keys[::997]
            results = await asyncio.gather(
                *(srv.lookup(int(k)) for k in sample),
                srv.range_query(int(keys[0]), int(keys[25])),
            )
            assert results[:-1] == [int(k) * 7 for k in sample]
            assert np.array_equal(results[-1], keys[:26])
            return srv.stats

        stats = asyncio.run(main())
        assert stats.store_calls <= 4  # coalesced, not per-request


class TestShardedWrites:
    def test_differential_interleaved_history(self, tmp_path):
        """Reads interleaved with writes, deletes, seals, and
        compactions must match the single-store oracle at every
        step — including reads taken through a pinned snapshot while
        later writes land."""
        rng = np.random.default_rng(42)
        keys, values = _dataset(seed=3, n=6_000)
        with LearnedLSMStore(
            background=False, memtable_capacity=1_024
        ) as oracle, ShardedLSMStore(
            2,
            sample_keys=keys,
            store_kwargs={"memtable_capacity": 1_024},
        ) as store:
            universe = np.unique(
                np.concatenate([
                    keys, rng.integers(0, 10**9, 2_000).astype(np.int64)
                ])
            )
            snap = None
            snap_expect = None
            for step in range(8):
                batch = rng.choice(keys, 700)
                vals = batch * (step + 2)
                store.insert_batch(batch, vals)
                oracle.insert_batch(batch, vals)
                dels = rng.choice(keys, 150)
                store.delete_batch(dels)
                oracle.delete_batch(dels)
                if step == 2:
                    store.flush()
                    oracle.flush()
                if step == 4:
                    store.compact()
                    oracle.compact()
                if step == 5:
                    snap = store.snapshot()
                    snap_expect = oracle.lookup_batch(universe)
                probe = rng.choice(universe, 500)
                expect_v, expect_f = oracle.lookup_batch(probe)
                got_v, got_f = store.lookup_batch(probe, via="local")
                assert np.array_equal(got_f, expect_f), step
                assert np.array_equal(
                    got_v[got_f], expect_v[expect_f]
                ), step
                lows = rng.choice(universe, 20)
                highs = lows + rng.integers(0, 10**7, 20)
                expect_r = oracle.range_query_batch(lows, highs)
                got_r = store.range_query_batch(
                    lows, highs, via="local"
                )
                assert np.array_equal(
                    np.asarray(got_r.values),
                    np.asarray(expect_r.values),
                ), step
            # The snapshot still answers from step-5 state even after
            # three more rounds of writes + epoch churn + segment
            # unlinks.
            snap_v, snap_f = snap.lookup_batch(universe)
            assert np.array_equal(snap_f, snap_expect[1])
            assert np.array_equal(
                snap_v[snap_f], snap_expect[0][snap_expect[1]]
            )
            snap.release()

    def test_read_your_writes_and_empty_store(self):
        with ShardedLSMStore(2) as store:
            _v, f = store.lookup_batch(
                np.array([1, 2, 3], dtype=np.int64)
            )
            assert not f.any()
            empty = store.range_query_batch([0], [10**9])
            assert empty.total == 0
            store.insert(5, 50)
            assert store.lookup(5) == 50
            store.delete(5)
            assert store.lookup(5) is None

    def test_snapshot_survives_unlink_of_superseded_segments(self):
        keys = np.arange(0, 40_000, 2, dtype=np.int64)
        with ShardedLSMStore(
            2, keys, keys, store_kwargs={"memtable_capacity": 2_048}
        ) as store:
            with store.snapshot() as snap:
                before = snap.lookup_batch(keys[:1000])
                # Overwrite everything and compact: every original
                # segment is superseded; workers unlink them on the
                # next command.
                store.insert_batch(keys, keys * 9)
                store.flush()
                store.compact()
                store.lookup_batch(keys[:10], via="worker")
                after = snap.lookup_batch(keys[:1000])
                assert np.array_equal(before[0], after[0])
                assert np.array_equal(before[1], after[1])
            with pytest.raises(ValueError):
                snap.lookup_batch(keys[:5])
            live, found = store.lookup_batch(keys[:1000], via="local")
            assert found.all()
            assert np.array_equal(live, keys[:1000] * 9)

    def test_durable_shards_reopen(self, tmp_path):
        keys, values = _dataset(seed=9, n=4_000)
        split = CDFSplitter.fit(keys, 2)
        with ShardedLSMStore(
            2, splitter=split, path=str(tmp_path)
        ) as store:
            store.insert_batch(keys, values)
            store.delete_batch(keys[::7])
            store.flush()
        with ShardedLSMStore(
            2, splitter=split, path=str(tmp_path)
        ) as store:
            got_v, got_f = store.lookup_batch(keys, via="local")
            deleted = np.zeros(keys.size, dtype=bool)
            deleted[::7] = True
            assert np.array_equal(got_f, ~deleted)
            assert np.array_equal(got_v[got_f], values[~deleted])

    def test_sharded_backup(self, tmp_path):
        keys, values = _dataset(seed=11, n=3_000)
        src = tmp_path / "src"
        dst = tmp_path / "bak"
        split = CDFSplitter.fit(keys, 2)
        with ShardedLSMStore(
            2, splitter=split, path=str(src)
        ) as store:
            store.insert_batch(keys, values)
            store.flush()
            store.backup(str(dst))
        with ShardedLSMStore(
            2, splitter=split, path=str(dst)
        ) as restored:
            got_v, got_f = restored.lookup_batch(keys, via="local")
            assert got_f.all()
            assert np.array_equal(got_v, values)

    def test_worker_error_relayed_store_stays_usable(self, tmp_path):
        with ShardedLSMStore(
            2, path=str(tmp_path / "s")
        ) as store:
            store.insert(1, 10)
            busy = tmp_path / "busy"
            busy.mkdir()
            (busy / "shard-0").mkdir()
            (busy / "shard-0" / "junk").write_text("x")
            with pytest.raises(RuntimeError, match="shard 0"):
                store.backup(str(busy))
            # The failed command did not wedge the worker protocol.
            assert store.lookup(1) == 10
            store.insert(2, 20)
            assert store.lookup(2) == 20

    def test_closed_store_rejects_use(self):
        store = ShardedLSMStore(1)
        store.close()
        store.close()  # idempotent
        with pytest.raises(ValueError):
            store.lookup_batch(np.array([1], dtype=np.int64))
        with pytest.raises(ValueError):
            store.insert(1, 1)

    def test_bad_args(self):
        with pytest.raises(ValueError):
            ShardedLSMStore(0)
        split = CDFSplitter.uniform(3)
        with pytest.raises(ValueError):
            ShardedLSMStore(2, splitter=split)
        with ShardedLSMStore(1) as store:
            with pytest.raises(ValueError):
                store.insert_batch(
                    np.array([1, 2], dtype=np.int64),
                    np.array([1], dtype=np.int64),
                )
