"""Unit tests for binary / interpolation / exponential search."""

import numpy as np
import pytest

from repro.btree import (
    Counter,
    binary_search,
    exponential_search,
    interpolation_search,
)


@pytest.fixture(scope="module")
def sorted_keys():
    rng = np.random.default_rng(7)
    return np.unique(rng.integers(0, 10**6, size=4_000))


def truth(keys, q):
    return int(np.searchsorted(keys, q, side="left"))


class TestBinarySearch:
    def test_matches_searchsorted(self, sorted_keys):
        rng = np.random.default_rng(1)
        queries = np.concatenate(
            [rng.choice(sorted_keys, 200), rng.integers(-5, 10**6 + 5, 200)]
        )
        for q in queries:
            assert binary_search(sorted_keys, q) == truth(sorted_keys, q)

    def test_subrange(self, sorted_keys):
        q = sorted_keys[100]
        assert binary_search(sorted_keys, q, 50, 200) == 100

    def test_clamps_bounds(self, sorted_keys):
        n = len(sorted_keys)
        assert binary_search(sorted_keys, sorted_keys[0], -5, n + 5) == 0

    def test_counter(self, sorted_keys):
        counter = Counter()
        binary_search(sorted_keys, int(sorted_keys[123]), counter=counter)
        assert 1 <= counter.comparisons <= int(np.ceil(np.log2(len(sorted_keys)))) + 1

    def test_empty(self):
        assert binary_search(np.array([]), 1.0) == 0


class TestInterpolationSearch:
    def test_matches_searchsorted(self, sorted_keys):
        rng = np.random.default_rng(2)
        queries = np.concatenate(
            [rng.choice(sorted_keys, 200), rng.integers(-5, 10**6 + 5, 200)]
        )
        for q in queries:
            assert interpolation_search(sorted_keys, q) == truth(sorted_keys, q)

    def test_uniform_data_uses_fewer_probes_than_binary(self):
        keys = np.arange(0, 10**6, 7, dtype=np.int64)
        c_interp, c_bin = Counter(), Counter()
        rng = np.random.default_rng(3)
        for q in rng.choice(keys, 100):
            interpolation_search(keys, q, counter=c_interp)
            binary_search(keys, q, counter=c_bin)
        assert c_interp.comparisons < c_bin.comparisons * 0.6

    def test_adversarial_falls_back(self):
        # Exponential growth defeats interpolation; must still be correct.
        keys = (2.0 ** np.arange(50)).astype(np.int64)
        for q in [1, 3, 2**20 - 1, 2**30, 2**49]:
            assert interpolation_search(keys, q) == truth(keys, q)

    def test_duplicate_endpoint_span(self):
        keys = np.array([5, 5, 5, 5], dtype=np.int64)
        assert interpolation_search(keys, 5) == 0
        assert interpolation_search(keys, 6) == 4


class TestExponentialSearch:
    def test_matches_searchsorted_from_any_guess(self, sorted_keys):
        rng = np.random.default_rng(4)
        n = len(sorted_keys)
        queries = np.concatenate(
            [rng.choice(sorted_keys, 100), rng.integers(-5, 10**6 + 5, 100)]
        )
        for q in queries:
            expected = truth(sorted_keys, q)
            for guess in (0, n // 2, n - 1, expected, max(expected - 3, 0)):
                assert exponential_search(sorted_keys, q, guess) == expected

    def test_good_guess_uses_few_comparisons(self, sorted_keys):
        q = int(sorted_keys[1234])
        counter = Counter()
        exponential_search(sorted_keys, q, 1234, counter=counter)
        good = counter.comparisons
        counter.reset()
        exponential_search(sorted_keys, q, 0, counter=counter)
        far = counter.comparisons
        assert good < far

    def test_empty(self):
        assert exponential_search(np.array([]), 1.0, 0) == 0

    def test_guess_out_of_range_is_clamped(self, sorted_keys):
        q = int(sorted_keys[0])
        assert exponential_search(sorted_keys, q, 10**9) == 0
        assert exponential_search(sorted_keys, q, -10) == 0
