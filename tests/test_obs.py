"""Unified telemetry core (ISSUE 9): histograms, registry, tracing.

Pins the contracts the serving stack depends on:

* the log-bucketed latency histogram has a fixed bucket layout, so
  merge is a vector add — associative, commutative, and exactly equal
  to observing the union (hypothesis-checked), with quantile error
  bounded by the relative bucket width;
* ``MetricsRegistry`` updates are thread-safe (exact totals under
  concurrent increments and observations);
* snapshots merge/diff/pickle losslessly — the cross-process
  aggregation path used by the sharded store's delta piggybacking;
* the retrofitted stats objects (LSM read/write, coalescer, RMI,
  paged IO) keep their public fields while writing through to named
  registry counters;
* both benchmarks' percentile helpers are the same obs histogram math;
* spans are no-ops when telemetry is disabled and parent/propagate
  correctly when enabled;
* the Prometheus and JSON exporters render every metric kind.
"""

import importlib.util
import pickle
import sys
import threading
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.paged import FilePageStore
from repro.core.rmi import RMIStats
from repro.lsm.store import LSMReadStats, LSMWriteStats
from repro.obs import (
    LatencyHistogram,
    MetricsRegistry,
    NUM_BUCKETS,
    RELATIVE_BUCKET_WIDTH,
    RegistrySnapshot,
    bucket_index,
    bucket_midpoint,
    bucket_upper_bound,
    json_snapshot,
    prometheus_text,
    summarize_latencies,
)
from repro.serving.coalescer import CoalescerStats

COMMON = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

latency_lists = st.lists(
    st.floats(min_value=1e-7, max_value=100.0,
              allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)


@pytest.fixture(autouse=True)
def _obs_clean():
    """Every test starts disabled with empty trace state."""
    prev = obs.set_enabled(False)
    obs.reset_tracing()
    yield
    obs.set_enabled(prev)
    obs.reset_tracing()


# ---------------------------------------------------------------------------
# Histogram layout


def test_bucket_layout_monotone_and_covering():
    prev = -1
    for value in (0.0, 1e-12, 1e-9, 1e-6, 1e-3, 0.5, 1.0, 10.0, 1e5):
        i = bucket_index(value)
        assert 0 <= i < NUM_BUCKETS
        assert i >= prev
        prev = i
    # A bucket's geometric midpoint sits below its upper bound and the
    # bounds are exactly one relative-width apart.
    for i in (0, 100, NUM_BUCKETS - 1):
        assert bucket_midpoint(i) < bucket_upper_bound(i)
    ratio = bucket_upper_bound(101) / bucket_upper_bound(100)
    assert ratio == pytest.approx(1.0 + RELATIVE_BUCKET_WIDTH)


def test_scalar_and_vector_observe_agree():
    values = np.abs(np.random.default_rng(0).normal(0.01, 0.05, 500)) + 1e-7
    a, b = LatencyHistogram(), LatencyHistogram()
    for v in values:
        a.observe(float(v))
    b.observe_many(values)
    assert np.array_equal(a.counts, b.counts)
    assert a.count == b.count == values.size
    assert a.min == b.min and a.max == b.max
    assert a.sum == pytest.approx(b.sum)


def test_histogram_pickle_roundtrip():
    h = LatencyHistogram()
    h.observe_many(np.array([1e-5, 3e-4, 0.2]))
    clone = pickle.loads(pickle.dumps(h))
    assert np.array_equal(clone.counts, h.counts)
    assert (clone.count, clone.sum, clone.min, clone.max) == (
        h.count, h.sum, h.min, h.max
    )
    # The restored histogram is live: it accepts new observations.
    clone.observe(0.5)
    assert clone.count == h.count + 1


@COMMON
@given(latency_lists, latency_lists, latency_lists)
def test_merge_is_exact_associative_commutative(xs, ys, zs):
    def build(vals):
        h = LatencyHistogram()
        h.observe_many(np.asarray(vals))
        return h

    union = build(xs + ys + zs)
    ab_c = build(xs).merge(build(ys)).merge(build(zs))
    a_bc = build(xs).merge(build(ys).merge(build(zs)))
    ba_c = build(ys).merge(build(xs)).merge(build(zs))
    for merged in (ab_c, a_bc, ba_c):
        assert np.array_equal(merged.counts, union.counts)
        assert merged.count == union.count
        assert merged.min == union.min and merged.max == union.max
        assert merged.sum == pytest.approx(union.sum)


@COMMON
@given(latency_lists, st.floats(min_value=0.0, max_value=100.0))
def test_quantile_error_bounded_by_bucket_width(values, q):
    h = LatencyHistogram()
    h.observe_many(np.asarray(values))
    estimate = h.percentile(q)
    rank = int((q / 100.0) * (len(values) - 1))
    exact = sorted(values)[rank]
    # The estimate is the geometric midpoint of the bucket holding the
    # order statistic (clamped to the observed range), so it can be off
    # by at most one relative bucket width.
    tol = 1.0 + RELATIVE_BUCKET_WIDTH + 1e-9
    assert exact / tol <= estimate <= exact * tol


def test_percentile_edge_cases():
    empty = LatencyHistogram()
    assert empty.percentile(50.0) == 0.0
    assert empty.mean == 0.0
    single = LatencyHistogram()
    single.observe(0.25)
    # min/max clamping makes a single observation exact.
    assert single.percentile(0.0) == pytest.approx(0.25)
    assert single.percentile(100.0) == pytest.approx(0.25)


def test_histogram_diff_is_inverse_of_merge():
    base = LatencyHistogram()
    base.observe_many(np.array([1e-4, 2e-4, 5e-3]))
    snap = base.copy()
    base.observe_many(np.array([0.1, 0.2]))
    delta = base.diff(snap)
    assert delta.count == 2
    assert np.array_equal(
        snap.copy().merge(delta).counts, base.counts
    )


# ---------------------------------------------------------------------------
# Registry and snapshots


def test_registry_get_or_create_and_snapshot():
    reg = MetricsRegistry()
    c = reg.counter("a.b")
    assert reg.counter("a.b") is c
    c.inc(3)
    reg.gauge("g").set(1.5)
    reg.histogram("h").observe(0.01)
    snap = reg.snapshot()
    assert snap.counters["a.b"] == 3
    assert snap.gauges["g"] == 1.5
    assert snap.histograms["h"].count == 1
    # Snapshots are detached: mutating the registry afterwards does
    # not change the snapshot.
    c.inc(10)
    assert snap.counters["a.b"] == 3


def test_snapshot_merge_diff_pickle():
    r1, r2 = MetricsRegistry(), MetricsRegistry()
    r1.counter("x").inc(2)
    r1.histogram("h").observe(0.001)
    r2.counter("x").inc(5)
    r2.counter("y").inc(1)
    r2.histogram("h").observe(0.002)
    merged = RegistrySnapshot.merged([r1.snapshot(), r2.snapshot()])
    assert merged.counters["x"] == 7
    assert merged.counters["y"] == 1
    assert merged.histograms["h"].count == 2

    before = r1.snapshot()
    r1.counter("x").inc(4)
    r1.histogram("h").observe(0.003)
    delta = r1.snapshot().diff(before)
    assert delta.counters["x"] == 4
    assert delta.histograms["h"].count == 1

    wire = pickle.loads(pickle.dumps(merged))
    assert wire.counters == merged.counters
    assert wire.histograms["h"].count == 2


def test_registry_thread_safety_exact_totals():
    reg = MetricsRegistry()
    threads, per_thread = 8, 2000
    barrier = threading.Barrier(threads)

    def work():
        barrier.wait()
        for _ in range(per_thread):
            # get-or-create from every thread on the same names.
            reg.counter("shared.count").inc()
            reg.histogram("shared.lat").observe(1e-4)

    ts = [threading.Thread(target=work) for _ in range(threads)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    total = threads * per_thread
    assert reg.counter("shared.count").value == total
    assert reg.histogram("shared.lat").count == total


# ---------------------------------------------------------------------------
# Stats views over the registry


def test_lsm_stats_are_registry_views():
    read = LSMReadStats()
    read.memtable_hits += 2
    read.add(run_probes=3)
    assert read.memtable_hits == 2
    assert read.run_probes == 3
    assert read.registry.counter("lsm.read.memtable_hits").value == 2

    write = LSMWriteStats()
    write.stall_seconds += 0.5
    write.keys_written += 10
    write.add(entries_sealed=10, entries_compacted=10)
    assert write.stall_seconds == pytest.approx(0.5)
    assert write.write_amplification == pytest.approx(2.0)
    snap = write.registry.snapshot()
    assert snap.counters["lsm.write.keys_written"] == 10
    write.reset()
    assert write.keys_written == 0


def test_rmi_and_coalescer_stats_views():
    rmi = RMIStats()
    rmi.lookups += 4
    rmi.window_total += 12
    assert rmi.mean_window == pytest.approx(3.0)
    assert rmi.registry.counter("rmi.lookups").value == 4

    stats = CoalescerStats()
    stats.ticks += 1
    stats.requests_served += 7
    stats.point_batch_sizes.append(7)
    assert stats.mean_point_batch() == pytest.approx(7.0)
    snap = stats.registry.snapshot()
    assert snap.counters["serving.coalescer.requests_served"] == 7


def test_paged_io_counters_in_registry(tmp_path):
    keys = np.arange(0, 4096, dtype=np.int64)
    path = tmp_path / "pages.bin"
    path.write_bytes(keys.tobytes())
    store = FilePageStore(
        str(path), byte_offset=0, count=keys.size, page_size=256
    )
    try:
        store.read_page(0)
        assert store.page_reads >= 1
        assert store.preads >= 1
        snap = store.registry.snapshot()
        assert snap.counters["paged.io.page_reads"] == store.page_reads
        assert snap.counters["paged.io.preads"] == store.preads
        store.reset_io()
        assert store.page_reads == 0
        assert store.registry.counter("paged.io.page_reads").value == 0
    finally:
        store.close()


# ---------------------------------------------------------------------------
# Shared bench percentile helper


def _load_bench(name):
    path = Path(__file__).resolve().parent.parent / "benchmarks" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(name, None)
    return module


def test_bench_percentiles_pinned_to_shared_histogram():
    sample = np.abs(
        np.random.default_rng(7).lognormal(-9.0, 1.0, 5000)
    )
    expected = summarize_latencies(sample, (50.0, 99.0, 99.9))
    serving = _load_bench("bench_serving")
    assert serving._percentiles(sample) == tuple(
        v * 1e6 for v in expected
    )
    throughput = _load_bench("bench_throughput")
    assert throughput.summarize_latencies is summarize_latencies
    # Sanity: the shared math is a real quantile estimate.
    p50 = expected[0]
    exact = float(np.percentile(sample, 50.0))
    assert exact / (1.5) <= p50 <= exact * 1.5


# ---------------------------------------------------------------------------
# Tracing


def test_span_disabled_is_noop():
    with obs.span("x.y", foo=1) as attrs:
        assert attrs is None
    assert obs.all_spans() == []
    assert obs.current_trace_id() is None


def test_span_hierarchy_and_auto_histogram():
    obs.set_enabled(True)
    with obs.trace_scope() as tid:
        with obs.span("outer") as outer_attrs:
            outer_attrs["k"] = "v"
            with obs.span("inner"):
                pass
    spans = {s["name"]: s for s in obs.all_spans()}
    assert spans["outer"]["trace_id"] == tid
    assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
    assert spans["outer"]["attrs"]["k"] == "v"
    # Span durations auto-observe into the default registry.
    snap = obs.default_registry().snapshot()
    assert snap.histograms["span.outer"].count >= 1
    exported = obs.export_trace(tid)
    assert exported["trace_id"] == tid
    assert {s["name"] for s in exported["spans"]} == {"outer", "inner"}


def test_wire_context_adopt_propagates_trace():
    obs.set_enabled(True)
    with obs.trace_scope() as tid:
        with obs.span("client"):
            wire = obs.wire_context()
    # Simulate the worker side of the pipe RPC.
    obs.reset_tracing()
    with obs.adopt(wire):
        assert obs.current_trace_id() == tid
        with obs.span("worker.op"):
            pass
    worker_spans = obs.trace_spans(tid)
    assert [s["name"] for s in worker_spans] == ["worker.op"]
    assert obs.adopt(None) is not None  # None wire is an inert scope
    with obs.adopt(None):
        assert obs.current_trace_id() is None


def test_record_manual_span_and_membership():
    obs.set_enabled(True)
    member = obs.new_trace_id()
    with obs.trace_scope(member_ids=(member,)):
        with obs.span("tick"):
            pass
    obs.record_manual_span(
        "request", member, start=0.0, duration=0.001,
        attrs={"kind": "point"},
    )
    spans = obs.trace_spans(member)
    names = sorted(s["name"] for s in spans)
    # Membership pulls the tick into the request's trace.
    assert names == ["request", "tick"]


# ---------------------------------------------------------------------------
# Exporters


def test_prometheus_and_json_exporters():
    reg = MetricsRegistry()
    reg.counter("lsm.read.memtable_hits").inc(4)
    reg.gauge("serving.depth").set(2.0)
    h = reg.histogram("span.lookup")
    h.observe_many(np.array([1e-4, 2e-4, 1e-3]))
    snap = reg.snapshot()

    text = prometheus_text(snap)
    assert "# TYPE repro_lsm_read_memtable_hits counter" in text
    assert "repro_lsm_read_memtable_hits 4" in text
    assert "repro_serving_depth 2.0" in text
    assert 'le="+Inf"' in text
    assert "repro_span_lookup_count 3" in text
    # Cumulative bucket counts end at the total count.
    inf_line = [
        line for line in text.splitlines() if 'le="+Inf"' in line
    ][0]
    assert inf_line.rstrip().endswith(" 3")

    import json

    payload = json.loads(json_snapshot(snap))
    assert payload["counters"]["lsm.read.memtable_hits"] == 4
    assert payload["histograms"]["span.lookup"]["count"] == 3
