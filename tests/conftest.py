"""Shared fixtures: small, deterministic datasets for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    integer_dataset,
    lognormal_keys,
    string_dataset,
    uniform_keys,
    url_dataset,
)


@pytest.fixture(scope="session")
def uniform_small() -> np.ndarray:
    """5k sorted unique uniform keys."""
    return uniform_keys(5_000, seed=11)


@pytest.fixture(scope="session")
def lognormal_small() -> np.ndarray:
    """5k sorted unique lognormal keys (heavy tail, saturated head)."""
    return lognormal_keys(5_000, seed=12)


@pytest.fixture(scope="session")
def maps_small() -> np.ndarray:
    return integer_dataset("maps", 20_000, seed=13).keys


@pytest.fixture(scope="session")
def weblogs_small() -> np.ndarray:
    return integer_dataset("weblogs", 20_000, seed=14).keys


@pytest.fixture(scope="session")
def strings_small() -> list[str]:
    return string_dataset(3_000, seed=15)


@pytest.fixture(scope="session")
def urls_small() -> tuple[list[str], list[str]]:
    return url_dataset(1_500, 1_500, seed=16)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def make_queries(
    keys: np.ndarray, rng: np.random.Generator, present: int, absent: int
) -> np.ndarray:
    """Mixed present/absent query batch over an integer key array."""
    hits = rng.choice(keys, size=present)
    lo = int(keys.min()) - 10
    hi = int(keys.max()) + 10
    misses = rng.integers(lo, hi, size=absent)
    return np.concatenate([hits, misses])


@pytest.fixture()
def queries_factory():
    return make_queries
