"""Unit tests for CDF utilities and error statistics."""

import numpy as np
import pytest

from repro.models import (
    EmpiricalCDF,
    empirical_cdf,
    error_stats,
    positions_for_keys,
)


class TestPositions:
    def test_basic(self):
        np.testing.assert_array_equal(positions_for_keys(4), [0, 1, 2, 3])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            positions_for_keys(-1)


class TestEmpiricalCdf:
    def test_bounds(self):
        keys = np.array([10, 20, 30])
        assert empirical_cdf(keys, np.array([5]))[0] == 0.0
        assert empirical_cdf(keys, np.array([35]))[0] == 1.0

    def test_right_continuity(self):
        keys = np.array([10, 20, 30])
        assert empirical_cdf(keys, np.array([20]))[0] == pytest.approx(2 / 3)

    def test_empty_keys(self):
        assert empirical_cdf(np.array([]), np.array([1.0]))[0] == 0.0

    def test_monotone(self):
        rng = np.random.default_rng(0)
        keys = np.sort(rng.normal(size=500))
        queries = np.linspace(-4, 4, 200)
        values = empirical_cdf(keys, queries)
        assert np.all(np.diff(values) >= 0)


class TestErrorStats:
    def test_signed_bounds(self):
        stats = error_stats(
            np.array([10.0, 12.0, 8.0]), np.array([10.0, 10.0, 10.0])
        )
        assert stats.min_error == -2
        assert stats.max_error == 2
        assert stats.max_absolute == 2
        assert stats.window == 4

    def test_bounds_contain_truth(self):
        rng = np.random.default_rng(1)
        truth = rng.uniform(0, 100, size=50)
        noise = rng.normal(0, 3, size=50)
        predictions = truth + noise
        stats = error_stats(predictions, truth)
        # every truth within [pred - max_error, pred - min_error]
        assert np.all(truth >= predictions - stats.max_error)
        assert np.all(truth <= predictions - stats.min_error)

    def test_empty(self):
        stats = error_stats(np.array([]), np.array([]))
        assert stats.count == 0
        assert stats.window == 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            error_stats(np.array([1.0]), np.array([1.0, 2.0]))


class TestEmpiricalCDFClass:
    def test_perfect_positions_on_stored_keys(self):
        keys = np.array([5.0, 10.0, 20.0, 40.0])
        cdf = EmpiricalCDF(keys)
        positions = cdf.position(keys)
        np.testing.assert_allclose(positions, [1, 2, 3, 4])

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            EmpiricalCDF(np.array([3.0, 1.0]))

    def test_scalar_query(self):
        cdf = EmpiricalCDF(np.array([1.0, 2.0]))
        assert float(cdf(1.5)) == pytest.approx(0.5)
