"""Unit tests for the Recursive Model Index (Section 3.2)."""

import numpy as np
import pytest

from repro.core import RecursiveModelIndex
from repro.models import (
    LinearModel,
    MultivariateLinearModel,
    NeuralRegressionModel,
    SplineSegmentModel,
)


def truth(keys, q):
    return int(np.searchsorted(keys, q, side="left"))


class TestConstruction:
    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            RecursiveModelIndex(np.array([2, 1]))

    def test_rejects_bad_stage_sizes(self):
        keys = np.arange(10)
        with pytest.raises(ValueError):
            RecursiveModelIndex(keys, stage_sizes=(2, 10))
        with pytest.raises(ValueError):
            RecursiveModelIndex(keys, stage_sizes=(1, 0))
        with pytest.raises(ValueError):
            RecursiveModelIndex(keys, stage_sizes=())

    def test_rejects_factory_mismatch(self):
        with pytest.raises(ValueError):
            RecursiveModelIndex(
                np.arange(10), stage_sizes=(1, 2), model_factories=[LinearModel]
            )

    def test_empty_keys(self):
        index = RecursiveModelIndex(np.array([], dtype=np.int64))
        assert index.lookup(1.0) == 0
        assert not index.contains(1.0)

    def test_single_key(self):
        index = RecursiveModelIndex(np.array([7], dtype=np.int64))
        assert index.lookup(6.0) == 0
        assert index.lookup(7.0) == 0
        assert index.lookup(8.0) == 1


class TestLookupCorrectness:
    @pytest.mark.parametrize("leaves", [1, 10, 100, 1000])
    def test_present_and_absent_keys(self, leaves, uniform_small, rng):
        index = RecursiveModelIndex(uniform_small, stage_sizes=(1, leaves))
        queries = np.concatenate(
            [
                rng.choice(uniform_small, 300),
                rng.integers(
                    uniform_small.min() - 10, uniform_small.max() + 10, 300
                ),
            ]
        )
        for q in queries:
            assert index.lookup(float(q)) == truth(uniform_small, q)

    @pytest.mark.parametrize(
        "dataset", ["maps_small", "weblogs_small", "lognormal_small"]
    )
    def test_on_paper_datasets(self, dataset, request, rng):
        keys = request.getfixturevalue(dataset)
        index = RecursiveModelIndex(keys, stage_sizes=(1, keys.size // 50))
        queries = np.concatenate(
            [rng.choice(keys, 300), rng.integers(keys.min(), keys.max(), 300)]
        )
        for q in queries:
            assert index.lookup(float(q)) == truth(keys, q)

    def test_perfectly_linear_data_zero_window(self):
        keys = np.arange(0, 100_000, 10, dtype=np.int64)
        index = RecursiveModelIndex(keys, stage_sizes=(1, 100))
        # a linear CDF collapses error to ~0 (the paper's O(1) example)
        assert index.mean_error_window <= 4
        assert index.lookup(float(keys[777])) == 777

    def test_three_stage_rmi(self, lognormal_small, rng):
        index = RecursiveModelIndex(
            lognormal_small,
            stage_sizes=(1, 10, 100),
            model_factories=[LinearModel, LinearModel, LinearModel],
        )
        for q in rng.choice(lognormal_small, 300):
            assert index.lookup(float(q)) == truth(lognormal_small, q)

    @pytest.mark.parametrize(
        "strategy", ["binary", "biased_binary", "biased_quaternary", "exponential"]
    )
    def test_search_strategies_agree(self, strategy, lognormal_small, rng):
        index = RecursiveModelIndex(
            lognormal_small, stage_sizes=(1, 100), search_strategy=strategy
        )
        queries = np.concatenate(
            [
                rng.choice(lognormal_small, 200),
                rng.integers(
                    lognormal_small.min() - 5, lognormal_small.max() + 5, 200
                ),
            ]
        )
        for q in queries:
            assert index.lookup(float(q)) == truth(lognormal_small, q), strategy


class TestErrorBounds:
    def test_bounds_contain_every_stored_key(self, lognormal_small):
        index = RecursiveModelIndex(lognormal_small, stage_sizes=(1, 64))
        for i in range(0, lognormal_small.size, 37):
            q = float(lognormal_small[i])
            _est, lo, hi = index.predict(q)
            assert lo <= i < hi, (i, lo, hi)

    def test_window_shrinks_with_more_leaves(self, lognormal_small):
        wide = RecursiveModelIndex(lognormal_small, stage_sizes=(1, 10))
        narrow = RecursiveModelIndex(lognormal_small, stage_sizes=(1, 500))
        assert narrow.mean_error_window < wide.mean_error_window

    def test_min_leaf_error_widens_window(self, uniform_small):
        plain = RecursiveModelIndex(uniform_small, stage_sizes=(1, 100))
        padded = RecursiveModelIndex(
            uniform_small, stage_sizes=(1, 100), min_leaf_error=50
        )
        assert padded.mean_error_window >= plain.mean_error_window
        assert padded.mean_error_window >= 100


class TestRangeInterface:
    def test_range_query_matches_reference(self, uniform_small, rng):
        index = RecursiveModelIndex(uniform_small, stage_sizes=(1, 100))
        for _ in range(30):
            lo, hi = sorted(rng.integers(0, uniform_small.max(), size=2))
            expected = uniform_small[
                (uniform_small >= lo) & (uniform_small <= hi)
            ]
            np.testing.assert_array_equal(index.range_query(lo, hi), expected)

    def test_range_query_empty(self, uniform_small):
        index = RecursiveModelIndex(uniform_small, stage_sizes=(1, 10))
        assert index.range_query(100, 50).size == 0

    def test_upper_bound(self):
        keys = np.array([10, 20, 30], dtype=np.int64)
        index = RecursiveModelIndex(keys, stage_sizes=(1, 2))
        assert index.upper_bound(20.0) == 2
        assert index.upper_bound(25.0) == 2

    def test_lookup_batch(self, uniform_small, rng):
        index = RecursiveModelIndex(uniform_small, stage_sizes=(1, 100))
        queries = rng.choice(uniform_small, 50)
        batch = index.lookup_batch(queries)
        expected = np.searchsorted(uniform_small, queries, side="left")
        np.testing.assert_array_equal(batch, expected)


class TestModelMixtures:
    def test_multivariate_root(self, lognormal_small, rng):
        index = RecursiveModelIndex(
            lognormal_small,
            stage_sizes=(1, 100),
            model_factories=[
                lambda: MultivariateLinearModel(features=("key", "log")),
                LinearModel,
            ],
        )
        for q in rng.choice(lognormal_small, 200):
            assert index.lookup(float(q)) == truth(lognormal_small, q)

    def test_nn_root(self, lognormal_small, rng):
        index = RecursiveModelIndex(
            lognormal_small,
            stage_sizes=(1, 100),
            model_factories=[
                lambda: NeuralRegressionModel(hidden=(8,), epochs=10),
                LinearModel,
            ],
        )
        for q in rng.choice(lognormal_small, 150):
            assert index.lookup(float(q)) == truth(lognormal_small, q)

    def test_spline_leaves_disable_fast_path(self, uniform_small, rng):
        index = RecursiveModelIndex(
            uniform_small,
            stage_sizes=(1, 50),
            model_factories=[LinearModel, lambda: SplineSegmentModel(knots=4)],
        )
        assert not index._fast
        for q in rng.choice(uniform_small, 150):
            assert index.lookup(float(q)) == truth(uniform_small, q)


class TestAccountingAndStats:
    def test_size_scales_with_leaves(self, uniform_small):
        small = RecursiveModelIndex(uniform_small, stage_sizes=(1, 10))
        large = RecursiveModelIndex(uniform_small, stage_sizes=(1, 1000))
        assert large.size_bytes() > 10 * small.size_bytes()

    def test_size_far_below_btree(self, maps_small):
        from repro.btree import BTreeIndex

        rmi = RecursiveModelIndex(maps_small, stage_sizes=(1, 50))
        btree = BTreeIndex(maps_small, page_size=128)
        assert rmi.size_bytes() < btree.size_bytes()

    def test_stats_tracking(self, uniform_small, rng):
        index = RecursiveModelIndex(uniform_small, stage_sizes=(1, 100))
        index.stats.reset()
        for q in rng.choice(uniform_small, 50):
            index.lookup(float(q))
        assert index.stats.lookups == 50
        assert index.stats.comparisons > 0
        assert index.stats.mean_window > 0

    def test_model_op_count_positive(self, uniform_small):
        index = RecursiveModelIndex(uniform_small, stage_sizes=(1, 10))
        assert index.model_op_count() >= 4

    def test_repr(self, uniform_small):
        index = RecursiveModelIndex(uniform_small, stage_sizes=(1, 10))
        assert "RecursiveModelIndex" in repr(index)
